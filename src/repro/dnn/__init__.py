"""DNN workloads: cost-model zoo + a real NumPy training engine."""

from .models import (
    NETWORK_BUILDERS, alexnet, caffenet, cifar10_quick, get_network,
    googlenet, lenet, vgg16,
)
from .net import Net, build_cifar10_quick, build_lenet, build_mlp
from .prototxt import (
    PrototxtError, network_from_prototxt, parse_prototxt,
    solver_from_prototxt,
)
from .solver import SGDSolver, SolverConfig, TestResult
from .specs import (
    LayerSpec, NetworkSpec, activation_spec, conv_spec, dense_spec,
)

__all__ = [
    "NETWORK_BUILDERS", "alexnet", "caffenet", "cifar10_quick",
    "get_network", "googlenet", "lenet", "vgg16",
    "Net", "build_cifar10_quick", "build_lenet", "build_mlp",
    "PrototxtError", "network_from_prototxt", "parse_prototxt",
    "solver_from_prototxt",
    "SGDSolver", "SolverConfig", "TestResult",
    "LayerSpec", "NetworkSpec", "activation_spec", "conv_spec",
    "dense_spec",
]
