"""Gradient quantization: CNTK's 1-bit SGD (Seide et al. 2014).

Section 6.4 notes the comparison used CNTK's *32-bit* SGD design; the
framework's other mode quantizes gradients to 1 bit per value with
error feedback, cutting gradient traffic ~32x at some accuracy cost.
This module implements that scheme for the real-math engine, and the
timing-model integration lives in :class:`repro.core.cntk.CNTKJob`
(``quantization_bits=1``).

Scheme (per worker, per iteration):
  1. g' = g + residual                  (error feedback)
  2. q  = sign(g') scaled per column by mean(|g'| over its sign class)
  3. residual = g' - q                  (carried to the next iteration)

The residual makes the quantization error *temporally* unbiased: what is
dropped now is re-injected later, which is why 1-bit SGD converges.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["OneBitQuantizer", "quantized_nbytes"]


def quantized_nbytes(n_values: int, bits: int = 1) -> int:
    """Wire size of a quantized gradient: packed sign bits + two float32
    reconstruction scales per chunk (here: per whole buffer)."""
    if bits == 32:
        return n_values * 4
    if bits != 1:
        raise ValueError("only 1-bit and 32-bit modes exist")
    return (n_values + 7) // 8 + 8


class OneBitQuantizer:
    """Stateful 1-bit quantizer with error feedback."""

    def __init__(self, n_values: int):
        if n_values < 1:
            raise ValueError("n_values must be >= 1")
        self.n_values = n_values
        self.residual = np.zeros(n_values)

    def encode(self, grads: np.ndarray
               ) -> Tuple[np.ndarray, float, float]:
        """Quantize ``grads`` (+ carried residual) to signs and two
        reconstruction levels; updates the residual in place.

        Returns ``(signs_bool, pos_level, neg_level)``.
        """
        if grads.shape != (self.n_values,):
            raise ValueError(
                f"expected shape ({self.n_values},), got {grads.shape}")
        g = grads + self.residual
        pos = g >= 0
        pos_level = float(g[pos].mean()) if pos.any() else 0.0
        neg_level = float(g[~pos].mean()) if (~pos).any() else 0.0
        self.residual = g - self.decode(pos, pos_level, neg_level)
        return pos, pos_level, neg_level

    @staticmethod
    def decode(signs: np.ndarray, pos_level: float,
               neg_level: float) -> np.ndarray:
        """Reconstruct the quantized gradient."""
        return np.where(signs, pos_level, neg_level)

    def roundtrip(self, grads: np.ndarray) -> np.ndarray:
        """encode + decode in one step (what the wire delivers)."""
        return self.decode(*self.encode(grads))
