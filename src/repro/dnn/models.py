"""The model zoo: the networks the paper trains.

Shapes follow the reference Caffe prototxts; parameter counts land on
the published figures (AlexNet/CaffeNet ~61M params -> ~244 MB fp32 of
gradients per iteration, the "256 MB buffer" scale of Section 3.4;
GoogLeNet ~7M params across ~60 parametrized layers — many small
messages, hence communication-intensive; CIFAR10-quick ~145K params —
compute-intensive).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .specs import LayerSpec, NetworkSpec, activation_spec, conv_spec, dense_spec

__all__ = ["alexnet", "caffenet", "googlenet", "vgg16", "nin",
           "cifar10_quick", "lenet", "get_network", "NETWORK_BUILDERS"]


def alexnet() -> NetworkSpec:
    """AlexNet (Krizhevsky 2012), ungrouped shapes — 227x227x3 input."""
    L: List[LayerSpec] = [
        conv_spec("conv1", 3, 96, 11, 55, 55),
        activation_spec("relu1", "relu", 96 * 55 * 55),
        activation_spec("norm1", "lrn", 96 * 55 * 55, 5.0),
        activation_spec("pool1", "pool", 96 * 27 * 27),
        conv_spec("conv2", 96, 256, 5, 27, 27),
        activation_spec("relu2", "relu", 256 * 27 * 27),
        activation_spec("norm2", "lrn", 256 * 27 * 27, 5.0),
        activation_spec("pool2", "pool", 256 * 13 * 13),
        conv_spec("conv3", 256, 384, 3, 13, 13),
        activation_spec("relu3", "relu", 384 * 13 * 13),
        conv_spec("conv4", 384, 384, 3, 13, 13),
        activation_spec("relu4", "relu", 384 * 13 * 13),
        conv_spec("conv5", 384, 256, 3, 13, 13),
        activation_spec("relu5", "relu", 256 * 13 * 13),
        activation_spec("pool5", "pool", 256 * 6 * 6),
        dense_spec("fc6", 256 * 6 * 6, 4096),
        activation_spec("relu6", "relu", 4096),
        dense_spec("fc7", 4096, 4096),
        activation_spec("relu7", "relu", 4096),
        dense_spec("fc8", 4096, 1000),
        activation_spec("prob", "softmax", 1000, 3.0),
    ]
    return NetworkSpec("alexnet", tuple(L), 3 * 227 * 227 * 4)


def caffenet() -> NetworkSpec:
    """CaffeNet: BVLC's single-GPU AlexNet variant (pool/norm swapped);
    identical communication profile."""
    base = alexnet()
    return NetworkSpec("caffenet", base.layers, base.input_bytes_per_sample)


def _inception(name: str, hw: int, cin: int, c1: int, c3r: int, c3: int,
               c5r: int, c5: int, cp: int) -> List[LayerSpec]:
    """One GoogLeNet inception module (four parallel towers + concat)."""
    cout = c1 + c3 + c5 + cp
    return [
        conv_spec(f"{name}/1x1", cin, c1, 1, hw, hw),
        conv_spec(f"{name}/3x3_reduce", cin, c3r, 1, hw, hw),
        conv_spec(f"{name}/3x3", c3r, c3, 3, hw, hw),
        conv_spec(f"{name}/5x5_reduce", cin, c5r, 1, hw, hw),
        conv_spec(f"{name}/5x5", c5r, c5, 5, hw, hw),
        conv_spec(f"{name}/pool_proj", cin, cp, 1, hw, hw),
        activation_spec(f"{name}/concat", "concat", cout * hw * hw, 0.0),
    ]


def googlenet() -> NetworkSpec:
    """GoogLeNet (Szegedy 2015) main trunk, 224x224x3 input.

    Auxiliary classifier heads are train-time-only regularizers and are
    omitted; they carry <1% of the trunk's FLOPs at these batch sizes.
    """
    L: List[LayerSpec] = [
        conv_spec("conv1/7x7_s2", 3, 64, 7, 112, 112),
        activation_spec("pool1", "pool", 64 * 56 * 56),
        conv_spec("conv2/3x3_reduce", 64, 64, 1, 56, 56),
        conv_spec("conv2/3x3", 64, 192, 3, 56, 56),
        activation_spec("pool2", "pool", 192 * 28 * 28),
    ]
    L += _inception("inception_3a", 28, 192, 64, 96, 128, 16, 32, 32)
    L += _inception("inception_3b", 28, 256, 128, 128, 192, 32, 96, 64)
    L += [activation_spec("pool3", "pool", 480 * 14 * 14)]
    L += _inception("inception_4a", 14, 480, 192, 96, 208, 16, 48, 64)
    L += _inception("inception_4b", 14, 512, 160, 112, 224, 24, 64, 64)
    L += _inception("inception_4c", 14, 512, 128, 128, 256, 24, 64, 64)
    L += _inception("inception_4d", 14, 512, 112, 144, 288, 32, 64, 64)
    L += _inception("inception_4e", 14, 528, 256, 160, 320, 32, 128, 128)
    L += [activation_spec("pool4", "pool", 832 * 7 * 7)]
    L += _inception("inception_5a", 7, 832, 256, 160, 320, 32, 128, 128)
    L += _inception("inception_5b", 7, 832, 384, 192, 384, 48, 128, 128)
    L += [
        activation_spec("pool5/avg", "pool", 1024),
        dense_spec("loss3/classifier", 1024, 1000),
        activation_spec("prob", "softmax", 1000, 3.0),
    ]
    return NetworkSpec("googlenet", tuple(L), 3 * 224 * 224 * 4)


def vgg16() -> NetworkSpec:
    """VGG-16 (Simonyan & Zisserman), 224x224x3 input."""
    cfg = [  # (cin, cout, hw) per conv block
        (3, 64, 224), (64, 64, 224),
        (64, 128, 112), (128, 128, 112),
        (128, 256, 56), (256, 256, 56), (256, 256, 56),
        (256, 512, 28), (512, 512, 28), (512, 512, 28),
        (512, 512, 14), (512, 512, 14), (512, 512, 14),
    ]
    L: List[LayerSpec] = []
    block = 1
    idx = 1
    prev_hw = 224
    for cin, cout, hw in cfg:
        if hw != prev_hw:
            L.append(activation_spec(f"pool{block}", "pool",
                                     cin * hw * hw))
            block += 1
            idx = 1
            prev_hw = hw
        L.append(conv_spec(f"conv{block}_{idx}", cin, cout, 3, hw, hw))
        L.append(activation_spec(f"relu{block}_{idx}", "relu",
                                 cout * hw * hw))
        idx += 1
    L += [
        activation_spec("pool5", "pool", 512 * 7 * 7),
        dense_spec("fc6", 512 * 7 * 7, 4096),
        dense_spec("fc7", 4096, 4096),
        dense_spec("fc8", 4096, 1000),
        activation_spec("prob", "softmax", 1000, 3.0),
    ]
    return NetworkSpec("vgg16", tuple(L), 3 * 224 * 224 * 4)


def nin() -> NetworkSpec:
    """Network in Network (Lin 2013, cited in the paper's intro):
    conv blocks followed by 1x1 "mlpconv" layers, global average pool,
    no giant fully-connected layers — ~7.6M parameters."""
    L: List[LayerSpec] = [
        conv_spec("conv1", 3, 96, 11, 54, 54),
        activation_spec("relu0", "relu", 96 * 54 * 54),
        conv_spec("cccp1", 96, 96, 1, 54, 54),
        conv_spec("cccp2", 96, 96, 1, 54, 54),
        activation_spec("pool1", "pool", 96 * 27 * 27),
        conv_spec("conv2", 96, 256, 5, 27, 27),
        conv_spec("cccp3", 256, 256, 1, 27, 27),
        conv_spec("cccp4", 256, 256, 1, 27, 27),
        activation_spec("pool2", "pool", 256 * 13 * 13),
        conv_spec("conv3", 256, 384, 3, 13, 13),
        conv_spec("cccp5", 384, 384, 1, 13, 13),
        conv_spec("cccp6", 384, 384, 1, 13, 13),
        activation_spec("pool3", "pool", 384 * 6 * 6),
        conv_spec("conv4-1024", 384, 1024, 3, 6, 6),
        conv_spec("cccp7-1024", 1024, 1024, 1, 6, 6),
        conv_spec("cccp8-1000", 1024, 1000, 1, 6, 6),
        activation_spec("pool4/avg", "pool", 1000),
        activation_spec("prob", "softmax", 1000, 3.0),
    ]
    return NetworkSpec("nin", tuple(L), 3 * 224 * 224 * 4)


def cifar10_quick() -> NetworkSpec:
    """The CIFAR10 "quick" reference solver network from the Caffe repo."""
    L = [
        conv_spec("conv1", 3, 32, 5, 32, 32),
        activation_spec("pool1", "pool", 32 * 16 * 16),
        activation_spec("relu1", "relu", 32 * 16 * 16),
        conv_spec("conv2", 32, 32, 5, 16, 16),
        activation_spec("relu2", "relu", 32 * 16 * 16),
        activation_spec("pool2", "pool", 32 * 8 * 8),
        conv_spec("conv3", 32, 64, 5, 8, 8),
        activation_spec("relu3", "relu", 64 * 8 * 8),
        activation_spec("pool3", "pool", 64 * 4 * 4),
        dense_spec("ip1", 64 * 4 * 4, 64),
        dense_spec("ip2", 64, 10),
        activation_spec("prob", "softmax", 10, 3.0),
    ]
    return NetworkSpec("cifar10_quick", tuple(L), 3 * 32 * 32 * 4)


def lenet() -> NetworkSpec:
    """LeNet (MNIST), the Caffe tutorial network."""
    L = [
        conv_spec("conv1", 1, 20, 5, 24, 24),
        activation_spec("pool1", "pool", 20 * 12 * 12),
        conv_spec("conv2", 20, 50, 5, 8, 8),
        activation_spec("pool2", "pool", 50 * 4 * 4),
        dense_spec("ip1", 50 * 4 * 4, 500),
        activation_spec("relu1", "relu", 500),
        dense_spec("ip2", 500, 10),
        activation_spec("prob", "softmax", 10, 3.0),
    ]
    return NetworkSpec("lenet", tuple(L), 28 * 28 * 4)


NETWORK_BUILDERS: Dict[str, Callable[[], NetworkSpec]] = {
    "alexnet": alexnet,
    "caffenet": caffenet,
    "googlenet": googlenet,
    "vgg16": vgg16,
    "nin": nin,
    "cifar10_quick": cifar10_quick,
    "lenet": lenet,
}


def get_network(name: str) -> NetworkSpec:
    try:
        return NETWORK_BUILDERS[name.lower()]()
    except KeyError:
        raise KeyError(f"unknown network {name!r}; "
                       f"have {sorted(NETWORK_BUILDERS)}")
