"""Real NumPy layers: forward/backward compute for correctness testing.

The cluster-scale experiments use cost models, but the paper's key
correctness claim — "We observed no difference in accuracy between Caffe
and S-Caffe ... This validates that S-Caffe's distributed training indeed
works as expected" (Section 6.2) — needs real arithmetic.  This engine
implements the layers of the small reference networks (LeNet,
CIFAR10-quick shapes) with exact forward/backward math, so the
distributed solvers can be checked for *numerical equivalence* with
single-solver large-batch SGD.

Conventions: activations are NCHW ``float64`` (float64 so equivalence
checks are not drowned in rounding noise); ``backward`` consumes the
loss gradient w.r.t. the layer output and returns the gradient w.r.t.
the input, accumulating parameter gradients in ``grads``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Layer", "Dense", "Conv2D", "MaxPool2D", "ReLU", "Flatten",
           "Dropout", "LRN", "SoftmaxCrossEntropy", "im2col", "col2im"]


class Layer:
    """Base class: parametrized layers override params()/grads()."""

    name: str = "layer"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> Dict[str, np.ndarray]:
        return {}

    def grads(self) -> Dict[str, np.ndarray]:
        return {}

    @property
    def param_count(self) -> int:
        return sum(p.size for p in self.params().values())


class Dense(Layer):
    """Fully-connected layer: y = x @ W + b."""

    def __init__(self, nin: int, nout: int, *, rng: np.random.Generator,
                 name: str = "dense"):
        self.name = name
        scale = np.sqrt(2.0 / nin)
        self.W = rng.standard_normal((nin, nout)) * scale
        self.b = np.zeros(nout)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"{self.name}: expected 2-D input, got {x.shape}")
        self._x = x
        return x @ self.W + self.b

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        self.dW += self._x.T @ dy
        self.db += dy.sum(axis=0)
        return dy @ self.W.T

    def params(self):
        return {"W": self.W, "b": self.b}

    def grads(self):
        return {"W": self.dW, "b": self.db}


def im2col(x: np.ndarray, k: int, stride: int, pad: int
           ) -> Tuple[np.ndarray, int, int]:
    """Unfold (N, C, H, W) into (N, Hout*Wout, C*k*k) patches."""
    n, c, h, w = x.shape
    hout = (h + 2 * pad - k) // stride + 1
    wout = (w + 2 * pad - k) // stride + 1
    if hout <= 0 or wout <= 0:
        raise ValueError("kernel larger than padded input")
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    s = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp, shape=(n, c, hout, wout, k, k),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, hout * wout, c * k * k)
    return np.ascontiguousarray(cols), hout, wout


def col2im(cols: np.ndarray, x_shape: Tuple[int, ...], k: int, stride: int,
           pad: int) -> np.ndarray:
    """Fold patch gradients back onto the (padded) input — the adjoint of
    :func:`im2col`."""
    n, c, h, w = x_shape
    hout = (h + 2 * pad - k) // stride + 1
    wout = (w + 2 * pad - k) // stride + 1
    dxp = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols6 = cols.reshape(n, hout, wout, c, k, k)
    for i in range(k):
        for j in range(k):
            dxp[:, :, i:i + hout * stride:stride,
                j:j + wout * stride:stride] += cols6[:, :, :, :, i, j
                                                     ].transpose(0, 3, 1, 2)
    if pad:
        return dxp[:, :, pad:-pad, pad:-pad]
    return dxp


class Conv2D(Layer):
    """2-D convolution via im2col + GEMM (Caffe's implementation trick)."""

    def __init__(self, cin: int, cout: int, k: int, *, stride: int = 1,
                 pad: int = 0, rng: np.random.Generator, name: str = "conv"):
        self.name = name
        self.k, self.stride, self.pad = k, stride, pad
        scale = np.sqrt(2.0 / (cin * k * k))
        self.W = rng.standard_normal((cout, cin * k * k)) * scale
        self.b = np.zeros(cout)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._hw: Tuple[int, int] = (0, 0)

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, hout, wout = im2col(x, self.k, self.stride, self.pad)
        self._cols, self._x_shape, self._hw = cols, x.shape, (hout, wout)
        y = cols @ self.W.T + self.b          # (N, HW, Cout)
        n = x.shape[0]
        return y.transpose(0, 2, 1).reshape(n, -1, hout, wout)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        n, cout, hout, wout = dy.shape
        dyf = dy.reshape(n, cout, hout * wout).transpose(0, 2, 1)
        self.dW += np.einsum("npc,npk->ck", dyf, self._cols)
        self.db += dyf.sum(axis=(0, 1))
        dcols = dyf @ self.W                  # (N, HW, Cin*k*k)
        return col2im(dcols, self._x_shape, self.k, self.stride, self.pad)

    def params(self):
        return {"W": self.W, "b": self.b}

    def grads(self):
        return {"W": self.dW, "b": self.db}


class MaxPool2D(Layer):
    """Max pooling with square window == stride (Caffe default shapes)."""

    def __init__(self, k: int, name: str = "pool"):
        self.name = name
        self.k = k
        self._mask: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"{self.name}: input {h}x{w} not divisible "
                             f"by window {k}")
        xr = x.reshape(n, c, h // k, k, w // k, k)
        y = xr.max(axis=(3, 5))
        self._mask = (xr == y[:, :, :, None, :, None])
        self._x_shape = x.shape
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        k = self.k
        dyr = dy[:, :, :, None, :, None]
        # Split gradient equally among tied maxima (deterministic adjoint).
        counts = self._mask.sum(axis=(3, 5), keepdims=True)
        dx = (self._mask * dyr / counts).reshape(self._x_shape)
        return dx


class ReLU(Layer):
    def __init__(self, name: str = "relu"):
        self.name = name
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return dy * self._mask


class Flatten(Layer):
    def __init__(self, name: str = "flatten"):
        self.name = name
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return dy.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout (AlexNet's fc6/fc7 regularizer).

    Deterministic given its RNG — required for the bit-equivalence
    tests: replicas must draw identical masks, so data-parallel runs
    share one seeded generator per replica clone.  ``train`` toggles the
    Testing-phase behaviour (identity).
    """

    def __init__(self, rate: float, *, rng: np.random.Generator,
                 name: str = "dropout"):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.name = name
        self.rate = rate
        self.rng = rng
        self.train = True
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask


class LRN(Layer):
    """Local response normalization across channels (AlexNet §3.3).

    y_i = x_i / (k + alpha/n * sum_{j in window} x_j^2) ^ beta
    """

    def __init__(self, *, local_size: int = 5, alpha: float = 1e-4,
                 beta: float = 0.75, k: float = 2.0, name: str = "lrn"):
        if local_size < 1 or local_size % 2 == 0:
            raise ValueError("local_size must be odd and >= 1")
        self.name = name
        self.local_size = local_size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def _window_sum_sq(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        half = self.local_size // 2
        sq = x * x
        # Prefix sums over the channel axis for O(1) window sums.
        csum = np.zeros((n, c + 1, h, w))
        np.cumsum(sq, axis=1, out=csum[:, 1:])
        lo = np.clip(np.arange(c) - half, 0, c)
        hi = np.clip(np.arange(c) + half + 1, 0, c)
        return csum[:, hi] - csum[:, lo]

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        win = self._window_sum_sq(x)
        self._scale = self.k + (self.alpha / self.local_size) * win
        return x * self._scale ** -self.beta

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None or self._scale is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x, scale = self._x, self._scale
        n, c, h, w = x.shape
        half = self.local_size // 2
        # dL/dx_i = dy_i * scale_i^-b
        #         - 2ab/n * x_i * sum_{j: i in window(j)} dy_j x_j scale_j^-(b+1)
        coef = 2.0 * (self.alpha / self.local_size) * self.beta
        g = dy * x * scale ** (-self.beta - 1.0)
        csum = np.zeros((n, c + 1, h, w))
        np.cumsum(g, axis=1, out=csum[:, 1:])
        lo = np.clip(np.arange(c) - half, 0, c)
        hi = np.clip(np.arange(c) + half + 1, 0, c)
        gwin = csum[:, hi] - csum[:, lo]
        return dy * scale ** -self.beta - coef * x * gwin


class SoftmaxCrossEntropy:
    """Loss head: softmax + mean cross-entropy over the batch.

    Gradients are normalized by the *global* batch size passed to
    ``backward`` so that data-parallel shards sum to exactly the
    single-solver gradient.
    """

    def __init__(self):
        self._probs: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        z = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(z)
        probs = e / e.sum(axis=1, keepdims=True)
        self._probs, self._labels = probs, labels
        n = logits.shape[0]
        return float(-np.log(probs[np.arange(n), labels] + 1e-300).mean())

    def backward(self, global_batch: Optional[int] = None) -> np.ndarray:
        if self._probs is None:
            raise RuntimeError("loss backward before forward")
        n = self._probs.shape[0]
        denom = global_batch if global_batch is not None else n
        d = self._probs.copy()
        d[np.arange(n), self._labels] -= 1.0
        return d / denom
