"""SGD solvers over the real-math Net.

Caffe's Solver abstraction (Section 2.2) orchestrates iterations: fetch a
batch, Forward, Backward, ApplyUpdate.  :class:`SGDSolver` implements
the reference solver (momentum + weight decay + fixed/step learning-rate
policies); the distributed frameworks in :mod:`repro.core` each own one
solver per GPU and differ only in how gradients are aggregated between
Backward and ApplyUpdate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .net import Net

__all__ = ["SolverConfig", "SGDSolver", "TestResult"]


@dataclass(frozen=True)
class SolverConfig:
    """Reference hyper-parameters (Caffe solver.prototxt fields).

    Learning-rate policies follow Caffe's definitions:

    - ``fixed``:     lr = base_lr
    - ``step``:      lr = base_lr * gamma ^ floor(iter / stepsize)
    - ``multistep``: like step but decaying at explicit ``stepvalues``
    - ``inv``:       lr = base_lr * (1 + gamma * iter) ^ -power
    - ``poly``:      lr = base_lr * (1 - iter / max_iter) ^ power
    """

    base_lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_policy: str = "fixed"
    gamma: float = 0.1            # step/inv decay factor
    stepsize: int = 100           # iterations per step
    power: float = 1.0            # inv/poly exponent
    max_iter: int = 1000          # poly horizon
    stepvalues: tuple = ()        # multistep boundaries (ascending)

    _POLICIES = ("fixed", "step", "multistep", "inv", "poly")

    def __post_init__(self):
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        if self.lr_policy not in self._POLICIES:
            raise ValueError(f"unknown lr_policy {self.lr_policy!r}")
        if self.stepsize < 1:
            raise ValueError("stepsize must be >= 1")
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if list(self.stepvalues) != sorted(self.stepvalues):
            raise ValueError("stepvalues must be ascending")

    def lr_at(self, iteration: int) -> float:
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        if self.lr_policy == "fixed":
            return self.base_lr
        if self.lr_policy == "step":
            return self.base_lr * self.gamma ** (iteration
                                                 // self.stepsize)
        if self.lr_policy == "multistep":
            passed = sum(1 for s in self.stepvalues if iteration >= s)
            return self.base_lr * self.gamma ** passed
        if self.lr_policy == "inv":
            return self.base_lr * (1.0 + self.gamma
                                   * iteration) ** -self.power
        # poly
        frac = min(1.0, iteration / self.max_iter)
        return self.base_lr * (1.0 - frac) ** self.power


class SGDSolver:
    """Stochastic gradient descent with momentum over a real Net."""

    def __init__(self, net: Net, config: Optional[SolverConfig] = None):
        self.net = net
        self.config = config or SolverConfig()
        self.iteration = 0
        self._velocity = np.zeros(net.param_count)

    def compute_gradients(self, x: np.ndarray, labels: np.ndarray,
                          global_batch: Optional[int] = None) -> float:
        """Forward + Backward on a (shard of a) batch; returns the loss.

        Gradients accumulate in the net; callers aggregate across solvers
        before :meth:`apply_update`.
        """
        self.net.zero_grads()
        loss = self.net.forward(x, labels)
        self.net.backward(global_batch)
        return loss

    def apply_update(self) -> None:
        """ApplyUpdate(): momentum SGD step on the packed vectors."""
        cfg = self.config
        params = self.net.get_params()
        grads = self.net.get_grads()
        if cfg.weight_decay:
            grads = grads + cfg.weight_decay * params
        lr = cfg.lr_at(self.iteration)
        self._velocity = cfg.momentum * self._velocity - lr * grads
        self.net.set_params(params + self._velocity)
        self.iteration += 1

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """A full single-solver iteration (the Caffe baseline loop)."""
        loss = self.compute_gradients(x, labels)
        self.apply_update()
        return loss

    # -- snapshots (Caffe's snapshot/restore) --------------------------------
    def snapshot(self) -> dict:
        """Capture the full solver state (weights + momentum + clock).

        Equivalent to Caffe's ``.caffemodel`` + ``.solverstate`` pair.
        """
        return {
            "params": self.net.get_params().copy(),
            "velocity": self._velocity.copy(),
            "iteration": self.iteration,
        }

    def restore(self, state: dict) -> None:
        """Resume from a snapshot; training continues bit-identically."""
        try:
            params = state["params"]
            velocity = state["velocity"]
            iteration = state["iteration"]
        except KeyError as exc:
            raise ValueError(f"snapshot missing field {exc}") from None
        if velocity.shape != self._velocity.shape:
            raise ValueError("snapshot is for a different net shape")
        self.net.set_params(params)
        self._velocity = velocity.copy()
        self.iteration = int(iteration)

    def save_snapshot(self, path: str) -> None:
        """Persist a snapshot as .npz."""
        np.savez(path, **self.snapshot())

    def load_snapshot(self, path: str) -> None:
        with np.load(path) as data:
            self.restore({k: data[k] for k in data.files})

    def test(self, x: np.ndarray, labels: np.ndarray) -> "TestResult":
        """Caffe's Testing phase: loss + top-1 accuracy, no gradients.

        (Section 6.2: "Caffe reports accuracy during the Testing phase
        only" — this is that phase.)
        """
        h = x
        for layer in self.net.layers:
            h = layer.forward(h)
        loss = self.net.loss_head.forward(h, labels)
        predictions = h.argmax(axis=1)
        accuracy = float((predictions == labels).mean())
        return TestResult(loss=loss, accuracy=accuracy,
                          n_samples=x.shape[0])


@dataclass(frozen=True)
class TestResult:
    """Outcome of a Testing-phase pass."""

    loss: float
    accuracy: float
    n_samples: int
