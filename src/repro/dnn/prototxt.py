"""Caffe prototxt parsing.

Caffe's user interface is the protobuf text format: a ``solver.prototxt``
holding hyper-parameters and a ``train_val.prototxt`` describing the
network.  This module parses that format (the text syntax, no protobuf
dependency) and builds the corresponding :class:`SolverConfig` and
:class:`NetworkSpec` cost models, propagating activation shapes through
the layer chain exactly as Caffe's shape inference does.

Supported layer types: ``Convolution``, ``InnerProduct``, ``Pooling``,
``ReLU``, ``LRN``, ``Dropout``, ``Softmax`` / ``SoftmaxWithLoss``,
``Data`` / ``Input`` (shape source), ``Accuracy`` (ignored).  Layers
must form a linear chain (multi-branch topologies like GoogLeNet's
inception modules are built programmatically in
:mod:`repro.dnn.models`).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

from .solver import SolverConfig
from .specs import (
    LayerSpec, NetworkSpec, activation_spec, conv_spec, dense_spec,
)

__all__ = ["parse_prototxt", "solver_from_prototxt",
           "network_from_prototxt", "PrototxtError"]


class PrototxtError(ValueError):
    """Malformed prototxt or unsupported construct."""


_TOKEN = re.compile(r"""
    (?P<comment>\#[^\n]*)
  | (?P<brace>[{}])
  | (?P<colon>:)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<atom>[A-Za-z0-9_.+-]+)
  | (?P<ws>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> List[str]:
    out = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise PrototxtError(f"bad character at offset {pos}: "
                                f"{text[pos:pos + 20]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("comment", "ws"):
            continue
        out.append(m.group())
    return out


def _coerce(token: str) -> Union[str, int, float, bool]:
    if token.startswith('"'):
        return token[1:-1]
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_prototxt(text: str) -> Dict[str, Any]:
    """Parse protobuf text format into nested dicts.

    Repeated keys accumulate into lists; a key appearing once maps to
    its single value (callers use :func:`_as_list` to normalize).
    """
    tokens = _tokenize(text)
    pos = 0

    def parse_block(depth: int) -> Dict[str, Any]:
        nonlocal pos
        block: Dict[str, Any] = {}

        def add(key, value):
            if key in block:
                if not isinstance(block[key], list):
                    block[key] = [block[key]]
                block[key].append(value)
            else:
                block[key] = value

        while pos < len(tokens):
            tok = tokens[pos]
            if tok == "}":
                if depth == 0:
                    raise PrototxtError("unbalanced '}'")
                pos += 1
                return block
            key = tok
            pos += 1
            if pos >= len(tokens):
                raise PrototxtError(f"dangling key {key!r}")
            if tokens[pos] == ":":
                pos += 1
                if pos >= len(tokens):
                    raise PrototxtError(f"missing value for {key!r}")
                if tokens[pos] == "{":
                    pos += 1
                    add(key, parse_block(depth + 1))
                else:
                    add(key, _coerce(tokens[pos]))
                    pos += 1
            elif tokens[pos] == "{":
                pos += 1
                add(key, parse_block(depth + 1))
            else:
                raise PrototxtError(f"expected ':' or '{{' after {key!r}")
        if depth != 0:
            raise PrototxtError("unbalanced '{'")
        return block

    return parse_block(0)


def _as_list(value) -> List:
    if value is None:
        return []
    return value if isinstance(value, list) else [value]


def solver_from_prototxt(text: str) -> SolverConfig:
    """Build a :class:`SolverConfig` from a solver.prototxt."""
    d = parse_prototxt(text)
    kwargs: Dict[str, Any] = {}
    mapping = {
        "base_lr": "base_lr", "momentum": "momentum",
        "weight_decay": "weight_decay", "lr_policy": "lr_policy",
        "gamma": "gamma", "stepsize": "stepsize", "power": "power",
        "max_iter": "max_iter",
    }
    for proto_key, cfg_key in mapping.items():
        if proto_key in d:
            kwargs[cfg_key] = d[proto_key]
    if "stepvalue" in d:
        kwargs["stepvalues"] = tuple(_as_list(d["stepvalue"]))
    try:
        return SolverConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise PrototxtError(f"bad solver definition: {exc}") from None


def _conv_out(h: int, k: int, stride: int, pad: int) -> int:
    out = (h + 2 * pad - k) // stride + 1
    if out < 1:
        raise PrototxtError(f"layer shrinks activation below 1 "
                            f"(h={h}, k={k}, s={stride}, p={pad})")
    return out


def _pool_out(h: int, k: int, stride: int, pad: int) -> int:
    # Caffe pooling uses ceil division.
    out = -(-(h + 2 * pad - k) // stride) + 1
    return max(1, out)


def network_from_prototxt(text: str) -> NetworkSpec:
    """Build a :class:`NetworkSpec` from a net prototxt (linear chains)."""
    d = parse_prototxt(text)
    name = d.get("name", "net")
    layers = _as_list(d.get("layer")) or _as_list(d.get("layers"))
    if not layers:
        raise PrototxtError("no layer blocks found")

    # Input shape: input_dim quadruple, input_shape block, or the first
    # Data/Input layer's shape.
    c = h = w = None
    if "input_dim" in d:
        dims = _as_list(d["input_dim"])
        if len(dims) != 4:
            raise PrototxtError("input_dim needs 4 values (N C H W)")
        _, c, h, w = dims
    elif "input_shape" in d:
        dims = _as_list(d["input_shape"]["dim"])
        if len(dims) != 4:
            raise PrototxtError("input_shape needs 4 dims")
        _, c, h, w = dims

    specs: List[LayerSpec] = []
    for layer in layers:
        ltype = str(layer.get("type", "")).lower()
        lname = str(layer.get("name", ltype or "layer"))
        if ltype in ("data", "input", "imagedata"):
            shape = layer.get("input_param", {}).get("shape") \
                or layer.get("shape")
            if shape:
                dims = _as_list(shape["dim"])
                if len(dims) != 4:
                    raise PrototxtError("input shape needs 4 dims")
                _, c, h, w = dims
            continue
        if ltype in ("accuracy", "silence"):
            continue
        if c is None:
            raise PrototxtError(
                "no input shape before the first compute layer "
                "(need input_dim / input_shape / an Input layer)")

        if ltype == "convolution":
            p = layer.get("convolution_param", {})
            cout = p.get("num_output")
            k = p.get("kernel_size")
            if cout is None or k is None:
                raise PrototxtError(
                    f"{lname}: convolution needs num_output+kernel_size")
            stride = p.get("stride", 1)
            pad = p.get("pad", 0)
            h = _conv_out(h, k, stride, pad)
            w = _conv_out(w, k, stride, pad)
            specs.append(conv_spec(lname, c, cout, k, h, w,
                                   bias=p.get("bias_term", True)))
            c = cout
        elif ltype == "innerproduct":
            p = layer.get("inner_product_param", {})
            nout = p.get("num_output")
            if nout is None:
                raise PrototxtError(f"{lname}: needs num_output")
            nin = c * h * w
            specs.append(dense_spec(lname, nin, nout,
                                    bias=p.get("bias_term", True)))
            c, h, w = nout, 1, 1
        elif ltype == "pooling":
            p = layer.get("pooling_param", {})
            k = p.get("kernel_size", 2)
            stride = p.get("stride", k)
            pad = p.get("pad", 0)
            h = _pool_out(h, k, stride, pad)
            w = _pool_out(w, k, stride, pad)
            specs.append(activation_spec(lname, "pool", c * h * w))
        elif ltype == "relu":
            specs.append(activation_spec(lname, "relu", c * h * w))
        elif ltype == "lrn":
            specs.append(activation_spec(lname, "lrn", c * h * w, 5.0))
        elif ltype == "dropout":
            specs.append(activation_spec(lname, "dropout", c * h * w))
        elif ltype in ("softmax", "softmaxwithloss"):
            specs.append(activation_spec(lname, "softmax", c * h * w,
                                         3.0))
        else:
            raise PrototxtError(f"unsupported layer type {ltype!r} "
                                f"({lname})")
    if not specs:
        raise PrototxtError("network has no compute layers")
    input_bytes = None
    # Recover the input tensor size from the declared input shape.
    d2 = parse_prototxt(text)
    if "input_dim" in d2:
        _, ci, hi, wi = _as_list(d2["input_dim"])
        input_bytes = ci * hi * wi * 4
    elif "input_shape" in d2:
        _, ci, hi, wi = _as_list(d2["input_shape"]["dim"])
        input_bytes = ci * hi * wi * 4
    else:
        for layer in layers:
            if str(layer.get("type", "")).lower() in ("data", "input",
                                                      "imagedata"):
                shape = (layer.get("input_param", {}).get("shape")
                         or layer.get("shape"))
                if shape:
                    _, ci, hi, wi = _as_list(shape["dim"])
                    input_bytes = ci * hi * wi * 4
                break
    if input_bytes is None:
        raise PrototxtError("could not determine input tensor size")
    return NetworkSpec(str(name), tuple(specs), input_bytes)
