"""Layer-level cost descriptors for DNN workloads.

Training-time behaviour of the distributed framework depends on exactly
three per-layer quantities: parameter bytes (what data propagation
broadcasts and gradient aggregation reduces), and forward/backward FLOPs
per sample (what the GPU computes between communications).  Layer specs
carry those, derived from first principles:

- conv:    fwd FLOPs = 2 * K*K*Cin * Cout * Hout*Wout  per sample
- dense:   fwd FLOPs = 2 * Nin * Nout                  per sample
- bwd ≈ 2x fwd (grad w.r.t. inputs + grad w.r.t. weights)

Parameter-free layers (pool/ReLU/LRN/concat) contribute compute but no
communication — which is why per-layer multi-stage schemes only post
collectives for parametrized layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["LayerSpec", "conv_spec", "dense_spec", "activation_spec",
           "NetworkSpec"]

BYTES_PER_PARAM = 4  # float32 training throughout the paper
BWD_FWD_RATIO = 2.0


@dataclass(frozen=True)
class LayerSpec:
    """Cost descriptor for one layer."""

    name: str
    kind: str
    param_count: int
    fwd_flops_per_sample: float
    bwd_flops_per_sample: float
    #: Output activation footprint per sample (memory accounting).
    activation_bytes_per_sample: int

    def __post_init__(self):
        if self.param_count < 0:
            raise ValueError("param_count must be >= 0")
        if self.fwd_flops_per_sample < 0 or self.bwd_flops_per_sample < 0:
            raise ValueError("flops must be >= 0")

    @property
    def param_bytes(self) -> int:
        return self.param_count * BYTES_PER_PARAM

    @property
    def has_params(self) -> bool:
        return self.param_count > 0


def conv_spec(name: str, cin: int, cout: int, k: int, hout: int, wout: int,
              *, bias: bool = True) -> LayerSpec:
    """A convolution layer spec from its shape."""
    params = k * k * cin * cout + (cout if bias else 0)
    fwd = 2.0 * k * k * cin * cout * hout * wout
    return LayerSpec(name, "conv", params, fwd, BWD_FWD_RATIO * fwd,
                     cout * hout * wout * BYTES_PER_PARAM)


def dense_spec(name: str, nin: int, nout: int, *, bias: bool = True
               ) -> LayerSpec:
    """A fully-connected layer spec."""
    params = nin * nout + (nout if bias else 0)
    fwd = 2.0 * nin * nout
    return LayerSpec(name, "dense", params, fwd, BWD_FWD_RATIO * fwd,
                     nout * BYTES_PER_PARAM)


def activation_spec(name: str, kind: str, elems: int,
                    flops_per_elem: float = 1.0) -> LayerSpec:
    """A parameter-free layer (pool / ReLU / LRN / concat / softmax)."""
    fwd = flops_per_elem * elems
    return LayerSpec(name, kind, 0, fwd, BWD_FWD_RATIO * fwd,
                     elems * BYTES_PER_PARAM)


@dataclass(frozen=True)
class NetworkSpec:
    """An ordered stack of layer specs (the Net / Model abstraction)."""

    name: str
    layers: Tuple[LayerSpec, ...]
    input_bytes_per_sample: int

    def __post_init__(self):
        if not self.layers:
            raise ValueError("a network needs at least one layer")

    # -- aggregates -----------------------------------------------------------
    @property
    def param_count(self) -> int:
        return sum(l.param_count for l in self.layers)

    @property
    def param_bytes(self) -> int:
        return sum(l.param_bytes for l in self.layers)

    @property
    def fwd_flops_per_sample(self) -> float:
        return sum(l.fwd_flops_per_sample for l in self.layers)

    @property
    def bwd_flops_per_sample(self) -> float:
        return sum(l.bwd_flops_per_sample for l in self.layers)

    def parametrized_layers(self) -> List[LayerSpec]:
        """Layers that participate in communication (have weights)."""
        return [l for l in self.layers if l.has_params]

    def activation_bytes_per_sample(self) -> int:
        return sum(l.activation_bytes_per_sample for l in self.layers)

    def memory_per_solver(self, batch_per_gpu: int) -> int:
        """Device-memory footprint of one solver: weights + gradients +
        parameter staging + activations for the local batch.

        3x parameters: the weights, the gradient buffer, and the packed
        communication buffer Caffe keeps for propagation/aggregation.
        """
        if batch_per_gpu < 1:
            raise ValueError("batch_per_gpu must be >= 1")
        return (3 * self.param_bytes
                + batch_per_gpu * (self.activation_bytes_per_sample()
                                   + self.input_bytes_per_sample))

    def flops_per_iteration(self, batch_per_gpu: int) -> float:
        return batch_per_gpu * (self.fwd_flops_per_sample
                                + self.bwd_flops_per_sample)
