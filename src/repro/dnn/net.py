"""The Net abstraction over real NumPy layers.

Mirrors Caffe's Net class (Section 2.2): an ordered layer stack with a
loss head, exposing exactly the two flat views the distributed framework
communicates — the packed *parameter* vector (data propagation) and the
packed *gradient* vector (gradient aggregation).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .math import (
    Conv2D, Dense, Flatten, Layer, MaxPool2D, ReLU, SoftmaxCrossEntropy,
)

__all__ = ["Net", "build_lenet", "build_cifar10_quick", "build_mlp"]


class Net:
    """An ordered stack of real layers + softmax cross-entropy head."""

    def __init__(self, layers: List[Layer], name: str = "net"):
        if not layers:
            raise ValueError("a net needs at least one layer")
        self.name = name
        self.layers = layers
        self.loss_head = SoftmaxCrossEntropy()

    # -- compute -------------------------------------------------------------
    def forward(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Run the forward pass; returns the mean loss."""
        h = x
        for layer in self.layers:
            h = layer.forward(h)
        return self.loss_head.forward(h, labels)

    def backward(self, global_batch: Optional[int] = None) -> None:
        """Run the backward pass, accumulating parameter gradients.

        ``global_batch`` normalizes gradients for data-parallel shards:
        summing shard gradients then equals the full-batch gradient.
        """
        d = self.loss_head.backward(global_batch)
        for layer in reversed(self.layers):
            d = layer.backward(d)

    def zero_grads(self) -> None:
        for layer in self.layers:
            for g in layer.grads().values():
                g[...] = 0.0

    # -- flat parameter / gradient views ------------------------------------------
    def _items(self) -> List[Tuple[Layer, str]]:
        return [(l, k) for l in self.layers for k in sorted(l.params())]

    @property
    def param_count(self) -> int:
        return sum(l.params()[k].size for l, k in self._items())

    def get_params(self) -> np.ndarray:
        """The packed parameter vector (packed_comm_buffer contents)."""
        return np.concatenate(
            [l.params()[k].ravel() for l, k in self._items()]) \
            if self._items() else np.empty(0)

    def set_params(self, flat: np.ndarray) -> None:
        if flat.size != self.param_count:
            raise ValueError(
                f"expected {self.param_count} params, got {flat.size}")
        off = 0
        for l, k in self._items():
            p = l.params()[k]
            p[...] = flat[off:off + p.size].reshape(p.shape)
            off += p.size

    def get_grads(self) -> np.ndarray:
        """The packed gradient vector (packed_reduction_buffer contents)."""
        return np.concatenate(
            [l.grads()[k].ravel() for l, k in self._items()]) \
            if self._items() else np.empty(0)

    def set_grads(self, flat: np.ndarray) -> None:
        if flat.size != self.param_count:
            raise ValueError(
                f"expected {self.param_count} grads, got {flat.size}")
        off = 0
        for l, k in self._items():
            g = l.grads()[k]
            g[...] = flat[off:off + g.size].reshape(g.shape)
            off += g.size

    def clone(self) -> "Net":
        """A structurally identical net with copied parameters (a fresh
        replica for another solver)."""
        import copy
        other = copy.deepcopy(self)
        other.zero_grads()
        return other


# -- reference builders ---------------------------------------------------------

def build_lenet(rng: Optional[np.random.Generator] = None) -> Net:
    """Real-math LeNet (28x28x1 MNIST shapes)."""
    rng = rng or np.random.default_rng(0)
    return Net([
        Conv2D(1, 20, 5, rng=rng, name="conv1"),
        MaxPool2D(2, name="pool1"),
        Conv2D(20, 50, 5, rng=rng, name="conv2"),
        MaxPool2D(2, name="pool2"),
        Flatten(),
        Dense(50 * 4 * 4, 500, rng=rng, name="ip1"),
        ReLU(name="relu1"),
        Dense(500, 10, rng=rng, name="ip2"),
    ], name="lenet")


def build_cifar10_quick(rng: Optional[np.random.Generator] = None) -> Net:
    """Real-math CIFAR10-quick (32x32x3 shapes)."""
    rng = rng or np.random.default_rng(0)
    return Net([
        Conv2D(3, 32, 5, pad=2, rng=rng, name="conv1"),
        MaxPool2D(2, name="pool1"),
        ReLU(name="relu1"),
        Conv2D(32, 32, 5, pad=2, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2D(2, name="pool2"),
        Conv2D(32, 64, 5, pad=2, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        MaxPool2D(2, name="pool3"),
        Flatten(),
        Dense(64 * 4 * 4, 64, rng=rng, name="ip1"),
        Dense(64, 10, rng=rng, name="ip2"),
    ], name="cifar10_quick")


def build_mlp(sizes: List[int],
              rng: Optional[np.random.Generator] = None) -> Net:
    """A small MLP for fast property-based tests."""
    if len(sizes) < 2:
        raise ValueError("need input and output sizes")
    rng = rng or np.random.default_rng(0)
    layers: List[Layer] = []
    for i, (a, b) in enumerate(zip(sizes, sizes[1:])):
        layers.append(Dense(a, b, rng=rng, name=f"fc{i}"))
        if i < len(sizes) - 2:
            layers.append(ReLU(name=f"relu{i}"))
    return Net(layers, name="mlp")
