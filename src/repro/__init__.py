"""S-Caffe reproduction.

A from-scratch reproduction of *S-Caffe: Co-designing MPI Runtimes and
Caffe for Scalable Deep Learning on Modern GPU Clusters* (PPoPP 2017) on
a simulated multi-GPU cluster.

Layering (bottom to top):

- :mod:`repro.sim` — discrete-event simulation kernel.
- :mod:`repro.hardware` — GPUs, nodes, NICs, cluster topologies.
- :mod:`repro.cuda` — simulated CUDA runtime (buffers, streams, kernels).
- :mod:`repro.mpi` — simulated CUDA-aware MPI (pt2pt, collectives, HR).
- :mod:`repro.io` — LMDB / Lustre / parallel data readers.
- :mod:`repro.dnn` — network cost specs + a real NumPy training engine.
- :mod:`repro.core` — Caffe baseline, S-Caffe co-designs, comparators.
- :mod:`repro.analysis` — the Section-5 analytic model and reporting.
"""

__version__ = "1.0.0"

from .core import TrainConfig, TrainingReport, train  # noqa: E402
from .hardware import cluster_a, cluster_b, make_cluster  # noqa: E402
from .sim import Simulator  # noqa: E402

__all__ = [
    "__version__",
    "TrainConfig", "TrainingReport", "train",
    "cluster_a", "cluster_b", "make_cluster",
    "Simulator",
]
