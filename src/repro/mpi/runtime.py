"""The MPI runtime: owns the transport, spawns SPMD rank programs."""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..cuda import CudaRuntime
from ..hardware import Cluster
from ..hardware.gpu import GPUDevice
from ..sim import Process, Simulator
from .communicator import Communicator
from .failure import FailureDetector
from .profiles import MPIProfile, MV2GDR, get_profile
from .transport import DeviceTransport

__all__ = ["MPIRuntime"]


class MPIRuntime:
    """A simulated CUDA-aware MPI runtime bound to a cluster.

    Parameters
    ----------
    cluster:
        The hardware to run on.
    profile:
        Mechanism profile (``mv2gdr``/``mv2``/``openmpi``) — an
        :class:`~repro.mpi.profiles.MPIProfile` or its name.
    """

    def __init__(self, cluster: Cluster,
                 profile: MPIProfile | str = MV2GDR):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.cal = cluster.cal
        self.profile = (get_profile(profile) if isinstance(profile, str)
                        else profile)
        self.cuda = CudaRuntime(cluster)
        self.transport = DeviceTransport(cluster, self.cuda, self.profile)
        self.failure_detector = FailureDetector(self.sim)
        #: Collective watchdog (:class:`~repro.mpi.watchdog.
        #: CollectiveWatchdog`); None until a fault-aware caller attaches
        #: one via :meth:`ensure_watchdog` — an unattached watchdog costs
        #: nothing and keeps quiet runs event-identical.
        self.watchdog = None

    def ensure_watchdog(self):
        """Attach (or return the existing) collective watchdog."""
        if self.watchdog is None:
            from .watchdog import CollectiveWatchdog
            self.watchdog = CollectiveWatchdog(self)
        return self.watchdog

    def set_profile(self, profile: MPIProfile) -> None:
        """Swap the mechanism profile (MPI_T cvar writes land here).

        Rank contexts snapshot the profile when created, so the new
        knobs apply to contexts (and pt2pt operations, which read
        ``runtime.profile`` live) created after the swap — the MPI_T
        contract for control-variable writes.
        """
        self.profile = profile
        self.transport.profile = profile

    def world(self, gpus: Optional[Sequence[GPUDevice] | int] = None
              ) -> Communicator:
        """COMM_WORLD over ``gpus`` (a list, a count, or the full cluster).

        An integer selects the first N GPUs in block order — one MPI
        process per GPU, matching the paper's launch configuration.
        """
        if gpus is None:
            members = list(self.cluster.gpus)
        elif isinstance(gpus, int):
            members = self.cluster.gpus_for_job(gpus)
        else:
            members = list(gpus)
        return Communicator(self, members, name="world")

    def spawn(self, comm: Communicator,
              program: Callable[..., Generator], *args, **kwargs
              ) -> List[Process]:
        """Start ``program(ctx, *args, **kwargs)`` on every rank of
        ``comm``; returns the rank processes (each is awaitable)."""
        procs = []
        for r in range(comm.size):
            ctx = comm.context(r)
            procs.append(self.sim.process(
                program(ctx, *args, **kwargs),
                name=f"{comm.name}.rank{r}"))
        return procs

    def execute(self, comm: Communicator,
                program: Callable[..., Generator], *args, **kwargs
                ) -> List[Any]:
        """Spawn + run the simulator to completion; returns per-rank
        return values (convenience for tests and micro-benchmarks)."""
        procs = self.spawn(comm, program, *args, **kwargs)
        self.sim.run()
        return [p.value for p in procs]
