"""One-sided (RMA) operations: windows, Put/Get, fences, locks.

Section 2.3 notes CUDA-aware MPI covers "point-to-point, one-sided, and
collective operations", and Section 5 describes the chunked chain as
"essentially a single-sided pipeline".  This module provides the
one-sided primitives over the same device transport the rest of the
runtime uses:

- :class:`Window` — a communicator-wide registration of one device
  buffer per rank (MPI_Win_create).  Created collectively via
  :func:`create_window`; attachment completes at the first fence.
- ``put`` / ``get`` — direct remote writes/reads, moving bytes over the
  profile's transport (GDR / IPC / staging) without the target's
  participation.
- ``fence`` — collective synchronization (MPI_Win_fence).
- ``lock`` / ``unlock`` — passive-target exclusive access per rank.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

from ..cuda import DeviceBuffer
from ..sim import Barrier, Event, Mutex
from .communicator import Communicator, RankContext

__all__ = ["Window", "create_window"]


class Window:
    """A one-sided access epoch over per-rank device buffers."""

    def __init__(self, comm: Communicator, name: str):
        self.comm = comm
        self.name = name
        self._buffers: Dict[int, DeviceBuffer] = {}
        self._fence = Barrier(comm.sim, comm.size)
        self._locks = {r: Mutex(comm.sim) for r in range(comm.size)}
        self._lock_grants: Dict[tuple, bool] = {}

    # -- setup ---------------------------------------------------------------
    def attach(self, rank: int, buf: DeviceBuffer) -> None:
        if rank in self._buffers:
            raise ValueError(f"rank {rank} already attached to "
                             f"window {self.name!r}")
        self._buffers[rank] = buf

    def buffer_of(self, rank: int) -> DeviceBuffer:
        try:
            return self._buffers[rank]
        except KeyError:
            raise ValueError(
                f"rank {rank} has not attached a buffer to window "
                f"{self.name!r} (missing fence after create_window?)"
            ) from None

    # -- synchronization ------------------------------------------------------
    def fence(self, ctx: RankContext) -> Generator[Event, Any, None]:
        """Collective epoch boundary (all ranks must call)."""
        yield from ctx.barrier()
        yield self._fence.arrive()

    def lock(self, ctx: RankContext, target: int
             ) -> Generator[Event, Any, None]:
        """Exclusive passive-target lock on ``target``'s window."""
        key = (ctx.rank, target)
        if self._lock_grants.get(key):
            raise RuntimeError(f"rank {ctx.rank} already holds the lock "
                               f"on {target}")
        yield self._locks[target].acquire()
        self._lock_grants[key] = True

    def unlock(self, ctx: RankContext, target: int) -> None:
        key = (ctx.rank, target)
        if not self._lock_grants.pop(key, False):
            raise RuntimeError(f"rank {ctx.rank} does not hold the lock "
                               f"on {target}")
        self._locks[target].release()

    # -- data movement -----------------------------------------------------------
    def put(self, ctx: RankContext, target: int, src: DeviceBuffer, *,
            nbytes: Optional[int] = None, src_offset: int = 0,
            target_offset: int = 0) -> Generator[Event, Any, None]:
        """Write ``src`` bytes into ``target``'s window buffer.

        Completes locally when the transfer finishes (origin-side
        completion; remote visibility is guaranteed by the next fence or
        unlock, which these semantics subsume because the transfer is
        synchronous in simulated time).
        """
        dst = self.buffer_of(target)
        n = (min(src.nbytes - src_offset, dst.nbytes - target_offset)
             if nbytes is None else nbytes)
        yield from ctx.runtime.transport.transfer(
            src, dst, n, src_offset=src_offset, dst_offset=target_offset)

    def get(self, ctx: RankContext, target: int, dst: DeviceBuffer, *,
            nbytes: Optional[int] = None, target_offset: int = 0,
            dst_offset: int = 0) -> Generator[Event, Any, None]:
        """Read from ``target``'s window buffer into ``dst``."""
        src = self.buffer_of(target)
        n = (min(src.nbytes - target_offset, dst.nbytes - dst_offset)
             if nbytes is None else nbytes)
        yield from ctx.runtime.transport.transfer(
            src, dst, n, src_offset=target_offset, dst_offset=dst_offset)


def create_window(ctx: RankContext, buf: DeviceBuffer,
                  name: str = "win") -> Window:
    """Collectively create (or join) a window and attach this rank's
    buffer.  All ranks must call with the same ``name``, then fence
    before any put/get targets them::

        win = create_window(ctx, my_buf)
        yield from win.fence(ctx)
        yield from win.put(ctx, target, my_buf)
    """
    registry = getattr(ctx.comm, "_windows", None)
    if registry is None:
        registry = ctx.comm._windows = {}
    win = registry.get(name)
    if win is None:
        win = registry[name] = Window(ctx.comm, name)
    win.attach(ctx.rank, buf)
    return win
