"""Communicators, rank contexts, and the point-to-point engine.

Rank programs are SPMD generators: the runtime runs one sim process per
rank, and each process calls ``yield from`` on collective/pt2pt
sub-protocols with its own :class:`RankContext`.  Matching follows MPI
semantics — per-communicator FIFO matching on ``(source, tag)`` with
``ANY_SOURCE``/``ANY_TAG`` wildcards, eager completion for small messages
and rendezvous for large ones.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, Generator, List, NamedTuple, Optional, Tuple

import numpy as np

from ..cuda import CudaRuntime, DeviceBuffer
from ..hardware.gpu import GPUDevice
from ..sim import Barrier, Event, Interrupt, Simulator
from .failure import CommRevoked, RankFailure
from .profiles import MPIProfile
from .request import ANY_SOURCE, ANY_TAG, Request
from .transport import TransportTimeout

__all__ = ["Communicator", "RankContext", "MessageStatus"]


class MessageStatus(NamedTuple):
    """Receive-completion status (matched envelope)."""

    source: int
    tag: int
    nbytes: int


class _PendingSend:
    __slots__ = ("src_rank", "tag", "buf", "offset", "nbytes", "request",
                 "eager", "snapshot")

    def __init__(self, src_rank: int, tag: int, buf: DeviceBuffer,
                 offset: int, nbytes: int, request: Request, eager: bool,
                 snapshot: Optional[np.ndarray] = None):
        self.src_rank = src_rank
        self.tag = tag
        self.buf = buf
        self.offset = offset
        self.nbytes = nbytes
        self.request = request
        self.eager = eager
        # Eager sends complete locally before the transfer runs, so the
        # payload must be captured at send time (the caller may legally
        # reuse the buffer once the request completes).
        self.snapshot = snapshot


class _PostedRecv:
    __slots__ = ("source", "tag", "buf", "offset", "max_nbytes", "request")

    def __init__(self, source: int, tag: int, buf: DeviceBuffer,
                 offset: int, max_nbytes: int, request: Request):
        self.source = source
        self.tag = tag
        self.buf = buf
        self.offset = offset
        self.max_nbytes = max_nbytes
        self.request = request


class Communicator:
    """A group of ranks mapped onto GPUs, with its own matching space.

    Sub-communicators created by :meth:`split` translate their local rank
    numbering onto the parent's GPUs; the HR designs build their
    multi-level communicators this way (Section 5).
    """

    _ids = itertools.count()

    def __init__(self, runtime: "MPIRuntime", gpus: List[GPUDevice],
                 name: str = "world"):
        if not gpus:
            raise ValueError("communicator needs at least one rank")
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.gpus = list(gpus)
        self.name = name
        self.id = next(self._ids)
        # Per-destination-rank matching state.
        self._unexpected: Dict[int, deque] = {
            r: deque() for r in range(len(gpus))}
        self._posted: Dict[int, deque] = {
            r: deque() for r in range(len(gpus))}
        self._barrier = Barrier(self.sim, len(gpus))
        # Collective sequence numbers (tag reservations); pre-created so
        # the per-collective hot path skips the lazy-init hasattr.
        self._coll_seq = [0] * len(gpus)
        self._revoked: Optional[BaseException] = None
        self._shrunk: Dict[Tuple[int, ...], "Communicator"] = {}
        # Matched pairs whose transfer is in flight (mover process ->
        # (send, recv)).  Queued operations live in _posted/_unexpected;
        # once matched they exist only here, and revoke() must fail them
        # too — a transfer parked on a stalled link never completes on
        # its own, and ULFM revocation promises *every* pending
        # operation errors out.
        self._inflight: Dict[Any, Tuple[_PendingSend, _PostedRecv]] = {}
        runtime.failure_detector.register_comm(self)

    @property
    def size(self) -> int:
        return len(self.gpus)

    @property
    def revoked(self) -> bool:
        return self._revoked is not None

    # -- fault tolerance (ULFM flavour) ------------------------------------
    def revoke(self, exc: BaseException) -> None:
        """Invalidate the communicator after a rank failure.

        Every posted receive and pending (non-eager) send fails with
        :class:`CommRevoked`, the barrier is broken, and all future
        pt2pt entry calls fail fast — survivors blocked on a dead peer
        unwind into their recovery path instead of deadlocking.
        Idempotent.
        """
        if self._revoked is not None:
            return
        wrapped = CommRevoked(f"communicator {self.name} revoked ({exc})")
        wrapped.__cause__ = exc
        self._revoked = wrapped
        for q in self._posted.values():
            for recv in q:
                if not recv.request.completed:
                    recv.request.fail(wrapped)
            q.clear()
        for q in self._unexpected.values():
            for send in q:
                if not send.eager and not send.request.completed:
                    send.request.fail(wrapped)
            q.clear()
        # Matched pairs mid-transfer: fail their requests and interrupt
        # the mover — a transfer parked on a stalled link would
        # otherwise hold its receiver hostage forever, invisible to the
        # queue sweeps above.
        for proc, (send, recv) in list(self._inflight.items()):
            if not send.eager and not send.request.completed:
                send.request.fail(wrapped)
            if not recv.request.completed:
                recv.request.fail(wrapped)
            if proc.is_alive:
                proc.interrupt(wrapped)
        self._inflight.clear()
        self._barrier.abort(wrapped)

    def shrink(self) -> "Communicator":
        """A communicator over the surviving ranks (MPIX_Comm_shrink).

        Survivor order follows this communicator's rank order, so every
        caller derives the same numbering.  Results are cached by
        membership: concurrent recovery on all survivors agrees on one
        replacement communicator.  Returns ``self`` when nothing died
        and the communicator is not revoked.
        """
        det = self.runtime.failure_detector
        alive = [r for r, g in enumerate(self.gpus) if not det.is_dead(g)]
        if len(alive) == self.size and self._revoked is None:
            return self
        if not alive:
            raise RankFailure(f"communicator {self.name}: no survivors")
        key = tuple(alive)
        cached = self._shrunk.get(key)
        if cached is not None and not cached.revoked:
            return cached
        sub = self.split(alive, name=f"{self.name}~{len(alive)}")
        self._shrunk[key] = sub
        return sub

    def gpu_of(self, rank: int) -> GPUDevice:
        return self.gpus[rank]

    def context(self, rank: int) -> "RankContext":
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return RankContext(self, rank)

    def split(self, members: List[int], name: str = "") -> "Communicator":
        """Sub-communicator over ``members`` (parent rank ids, ordered).

        The member at position *i* becomes rank *i* of the new
        communicator (MPI_Comm_split with explicit ordering).
        """
        if len(set(members)) != len(members):
            raise ValueError("duplicate ranks in split")
        gpus = [self.gpus[r] for r in members]
        return Communicator(self.runtime, gpus,
                            name=name or f"{self.name}.split{len(members)}")

    # -- matching engine ------------------------------------------------------
    def _match_recv(self, dst: int, recv: _PostedRecv) -> Optional[_PendingSend]:
        q = self._unexpected[dst]
        for i, send in enumerate(q):
            if ((recv.source in (ANY_SOURCE, send.src_rank))
                    and (recv.tag in (ANY_TAG, send.tag))):
                del q[i]
                return send
        return None

    def _match_send(self, dst: int, send: _PendingSend) -> Optional[_PostedRecv]:
        q = self._posted[dst]
        for i, recv in enumerate(q):
            if ((recv.source in (ANY_SOURCE, send.src_rank))
                    and (recv.tag in (ANY_TAG, send.tag))):
                del q[i]
                return recv
        return None

    def _start_transfer(self, send: _PendingSend, recv: _PostedRecv,
                        dst_rank: int) -> None:
        if send.nbytes > recv.max_nbytes:
            exc = RuntimeError(
                f"message truncation: {send.nbytes} > {recv.max_nbytes} "
                f"(comm {self.name}, {send.src_rank}->{dst_rank}, "
                f"tag {send.tag})")
            recv.request.fail(exc)
            if not send.eager:
                send.request.fail(exc)
            return

        transport = self.runtime.transport

        # Registration cell: filled after the (eager) spawn returns, so
        # a mover that somehow finishes inline deregisters a no-op.
        hold: List[Any] = []

        def mover():
            try:
                # The eager-send snapshot rides down as the transfer's
                # payload so delivery (and the integrity verify) happen
                # in one place, inside the transport.
                yield from transport.transfer(
                    send.buf, recv.buf, send.nbytes,
                    src_offset=send.offset, dst_offset=recv.offset,
                    payload=send.snapshot)
            except TransportTimeout as exc:
                # Deliver through the requests instead of crashing the
                # simulation from an unwaited mover process.
                if not send.eager and not send.request.completed:
                    send.request.fail(exc)
                if not recv.request.completed:
                    recv.request.fail(exc)
                return
            except Interrupt:
                # Revocation killed this in-flight transfer (it may be
                # parked on a stalled link and would never finish on its
                # own); revoke() already failed both requests.
                return
            finally:
                if hold:
                    self._inflight.pop(hold[0], None)
            status = MessageStatus(send.src_rank, send.tag, send.nbytes)
            # Revocation may have failed the requests while the bytes
            # were in flight; completion is then a no-op.
            if not send.eager and not send.request.completed:
                send.request.complete(status)
            if not recv.request.completed:
                recv.request.complete(status)

        # Eager: the mover runs inline to its first link hold / wire
        # timeout, skipping the spawn kick (it touches only the
        # transfer's own links, and completion always crosses at least
        # one timeout, so the caller never observes a finished request
        # out of thin air).
        proc = self.sim.process(mover(), name=f"{self.name}.xfer",
                                eager=True)
        if proc.is_alive:
            hold.append(proc)
            self._inflight[proc] = (send, recv)

    # -- pt2pt entry points ------------------------------------------------------
    def isend(self, src_rank: int, dst_rank: int, buf: DeviceBuffer,
              *, tag: int = 0, offset: int = 0,
              nbytes: Optional[int] = None) -> Request:
        if not 0 <= dst_rank < self.size:
            raise ValueError(f"bad destination rank {dst_rank}")
        if tag < 0:
            raise ValueError("send tag must be >= 0")
        n = buf.nbytes - offset if nbytes is None else nbytes
        chk = self.sim.checker
        if chk is not None:
            chk.on_send(self, src_rank, dst_rank, tag, n)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_send(self, tag, n)
        # Tuple label: formatted only if an error message needs it.
        req = Request(self.sim, label=("isend", src_rank, dst_rank, tag))
        if self._revoked is not None:
            req.fail(self._revoked)
            return req
        det = self.runtime.failure_detector
        if det.any_dead() and det.is_dead(self.gpus[dst_rank]):
            req.fail(RankFailure(
                f"send to dead rank {dst_rank} on {self.name}"))
            return req
        profile = self.runtime.profile
        eager = n <= profile.eager_threshold
        snapshot = None
        if eager and buf.has_data:
            snapshot = buf.data.view(np.uint8)[offset:offset + n].copy()
        send = _PendingSend(src_rank, tag, buf, offset, n, req, eager,
                            snapshot)
        if eager:
            # Sender-side completion is local: inject-and-forget.  A bare
            # timeout callback (no process) keeps this off the scheduler's
            # hot path — one event instead of a kick + resume pair.
            def eager_complete(_t):
                if not req.completed:  # revocation may beat us here
                    req.complete(MessageStatus(src_rank, tag, n))
            self.sim.timeout(
                self.runtime.cal.mpi_message_overhead
            ).add_callback(eager_complete)
        recv = self._match_send(dst_rank, send)
        if recv is not None:
            self._start_transfer(send, recv, dst_rank)
        else:
            self._unexpected[dst_rank].append(send)
            if tel is not None:
                tel.on_queue_depth("unexpected",
                                   len(self._unexpected[dst_rank]))
        return req

    def irecv(self, dst_rank: int, source: int, buf: DeviceBuffer,
              *, tag: int = ANY_TAG, offset: int = 0,
              nbytes: Optional[int] = None) -> Request:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ValueError(f"bad source rank {source}")
        n = buf.nbytes - offset if nbytes is None else nbytes
        chk = self.sim.checker
        if chk is not None:
            chk.on_recv_post(self, dst_rank, source, tag, n)
        req = Request(self.sim, label=("irecv", source, dst_rank, tag))
        if self._revoked is not None:
            req.fail(self._revoked)
            return req
        det = self.runtime.failure_detector
        if (source != ANY_SOURCE and det.any_dead()
                and det.is_dead(self.gpus[source])):
            req.fail(RankFailure(
                f"recv from dead rank {source} on {self.name}"))
            return req
        recv = _PostedRecv(source, tag, buf, offset, n, req)
        send = self._match_recv(dst_rank, recv)
        if send is not None:
            self._start_transfer(send, recv, dst_rank)
        else:
            self._posted[dst_rank].append(recv)
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_queue_depth("posted", len(self._posted[dst_rank]))
        return req


class RankContext:
    """Everything a rank program needs: identity, pt2pt, scratch memory."""

    def __init__(self, comm: Communicator, rank: int):
        self.comm = comm
        self.rank = rank
        self.sim: Simulator = comm.sim
        self.gpu: GPUDevice = comm.gpu_of(rank)
        self.runtime: "MPIRuntime" = comm.runtime
        self.cuda: CudaRuntime = comm.runtime.cuda
        self.profile: MPIProfile = comm.runtime.profile

    @property
    def size(self) -> int:
        return self.comm.size

    # -- pt2pt (bound to this rank) --------------------------------------------
    def isend(self, dst: int, buf: DeviceBuffer, **kw) -> Request:
        return self.comm.isend(self.rank, dst, buf, **kw)

    def irecv(self, source: int, buf: DeviceBuffer, **kw) -> Request:
        return self.comm.irecv(self.rank, source, buf, **kw)

    def send(self, dst: int, buf: DeviceBuffer, **kw
             ) -> Generator[Event, Any, Any]:
        req = self.isend(dst, buf, **kw)
        result = yield req.wait()
        return result

    def recv(self, source: int, buf: DeviceBuffer, **kw
             ) -> Generator[Event, Any, Any]:
        req = self.irecv(source, buf, **kw)
        result = yield req.wait()
        return result

    def barrier(self) -> Generator[Event, Any, None]:
        """Synchronize all ranks of the communicator.

        Charged a dissemination-style latency of ceil(log2(P)) network
        hops on top of the rendezvous.
        """
        import math
        hops = max(1, math.ceil(math.log2(max(2, self.size))))
        rec = self.sim.recorder
        if rec is None:
            yield self.sim.timeout(hops * self.runtime.cal.ib_latency)
            yield self.comm._barrier.arrive()
            return
        sid = rec.open("overhead", label=f"{self.comm.name}.barrier.hops")
        yield self.sim.timeout(hops * self.runtime.cal.ib_latency)
        rec.close(sid)
        # The wait-for-last-arrival interval is attributed explicitly so
        # barrier skew shows up as "barrier", not an anonymous gap.
        sid = rec.open("barrier", label=self.comm.name)
        try:
            yield self.comm._barrier.arrive()
        finally:
            rec.close(sid)

    # -- scratch device memory -----------------------------------------------------
    def scratch_like(self, buf: DeviceBuffer, name: str = "scratch"
                     ) -> DeviceBuffer:
        """Temporary device buffer shaped like ``buf`` (payload iff buf has
        payload), on this rank's GPU."""
        if buf.has_data:
            out = DeviceBuffer(self.gpu, buf.nbytes,
                               np.zeros_like(buf.data), name=name)
        else:
            out = DeviceBuffer(self.gpu, buf.nbytes, name=name)
        chk = self.sim.checker
        if chk is not None:
            # Scratch must be freed by the collective that allocated it;
            # user buffers (allocated directly) may legitimately outlive
            # the run, so only these are leak-checked.
            chk.on_scratch(out)
        return out

    def sub_context(self, comm: Communicator) -> Optional["RankContext"]:
        """This rank's context in a sub-communicator (None if not a member).

        Membership is by GPU identity, which is unambiguous because a GPU
        hosts exactly one rank in this runtime.
        """
        for r, g in enumerate(comm.gpus):
            if g is self.gpu:
                return comm.context(r)
        return None
