"""OSU Micro-Benchmarks (OMB) suite over the simulated runtime.

The paper's Section 6.5 evaluation is performed "using the OMB suite";
this module is its equivalent for the simulated stack: point-to-point
latency/bandwidth and collective-latency micro-benchmarks, each run on
a fresh cluster with warm-started steady-state semantics (deterministic
simulation makes one measured run exact).

All functions return seconds (latency) or bytes/second (bandwidth).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..cuda import DeviceBuffer
from ..hardware import Cluster
from .profiles import MPIProfile, MV2GDR
from .runtime import MPIRuntime

__all__ = ["osu_latency", "osu_bw", "osu_bcast", "osu_reduce",
           "osu_allreduce", "sweep"]

ClusterFactory = Callable[[], Cluster]


def _run(cluster_factory: ClusterFactory, profile, n_ranks, program_fn):
    cluster = cluster_factory()
    rt = MPIRuntime(cluster, profile)
    comm = rt.world(n_ranks)
    results = rt.execute(comm, program_fn)
    return results


def osu_latency(cluster_factory: ClusterFactory, nbytes: int, *,
                profile: MPIProfile | str = MV2GDR,
                ranks: Sequence[int] = (0, 1),
                iterations: int = 4) -> float:
    """osu_latency: mean one-way time of a ping-pong between two GPUs.

    ``ranks`` selects which two world ranks play (e.g. ``(0, 16)`` for a
    cross-node pair on Cluster-A).
    """
    if len(ranks) != 2 or ranks[0] == ranks[1]:
        raise ValueError("osu_latency needs two distinct ranks")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    a, b = ranks

    def program(ctx):
        if ctx.rank not in (a, b):
            return None
        buf = DeviceBuffer(ctx.gpu, nbytes)
        peer = b if ctx.rank == a else a
        t0 = ctx.sim.now
        for i in range(iterations):
            if ctx.rank == a:
                yield from ctx.send(peer, buf, tag=2 * i)
                yield from ctx.recv(peer, buf, tag=2 * i + 1)
            else:
                yield from ctx.recv(peer, buf, tag=2 * i)
                yield from ctx.send(peer, buf, tag=2 * i + 1)
        if ctx.rank == a:
            return (ctx.sim.now - t0) / (2 * iterations)

    n_ranks = max(a, b) + 1
    results = _run(cluster_factory, profile, n_ranks, program)
    return results[a]


def osu_bw(cluster_factory: ClusterFactory, nbytes: int, *,
           profile: MPIProfile | str = MV2GDR,
           ranks: Sequence[int] = (0, 1), window: int = 8) -> float:
    """osu_bw: streaming bandwidth with ``window`` messages in flight."""
    if window < 1:
        raise ValueError("window must be >= 1")
    a, b = ranks

    def program(ctx):
        if ctx.rank not in (a, b):
            return None
        peer = b if ctx.rank == a else a
        bufs = [DeviceBuffer(ctx.gpu, nbytes) for _ in range(window)]
        t0 = ctx.sim.now
        if ctx.rank == a:
            reqs = [ctx.isend(peer, bufs[i], tag=i)
                    for i in range(window)]
            for r in reqs:
                yield r.wait()
            # Wait for the ack closing the window.
            yield from ctx.recv(peer, bufs[0], tag=999, nbytes=4)
            return window * nbytes / (ctx.sim.now - t0)
        reqs = [ctx.irecv(peer, bufs[i], tag=i) for i in range(window)]
        for r in reqs:
            yield r.wait()
        yield from ctx.send(peer, bufs[0], tag=999, nbytes=4)

    n_ranks = max(a, b) + 1
    results = _run(cluster_factory, profile, n_ranks, program)
    return results[a]


def _collective_latency(cluster_factory, nbytes, n_ranks, profile,
                        body) -> float:
    def program(ctx):
        sendbuf = DeviceBuffer(ctx.gpu, nbytes)
        recvbuf = DeviceBuffer(ctx.gpu, nbytes)
        t0 = ctx.sim.now
        yield from body(ctx, sendbuf, recvbuf)
        return ctx.sim.now - t0

    results = _run(cluster_factory, profile, n_ranks, program)
    return max(results)


def osu_bcast(cluster_factory: ClusterFactory, nbytes: int, n_ranks: int,
              *, profile: MPIProfile | str = MV2GDR,
              algorithm: str = "binomial") -> float:
    """osu_bcast: full-communicator broadcast latency."""
    from .collectives import bcast

    def body(ctx, sendbuf, recvbuf):
        yield from bcast(ctx, sendbuf, 0, algorithm=algorithm)

    return _collective_latency(cluster_factory, nbytes, n_ranks, profile,
                               body)


def osu_reduce(cluster_factory: ClusterFactory, nbytes: int, n_ranks: int,
               *, profile: MPIProfile | str = MV2GDR,
               design: str = "tuned") -> float:
    """osu_reduce: reduce-to-root latency under a named design
    ("tuned" | "flat" | "chain" | HR labels like "CB-8"/"CCB-8")."""
    from .collectives import (
        hierarchical_reduce, reduce_binomial, reduce_chain, tuned_reduce,
    )

    def body(ctx, sendbuf, recvbuf):
        out = recvbuf if ctx.rank == 0 else None
        if design == "tuned":
            yield from tuned_reduce(ctx, sendbuf, out, 0)
        elif design == "flat":
            yield from reduce_binomial(ctx, sendbuf, out, 0)
        elif design == "chain":
            yield from reduce_chain(ctx, sendbuf, out, 0)
        else:
            yield from hierarchical_reduce(ctx, sendbuf, out, 0,
                                           config=design)

    return _collective_latency(cluster_factory, nbytes, n_ranks, profile,
                               body)


def osu_allreduce(cluster_factory: ClusterFactory, nbytes: int,
                  n_ranks: int, *, profile: MPIProfile | str = MV2GDR,
                  algorithm: str = "ring") -> float:
    """osu_allreduce latency."""
    from .collectives import allreduce

    def body(ctx, sendbuf, recvbuf):
        yield from allreduce(ctx, sendbuf, recvbuf, algorithm=algorithm)

    return _collective_latency(cluster_factory, nbytes, n_ranks, profile,
                               body)


def sweep(bench: Callable[..., float], sizes: Sequence[int],
          **kwargs) -> Dict[int, float]:
    """Run a micro-benchmark across message sizes."""
    return {s: bench(nbytes=s, **kwargs) for s in sizes}
