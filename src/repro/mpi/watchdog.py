"""Collective watchdogs: stalls become typed timeouts, never hangs.

A :class:`~repro.faults.plan.StallLink` fault (or any real-world
analogue: a wedged HCA, a lost completion) parks transfers forever —
the one failure mode the transport's bounded retry loop cannot convert
into an error, because no attempt ever *fails*.  The watchdog closes
that gap: a single monitor process wakes on a deadline derived from the
analytical cost model and, when the simulation has made **zero**
progress across a full window while rank processes are still alive,
escalates:

1. **suspects first** — stall faults flagged with an attributable GPU
   are treated as that rank's death (interrupt + ``mark_dead``), which
   reuses the existing ULFM revoke → shrink → checkpoint-restart path,
   so training completes at n−1 instead of deadlocking;
2. **revoke-all** — with no attributable rank, every communicator is
   revoked with :class:`CollectiveTimeout`, unwinding survivors into a
   clean typed error;
3. **hard interrupt** — if a further full window still shows no
   progress, any process still alive is interrupted with the timeout
   directly.  The run *ends*, with typed errors, unconditionally.

The zero-progress test (an empty event schedule at the instant the
monitor's own wake has been consumed) makes the deadline a
detection-latency knob rather than a correctness knob: a
slow-but-progressing collective always has a future event scheduled and
is never killed, so a conservative window cannot cause false positives.

The watchdog also carries the *degraded-mode* flag consulted by
``tuned_reduce``: once the injector flags a straggler (degraded link or
throttled GPU), plan selection falls back to the topology-avoiding
binomial tree instead of chain/hierarchical schedules whose pipelines
serialize on the slow component.

Quiet-plan neutrality: an unarmed watchdog spawns no process and adds
zero simulated events; :class:`~repro.core.scaffe.SCaffeJob` arms it
only for plans that contain a stall.
"""

from __future__ import annotations

import math
from typing import Any, Generator, List, Optional, Set

from ..faults.plan import CrashRank
from ..sim import Event

__all__ = ["CollectiveTimeout", "CollectiveWatchdog"]


class CollectiveTimeout(RuntimeError):
    """A collective exceeded its watchdog deadline (stall, not failure)."""


class CollectiveWatchdog:
    """One per-job monitor converting indefinite stalls into typed errors.

    ``multiplier`` scales the model-derived completion estimate;
    ``slack`` absorbs constant overheads the closed form does not see.
    Both err generous: the zero-progress gate does the precise work.
    """

    def __init__(self, runtime, *, multiplier: float = 4.0,
                 slack: float = 0.02):
        self.runtime = runtime
        self.sim = runtime.sim
        self.multiplier = multiplier
        self.slack = slack
        #: Degraded components flagged by the injector (link targets /
        #: GPU indices).  Non-empty => ``tuned_reduce`` degrades to the
        #: topology-avoiding binomial tree.
        self.stragglers: Set = set()
        #: GPUs suspected of owning a stalled link (escalation step 1).
        self.stall_suspects: List = []
        #: Telemetry: deadline windows that fired (zero progress seen).
        self.timeouts = 0
        #: Telemetry: escalation actions taken (suspect kills,
        #: revoke-alls, hard interrupts).
        self.escalations = 0
        self.armed = False
        #: Optional :class:`~repro.obs.FlightRecorder`: every timeout /
        #: escalation step is noted, and escalations dump the ring as a
        #: post-mortem (purely passive — notes never schedule events).
        self.flight = None
        self._procs: List = []
        self._gpus: List = []
        self._window = 0.0
        self._escalated = False

    # -- flags (called by the injector) -------------------------------------
    @property
    def degraded_mode(self) -> bool:
        return bool(self.stragglers)

    def flag_straggler(self, key) -> None:
        """Record a degraded component; collective tuning consults this."""
        self.stragglers.add(key)

    def flag_stalled(self, gpu) -> None:
        """Record a stall suspect (None for NIC stalls, which have no
        single attributable rank)."""
        if gpu is not None:
            self.stall_suspects.append(gpu)

    # -- deadlines -----------------------------------------------------------
    def window_for(self, gpus, nbytes: int) -> float:
        """Watchdog window for a collective over ``gpus`` moving
        ``nbytes``: the analytical binomial-tree bound times a safety
        multiplier, plus the transport's full retry budget, the failure
        detector's latency, and a constant slack.  Deliberately
        generous — the zero-progress gate keeps it from ever killing a
        slow collective that is still moving.
        """
        P = len(gpus)
        n = max(int(nbytes), 1)
        est = 0.0
        if P > 1:
            est = max(self.runtime.transport.estimate(gpus[0], g, n)
                      for g in gpus[1:])
        rounds = max(1, math.ceil(math.log2(max(2, P))))
        tr = self.runtime.transport
        retry_budget = sum(min(tr.RETRY_BASE * (2 ** i), tr.RETRY_MAX)
                           for i in range(tr.RETRY_LIMIT))
        lat = self.runtime.failure_detector.detect_latency
        return (self.multiplier * rounds * est + retry_budget + lat
                + self.slack)

    # -- arming ----------------------------------------------------------------
    def arm(self, procs, gpus, *, window: Optional[float] = None,
            nbytes: int = 0) -> None:
        """Start the monitor over ``procs`` (the rank processes).

        ``window=None`` derives the deadline from :meth:`window_for`.
        """
        self._procs = list(procs)
        self._gpus = list(gpus)
        self._window = (window if window is not None
                        else self.window_for(self._gpus, nbytes))
        if self._window <= 0:
            raise ValueError("watchdog window must be positive")
        self.armed = True
        self.sim.process(self._monitor(), name="watchdog")

    def _rank_of(self, gpu) -> Optional[int]:
        for r, g in enumerate(self._gpus):
            if g is gpu:
                return r
        return None

    def _monitor(self) -> Generator[Event, Any, None]:
        sim = self.sim
        while True:
            yield sim.timeout(self._window)
            alive = [p for p in self._procs if p.is_alive]
            if not alive:
                return
            # Stall gate: at this instant the monitor's own wake has
            # been consumed, so an otherwise-empty schedule means no
            # future event can ever resume the parked processes — a
            # certain deadlock, in either scheduler mode.  Anything
            # still scheduled (a pending fault driver, a live transfer,
            # a backoff timer) means the job can progress: re-arm.
            if sim.peek() != float("inf"):
                continue
            self.timeouts += 1
            if self.flight is not None:
                self.flight.note(
                    "watchdog.timeout",
                    f"zero progress across a {self._window:.6f}s window; "
                    f"{len(alive)} rank(s) still parked")
            if self._escalate(alive):
                continue
            # Suspect kills and revoke-all are exhausted and the job
            # stalled again: end it with typed errors, unconditionally.
            exc = CollectiveTimeout(
                f"no progress within a {self._window:.6f}s window after "
                f"escalation; interrupting survivors")
            if self.flight is not None:
                self.flight.note("watchdog.interrupt", str(exc))
                self.flight.dump(f"watchdog hard interrupt: {exc}")
            for p in alive:
                if p.is_alive:
                    self.escalations += 1
                    p.interrupt(exc)
            return

    def _escalate(self, alive) -> bool:
        """One escalation step; returns False when out of options."""
        fd = self.runtime.failure_detector
        suspects = [g for g in self.stall_suspects if not fd.is_dead(g)]
        if suspects:
            # Treat each stall suspect as a dead rank: interrupt its
            # process (fail-stop semantics free its buffers/grants) and
            # report the death, driving the standard ULFM revoke ->
            # shrink -> checkpoint-restart recovery, so the job
            # completes at n-1 instead of deadlocking.
            for g in suspects:
                r = self._rank_of(g)
                proc = (self._procs[r]
                        if r is not None and r < len(self._procs) else None)
                if proc is not None and proc.is_alive:
                    self.escalations += 1
                    proc.interrupt(CrashRank(time=self.sim.now, rank=r))
                fd.mark_dead(g)
            if self.flight is not None:
                self.flight.note(
                    "watchdog.suspect_kill",
                    f"treated {len(suspects)} stall suspect(s) as dead "
                    f"ranks (ULFM revoke -> shrink -> restart)")
                self.flight.dump(
                    f"watchdog suspect-kill of {len(suspects)} rank(s)")
            return True
        if not self._escalated:
            self._escalated = True
            self.escalations += 1
            exc = CollectiveTimeout(
                f"collective made no progress for {self._window:.6f}s "
                f"(stalled link suspected)")
            if self.flight is not None:
                self.flight.note("watchdog.revoke_all", str(exc))
                self.flight.dump(f"watchdog revoke-all: {exc}")
            fd.revoke_all(exc)
            return True
        return False
