"""Device-buffer transport: the CUDA-aware part of the MPI runtime.

This module decides *how bytes move* between two GPU buffers, as a
function of the runtime profile and the endpoint placement:

=====================  ==========================================
endpoint placement      mechanism (by profile)
=====================  ==========================================
same GPU                device-to-device copy
same node, ``ipc``      CUDA IPC peer copy over both PCIe uplinks
same node, no IPC       pipelined D2H -> host -> H2D staging
other node, ``gdr``     GPUDirect RDMA (PCIe + NIC cut-through,
                        capped at the GDR read bandwidth)
other node, no GDR      pipelined D2H -> NIC wire -> H2D staging
=====================  ==========================================

Pipelined staging is modeled faithfully: one sim process per chunk,
contending FIFO on the PCIe/NIC/host links, so stage overlap (and its
absence for tiny chunks, where per-copy overhead dominates) emerges from
the event model rather than a closed-form guess.
"""

from __future__ import annotations

import zlib
from typing import Any, Generator, Optional

import numpy as np

from ..cuda import CudaRuntime, DeviceBuffer, HostBuffer
from ..hardware import Cluster, multi_link_transfer
from ..hardware.faults import LinkDownError, MessageDropped, TransportFault
from ..sim import Event
from ..sim.resources import pipeline_exit_times
from ..telemetry.metrics import MetricsRegistry
from .profiles import MPIProfile

__all__ = ["DeviceTransport", "TransportTimeout", "TransportMetrics",
           "ChecksumError", "IntegrityError"]


class TransportTimeout(RuntimeError):
    """A transfer exhausted its retry budget (the link never recovered)."""


class ChecksumError(TransportFault):
    """The delivered payload failed its CRC32 verify (NACK: retransmit).

    A :class:`~repro.hardware.faults.TransportFault` subclass so the
    transport's bounded retry/backoff loop doubles as the retransmit
    machinery — a corrupted delivery is re-sent like a dropped one.
    """


class IntegrityError(TransportTimeout):
    """Every retransmit kept failing its checksum (persistent corruptor).

    A :class:`TransportTimeout` subclass: callers that treat transport
    exhaustion as recoverable (revoke/shrink) handle this identically;
    the distinct type preserves *why* the transfer gave up.
    """


class TransportMetrics:
    """Robustness counters (zero on a quiet fabric), registry-backed.

    This is a *view* over the simulator's metrics registry — the same
    counters the telemetry PVARs read — so each count has exactly one
    source of truth.  The attribute API (``metrics.retries``, ...) is
    preserved for the fault tests and the invariant checker; mutation
    goes through the ``count_*`` / staging methods.
    """

    def __init__(self, registry: MetricsRegistry):
        self._retries = registry.counter(
            "transport.retries",
            "transfer attempts retried after transient link faults")
        self._timeouts = registry.counter(
            "transport.timeouts",
            "transfers that exhausted their retry budget")
        self._drops = registry.counter(
            "transport.drops_detected",
            "forced message drops observed by the transport")
        self._link_down = registry.counter(
            "transport.link_down_detected", "transfers that hit a down link")
        self._stagings = registry.gauge(
            "transport.stagings_live",
            "host staging buffers currently alive (must drain to 0)")
        self._stagings_peak = registry.gauge(
            "transport.stagings_peak",
            "high-water mark of concurrently live staging buffers")
        self._corrupt_detected = registry.counter(
            "integrity.corrupt_detected",
            "deliveries whose CRC32 verify failed (corruption caught)")
        self._retransmits = registry.counter(
            "integrity.retransmits",
            "transfers re-sent after a failed checksum verify")
        self._integrity_failures = registry.counter(
            "integrity.failures",
            "transfers that exhausted retransmits on checksum failures")
        self._silent_corruptions = registry.counter(
            "integrity.silent_corruptions",
            "corrupted deliveries that PASSED verify (must stay 0; "
            "non-zero means the checksum layer is broken)")

    @property
    def retries(self) -> int:
        return int(self._retries.value())

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value())

    @property
    def drops_detected(self) -> int:
        return int(self._drops.value())

    @property
    def link_down_detected(self) -> int:
        return int(self._link_down.value())

    @property
    def stagings_live(self) -> int:
        """Host staging buffers currently alive (leak detector for the
        interrupt-during-staged-transfer path; must return to 0)."""
        return int(self._stagings.value())

    @property
    def stagings_peak(self) -> int:
        return int(self._stagings_peak.value())

    @property
    def corrupt_detected(self) -> int:
        return int(self._corrupt_detected.value())

    @property
    def retransmits(self) -> int:
        return int(self._retransmits.value())

    @property
    def integrity_failures(self) -> int:
        return int(self._integrity_failures.value())

    @property
    def silent_corruptions(self) -> int:
        return int(self._silent_corruptions.value())

    def count_retry(self) -> None:
        self._retries.inc()

    def count_timeout(self) -> None:
        self._timeouts.inc()

    def count_drop(self) -> None:
        self._drops.inc()

    def count_link_down(self) -> None:
        self._link_down.inc()

    def count_corrupt_detected(self) -> None:
        self._corrupt_detected.inc()

    def count_retransmit(self) -> None:
        self._retransmits.inc()

    def count_integrity_failure(self) -> None:
        self._integrity_failures.inc()

    def count_silent_corruption(self) -> None:
        self._silent_corruptions.inc()

    def enter_staging(self) -> None:
        self._stagings.inc()
        self._stagings_peak.set_max(self._stagings.value())

    def exit_staging(self) -> None:
        self._stagings.dec()


class DeviceTransport:
    """Moves bytes between device buffers according to an MPI profile.

    Transient link faults (:class:`~repro.hardware.faults.TransportFault`)
    raised on the path are retried with bounded exponential backoff; the
    backoff schedule is deterministic (no randomness) so runs stay pure
    functions of the seed.  An exhausted budget raises
    :class:`TransportTimeout`.
    """

    #: Retry policy (deterministic exponential backoff).
    RETRY_LIMIT = 8
    RETRY_BASE = 50e-6     # first backoff, seconds
    RETRY_MAX = 10e-3      # backoff cap, seconds
    # Cumulative backoff = 50u+100u+...+6.4m ~= 12.75 ms: wide enough to
    # bridge a momentary link flap, bounded so a hard outage still fails
    # fast enough for recovery to engage.

    def __init__(self, cluster: Cluster, cuda: CudaRuntime,
                 profile: MPIProfile):
        self.cluster = cluster
        self.cuda = cuda
        self.profile = profile
        self.sim = cluster.sim
        self.cal = cluster.cal
        self.metrics = TransportMetrics(cluster.sim.metrics)

    # -- public API --------------------------------------------------------
    def transfer(self, src: DeviceBuffer, dst: DeviceBuffer,
                 nbytes: Optional[int] = None, *, src_offset: int = 0,
                 dst_offset: int = 0, payload: Optional[np.ndarray] = None,
                 ) -> Generator[Event, Any, None]:
        """Sub-protocol: move ``nbytes`` from ``src`` to ``dst``.

        Payload bytes (when present) are copied on completion.
        ``payload`` overrides the delivered bytes with a frozen snapshot
        (the communicator's eager-send contract: the bytes captured at
        post time land, not whatever the sender wrote since) — routing
        it through the transport keeps delivery in one place, so the
        integrity layer covers snapshots too.

        When the fault injector has armed corruptible links, every
        delivery is CRC32-verified against the bytes the sender put on
        the wire; a mismatch is NACKed and retransmitted through the
        same bounded backoff schedule as a drop.  Persistent corruption
        surfaces as :class:`IntegrityError` (a typed
        :class:`TransportTimeout`), never as silently wrong bytes.  On a
        quiet fabric the integrity layer costs one attribute load and
        adds zero simulated events.
        """
        if src_offset < 0 or dst_offset < 0:
            raise ValueError(
                f"negative offset (src_offset={src_offset}, "
                f"dst_offset={dst_offset})")
        if src_offset > src.nbytes or dst_offset > dst.nbytes:
            raise ValueError(
                f"offset beyond buffer: src_offset={src_offset} of "
                f"{src.nbytes}, dst_offset={dst_offset} of {dst.nbytes}")
        n = min(src.nbytes - src_offset,
                dst.nbytes - dst_offset) if nbytes is None else nbytes
        if n < 0:
            raise ValueError("negative transfer size")
        if src_offset + n > src.nbytes or dst_offset + n > dst.nbytes:
            raise ValueError(
                f"transfer of {n} bytes over-reads: src has "
                f"{src.nbytes - src_offset} past offset, dst has "
                f"{dst.nbytes - dst_offset}")
        rec = self.sim.recorder
        if rec is not None:
            # One logical message per transfer call (retries not
            # double-counted) — feeds the (src, dst) comm matrix.
            rec.message(src.device, dst.device, n)
        armed = self.cluster.fault_links_armed
        attempt = 0
        corrupted = False
        while True:
            try:
                if armed and n:
                    corrupted = self._consume_corruption(src, dst)
                moved = yield from self._transfer_once(
                    src, dst, n, src_offset, dst_offset)
                if armed:
                    self._deliver(src, dst, n, src_offset, dst_offset,
                                  payload, moved, corrupted)
                    self._verify(src, dst, n, src_offset, dst_offset,
                                 payload, corrupted)
                break
            except TransportFault as exc:
                if isinstance(exc, MessageDropped):
                    self.metrics.count_drop()
                elif isinstance(exc, LinkDownError):
                    self.metrics.count_link_down()
                elif isinstance(exc, ChecksumError):
                    self.metrics.count_corrupt_detected()
                attempt += 1
                if attempt > self.RETRY_LIMIT:
                    if isinstance(exc, ChecksumError):
                        self.metrics.count_integrity_failure()
                        raise IntegrityError(
                            f"transfer {src.device.name}->{dst.device.name} "
                            f"failed checksum verify {self.RETRY_LIMIT + 1} "
                            f"times") from exc
                    self.metrics.count_timeout()
                    raise TransportTimeout(
                        f"transfer {src.device.name}->{dst.device.name} "
                        f"gave up after {self.RETRY_LIMIT} retries") from exc
                if isinstance(exc, ChecksumError):
                    self.metrics.count_retransmit()
                else:
                    self.metrics.count_retry()
                backoff = min(self.RETRY_BASE * (2 ** (attempt - 1)),
                              self.RETRY_MAX)
                yield self.sim.timeout(backoff)
        if not armed:
            if not moved:
                dst.copy_payload_from(src, nbytes=n, src_offset=src_offset,
                                      dst_offset=dst_offset)
            if payload is not None and dst.data is not None:
                dst.data.view(np.uint8)[dst_offset:dst_offset + n] = payload
        elif corrupted:
            # Reachable only if _verify let a corrupted delivery through
            # (e.g. the mutation self-test disabling it): the exact
            # failure mode the chaos gate exists to keep at zero.
            self.metrics.count_silent_corruption()

    def _transfer_once(self, src: DeviceBuffer, dst: DeviceBuffer, n: int,
                       src_offset: int, dst_offset: int,
                       ) -> Generator[Event, Any, bool]:
        """One transfer attempt; returns True if the payload already moved
        (the p2p mechanism copies it as part of the operation)."""
        a, b = src.device, dst.device
        tel = self.sim.telemetry
        if a is b:
            if tel is not None:
                tel.on_transfer_path("d2d", n)
            yield from self.cuda.memcpy_d2d(a, n)
        elif self.cluster.same_node(a, b):
            if self.profile.ipc:
                if tel is not None:
                    tel.on_transfer_path("ipc", n)
                yield from self.cuda.memcpy_p2p(
                    src, dst, n, src_offset=src_offset, dst_offset=dst_offset)
                return True
            if tel is not None:
                tel.on_transfer_path("staged_intra", n)
            yield from self._staged_intra_node(src, dst, n)
        else:
            if self.profile.gdr and n <= self.profile.gdr_threshold:
                if tel is not None:
                    tel.on_transfer_path("gdr", n)
                yield from self._gdr_inter_node(src, dst, n)
            else:
                if tel is not None:
                    tel.on_transfer_path("staged_inter", n)
                yield from self._staged_inter_node(src, dst, n)
        return False

    # -- integrity layer ---------------------------------------------------
    def _path_links(self, src: DeviceBuffer, dst: DeviceBuffer):
        """The links a (src, dst) transfer traverses, for corruption
        attribution.  Mirrors the routing in :meth:`_transfer_once`."""
        a, b = src.device, dst.device
        if a is b:
            return ()
        if self.cluster.same_node(a, b):
            if self.profile.ipc:
                return (a.pcie_up, b.pcie_down)
            node = self.cluster.node_of(a)
            return (a.pcie_up, node.host_memcpy, b.pcie_down)
        nic_a = self.cluster.node_of(a).nic_for(a)
        nic_b = self.cluster.node_of(b).nic_for(b)
        return (a.pcie_up, nic_a.tx, nic_b.rx, b.pcie_down)

    def _consume_corruption(self, src: DeviceBuffer, dst: DeviceBuffer,
                            ) -> bool:
        """Consume at most one pending payload corruption on the path.

        Runs synchronously at attempt start (no yields between consuming
        the flag and the attempt it applies to), so concurrent transfers
        on other links cannot be mis-attributed the flip.
        """
        for link in self._path_links(src, dst):
            hook = link.consume_corruption
            if hook is not None and hook():
                return True
        return False

    def _deliver(self, src: DeviceBuffer, dst: DeviceBuffer, n: int,
                 src_offset: int, dst_offset: int,
                 payload: Optional[np.ndarray], moved: bool,
                 corrupted: bool) -> None:
        """Materialize one attempt's delivered bytes into ``dst``.

        Idempotent across retransmits: each attempt rewrites the range
        from the source of truth, then applies this attempt's wire
        corruption (a deterministic bit-flip) on top.
        """
        if payload is not None and dst.data is not None:
            dst.data.view(np.uint8)[dst_offset:dst_offset + n] = payload
        elif not moved:
            dst.copy_payload_from(src, nbytes=n, src_offset=src_offset,
                                  dst_offset=dst_offset)
        if corrupted and n and dst.data is not None:
            view = dst.data.view(np.uint8)
            view[dst_offset] ^= 0x01

    def _verify(self, src: DeviceBuffer, dst: DeviceBuffer, n: int,
                src_offset: int, dst_offset: int,
                payload: Optional[np.ndarray], corrupted: bool) -> None:
        """Receive-side CRC32 verify; raises :class:`ChecksumError` on a
        mismatch (the NACK that triggers a retransmit).

        With real payloads the sender's CRC is computed over the bytes
        put on the wire and compared against the delivered range.  On
        size-only runs (no arrays to hash) the wire-corruption flag
        stands in for the mismatch — the *semantics* (detected, NACKed,
        retransmitted) are identical.
        """
        if dst.data is not None and (payload is not None
                                     or src.data is not None):
            if payload is not None:
                sent = np.ascontiguousarray(payload[:n])
            else:
                sent = np.ascontiguousarray(
                    src.data.view(np.uint8)[src_offset:src_offset + n])
            got = np.ascontiguousarray(
                dst.data.view(np.uint8)[dst_offset:dst_offset + n])
            if zlib.crc32(sent.tobytes()) != zlib.crc32(got.tobytes()):
                raise ChecksumError(
                    f"CRC32 mismatch on {src.device.name}->"
                    f"{dst.device.name} ({n} bytes)")
            return
        if corrupted:
            raise ChecksumError(
                f"CRC32 mismatch on {src.device.name}->{dst.device.name} "
                f"({n} bytes, modeled)")

    def estimate(self, src_gpu, dst_gpu, nbytes: int) -> float:
        """Closed-form uncontended estimate (used by tuning tables)."""
        if src_gpu is dst_gpu:
            return self.cal.cuda_copy_overhead + nbytes / src_gpu.spec.membw
        if self.cluster.same_node(src_gpu, dst_gpu):
            if self.profile.ipc:
                return (self.cal.cuda_copy_overhead
                        + 2 * self.cal.pcie_latency
                        + nbytes / self.cal.pcie_bw)
            return self._staged_estimate(nbytes, wire_bw=self.cal.pcie_bw)
        nic_bw = self.cluster.node_of(src_gpu).nic_for(src_gpu).bandwidth
        if self.profile.gdr and nbytes <= self.profile.gdr_threshold:
            bw = min(self.cal.pcie_bw, nic_bw, self.cal.gdr_read_bw)
            return (2 * self.cal.pcie_latency + 2 * self.cal.ib_latency
                    + nbytes / bw)
        return self._staged_estimate(nbytes, wire_bw=nic_bw)

    # -- mechanisms ------------------------------------------------------------
    def _gdr_inter_node(self, src: DeviceBuffer, dst: DeviceBuffer,
                        nbytes: int) -> Generator[Event, Any, None]:
        """GPUDirect RDMA: PCIe(src) -> NIC(src) -> NIC(dst) -> PCIe(dst).

        The GDR read-bandwidth cap is modeled by inflating the wire time
        to ``nbytes / gdr_read_bw`` when that exceeds the raw cut-through.
        """
        a, b = src.device, dst.device
        links = [a.pcie_up, self.cluster.node_of(a).nic_for(a).tx,
                 self.cluster.node_of(b).nic_for(b).rx, b.pcie_down]
        raw_bw = min(l.bandwidth for l in links)
        extra = 0.0
        if self.cal.gdr_read_bw < raw_bw:
            extra = nbytes / self.cal.gdr_read_bw - nbytes / raw_bw
        yield from multi_link_transfer(
            self.sim, links, nbytes,
            extra_time=extra + self.cal.mpi_message_overhead, kind="rdma")

    def _staged_chunks(self, nbytes: int) -> list:
        chunk = self.profile.pipeline_chunk
        offsets = list(range(0, nbytes, chunk)) or [0]
        return [(off, min(chunk, nbytes - off)) for off in offsets]

    def _staged_train(self, src: DeviceBuffer, dst: DeviceBuffer, chunks,
                      staging: HostBuffer, mid_links, mid_lat: float,
                      mid_bw: float, mid_extra: float, mid_ovh: float,
                      ) -> Generator[Event, Any, bool]:
        """Batched fast path for a pipelined staged transfer.

        When every stage link is :meth:`~repro.sim.resources.BandwidthLink.
        train_eligible` (no profiler spans, no armed jitter, no fault
        plan, nothing queued), the K-chunk software pipeline's schedule
        is a pure function of the chunk sizes — compute it in one
        :func:`pipeline_exit_times` call and post a constant number of
        events (one hold per stage) instead of one process and ~six
        events per chunk.  Counters, telemetry and busy-time integrals
        are replicated exactly; while a stage runs, its link reads as
        continuously busy, so foreign arrivals queue behind the train
        (per-chunk mode would interleave them — see docs/PERFORMANCE.md
        for why the fallback matrix makes this unobservable).

        Returns True if the train was posted, False if the caller must
        run the per-chunk pipeline.
        """
        if not self.profile.segment_pipelining or len(chunks) < 2:
            return False
        up = src.device.pcie_up
        down = dst.device.pcie_down
        stage_links = (up,) + tuple(mid_links) + (down,)
        for link in stage_links:
            if not link.train_eligible():
                return False
        sim = self.sim
        cal = self.cal
        sizes = [n for _off, n in chunks]
        factor = self.cuda._staging_factor(staging)
        effs = ([int(n / factor) for n in sizes] if factor != 1.0
                else sizes)
        sz = np.asarray(sizes, dtype=np.float64)
        ef = np.asarray(effs, dtype=np.float64)
        occ = np.empty((3, len(sizes)))
        occ[0] = up.latency + ef / up.bandwidth
        occ[1] = mid_lat + sz / mid_bw + mid_extra
        occ[2] = down.latency + ef / down.bandwidth
        # Each stage's pre-request delays, as the *sequence* of timeouts
        # the per-chunk path pays (float addition does not associate).
        overheads = ((cal.cuda_copy_overhead, up.per_message_overhead),
                     (mid_ovh,),
                     (cal.cuda_copy_overhead, down.per_message_overhead))
        now = sim.now
        exits = pipeline_exit_times(overheads, occ, start=now)

        k = len(sizes)
        eff_total = sum(effs)
        up.messages += k
        up.bytes_moved += eff_total
        down.messages += k
        down.bytes_moved += eff_total
        total = sum(sizes)
        for link in mid_links:
            link.messages += k
            link.bytes_moved += total
        tel = sim.telemetry
        if tel is not None:
            for n in sizes:
                tel.on_cuda_copy("d2h", n)
                tel.on_cuda_copy("h2d", n)

        for s, links in enumerate(((up,), tuple(mid_links), (down,))):
            end = float(exits[s, -1])
            gap = (end - now) - occ[s].sum()
            for link in links:
                res = link._res
                grant = res.request()._value  # idle -> granted inline

                def _done(_t, res=res, grant=grant, gap=gap):
                    res.release(grant)
                    res._absorb_idle(gap)

                sim.timeout_at(end).add_callback(_done)
        # Posted after the release timeouts: at the final instant the
        # stage holds are handed back first, then the caller resumes —
        # the order the per-chunk pipeline realizes.
        yield sim.timeout_at(float(exits[2, -1]))
        return True

    def _staged_pipeline(self, stages, chunks) -> Generator[Event, Any, None]:
        """Run ``stages`` (list of per-chunk sub-protocol factories) over
        ``chunks``, one sim process per chunk, contending on shared links.

        Under ``segment_pipelining`` chunks are all in flight at once and
        the FIFO links produce a software pipeline; without it (the
        OpenMPI profile) chunks run strictly one after another, plus a
        per-segment synchronization charge.
        """
        if self.profile.segment_pipelining:
            procs = []
            for off, n in chunks:
                def chain(n=n):
                    for stage in stages:
                        yield from stage(n)
                procs.append(self.sim.process(chain(), eager=True))
            yield self.sim.all_of(procs)
        else:
            for off, n in chunks:
                for stage in stages:
                    yield from stage(n)
                sync = self.profile.segment_sync_time(n)
                if sync:
                    yield self.sim.timeout(sync)

    def _staged_intra_node(self, src: DeviceBuffer, dst: DeviceBuffer,
                           nbytes: int) -> Generator[Event, Any, None]:
        """No-IPC same-node path: D2H, host memcpy, H2D."""
        node = self.cluster.node_of(src.device)
        staging = HostBuffer(0, pinned=self.profile.pinned_staging)
        self.metrics.enter_staging()
        try:
            host = node.host_memcpy
            done = yield from self._staged_train(
                src, dst, self._staged_chunks(nbytes), staging,
                (host,), host.latency, host.bandwidth, 0.0,
                host.per_message_overhead)
            if done:
                return
            stages = [
                lambda n: self.cuda.memcpy_d2h(src, staging, n),
                lambda n: host.transfer(n, kind="hostcpy"),
                lambda n: self.cuda.memcpy_h2d(dst, staging, n),
            ]
            yield from self._staged_pipeline(stages,
                                             self._staged_chunks(nbytes))
        finally:
            self.metrics.exit_staging()

    def _staged_inter_node(self, src: DeviceBuffer, dst: DeviceBuffer,
                           nbytes: int) -> Generator[Event, Any, None]:
        """No-GDR cross-node path: D2H, NIC->NIC wire, H2D."""
        a, b = src.device, dst.device
        nic_a = self.cluster.node_of(a).nic_for(a)
        nic_b = self.cluster.node_of(b).nic_for(b)
        staging = HostBuffer(0, pinned=self.profile.pinned_staging)
        self.metrics.enter_staging()
        try:
            done = yield from self._staged_train(
                src, dst, self._staged_chunks(nbytes), staging,
                (nic_a.tx, nic_b.rx),
                nic_a.tx.latency + nic_b.rx.latency,
                min(nic_a.tx.bandwidth, nic_b.rx.bandwidth),
                self.cal.mpi_message_overhead, 0.0)
            if done:
                return

            def wire(n):
                yield from multi_link_transfer(
                    self.sim, [nic_a.tx, nic_b.rx], n,
                    extra_time=self.cal.mpi_message_overhead, kind="wire")

            stages = [
                lambda n: self.cuda.memcpy_d2h(src, staging, n),
                wire,
                lambda n: self.cuda.memcpy_h2d(dst, staging, n),
            ]
            yield from self._staged_pipeline(stages,
                                             self._staged_chunks(nbytes))
        finally:
            self.metrics.exit_staging()

    def _staged_estimate(self, nbytes: int, wire_bw: float) -> float:
        chunk = min(self.profile.pipeline_chunk, max(1, nbytes))
        nchunks = max(1, -(-nbytes // chunk))
        factor = 1.0 if self.profile.pinned_staging else self.cal.unpinned_factor
        d2h = self.cal.cuda_copy_overhead + chunk / (self.cal.pcie_bw * factor)
        wire = self.cal.ib_latency + chunk / wire_bw
        h2d = d2h
        if self.profile.segment_pipelining:
            bottleneck = max(d2h, wire, h2d)
            return d2h + wire + h2d + (nchunks - 1) * bottleneck
        per = (d2h + wire + h2d
               + self.profile.segment_sync_time(chunk))
        return nchunks * per
