"""Rank-failure detection and communicator revocation (ULFM flavour).

Real MPI has no fault tolerance in the standard; the User-Level Failure
Mitigation proposal (Bland et al.) adds three primitives this module
mirrors in simulation form:

- a **failure detector** that learns (after a detection latency modeled
  by the injector) that a rank's process died;
- **revocation**: every communicator containing the dead rank fails all
  posted/pending operations and breaks its barrier, so survivors blocked
  inside a collective observe :class:`CommRevoked` instead of
  deadlocking on a peer that will never send;
- **shrink** (on :class:`~repro.mpi.communicator.Communicator`): build a
  replacement communicator over the surviving ranks.

Detection is modeled as *perfect but delayed*: the injector calls
:meth:`FailureDetector.mark_dead` one detection-latency after the crash,
which is the point where in-flight operations start failing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Set

from ..hardware.gpu import GPUDevice
from ..sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from .communicator import Communicator

__all__ = ["RankFailure", "CommRevoked", "FailureDetector"]


class RankFailure(RuntimeError):
    """A peer rank's process is known dead (MPI_ERR_PROC_FAILED)."""


class CommRevoked(RuntimeError):
    """The communicator was revoked after a failure (MPI_ERR_REVOKED)."""


class FailureDetector:
    """Cluster-wide registry of dead ranks, keyed by GPU identity.

    A GPU hosts exactly one rank in this runtime, so device identity is
    an unambiguous rank name across all (sub-)communicators.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._dead: Set[int] = set()          # id(gpu)
        self._dead_gpus: List[GPUDevice] = []
        self._comms: List["Communicator"] = []
        #: Telemetry: number of distinct rank deaths detected.
        self.detections = 0
        #: Live detection latency (heartbeat period + suspicion
        #: threshold).  Settable at runtime via the ``mpi.detect_latency``
        #: CVAR; the fault injector reads it at crash-delivery time.
        from ..faults.injector import DEFAULT_DETECT_LATENCY
        self.detect_latency = DEFAULT_DETECT_LATENCY

    # -- registry ----------------------------------------------------------
    def register_comm(self, comm: "Communicator") -> None:
        self._comms.append(comm)

    @property
    def dead_gpus(self) -> List[GPUDevice]:
        return list(self._dead_gpus)

    def is_dead(self, gpu: GPUDevice) -> bool:
        return id(gpu) in self._dead

    def any_dead(self) -> bool:
        return bool(self._dead)

    # -- detection ---------------------------------------------------------
    def mark_dead(self, gpu: GPUDevice) -> None:
        """Record a rank death and revoke every registered communicator.

        Revocation is job-wide, not limited to communicators containing
        the dead rank: survivors can be parked inside sub-communicators
        (hierarchical-reduce node/leader groups) that exclude the dead
        rank but whose progress depends on a rank that *is* blocked on
        it — exactly why ULFM's MPI_Comm_revoke exists.  Failing every
        pending operation unwinds all survivors into recovery.
        """
        if id(gpu) in self._dead:
            return
        self._dead.add(id(gpu))
        self._dead_gpus.append(gpu)
        self.detections += 1
        exc = RankFailure(f"rank on {gpu.name} failed")
        for comm in list(self._comms):
            comm.revoke(exc)

    def revoke_all(self, exc: BaseException) -> None:
        """Revoke every registered communicator with ``exc``.

        The watchdog's escalation path for stalls with no attributable
        dead rank: survivors parked on a transfer that will never
        complete observe a typed error instead of hanging forever.
        """
        for comm in list(self._comms):
            comm.revoke(exc)

    def notify_after(self, gpu: GPUDevice, delay: float) -> None:
        """Schedule :meth:`mark_dead` after a detection latency."""

        def watcher() -> Generator[Event, Any, None]:
            yield self.sim.timeout(delay)
            self.mark_dead(gpu)

        self.sim.process(watcher(), name=f"detect.{gpu.name}")
