"""MPI request objects (handles for non-blocking operations)."""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from ..sim import Event, Simulator

__all__ = ["Request", "RequestTimeout", "waitall", "waitany",
           "ANY_SOURCE", "ANY_TAG"]

#: Wildcards for receive matching (mirror MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1


class RequestTimeout(RuntimeError):
    """A ``wait(timeout=...)`` deadline expired before completion."""


class Request:
    """Handle for an in-flight non-blocking operation.

    ``yield req.wait()`` blocks the calling process until completion;
    ``req.test()`` polls.  Completion may carry a status payload (e.g. the
    matched source/tag for receives).
    """

    __slots__ = ("sim", "_done", "label", "_on_wait")

    def __init__(self, sim: Simulator, label: Any = ""):
        # ``label`` may be any cheap debug token (hot paths pass tuples
        # to avoid f-string formatting); it is only rendered in errors.
        self.sim = sim
        self.label = label
        self._done = sim.event()
        # Request failures are delivered through wait(); the internal
        # event must not trip the kernel's unhandled-failure check when
        # the failure lands before any waiter registers.
        self._done._defused = True
        #: Optional hook invoked at the first wait() call — used to model
        #: operations that only progress *inside* MPI_Wait (e.g. Ireduce
        #: under runtimes with no asynchronous reduction progress).
        self._on_wait = None
        chk = sim.checker
        if chk is not None:
            chk.on_request(self)

    # -- completion (runtime side) ------------------------------------------
    def complete(self, status: Any = None) -> None:
        self._done.succeed(status)

    def fail(self, exc: BaseException) -> None:
        self._done.fail(exc)

    # -- caller side -----------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self._done.triggered

    def test(self) -> bool:
        """Non-blocking completion check (MPI_Test flavour)."""
        return self._done.triggered

    @property
    def status(self) -> Any:
        return self._done.value

    def wait(self, timeout: Optional[float] = None) -> Event:
        """Event the caller yields to block until completion.

        With ``timeout`` (simulated seconds), the event instead fails
        with :class:`RequestTimeout` if the operation has not completed
        by the deadline; the underlying operation is *not* cancelled
        (MPI semantics: the request stays matchable).  The default path
        (``timeout=None``) schedules no extra simulator events: it hands
        back the completion event itself, so an already-completed
        request is consumed inline by the waiter's trampoline and a
        pending one wakes the waiter directly, with no relay hop.
        """
        chk = self.sim.checker
        if chk is not None:
            chk.on_wait(self)
        if self._on_wait is not None:
            hook, self._on_wait = self._on_wait, None
            hook()
        if timeout is None:
            return self._done
        ev = self.sim.event()
        # The waiter may die (rank crash) between registering and the
        # failure landing; a failed wait-event with no waiter must not
        # trip the kernel's unhandled-failure check.
        ev._defused = True

        def relay(done: Event) -> None:
            if ev.triggered:
                return
            # Relays run in callback context (no active process): carry
            # the completing operation's span context through by hand.
            ev._ctx_span = done._ctx_span
            if done.ok:
                ev.succeed(done._value)
            else:
                ev.fail(done._value)

        self._done.add_callback(relay)
        deadline = self.sim.timeout(timeout)

        def expire(_t: Event) -> None:
            if not ev.triggered:
                ev.fail(RequestTimeout(
                    f"request {self.label or hex(id(self))} timed out "
                    f"after {timeout} s"))

        deadline.add_callback(expire)
        return ev

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.completed else "pending"
        return f"<Request {self.label or id(self):#x} {state}>"


def waitall(sim: Simulator, requests: Iterable[Request]
            ) -> Generator[Event, Any, List[Any]]:
    """Sub-protocol: wait for every request; returns their statuses."""
    reqs = list(requests)
    yield sim.all_of([r.wait() for r in reqs])
    return [r.status for r in reqs]


def waitany(sim: Simulator, requests: Iterable[Request]
            ) -> Generator[Event, Any, int]:
    """Sub-protocol: wait until at least one request completes; returns
    the index of a completed request (MPI_Waitany flavour)."""
    reqs = list(requests)
    if not reqs:
        raise ValueError("waitany needs at least one request")
    for i, r in enumerate(reqs):
        if r.completed:
            return i
    yield sim.any_of([r.wait() for r in reqs])
    for i, r in enumerate(reqs):
        if r.completed:
            return i
    raise RuntimeError("any_of fired with no completed request")
