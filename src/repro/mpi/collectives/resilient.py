"""Fault-tolerant collective wrappers (shrink-and-retry recovery).

The flat/hierarchical reduction algorithms in this package assume every
rank answers; a dead peer would park the tree in a receive forever.  The
failure detector breaks that wait (revocation fails the pending
requests), and the wrappers here turn the resulting exception into the
ULFM recovery idiom:

    shrink the communicator over the survivors -> rerun the collective
    on the shrunk communicator -> agree via a commit barrier.

Retrying always happens on a *fresh* shrunk communicator (fresh
collective-tag sequence space), never on the revoked one — so survivor
tag sequences cannot diverge across attempts.  A failure that does not
change the survivor set (e.g. a pure transport timeout with no death)
re-raises instead of retrying forever.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from ..failure import CommRevoked, RankFailure
from ..transport import TransportTimeout
from .reduce import reduce

__all__ = ["resilient_reduce", "shrink_context"]

#: Exceptions that trigger the shrink-and-retry path.
RECOVERABLE = (RankFailure, CommRevoked, TransportTimeout)


def shrink_context(ctx: RankContext) -> RankContext:
    """This rank's context on the shrunk (survivors-only) communicator.

    Raises :class:`RankFailure` if the calling rank itself is dead (its
    GPU is on the failed list) — a crashed rank has no surviving context.
    """
    sub = ctx.comm.shrink()
    if sub is ctx.comm:
        return ctx
    new = ctx.sub_context(sub)
    if new is None:
        raise RankFailure(f"rank {ctx.rank} of {ctx.comm.name} is dead")
    return new


def resilient_reduce(ctx: RankContext, sendbuf: DeviceBuffer,
                     recvbuf: Optional[DeviceBuffer], root: int = 0, *,
                     algorithm: Optional[str] = None,
                     ) -> Generator[Event, Any, RankContext]:
    """MPI_Reduce that survives rank failures: on a detected death the
    surviving ranks rebuild the tree over the shrunk communicator and
    rerun the reduction (n-1 training semantics).

    ``root`` names a rank of the *original* ``ctx.comm``; it must
    survive (the trainer's fault plans never crash rank 0).  Returns the
    context the reduction finally completed on — callers continue on
    that (possibly shrunk) communicator.

    Accumulators are (re)seeded from ``sendbuf`` inside every attempt,
    so a retried reduction produces exactly the reduction over the
    survivors' contributions — byte-identical to a fault-free run on
    the surviving ranks alone.
    """
    root_gpu = ctx.comm.gpu_of(root)
    while True:
        cur = shrink_context(ctx)
        sub_root = None
        for r, g in enumerate(cur.comm.gpus):
            if g is root_gpu:
                sub_root = r
                break
        if sub_root is None:
            raise RankFailure(
                f"reduce root {root} of {ctx.comm.name} is dead")
        members = tuple(id(g) for g in cur.comm.gpus)
        try:
            yield from reduce(cur, sendbuf, recvbuf, sub_root,
                              algorithm=algorithm)
            # Commit barrier: all survivors agree the attempt finished.
            # A late-detected death fails the barrier and re-enters
            # recovery, so no rank returns while others retry.
            yield from cur.barrier()
            return cur
        except RECOVERABLE as exc:
            nxt = shrink_context(ctx)
            if tuple(id(g) for g in nxt.comm.gpus) == members:
                # Nothing actually died: retrying would loop forever.
                raise exc
