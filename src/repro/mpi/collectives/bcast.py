"""Broadcast algorithms (blocking and non-blocking).

S-Caffe's data-propagation phase broadcasts the packed parameter buffer
(or, in the SC-OB co-design, one buffer per layer) from the root solver
to all others (Section 4).  The binomial tree is the flat algorithm both
MVAPICH2 and OpenMPI default to at these message counts.
"""

from __future__ import annotations

from typing import Any, Generator

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from ..request import Request
from .base import as_tag_block, coll_tags, traced

__all__ = ["bcast_binomial", "bcast_flat", "bcast_scatter_allgather",
           "bcast", "ibcast"]


@traced("bcast.binomial")
def bcast_binomial(ctx: RankContext, buf: DeviceBuffer, root: int = 0,
                   *, tag_base=None) -> Generator[Event, Any, None]:
    """Binomial-tree broadcast: log2(P) rounds, halving the frontier."""
    P = ctx.size
    tags = (coll_tags(ctx, 1, "bcast.binomial") if tag_base is None
            else as_tag_block(tag_base, 1, "bcast.binomial"))
    tag = tags.tag(0)
    if P == 1:
        return
    vrank = (ctx.rank - root) % P

    # Receive once from the parent (unless root).  For the root, the loop
    # exits with ``mask`` = smallest power of two >= P, which is exactly
    # where its forwarding sweep must start.
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank - mask) + root) % P
            yield from ctx.recv(parent, buf, tag=tag)
            break
        mask <<= 1

    # Forward to children below the received bit.
    mask >>= 1
    sends = []
    while mask > 0:
        if vrank & mask == 0 and vrank + mask < P:
            child = ((vrank + mask) + root) % P
            sends.append(ctx.isend(child, buf, tag=tag))
        mask >>= 1
    for req in sends:
        yield req.wait()


@traced("bcast.flat")
def bcast_flat(ctx: RankContext, buf: DeviceBuffer, root: int = 0,
               ) -> Generator[Event, Any, None]:
    """Naive linear broadcast (root sends to everyone) — the pattern a
    parameter-server master exhibits; kept as a baseline/ablation."""
    P = ctx.size
    tag = coll_tags(ctx, 1, "bcast.flat").tag(0)
    if P == 1:
        return
    if ctx.rank == root:
        reqs = [ctx.isend(dst, buf, tag=tag)
                for dst in range(P) if dst != root]
        for r in reqs:
            yield r.wait()
    else:
        yield from ctx.recv(root, buf, tag=tag)


@traced("bcast.sag")
def bcast_scatter_allgather(ctx: RankContext, buf: DeviceBuffer,
                            root: int = 0) -> Generator[Event, Any, None]:
    """van de Geijn broadcast: binomial scatter + ring allgather.

    Moves ~2B bytes per rank instead of the binomial's B*log2(P) — the
    large-message algorithm real MVAPICH2/OpenMPI switch to.  Requires
    a 4-byte-aligned buffer (block partitioning).
    """
    from .gather_scatter import allgather_ring, scatter_binomial
    if ctx.size == 1:
        return
    yield from scatter_binomial(ctx, buf, root)
    yield from allgather_ring(ctx, buf)


_ALGORITHMS = {
    "binomial": bcast_binomial,
    "flat": bcast_flat,
    "scatter_allgather": bcast_scatter_allgather,
}


def bcast(ctx: RankContext, buf: DeviceBuffer, root: int = 0,
          *, algorithm: str = "binomial") -> Generator[Event, Any, None]:
    """Blocking MPI_Bcast."""
    try:
        algo = _ALGORITHMS[algorithm]
    except KeyError:
        raise KeyError(f"unknown bcast algorithm {algorithm!r}")
    yield from algo(ctx, buf, root)


def ibcast(ctx: RankContext, buf: DeviceBuffer, root: int = 0) -> Request:
    """Non-blocking MPI_Ibcast.

    Under runtimes with asynchronous progression the broadcast advances in
    the background immediately (this is the property SC-OB exploits,
    Section 4.2).  Without async progress the work only happens inside
    the matching ``wait()`` — the behaviour that makes naive NBC designs
    degrade.
    """
    req = Request(ctx.sim, label=f"ibcast root={root} r{ctx.rank}")
    # Reserve at call time (all ranks call ibcast in order), then hand the
    # block to the deferred/async body so it skips its own reservation.
    tags = coll_tags(ctx, 1, "bcast.binomial")

    def run():
        try:
            yield from bcast_binomial(ctx, buf, root, tag_base=tags)
        except Exception as exc:
            # Deliver failures (revocation, dead peer, transport
            # timeout) through the request; an unwaited failed process
            # would crash the simulation instead.
            req.fail(exc)
            return
        req.complete(None)

    if ctx.profile.async_progress:
        ctx.sim.process(run(), name=f"ibcast.r{ctx.rank}", eager=True)
    else:
        def deferred():
            ctx.sim.process(run(), name=f"ibcast.r{ctx.rank}", eager=True)
        req._on_wait = deferred
    return req
