"""Allreduce algorithms.

The CNTK-like comparator framework (Fig. 10) synchronizes workers with an
allreduce; we provide the classic ring reduce-scatter + allgather (the
bandwidth-optimal pattern CNTK's 32-bit MPI SGD effectively relies on)
and a reduce+bcast composition for small messages.
"""

from __future__ import annotations

from typing import Any, Generator

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from .base import apply_reduction, coll_tags, local_accumulate_copy, traced
from .bcast import bcast_binomial
from .reduce import reduce_binomial

__all__ = ["allreduce_ring", "allreduce_reduce_bcast", "allreduce"]


@traced("allreduce.ring")
def allreduce_ring(ctx: RankContext, sendbuf: DeviceBuffer,
                   recvbuf: DeviceBuffer,
                   ) -> Generator[Event, Any, None]:
    """Ring allreduce: P-1 reduce-scatter steps + P-1 allgather steps.

    The buffer is cut into P near-equal element-aligned blocks; block i
    accumulates around the ring and ends fully reduced on rank (i+1) mod
    P, then circulates again to all ranks.

    Both phases draw from one audited reservation: reduce-scatter step s
    uses ``tags.tag(s)``, allgather step s uses ``tags.tag((P-1) + s)``.
    (The historical hardcoded ``tag0 + 512 + s`` allgather offset
    collided with reduce-scatter tags once P exceeded 513.)
    """
    P = ctx.size
    me = ctx.rank
    tags = coll_tags(ctx, max(1, 2 * (P - 1)), "allreduce.ring")
    if P == 1:
        if recvbuf is not sendbuf:
            yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
        return

    nbytes = sendbuf.nbytes
    # Element-aligned block partition (4-byte float32 grain).
    grain = 4
    per = (nbytes // grain + P - 1) // P * grain
    blocks = [(i * per, max(0, min(per, nbytes - i * per))) for i in range(P)]

    right = (me + 1) % P
    left = (me - 1) % P
    scratch = ctx.scratch_like(sendbuf, "ring.rx")
    try:
        yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
        # Reduce-scatter: at step s, send block (me-s) and receive+reduce
        # block (me-s-1).
        for s in range(P - 1):
            sb = (me - s) % P
            rb = (me - s - 1) % P
            soff, slen = blocks[sb]
            roff, rlen = blocks[rb]
            sreq = ctx.isend(right, recvbuf, tag=tags.tag(s),
                             offset=soff, nbytes=slen) if slen else None
            if rlen:
                yield from ctx.recv(left, scratch, tag=tags.tag(s),
                                    offset=roff, nbytes=rlen)
                yield from apply_reduction(ctx, recvbuf, scratch, rlen,
                                           offset=roff)
            if sreq is not None:
                yield sreq.wait()
        # Allgather: circulate the fully-reduced blocks.
        for s in range(P - 1):
            sb = (me + 1 - s) % P
            rb = (me - s) % P
            soff, slen = blocks[sb]
            roff, rlen = blocks[rb]
            sreq = ctx.isend(right, recvbuf, tag=tags.tag((P - 1) + s),
                             offset=soff, nbytes=slen) if slen else None
            if rlen:
                yield from ctx.recv(left, recvbuf, tag=tags.tag((P - 1) + s),
                                    offset=roff, nbytes=rlen)
            if sreq is not None:
                yield sreq.wait()
    finally:
        scratch.free()


def allreduce_reduce_bcast(ctx: RankContext, sendbuf: DeviceBuffer,
                           recvbuf: DeviceBuffer, *,
                           root: int = 0) -> Generator[Event, Any, None]:
    """Allreduce as Reduce-to-root followed by Bcast (small messages).

    Buffer contract: unlike plain reduce, *every* rank must supply a
    full-size ``recvbuf`` — non-roots receive the reduced result into it
    during the broadcast phase.  The reduce phase passes it through on
    all ranks (the root reduces into it; elsewhere reduce ignores it),
    then the bcast fills it everywhere.
    """
    if recvbuf is None:
        raise ValueError(
            "allreduce requires recvbuf on every rank (non-roots receive "
            "the result during the bcast phase)")
    yield from reduce_binomial(ctx, sendbuf, recvbuf, root)
    yield from bcast_binomial(ctx, recvbuf, root)


def allreduce(ctx: RankContext, sendbuf: DeviceBuffer,
              recvbuf: DeviceBuffer, *, algorithm: str = "ring",
              ) -> Generator[Event, Any, None]:
    """Blocking MPI_Allreduce (SUM)."""
    if algorithm == "ring":
        yield from allreduce_ring(ctx, sendbuf, recvbuf)
    elif algorithm == "reduce_bcast":
        yield from allreduce_reduce_bcast(ctx, sendbuf, recvbuf)
    else:
        raise KeyError(f"unknown allreduce algorithm {algorithm!r}")
