"""Hierarchical DL-Aware Reduce (HR) — Section 5.

A two-level communicator design: ranks are grouped into *chains* of
``chain_size`` consecutive ranks (a lower-level communicator may span
nodes — the whole point of the design on 2–4 GPU/node systems); chain
leaders form the upper-level communicator.  The reduction runs the lower
level first (chunked chain, pipelined), then the upper level among
leaders (binomial tree or another chain):

- ``CB-k`` — lower chain of size *k*, upper binomial ("chain-binomial").
- ``CC-k`` — chain at both levels ("chain-of-chains"); scales to ~k*k.

Sub-communicators are cached on the parent communicator: they carry the
matching state shared by all member ranks, so every rank of a given
collective must observe the *same* objects.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import Communicator, RankContext
from .base import local_accumulate_copy, traced, validate_knob
from .reduce import reduce_binomial, reduce_chain

__all__ = ["hierarchical_reduce", "hr_plan", "HRConfig", "parse_hr_config"]


class HRConfig:
    """A parsed HR configuration, e.g. ``CB-8``, ``CC-4``, or ``CCB-8``.

    ``levels`` are algorithm names ("chain"/"binomial") from the bottom
    (intra-group) level upward; ``chain_size`` is the group size at each
    split (the paper's *chain-size* runtime parameter).  Two levels give
    the paper's evaluated designs; three or more realize its stated
    extension: *"in future, we can exploit multi-level combinations like
    chain-of-chain combined with a top level binomial for very large
    scale reductions"* (Section 5) — e.g. ``CCB-8``.
    """

    def __init__(self, levels, chain_size: int):
        levels = tuple(levels)
        if len(levels) < 2:
            raise ValueError("an HR config needs at least two levels")
        for algo in levels:
            if algo not in ("chain", "binomial"):
                raise ValueError(f"bad level algorithm {algo!r}")
        if chain_size < 2:
            raise ValueError("chain_size must be >= 2")
        self.levels = levels
        self.chain_size = chain_size

    @property
    def lower(self) -> str:
        """Bottom-level algorithm (two-level compatibility)."""
        return self.levels[0]

    @property
    def upper(self) -> str:
        """Top-level algorithm (two-level compatibility)."""
        return self.levels[-1]

    @property
    def label(self) -> str:
        code = {"chain": "C", "binomial": "B"}
        return ("".join(code[a] for a in self.levels)
                + f"-{self.chain_size}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"HRConfig({self.label})"


def parse_hr_config(label: str) -> HRConfig:
    """Parse labels: ``CB-8`` (chain lower, binomial upper, chain-size
    8), ``CC-4``, or multi-level ``CCB-8`` (chain-of-chain + binomial
    top)."""
    try:
        algos, size = label.strip().upper().split("-")
        names = {"C": "chain", "B": "binomial"}
        levels = tuple(names[ch] for ch in algos)
        return HRConfig(levels, int(size))
    except (ValueError, KeyError, IndexError):
        raise ValueError(f"cannot parse HR config label {label!r}") from None


def hr_plan(comm: Communicator, root: int, chain_size: int
            ) -> Tuple[List[Communicator], Communicator, List[int]]:
    """Build (and cache) the two-level communicator structure.

    Ranks are rotated so the global root leads group 0; groups are
    consecutive blocks of ``chain_size`` ranks; block leaders form the
    upper communicator with the global root at upper-rank 0.

    Returns ``(lower_comms, upper_comm, leaders)`` where ``leaders`` are
    parent-rank ids.
    """
    cache = getattr(comm, "_hr_cache", None)
    if cache is None:
        cache = comm._hr_cache = {}
    key = (root, chain_size)
    if key in cache:
        return cache[key]

    order = [(root + i) % comm.size for i in range(comm.size)]
    groups = [order[i:i + chain_size]
              for i in range(0, comm.size, chain_size)]
    lower_comms = [comm.split(g, name=f"hr.lower{gi}")
                   for gi, g in enumerate(groups)]
    leaders = [g[0] for g in groups]
    upper_comm = comm.split(leaders, name="hr.upper")
    cache[key] = (lower_comms, upper_comm, leaders)
    return cache[key]


def _flat(ctx: RankContext, algo_name: str, sendbuf, recvbuf, root,
          chunk_bytes) -> Generator[Event, Any, None]:
    if algo_name == "chain":
        yield from reduce_chain(ctx, sendbuf, recvbuf, root,
                                chunk_bytes=chunk_bytes)
    else:
        yield from reduce_binomial(ctx, sendbuf, recvbuf, root)


def _multilevel(ctx: RankContext, sendbuf: DeviceBuffer,
                recvbuf: Optional[DeviceBuffer], root: int, levels,
                chain_size: int, chunk_bytes: Optional[int],
                ) -> Generator[Event, Any, None]:
    """One recursion step: split into chains, reduce to leaders, recurse
    over the leader communicator with the remaining levels."""
    comm = ctx.comm
    if comm.size == 1:
        if recvbuf is not None and recvbuf is not sendbuf:
            yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
        return
    if len(levels) == 1 or comm.size <= chain_size:
        # Last level, or too few ranks to split further: run the
        # bottom-most remaining algorithm flat.
        algo = levels[0] if comm.size <= chain_size else levels[-1]
        yield from _flat(ctx, algo, sendbuf, recvbuf, root, chunk_bytes)
        return

    lower_comms, upper_comm, leaders = hr_plan(comm, root, chain_size)

    # --- this level: reduce within my chain to its leader ------------------
    my_lower = None
    for lc in lower_comms:
        sub = ctx.sub_context(lc)
        if sub is not None:
            my_lower = sub
            break
    assert my_lower is not None, "rank missing from HR plan"

    i_am_leader = my_lower.rank == 0
    # Leaders accumulate this level's result into a staging buffer (the
    # global root stages too: the next level needs a *send* buffer
    # distinct from recvbuf).
    lower_out = ctx.scratch_like(sendbuf, "hr.lower_out") if i_am_leader \
        else None
    try:
        yield from _flat(my_lower, levels[0], sendbuf, lower_out, 0,
                         chunk_bytes)
        if not i_am_leader:
            return

        # --- remaining levels among the leaders -----------------------------
        up = ctx.sub_context(upper_comm)
        assert up is not None
        is_global_root = (comm.gpus[root] is ctx.gpu)
        out = recvbuf if is_global_root else None
        yield from _multilevel(up, lower_out, out, 0, levels[1:],
                               chain_size, chunk_bytes)
    finally:
        if lower_out is not None:
            lower_out.free()


@traced("reduce.hr")
def hierarchical_reduce(ctx: RankContext, sendbuf: DeviceBuffer,
                        recvbuf: Optional[DeviceBuffer], root: int = 0, *,
                        config: HRConfig | str,
                        chunk_bytes: Optional[int] = None,
                        ) -> Generator[Event, Any, None]:
    """Multi-level MPI_Reduce (SUM) to ``root``.

    Every rank of ``ctx.comm`` must call this with the same arguments
    (SPMD).  Ranks drop out as soon as they are not leaders of their
    group at some level; the global root supplies ``recvbuf``.
    """
    if isinstance(config, str):
        config = parse_hr_config(config)
    validate_knob(chunk_bytes, "chunk_bytes")
    if ctx.rank == root and recvbuf is None and ctx.comm.size > 1:
        raise ValueError("root must supply recvbuf")
    yield from _multilevel(ctx, sendbuf, recvbuf, root, config.levels,
                           config.chain_size, chunk_bytes)
