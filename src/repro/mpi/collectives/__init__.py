"""Collective operations over the simulated CUDA-aware runtime."""

from .allreduce import allreduce, allreduce_reduce_bcast, allreduce_ring
from .base import (
    COLL_TAG_BASE, TAG_BLOCK, ProtocolViolation, TagBlock, apply_reduction,
    coll_tags, segments,
)
from .bcast import (
    bcast, bcast_binomial, bcast_flat, bcast_scatter_allgather, ibcast,
)
from .gather_scatter import (
    allgather_ring, block_partition, gather_binomial, reduce_scatter_ring,
    scatter_binomial,
)
from .hierarchical import (
    HRConfig, hierarchical_reduce, hr_plan, parse_hr_config,
)
from .reduce import ireduce, reduce, reduce_binomial, reduce_chain
from .resilient import resilient_reduce, shrink_context
from .tuning import (
    CC_SCALING_LIMIT, CHAIN_THRESHOLD_BYTES, IDEAL_CHAIN_SIZE, ReducePlan,
    TuningTable, autotune, select_reduce_plan, tuned_reduce,
)

__all__ = [
    "allreduce", "allreduce_reduce_bcast", "allreduce_ring",
    "COLL_TAG_BASE", "TAG_BLOCK", "ProtocolViolation", "TagBlock",
    "apply_reduction", "coll_tags", "segments",
    "bcast", "bcast_binomial", "bcast_flat", "bcast_scatter_allgather",
    "ibcast",
    "allgather_ring", "block_partition", "gather_binomial",
    "reduce_scatter_ring", "scatter_binomial",
    "HRConfig", "hierarchical_reduce", "hr_plan", "parse_hr_config",
    "ireduce", "reduce", "reduce_binomial", "reduce_chain",
    "resilient_reduce", "shrink_context",
    "CC_SCALING_LIMIT", "CHAIN_THRESHOLD_BYTES", "IDEAL_CHAIN_SIZE",
    "ReducePlan", "TuningTable", "autotune", "select_reduce_plan",
    "tuned_reduce",
]
