"""Flat reduction algorithms: binomial tree and chunked chain.

These are the two building blocks of the paper's Section-5 analysis:

- **Binomial tree** (``reduce_binomial``): log2(P) rounds; each round an
  internal node receives a full buffer and reduces it.  Cost model
  T(Bin) = log(P) * t(b)   — equation (1).
- **Chunked chain** (``reduce_chain``): the buffer is cut into n chunks
  which flow along a directed chain toward the root; each hop overlaps
  the communication and reduction of successive chunks.  Cost model
  T(CC) = (n + P - 2) * t(c), c = b/n   — equation (2).

The reduction operator is SUM (gradient aggregation); when buffers carry
real payloads the arithmetic is actually performed, so correctness tests
can verify byte-exact results through either algorithm.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from ..request import Request
from .base import TagBlock, apply_reduction, as_tag_block, coll_tags, \
    local_accumulate_copy, segments, traced, validate_knob

__all__ = ["reduce_binomial", "reduce_chain", "reduce", "ireduce"]


@traced("reduce.binomial")
def reduce_binomial(ctx: RankContext, sendbuf: DeviceBuffer,
                    recvbuf: Optional[DeviceBuffer], root: int = 0,
                    *, tag_base: Union[int, TagBlock, None] = None,
                    ) -> Generator[Event, Any, None]:
    """Binomial-tree MPI_Reduce (SUM) with per-profile segmentation.

    ``recvbuf`` is required at the root and ignored elsewhere.  Internal
    tree nodes allocate a scratch accumulator and a receive buffer on
    their GPU for the duration of the call.
    """
    P = ctx.size
    me = ctx.rank
    if me == root and recvbuf is None:
        raise ValueError("root must supply recvbuf")
    segs = segments(sendbuf.nbytes, ctx.profile.reduce_segment)
    # Reservation sized by the actual segment count: a fine-grained
    # segmentation of a big buffer may need more than one TAG_BLOCK unit.
    tags = (coll_tags(ctx, len(segs), "reduce.binomial")
            if tag_base is None
            else as_tag_block(tag_base, len(segs), "reduce.binomial"))

    if P == 1:
        if recvbuf is not None and recvbuf is not sendbuf:
            yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
        return

    vrank = (me - root) % P

    # Accumulator: the root reduces straight into recvbuf; interior nodes
    # use device scratch.  Leaves send their sendbuf directly.
    acc: Optional[DeviceBuffer] = None
    scratch: Optional[DeviceBuffer] = None

    def ensure_acc():
        nonlocal acc, scratch
        if acc is None:
            acc = recvbuf if me == root else ctx.scratch_like(
                sendbuf, name="binred.acc")
            scratch = ctx.scratch_like(sendbuf, name="binred.rx")

    try:
        mask = 1
        received_any = False
        while mask < P:
            if vrank & mask:
                # Send the accumulated value to the parent and stop.
                parent = ((vrank & ~mask) + root) % P
                outbuf = acc if received_any else sendbuf
                send_reqs = [
                    ctx.isend(parent, outbuf, tag=tags.tag(k),
                              offset=off, nbytes=n)
                    for k, (off, n) in enumerate(segs)]
                for r in send_reqs:
                    yield r.wait()
                break
            child_v = vrank | mask
            if child_v < P:
                child = (child_v + root) % P
                ensure_acc()
                if not received_any:
                    yield from local_accumulate_copy(ctx, acc, sendbuf)
                    received_any = True
                yield from _segmented_recv_reduce(
                    ctx, acc, scratch, child, tags, segs)
            mask <<= 1
        else:
            # Loop completed without break -> this rank is the root.
            if not received_any:
                ensure_acc()
                yield from local_accumulate_copy(ctx, acc, sendbuf)
    finally:
        if scratch is not None:
            scratch.free()
        if acc is not None and acc is not recvbuf:
            acc.free()


def _segmented_recv_reduce(ctx: RankContext, acc: DeviceBuffer,
                           scratch: DeviceBuffer, child: int, tags: TagBlock,
                           segs) -> Generator[Event, Any, None]:
    """Receive a contribution segment-by-segment and fold it into ``acc``.

    With ``segment_pipelining`` all receives are pre-posted so segment
    k+1 arrives while segment k is being reduced; otherwise (OpenMPI
    profile) each segment completes — receive, reduce, synchronize —
    before the next starts.
    """
    if ctx.profile.segment_pipelining:
        reqs = [ctx.irecv(child, scratch, tag=tags.tag(k), offset=off,
                          nbytes=n)
                for k, (off, n) in enumerate(segs)]
        for req, (off, n) in zip(reqs, segs):
            yield req.wait()
            yield from apply_reduction(ctx, acc, scratch, n, offset=off)
    else:
        for k, (off, n) in enumerate(segs):
            yield from ctx.recv(child, scratch, tag=tags.tag(k),
                                offset=off, nbytes=n)
            yield from apply_reduction(ctx, acc, scratch, n, offset=off)
            sync = ctx.profile.segment_sync_time(n)
            if sync:
                yield ctx.sim.timeout(sync)


@traced("reduce.chain")
def reduce_chain(ctx: RankContext, sendbuf: DeviceBuffer,
                 recvbuf: Optional[DeviceBuffer], root: int = 0,
                 *, chunk_bytes: Optional[int] = None,
                 tag_base: Union[int, TagBlock, None] = None,
                 window: Optional[int] = None,
                 ) -> Generator[Event, Any, None]:
    """Chunked-chain MPI_Reduce (SUM).

    The chain is ordered root, root+1, ..., root+P-1 (mod P).  The last
    process streams its buffer chunk-by-chunk to its left neighbour; each
    interior process receives chunk k, folds in its own chunk k, and
    forwards — a single-sided pipeline terminating at the root
    (Section 5).

    ``window`` bounds the number of pre-posted receives per hop
    (rendezvous flow control).  ``None`` pre-posts everything — infinite
    buffering, which absorbs skew; small windows model real runtimes'
    bounded RNDV buffers, through which pipeline bubbles propagate.
    """
    P = ctx.size
    me = ctx.rank
    if me == root and recvbuf is None:
        raise ValueError("root must supply recvbuf")
    validate_knob(chunk_bytes, "chunk_bytes")
    validate_knob(window, "window")
    chunk = ctx.profile.reduce_segment if chunk_bytes is None else chunk_bytes
    chunks = segments(sendbuf.nbytes, chunk)
    # Sized by chunk count: the chain's whole point is many small chunks,
    # so a large buffer over a tiny chunk_bytes easily exceeds one unit.
    tags = (coll_tags(ctx, len(chunks), "reduce.chain")
            if tag_base is None
            else as_tag_block(tag_base, len(chunks), "reduce.chain"))
    if P == 1:
        if recvbuf is not None and recvbuf is not sendbuf:
            yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
        return

    pos = (me - root) % P            # 0 = root ... P-1 = chain tail
    right = ((pos + 1) + root) % P   # upstream neighbour
    left = ((pos - 1) + root) % P    # downstream neighbour

    if pos == P - 1:
        # Tail: stream own chunks downstream.
        reqs = [ctx.isend(left, sendbuf, tag=tags.tag(k), offset=off,
                          nbytes=n)
                for k, (off, n) in enumerate(chunks)]
        for r in reqs:
            yield r.wait()
        return

    # Interior / root: fold the upstream stream into an accumulator.
    # Receives target a scratch buffer (receiving into ``acc`` directly
    # would overwrite this rank's own contribution before the add).
    acc = recvbuf if pos == 0 else ctx.scratch_like(sendbuf, "chain.acc")
    scratch = ctx.scratch_like(sendbuf, "chain.rx")
    send_reqs = []
    try:
        yield from local_accumulate_copy(ctx, acc, sendbuf)
        if ctx.profile.segment_pipelining:
            if window is None and ctx.profile.pipeline_window:
                # Profile default (MPI_T cvar coll.pipeline_window);
                # 0 keeps the historical all-preposted behaviour.
                window = ctx.profile.pipeline_window
            W = len(chunks) if window is None else window
            rx = [ctx.irecv(right, scratch, tag=tags.tag(k), offset=off,
                            nbytes=n)
                  for k, (off, n) in enumerate(chunks[:W])]
            for k, (off, n) in enumerate(chunks):
                yield rx[k].wait()
                if k + W < len(chunks):
                    off2, n2 = chunks[k + W]
                    rx.append(ctx.irecv(right, scratch, tag=tags.tag(k + W),
                                        offset=off2, nbytes=n2))
                yield from apply_reduction(ctx, acc, scratch, n, offset=off)
                if pos != 0:
                    send_reqs.append(ctx.isend(left, acc, tag=tags.tag(k),
                                               offset=off, nbytes=n))
        else:
            for k, (off, n) in enumerate(chunks):
                yield from ctx.recv(right, scratch, tag=tags.tag(k),
                                    offset=off, nbytes=n)
                yield from apply_reduction(ctx, acc, scratch, n, offset=off)
                if pos != 0:
                    yield from ctx.send(left, acc, tag=tags.tag(k),
                                        offset=off, nbytes=n)
                sync = ctx.profile.segment_sync_time(n)
                if sync:
                    yield ctx.sim.timeout(sync)
        for r in send_reqs:
            yield r.wait()
    finally:
        scratch.free()
        if acc is not recvbuf:
            acc.free()


_ALGORITHMS = {"binomial": reduce_binomial, "chain": reduce_chain}


def reduce(ctx: RankContext, sendbuf: DeviceBuffer,
           recvbuf: Optional[DeviceBuffer], root: int = 0, *,
           algorithm: Optional[str] = None,
           **kwargs) -> Generator[Event, Any, None]:
    """Blocking MPI_Reduce with a selectable flat algorithm."""
    name = algorithm or ctx.profile.flat_reduce_algorithm
    try:
        algo = _ALGORITHMS[name]
    except KeyError:
        raise KeyError(f"unknown reduce algorithm {name!r}")
    yield from algo(ctx, sendbuf, recvbuf, root, **kwargs)


def ireduce(ctx: RankContext, sendbuf: DeviceBuffer,
            recvbuf: Optional[DeviceBuffer], root: int = 0, *,
            algorithm: Optional[str] = None) -> Request:
    """Non-blocking MPI_Ireduce.

    Regardless of profile, the reduction's *computation* does not
    progress asynchronously — MPI runtimes rely on the CPU inside
    MPI_Wait for reduction arithmetic (Section 4.2: "MPI runtimes do not
    provide efficient NBC reduction primitives ... which clearly
    nullifies the overlap potential").  Hence the entire operation is
    deferred to the first ``wait()`` call.  This is precisely why S-Caffe
    needs the helper-thread co-design (SC-OBR) instead of Ireduce.
    """
    req = Request(ctx.sim, label=f"ireduce root={root} r{ctx.rank}")

    def deferred():
        def run():
            try:
                yield from reduce(ctx, sendbuf, recvbuf, root,
                                  algorithm=algorithm)
            except Exception as exc:
                # Deliver failures (revocation, dead peer, transport
                # timeout) through the request; an unwaited failed
                # process would crash the simulation instead.
                req.fail(exc)
                return
            req.complete(None)
        ctx.sim.process(run(), name=f"ireduce.r{ctx.rank}", eager=True)

    req._on_wait = deferred
    return req
