"""Scatter / Gather / Allgather / Reduce-scatter building blocks.

These complete the runtime's collective suite and provide the
composition pieces classic large-message algorithms are built from —
most importantly the van-de-Geijn broadcast (scatter + ring allgather)
in :mod:`.bcast`, which real MVAPICH2 selects for large messages.

Block partitioning convention: a buffer of B bytes over P ranks is cut
into P element-aligned blocks (4-byte grain); rank i owns block i.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from .base import apply_reduction, as_tag_block, coll_tags, traced

__all__ = ["block_partition", "scatter_binomial", "gather_binomial",
           "allgather_ring", "reduce_scatter_ring"]

GRAIN = 4  # float32 element alignment


def block_partition(nbytes: int, P: int) -> List[Tuple[int, int]]:
    """(offset, length) of each rank's block; element-aligned, covers
    the buffer exactly, final blocks may be empty for tiny buffers."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if nbytes % GRAIN:
        raise ValueError(f"buffer must be {GRAIN}-byte aligned")
    per = (nbytes // GRAIN + P - 1) // P * GRAIN
    out = []
    for i in range(P):
        off = min(i * per, nbytes)
        out.append((off, max(0, min(per, nbytes - off))))
    return out


@traced("scatter.binomial")
def scatter_binomial(ctx: RankContext, buf: DeviceBuffer, root: int = 0,
                     *, tag_base: Optional[int] = None,
                     ) -> Generator[Event, Any, None]:
    """Binomial-tree MPI_Scatter of ``buf``'s blocks from ``root``.

    Every rank passes the full-size ``buf``; on completion rank i holds
    (at least) its own block i.  Interior tree nodes relay the contiguous
    half-ranges (the standard minimal-data scatter would send only
    subtree bytes; we relay the subtree's *span*, which for contiguous
    blocks is the same data volume).
    """
    P = ctx.size
    tag = (coll_tags(ctx, 1, "scatter.binomial") if tag_base is None
           else as_tag_block(tag_base, 1, "scatter.binomial")).tag(0)
    if P == 1:
        return
    blocks = block_partition(buf.nbytes, P)
    vrank = (ctx.rank - root) % P

    def span(v_lo: int, v_hi: int) -> Tuple[int, int]:
        """Byte range covering blocks of virtual ranks [v_lo, v_hi)."""
        ranks = [(v + root) % P for v in range(v_lo, min(v_hi, P))]
        offs = [blocks[r][0] for r in ranks]
        ends = [blocks[r][0] + blocks[r][1] for r in ranks]
        return min(offs), max(ends) - min(offs)

    # Receive my subtree's span from the parent (unless root).
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank - mask) + root) % P
            off, n = span(vrank, vrank + mask)
            if n:
                yield from ctx.recv(parent, buf, tag=tag, offset=off,
                                    nbytes=n)
            break
        mask <<= 1

    # Forward child subtrees.
    mask >>= 1
    sends = []
    while mask > 0:
        if vrank + mask < P:
            child = ((vrank + mask) + root) % P
            off, n = span(vrank + mask, vrank + 2 * mask)
            if n:
                sends.append(ctx.isend(child, buf, tag=tag, offset=off,
                                       nbytes=n))
        mask >>= 1
    for req in sends:
        yield req.wait()


def _block_runs(blocks: List[Tuple[int, int]], ranks: List[int]
                ) -> List[Tuple[int, int]]:
    """Merge ``ranks``'s blocks into contiguous (offset, length) runs.

    A rotated rank map (root != 0) makes a virtually-contiguous subtree
    own *non-contiguous* bytes — at most two runs, since the rotation
    wraps once and empty tail blocks only ever trim a run's end.
    """
    runs: List[List[int]] = []
    for off, n in sorted(blocks[r] for r in ranks):
        if n == 0:
            continue
        if runs and runs[-1][0] + runs[-1][1] == off:
            runs[-1][1] += n
        else:
            runs.append([off, n])
    return [(off, n) for off, n in runs]


@traced("gather.binomial")
def gather_binomial(ctx: RankContext, buf: DeviceBuffer, root: int = 0,
                    *, tag_base: Optional[int] = None,
                    ) -> Generator[Event, Any, None]:
    """Binomial-tree MPI_Gather: rank i's block i ends up at ``root``.

    The mirror image of :func:`scatter_binomial` — except that gather
    must transfer *exactly* the subtree's blocks, not their covering
    span: with a rotated rank map a subtree's bytes wrap around the
    buffer, and a span-sized send would overwrite blocks the parent
    already gathered with the child's stale local copy (the wrap-around
    root bug the conformance harness catches).  Hence at most two
    contiguous runs per edge, one tag each.
    """
    P = ctx.size
    tags = (coll_tags(ctx, 2, "gather.binomial") if tag_base is None
            else as_tag_block(tag_base, 2, "gather.binomial"))
    if P == 1:
        return
    blocks = block_partition(buf.nbytes, P)
    vrank = (ctx.rank - root) % P

    def runs(v_lo: int, v_hi: int) -> List[Tuple[int, int]]:
        ranks = [(v + root) % P for v in range(v_lo, min(v_hi, P))]
        return _block_runs(blocks, ranks)

    # Collect child subtrees (ascending mask), then send up.
    mask = 1
    while mask < P:
        if vrank & mask:
            parent = ((vrank - mask) + root) % P
            for i, (off, n) in enumerate(runs(vrank, vrank + mask)):
                yield from ctx.send(parent, buf, tag=tags.tag(i),
                                    offset=off, nbytes=n)
            return
        child_v = vrank | mask
        if child_v < P:
            child = (child_v + root) % P
            for i, (off, n) in enumerate(runs(child_v, child_v + mask)):
                yield from ctx.recv(child, buf, tag=tags.tag(i),
                                    offset=off, nbytes=n)
        mask <<= 1


@traced("allgather.ring")
def allgather_ring(ctx: RankContext, buf: DeviceBuffer,
                   *, tag_base: Optional[int] = None,
                   ) -> Generator[Event, Any, None]:
    """Ring MPI_Allgather: each rank starts holding its block; after
    P-1 steps every rank holds all blocks (bandwidth-optimal)."""
    P = ctx.size
    me = ctx.rank
    tags = (coll_tags(ctx, max(1, P - 1), "allgather.ring")
            if tag_base is None
            else as_tag_block(tag_base, max(1, P - 1), "allgather.ring"))
    if P == 1:
        return
    blocks = block_partition(buf.nbytes, P)
    right = (me + 1) % P
    left = (me - 1) % P
    for s in range(P - 1):
        sb = (me - s) % P
        rb = (me - s - 1) % P
        soff, slen = blocks[sb]
        roff, rlen = blocks[rb]
        sreq = (ctx.isend(right, buf, tag=tags.tag(s), offset=soff,
                          nbytes=slen) if slen else None)
        if rlen:
            yield from ctx.recv(left, buf, tag=tags.tag(s), offset=roff,
                                nbytes=rlen)
        if sreq is not None:
            yield sreq.wait()


@traced("reduce_scatter.ring")
def reduce_scatter_ring(ctx: RankContext, sendbuf: DeviceBuffer,
                        recvbuf: DeviceBuffer,
                        *, tag_base: Optional[int] = None,
                        ) -> Generator[Event, Any, None]:
    """Ring MPI_Reduce_scatter (SUM).

    On completion, rank i holds the fully-reduced block
    ``(i + 1) % P`` of ``recvbuf`` (the classic ring rotation); other
    blocks hold partial sums.  ``recvbuf`` must be full-size; callers
    composing an allreduce follow with :func:`allgather_ring`-style
    circulation starting from the owned block.
    """
    P = ctx.size
    me = ctx.rank
    tags = (coll_tags(ctx, max(1, P - 1), "reduce_scatter.ring")
            if tag_base is None
            else as_tag_block(tag_base, max(1, P - 1), "reduce_scatter.ring"))
    from .base import local_accumulate_copy
    yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
    if P == 1:
        return
    blocks = block_partition(sendbuf.nbytes, P)
    right = (me + 1) % P
    left = (me - 1) % P
    scratch = ctx.scratch_like(sendbuf, "rs.rx")
    try:
        for s in range(P - 1):
            sb = (me - s) % P
            rb = (me - s - 1) % P
            soff, slen = blocks[sb]
            roff, rlen = blocks[rb]
            sreq = (ctx.isend(right, recvbuf, tag=tags.tag(s), offset=soff,
                              nbytes=slen) if slen else None)
            if rlen:
                yield from ctx.recv(left, scratch, tag=tags.tag(s),
                                    offset=roff, nbytes=rlen)
                yield from apply_reduction(ctx, recvbuf, scratch, rlen,
                                           offset=roff)
            if sreq is not None:
                yield sreq.wait()
    finally:
        scratch.free()
