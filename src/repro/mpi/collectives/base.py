"""Shared helpers for collective algorithms.

Tag discipline
--------------
Collectives allocate tags from a reserved space above user tags.  Every
rank keeps a per-communicator collective sequence number; since MPI
requires all ranks to invoke collectives on a communicator in the same
order, equal sequence numbers across ranks identify the same logical
collective.  Each collective gets a block of ``TAG_BLOCK`` tags for its
internal chunk messages.

Reduction arithmetic
--------------------
:func:`apply_reduction` charges the profile-appropriate cost: a GPU
kernel for DL-aware runtimes, or a D2H / CPU-sum / H2D round-trip for
host-based runtimes (the MV2/OpenMPI behaviour the paper identifies as
the large-message bottleneck, Section 3.4).
"""

from __future__ import annotations

import functools
from typing import Any, Generator, List, Tuple

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext

__all__ = ["COLL_TAG_BASE", "TAG_BLOCK", "coll_tag_base", "segments",
           "apply_reduction", "local_accumulate_copy", "traced"]

#: User pt2pt tags must stay below this value.
COLL_TAG_BASE = 1 << 20
#: Tags reserved per collective invocation (chunk index space).
TAG_BLOCK = 1 << 12


def coll_tag_base(ctx: RankContext) -> int:
    """Reserve this collective's tag block (same value on every rank)."""
    comm = ctx.comm
    if not hasattr(comm, "_coll_seq"):
        comm._coll_seq = [0] * comm.size
    seq = comm._coll_seq[ctx.rank]
    comm._coll_seq[ctx.rank] += 1
    return COLL_TAG_BASE + seq * TAG_BLOCK


def traced(op_name: str):
    """Decorate a collective sub-protocol so that, when a profiler is
    installed, every span recorded while it runs (including by processes
    it spawns) carries ``op=op_name``.

    Zero-cost when profiling is off: the undecorated generator is
    returned unchanged.  Nested collectives (HR calling flat reduces on
    sub-communicators) stack naturally — the innermost tag wins.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(ctx: RankContext, *args, **kwargs):
            gen = fn(ctx, *args, **kwargs)
            rec = ctx.sim.recorder
            if rec is None:
                return gen
            return _op_scope(rec, op_name, gen)
        return wrapper
    return deco


def _op_scope(rec, op_name: str, gen: Generator
              ) -> Generator[Event, Any, Any]:
    # The body only runs at the first next(), inside the driving process
    # — op_push keys the tag to that process.
    proc = rec.op_push(op_name)
    try:
        return (yield from gen)
    finally:
        rec.op_pop(proc)


def segments(nbytes: int, segment: int) -> List[Tuple[int, int]]:
    """Split ``nbytes`` into (offset, length) segments of at most
    ``segment`` bytes — element-aligned as long as ``segment`` is."""
    if nbytes <= 0:
        return [(0, nbytes)] if nbytes == 0 else []
    segment = max(1, segment)
    out = []
    off = 0
    while off < nbytes:
        out.append((off, min(segment, nbytes - off)))
        off += segment
    return out


def apply_reduction(ctx: RankContext, acc: DeviceBuffer,
                    contrib: DeviceBuffer, nbytes: int, *, offset: int = 0,
                    ) -> Generator[Event, Any, None]:
    """``acc[offset:offset+n] += contrib[offset:offset+n]`` with
    profile-appropriate cost and real payload math when present."""
    if ctx.profile.gpu_reduce:
        yield from ctx.cuda.reduce_kernel(acc, contrib, nbytes, offset=offset)
    else:
        # Host-based reduction: the contribution is already host-resident
        # (it arrived through staged transport), and the runtime keeps the
        # accumulator host-side across the algorithm; the charged cost is
        # the CPU sum plus pushing the updated chunk back to the device.
        yield from ctx.cuda.cpu_reduce(ctx.gpu.node_index, acc, contrib,
                                       nbytes, offset=offset)
        yield from ctx.cuda.memcpy_h2d(acc, None, nbytes)


def local_accumulate_copy(ctx: RankContext, dst: DeviceBuffer,
                          src: DeviceBuffer,
                          ) -> Generator[Event, Any, None]:
    """Seed an accumulator: ``dst[:] = src`` on-device (D2D cost)."""
    if dst.nbytes < src.nbytes:
        raise ValueError("accumulator smaller than operand")
    yield from ctx.cuda.memcpy_d2d(ctx.gpu, src.nbytes)
    dst.copy_payload_from(src, nbytes=src.nbytes)
