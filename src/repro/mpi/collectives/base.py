"""Shared helpers for collective algorithms.

Tag discipline
--------------
Collectives allocate tags from a reserved space above user tags.  Every
rank keeps a per-communicator collective sequence number; since MPI
requires all ranks to invoke collectives on a communicator in the same
order, equal sequence numbers across ranks identify the same logical
collective.  Each invocation reserves a :class:`TagBlock` sized for the
number of distinct tags it will actually use (chunk count, 2x ring
steps, ...), rounded up to whole ``TAG_BLOCK`` units — so a 256 MB
buffer cut into tiny chunks reserves several units instead of silently
spilling into the next collective's tag space (the pre-harness overflow
bug).  :meth:`TagBlock.tag` is the only way tags leave a block; an
index outside the reservation raises :class:`ProtocolViolation` instead
of cross-matching at scale.

Reduction arithmetic
--------------------
:func:`apply_reduction` charges the profile-appropriate cost: a GPU
kernel for DL-aware runtimes, or a D2H / CPU-sum / H2D round-trip for
host-based runtimes (the MV2/OpenMPI behaviour the paper identifies as
the large-message bottleneck, Section 3.4).
"""

from __future__ import annotations

import functools
from typing import Any, Generator, List, Tuple

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext

__all__ = ["COLL_TAG_BASE", "TAG_BLOCK", "ProtocolViolation", "TagBlock",
           "coll_tags", "coll_tag_base", "as_tag_block", "segments",
           "apply_reduction", "local_accumulate_copy", "traced",
           "validate_knob"]

#: User pt2pt tags must stay below this value.
COLL_TAG_BASE = 1 << 20
#: Tag-reservation granularity: blocks are sized in whole multiples of
#: this, so sequence numbers advance uniformly across ranks even when a
#: collective needs more than one unit.
TAG_BLOCK = 1 << 12


def validate_knob(value, name: str, minimum: int = 1):
    """Validate an explicitly-passed tuning knob (``chunk_bytes``,
    ``window``, ...).

    ``None`` means "use the profile default" and passes through; an
    explicit value must be an integer ``>= minimum``.  Degenerate values
    raise :class:`ValueError` instead of being silently coerced — a
    tuner emitting ``chunk_bytes=0`` must hear about it, not have the
    knob invisibly replaced by the default (the old ``value or default``
    idiom did exactly that).
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"{name} must be an int >= {minimum} or None, "
            f"got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


class ProtocolViolation(RuntimeError):
    """A collective broke its own wire contract (tag out of reservation,
    mismatched invocation order, ...).  Raised eagerly at the offending
    call site rather than surfacing later as cross-matched payloads."""


class TagBlock:
    """A contiguous reservation of ``count`` collective tags.

    ``tag(k)`` is the only sanctioned way to mint a tag: it bounds-checks
    ``k`` against the reservation, turning would-be tag-space overflows
    (the historical ``tag0 + k`` arithmetic with k unbounded) into an
    immediate :class:`ProtocolViolation`.
    """

    __slots__ = ("base", "count", "name")

    def __init__(self, base: int, count: int, name: str = ""):
        self.base = base
        self.count = count
        self.name = name

    def tag(self, k: int) -> int:
        if not 0 <= k < self.count:
            raise ProtocolViolation(
                f"tag index {k} outside reservation of {self.count} "
                f"for {self.name or 'collective'} (base {self.base:#x})")
        return self.base + k

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TagBlock {self.name or '?'} base={self.base:#x} "
                f"count={self.count}>")


def coll_tags(ctx: RankContext, count: int, name: str = "") -> TagBlock:
    """Reserve ``count`` tags for this collective invocation.

    All ranks calling collectives on a communicator in the same order —
    and computing the same ``count`` from the same arguments — receive
    the same block.  The per-rank sequence number advances by the number
    of ``TAG_BLOCK`` units consumed, so a single jumbo collective (e.g.
    a chain reduce with >4096 chunks) cannot collide with the next one.
    """
    count = max(1, count)
    comm = ctx.comm
    if not hasattr(comm, "_coll_seq"):
        comm._coll_seq = [0] * comm.size
    seq = comm._coll_seq[ctx.rank]
    units = -(-count // TAG_BLOCK)
    comm._coll_seq[ctx.rank] = seq + units
    block = TagBlock(COLL_TAG_BASE + seq * TAG_BLOCK, count, name)
    chk = ctx.sim.checker
    if chk is not None:
        chk.on_collective(comm, ctx.rank, seq, block)
    tel = ctx.sim.telemetry
    if tel is not None:
        tel.on_coll_block(comm, ctx.rank, seq, block)
    return block


def coll_tag_base(ctx: RankContext) -> int:
    """Legacy entry point: reserve one unit and return its base tag.

    Kept for external callers that still do raw ``tag0 + k`` arithmetic;
    in-tree collectives use :func:`coll_tags` so indices are checked.
    """
    return coll_tags(ctx, TAG_BLOCK).base


def as_tag_block(tag_base, count: int, name: str = "") -> TagBlock:
    """Adapt a ``tag_base=`` argument (legacy int or TagBlock) to a
    :class:`TagBlock` covering ``count`` tags.

    Ints come from callers that reserved space themselves (or composite
    collectives passing sub-ranges); they are wrapped without a fresh
    reservation and without lockstep registration.
    """
    if isinstance(tag_base, TagBlock):
        return tag_base
    return TagBlock(int(tag_base), max(1, count), name)


def traced(op_name: str):
    """Decorate a collective sub-protocol so that, when a profiler is
    installed, every span recorded while it runs (including by processes
    it spawns) carries ``op=op_name``.

    Zero-cost when profiling is off: the undecorated generator is
    returned unchanged.  Nested collectives (HR calling flat reduces on
    sub-communicators) stack naturally — the innermost tag wins.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(ctx: RankContext, *args, **kwargs):
            gen = fn(ctx, *args, **kwargs)
            rec = ctx.sim.recorder
            if rec is None:
                return gen
            return _op_scope(rec, op_name, gen)
        return wrapper
    return deco


def _op_scope(rec, op_name: str, gen: Generator
              ) -> Generator[Event, Any, Any]:
    # The body only runs at the first next(), inside the driving process
    # — op_push keys the tag to that process.
    proc = rec.op_push(op_name)
    try:
        return (yield from gen)
    finally:
        rec.op_pop(proc)


def segments(nbytes: int, segment: int) -> List[Tuple[int, int]]:
    """Split ``nbytes`` into (offset, length) segments of at most
    ``segment`` bytes — element-aligned as long as ``segment`` is."""
    if nbytes <= 0:
        return [(0, nbytes)] if nbytes == 0 else []
    segment = max(1, segment)
    out = []
    off = 0
    while off < nbytes:
        out.append((off, min(segment, nbytes - off)))
        off += segment
    return out


def apply_reduction(ctx: RankContext, acc: DeviceBuffer,
                    contrib: DeviceBuffer, nbytes: int, *, offset: int = 0,
                    ) -> Generator[Event, Any, None]:
    """``acc[offset:offset+n] += contrib[offset:offset+n]`` with
    profile-appropriate cost and real payload math when present."""
    if ctx.profile.gpu_reduce:
        yield from ctx.cuda.reduce_kernel(acc, contrib, nbytes, offset=offset)
    else:
        # Host-based reduction: the contribution is already host-resident
        # (it arrived through staged transport), and the runtime keeps the
        # accumulator host-side across the algorithm; the charged cost is
        # the CPU sum plus pushing the updated chunk back to the device.
        yield from ctx.cuda.cpu_reduce(ctx.gpu.node_index, acc, contrib,
                                       nbytes, offset=offset)
        yield from ctx.cuda.memcpy_h2d(acc, None, nbytes)


def local_accumulate_copy(ctx: RankContext, dst: DeviceBuffer,
                          src: DeviceBuffer,
                          ) -> Generator[Event, Any, None]:
    """Seed an accumulator: ``dst[:] = src`` on-device (D2D cost)."""
    if dst.nbytes < src.nbytes:
        raise ValueError("accumulator smaller than operand")
    yield from ctx.cuda.memcpy_d2d(ctx.gpu, src.nbytes)
    dst.copy_payload_from(src, nbytes=src.nbytes)
