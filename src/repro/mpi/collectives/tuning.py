"""Algorithm selection — the "HR (Tuned)" design of Section 6.5.

The paper tunes the reduction design over (message size, process count):

- small messages: the flat binomial tree wins (latency-bound);
- "for buffer sizes greater than eight megabytes (8M) ... chunked chain
  (CC) performs much better than the binomial tree";
- "eight is the ideal P for [the] CC approach";
- "two-level chains can only scale to a process count of 64";
- beyond that, chain-binomial (CB) with chain size 8.

:func:`select_reduce_plan` encodes exactly that decision table, and
:func:`tuned_reduce` executes the chosen design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ...cuda import DeviceBuffer
from ...sim import Event
from ..communicator import RankContext
from .hierarchical import hierarchical_reduce
from .reduce import reduce_binomial, reduce_chain

__all__ = ["ReducePlan", "TuningTable", "autotune", "select_reduce_plan",
           "tuned_reduce", "IDEAL_CHAIN_SIZE", "CC_SCALING_LIMIT",
           "CHAIN_THRESHOLD_BYTES"]

#: Experimentally-ideal chain length (Section 5: "eight is the ideal P").
IDEAL_CHAIN_SIZE = 8
#: Maximum process count two-level chains scale to (Section 5).
CC_SCALING_LIMIT = 64
#: Message size above which chain designs beat binomial (Section 5: 8 MB).
CHAIN_THRESHOLD_BYTES = 8 << 20
#: Beyond this process count two levels are not enough: use the paper's
#: stated extension, chain-of-chain + binomial top (CCB).
THREE_LEVEL_THRESHOLD = 512


@dataclass(frozen=True)
class ReducePlan:
    """A tuned reduction decision."""

    kind: str                      # "binomial" | "chain" | "hierarchical"
    hr_label: Optional[str] = None  # e.g. "CB-8" when kind == hierarchical

    @property
    def label(self) -> str:
        return self.hr_label or self.kind


class TuningTable:
    """A measured (message size -> best design) table for one process
    count — the "tuning infrastructure" of Section 6.5: *"HR (Tuned) is
    the new tuned design that builds on top of the tuning infrastructure
    in MVAPICH2 and efficiently uses the fastest combination for the
    desired message size and process count range."*

    Built by :func:`autotune` from offline micro-benchmark sweeps on the
    target system (exactly how the real MVAPICH2 tables are produced).
    """

    def __init__(self, P: int, entries):
        # entries: sorted list of (max_nbytes_exclusive_or_None, design)
        if not entries:
            raise ValueError("tuning table needs at least one entry")
        self.P = P
        self.entries = list(entries)

    def select(self, nbytes: int) -> str:
        for bound, design in self.entries:
            if bound is None or nbytes < bound:
                return design
        return self.entries[-1][1]  # pragma: no cover - defensive

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TuningTable P={self.P} {self.entries}>"


def autotune(cluster_factory, P: int, sizes, designs, *,
             runs_per_point: int = 1) -> "TuningTable":
    """Build a :class:`TuningTable` by sweeping the candidate designs.

    ``cluster_factory()`` must return a fresh cluster on its own
    simulator; each (size, design) point runs an OMB-style MPI_Reduce
    and the fastest design wins its size range.  ``designs`` entries are
    "flat", "chain", or HR labels ("CB-8", ...).
    """
    from ...cuda import DeviceBuffer
    from ..runtime import MPIRuntime
    from .hierarchical import hierarchical_reduce
    from .reduce import reduce_binomial, reduce_chain

    def measure(design: str, nbytes: int) -> float:
        cluster = cluster_factory()
        rt = MPIRuntime(cluster, "mv2gdr")
        comm = rt.world(P)

        def program(ctx):
            sendbuf = DeviceBuffer(ctx.gpu, nbytes)
            recvbuf = (DeviceBuffer(ctx.gpu, nbytes)
                       if ctx.rank == 0 else None)
            if design == "flat":
                yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
            elif design == "chain":
                yield from reduce_chain(ctx, sendbuf, recvbuf, 0)
            else:
                yield from hierarchical_reduce(ctx, sendbuf, recvbuf, 0,
                                               config=design)
            return ctx.sim.now

        return max(rt.execute(comm, program))

    sizes = sorted(sizes)
    winners = []
    for nbytes in sizes:
        best = min(designs, key=lambda d: measure(d, nbytes))
        winners.append(best)
    entries = []
    for i, (nbytes, win) in enumerate(zip(sizes, winners)):
        bound = sizes[i + 1] if i + 1 < len(sizes) else None
        if entries and entries[-1][1] == win:
            entries[-1] = (bound, win)
        else:
            entries.append((bound, win))
    return TuningTable(P, entries)


def select_reduce_plan(P: int, nbytes: int,
                       *, chain_size: int = IDEAL_CHAIN_SIZE) -> ReducePlan:
    """The tuned decision table over (process count, message size)."""
    if P <= 1:
        return ReducePlan("binomial")
    if nbytes < CHAIN_THRESHOLD_BYTES:
        if nbytes < (256 << 10) or P <= 2:
            return ReducePlan("binomial")
        # Mid-size messages: hierarchy already pays off, binomial on top.
        if P <= chain_size:
            return ReducePlan("chain")
        return ReducePlan("hierarchical", f"CB-{chain_size}")
    # Large (DL-scale) messages:
    if P <= chain_size:
        return ReducePlan("chain")
    if P <= CC_SCALING_LIMIT:
        return ReducePlan("hierarchical", f"CC-{chain_size}")
    if P <= THREE_LEVEL_THRESHOLD:
        return ReducePlan("hierarchical", f"CB-{chain_size}")
    # "In future, we can exploit multi-level combinations like
    # chain-of-chain combined with a top level binomial for very large
    # scale reductions" (Section 5) — realized here.
    return ReducePlan("hierarchical", f"CCB-{chain_size}")


def _table_knobs(ctx: RankContext, nbytes: int):
    """Committed tuning-table consult (``repro tune`` output).

    Stock profiles only: any CVAR write derives a new profile that no
    longer equals its registered original, and an explicit MPI_T write
    must always win over the offline table.  Lazy import — the tables
    module is dependency-light (no cycle), and the no-table case stays
    off the hot path.
    """
    from ...tune import tables
    from ..profiles import is_stock_profile
    if not tables.enabled() or not is_stock_profile(ctx.profile):
        return None
    return tables.lookup(ctx.profile.name, "reduce",
                         tables.comm_topology(ctx.comm), ctx.size, nbytes)


def tuned_reduce(ctx: RankContext, sendbuf: DeviceBuffer,
                 recvbuf: Optional[DeviceBuffer], root: int = 0, *,
                 chain_size: Optional[int] = None,
                 ) -> Generator[Event, Any, None]:
    """MPI_Reduce using the tuned design for this (P, nbytes) point.

    This is the entry point S-Caffe's gradient aggregation uses when the
    runtime profile advertises ``hierarchical_reduce`` (MVAPICH2-GDR with
    the proposed designs); other profiles fall back to their flat
    algorithm.

    Dispatch order: committed tuning table (stock profile, no explicit
    ``chain_size``) first, then the Section-5 decision table of
    :func:`select_reduce_plan` as the fallback.
    """
    if not ctx.profile.hierarchical_reduce:
        yield from reduce_binomial(ctx, sendbuf, recvbuf, root)
        return
    wd = getattr(ctx.runtime, "watchdog", None)
    if wd is not None and wd.degraded_mode:
        # A flagged straggler (degraded link / throttled GPU) poisons
        # chain and hierarchical schedules, whose pipelines serialize on
        # the slow hop; the binomial tree touches it in O(log P) rounds
        # at worst.  Degrade gracefully rather than tune for a topology
        # that no longer exists.
        yield from reduce_binomial(ctx, sendbuf, recvbuf, root)
        return
    if chain_size is None:
        knobs = _table_knobs(ctx, sendbuf.nbytes)
        if knobs is not None:
            yield from _dispatch_knobs(ctx, sendbuf, recvbuf, root, knobs)
            return
        # Default from the profile so the MPI_T cvar (coll.chain_size)
        # steers the decision table without threading an argument.
        chain_size = ctx.profile.chain_size
    plan = select_reduce_plan(ctx.size, sendbuf.nbytes,
                              chain_size=chain_size)
    if plan.kind == "binomial":
        yield from reduce_binomial(ctx, sendbuf, recvbuf, root)
    elif plan.kind == "chain":
        yield from reduce_chain(ctx, sendbuf, recvbuf, root)
    else:
        yield from hierarchical_reduce(ctx, sendbuf, recvbuf, root,
                                       config=plan.hr_label)


def _dispatch_knobs(ctx: RankContext, sendbuf: DeviceBuffer,
                    recvbuf: Optional[DeviceBuffer], root: int,
                    knobs) -> Generator[Event, Any, None]:
    """Execute a tuning-table entry: ``design`` is "binomial", "chain",
    or an HR label; ``chunk_bytes`` (optional) feeds the chain pipelines
    and is validated by the algorithms themselves."""
    design = knobs.get("design")
    chunk_bytes = knobs.get("chunk_bytes")
    if design == "binomial":
        yield from reduce_binomial(ctx, sendbuf, recvbuf, root)
    elif design == "chain":
        yield from reduce_chain(ctx, sendbuf, recvbuf, root,
                                chunk_bytes=chunk_bytes)
    else:
        yield from hierarchical_reduce(ctx, sendbuf, recvbuf, root,
                                       config=design,
                                       chunk_bytes=chunk_bytes)
