"""MPI runtime profiles.

One engine, three behaviours.  The paper compares three real runtimes
(Section 6.5, Fig. 12); what actually differed between them is *how a
GPU-resident buffer moves and where reductions compute*.  Each profile
encodes those mechanisms:

``mv2gdr``
    The proposed co-designed runtime (MVAPICH2-GDR 2.2 + HR designs):
    GPUDirect RDMA for inter-node transfers, CUDA IPC intra-node,
    GPU-kernel reductions, large pipeline chunks, hierarchical reduce
    available, asynchronous NBC progression.

``mv2``
    MVAPICH2 2.2RC1 baseline: CUDA-aware with pinned host-staged
    pipelining (GDRCOPY helps latency, not large-message bandwidth),
    CPU-side reductions, flat binomial reduce only.

``openmpi``
    OpenMPI v1.10.2: CUDA support via *small-segment* host staging in the
    coll/tuned reduction (default segments), pageable staging buffers, no
    IPC for collectives, CPU-side reductions, and per-segment
    synchronization — the combination behind the up-to-133x gap.

``nccl``
    The framework-level contender from the follow-up "MPI or NCCL?"
    study: a :class:`NCCLProfile` with the same device-native transport
    mechanisms as ``mv2gdr`` (IPC, GDR, GPU reductions) plus the knobs
    that select between topology-aware rings and double binary trees
    (:mod:`repro.nccl`).

The module doubles as the *backend registry*: anything that needs the
list of runnable backends (CLI choices, the conformance matrix's
backend axis) derives it from :func:`profile_names` instead of
hardcoding names.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, replace
from typing import List

__all__ = ["MPIProfile", "NCCLProfile", "MV2GDR", "MV2", "OPENMPI", "NCCL",
           "get_profile", "is_stock_profile", "profile_names",
           "register_profile"]

KiB = 1 << 10
MiB = 1 << 20


@dataclass(frozen=True)
class MPIProfile:
    """Mechanism knobs that distinguish MPI runtimes."""

    name: str
    #: Direct GPU<->NIC DMA for inter-node device buffers (GPUDirect RDMA).
    gdr: bool
    #: CUDA IPC peer copies for intra-node device buffers.
    ipc: bool
    #: Chunk size for pipelined host-staged transfers.
    pipeline_chunk: int
    #: Internal segmentation of reduction algorithms (per-segment
    #: recv+reduce+forward granularity).
    reduce_segment: int
    #: Perform reduction arithmetic with GPU kernels (else host CPU).
    gpu_reduce: bool
    #: Staging buffers are page-locked (pinned).
    pinned_staging: bool
    #: Segments of a reduction processed with pipelining (overlap recv of
    #: segment k+1 with compute of k); OpenMPI-era collectives serialize.
    segment_pipelining: bool
    #: Extra synchronization cost (stream sync / event query) paid by
    #: non-pipelined segment processing, expressed in seconds per
    #: *full* ``reduce_segment``; partial segments pay pro-rata (the
    #: underlying cost is per internal copy block).
    per_segment_sync: float
    #: Hierarchical (multi-level communicator) reduce designs available.
    hierarchical_reduce: bool
    #: Ibcast progresses asynchronously (hardware/async progress).  The
    #: paper notes runtimes *do* progress Ibcast in the background but do
    #: NOT asynchronously progress Ireduce computation (Section 4.2).
    async_progress: bool
    #: Point-to-point eager/rendezvous switchover.
    eager_threshold: int = 16 * KiB
    #: Default flat reduce algorithm.
    flat_reduce_algorithm: str = "binomial"
    #: Use GDR only up to this message size: the PCIe root complex caps
    #: GDR *reads* well below pinned-DMA bandwidth on Haswell-era
    #: chipsets, so real MVAPICH2-GDR switches to pipelined host staging
    #: for large messages (the GPUDIRECT_LIMIT tunable).
    gdr_threshold: int = 128 * KiB
    #: Chain length k for the CB-k/CC-k/CCB-k hierarchical reduce
    #: designs (the paper's ideal chain size; exposed as an MPI_T cvar).
    chain_size: int = 8
    #: Pre-posted receives per chain-reduce hop; 0 means unbounded (all
    #: chunk receives posted up front).  Exposed as an MPI_T cvar.
    pipeline_window: int = 0

    def derive(self, **kwargs) -> "MPIProfile":
        """A copy with some knobs replaced (for ablations)."""
        return replace(self, **kwargs)

    def segment_sync_time(self, nbytes: int) -> float:
        """Synchronization charge for a segment of ``nbytes``."""
        if not self.per_segment_sync:
            return 0.0
        return self.per_segment_sync * nbytes / self.reduce_segment


MV2GDR = MPIProfile(
    name="mv2gdr",
    gdr=True,
    ipc=True,
    pipeline_chunk=512 * KiB,
    reduce_segment=4 * MiB,
    gpu_reduce=True,
    pinned_staging=True,
    segment_pipelining=True,
    per_segment_sync=0.0,
    hierarchical_reduce=True,
    async_progress=True,
)

MV2 = MPIProfile(
    name="mv2",
    gdr=True,
    ipc=True,
    pipeline_chunk=2 * MiB,
    reduce_segment=2 * MiB,
    gpu_reduce=False,
    pinned_staging=True,
    segment_pipelining=True,
    per_segment_sync=0.0,
    hierarchical_reduce=False,
    async_progress=True,
)

#: OpenMPI v1.10.2's CUDA collectives move device buffers through
#: pageable host staging in small internal blocks (~8 KiB), each with a
#: synchronous cuMemcpy (launch + sync ~ 31 us).  We simulate at a 1 MiB
#: segment granularity to keep the event count tractable and charge the
#: aggregated per-block synchronization as ``per_segment_sync``:
#: (1 MiB / 8 KiB) blocks x 2 copies x ~15.6 us = 4 ms per segment.
OPENMPI = MPIProfile(
    name="openmpi",
    gdr=False,
    ipc=False,
    pipeline_chunk=1 * MiB,
    reduce_segment=1 * MiB,
    gpu_reduce=False,
    pinned_staging=False,
    segment_pipelining=False,
    per_segment_sync=4.0e-3,
    hierarchical_reduce=False,
    async_progress=False,
)

@dataclass(frozen=True)
class NCCLProfile(MPIProfile):
    """Knobs specific to the simulated NCCL backend (:mod:`repro.nccl`).

    Inherits every transport mechanism knob — the transport layer treats
    NCCL like a device-native runtime (IPC + GDR + GPU reductions) — and
    adds the algorithm-selection knobs NCCL itself tunes.
    """

    #: Fine-grained pipelining chunk for ring/tree collectives: each
    #: ring step (and each tree edge) moves the payload in chunks of at
    #: most this many bytes so the reduction of chunk k overlaps the
    #: transfer of chunk k+1.  Exposed as the ``nccl.ring_chunk`` cvar.
    ring_chunk: int = 256 * KiB
    #: Allreduce/broadcast payloads at or below this size use the double
    #: binary trees (latency-optimal, log2 P depth); larger payloads use
    #: the topology-aware rings (bandwidth-optimal).  Exposed as the
    #: ``nccl.tree_threshold`` cvar.
    tree_threshold: int = 256 * KiB


#: The simulated NCCL backend.  Transport mechanisms mirror ``mv2gdr``
#: (that is the point of the crossover study: same wires, different
#: collective algorithms); hierarchical reduce is an MPI-side design and
#: stays off.
NCCL = NCCLProfile(
    name="nccl",
    gdr=True,
    ipc=True,
    pipeline_chunk=512 * KiB,
    reduce_segment=4 * MiB,
    gpu_reduce=True,
    pinned_staging=True,
    segment_pipelining=True,
    per_segment_sync=0.0,
    hierarchical_reduce=False,
    async_progress=True,
)

_PROFILES = {p.name: p for p in (MV2GDR, MV2, OPENMPI, NCCL)}


def register_profile(profile: MPIProfile) -> None:
    """Add (or replace) a backend profile in the registry.

    Names are normalized to lowercase — :func:`get_profile` lowercases
    its lookup, so a mixed-case registration would otherwise be
    unreachable.  The stored profile carries the normalized name too,
    keeping ``get_profile(name).name == name.lower()``.
    """
    key = profile.name.lower()
    if profile.name != key:
        profile = replace(profile, name=key)
    _PROFILES[key] = profile


def profile_names() -> List[str]:
    """Registered backend names, in registration order."""
    return list(_PROFILES)


def is_stock_profile(profile: MPIProfile) -> bool:
    """True when ``profile`` still equals its registered original.

    Any ``derive()`` — which is what every CVAR write goes through —
    breaks the dataclass equality, so this is the gate the tuning-table
    consult uses: an explicitly hand-tuned profile must never be
    second-guessed by an offline table (explicit MPI_T writes win).
    """
    base = _PROFILES.get(profile.name)
    return base is not None and base == profile


def get_profile(name: str) -> MPIProfile:
    """Look up a profile by name (``mv2gdr``/``mv2``/``openmpi``/``nccl``)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        hint = ""
        close = difflib.get_close_matches(name.lower(), _PROFILES, n=1)
        if close:
            hint = f" (did you mean {close[0]!r}?)"
        raise KeyError(
            f"unknown MPI profile {name!r}; choose from "
            f"{sorted(_PROFILES)}{hint}")
