"""Simulated CUDA-aware MPI runtime (the co-designed communication layer)."""

from . import collectives, omb
from .communicator import Communicator, MessageStatus, RankContext
from .failure import CommRevoked, FailureDetector, RankFailure
from .profiles import (
    MPIProfile, MV2, MV2GDR, NCCL, NCCLProfile, OPENMPI, get_profile,
    profile_names, register_profile,
)
from .request import (
    ANY_SOURCE, ANY_TAG, Request, RequestTimeout, waitall, waitany,
)
from .rma import Window, create_window
from .runtime import MPIRuntime
from .transport import (
    ChecksumError, DeviceTransport, IntegrityError, TransportMetrics,
    TransportTimeout,
)
from .watchdog import CollectiveTimeout, CollectiveWatchdog

__all__ = [
    "collectives", "omb",
    "Communicator", "MessageStatus", "RankContext",
    "CommRevoked", "FailureDetector", "RankFailure",
    "MPIProfile", "MV2", "MV2GDR", "NCCL", "NCCLProfile", "OPENMPI",
    "get_profile", "profile_names", "register_profile",
    "ANY_SOURCE", "ANY_TAG", "Request", "RequestTimeout",
    "waitall", "waitany",
    "MPIRuntime", "DeviceTransport", "TransportMetrics", "TransportTimeout",
    "ChecksumError", "IntegrityError",
    "CollectiveTimeout", "CollectiveWatchdog",
    "Window", "create_window",
]
