"""Simulated CUDA-aware MPI runtime (the co-designed communication layer)."""

from . import collectives, omb
from .communicator import Communicator, MessageStatus, RankContext
from .profiles import MPIProfile, MV2, MV2GDR, OPENMPI, get_profile
from .request import ANY_SOURCE, ANY_TAG, Request, waitall, waitany
from .rma import Window, create_window
from .runtime import MPIRuntime
from .transport import DeviceTransport

__all__ = [
    "collectives", "omb",
    "Communicator", "MessageStatus", "RankContext",
    "MPIProfile", "MV2", "MV2GDR", "OPENMPI", "get_profile",
    "ANY_SOURCE", "ANY_TAG", "Request", "waitall", "waitany",
    "MPIRuntime", "DeviceTransport",
    "Window", "create_window",
]
