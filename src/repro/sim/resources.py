"""Shared-resource models: serialized links, engines, and stores.

Physical resources in the cluster model (PCIe links, NIC ports, GPU copy
engines, LMDB read locks) are contended.  The canonical contention model
used throughout this repo is *FIFO serialization*: a transfer occupies the
resource for its full duration, and queued requests observe the backlog.
This captures the first-order effect the paper's co-designs exploit
(communication serializes on links; overlap hides it behind compute).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from .core import Event, PENDING, Simulator

__all__ = ["Resource", "BandwidthLink", "Store"]


class Resource:
    """A capacity-limited resource with FIFO grant order.

    Usage (inside a process generator)::

        grant = yield resource.request()
        try:
            yield sim.timeout(duration)
        finally:
            resource.release(grant)

    or use :meth:`use` which packages the pattern.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # Telemetry: cumulative busy time (integrated over grants).
        self._busy_since: dict[int, float] = {}
        self._grant_seq = 0
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        """Event triggering with a grant token once capacity is available."""
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self._new_grant())
        else:
            self._queue.append(ev)
        return ev

    def release(self, grant: int) -> None:
        start = self._busy_since.pop(grant, None)
        if start is None:
            raise ValueError(f"unknown or already-released grant {grant!r}")
        self.busy_time += self.sim.now - start
        if self._queue:
            self._queue.popleft().succeed(self._new_grant())
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> None:
        """Withdraw a ``request()`` whose grant will never be consumed.

        Needed for interrupt cleanup: a process interrupted while queued
        would otherwise leave its request in line, and the grant issued
        to it later would never be released (capacity leak).  If the
        grant was already issued, it is handed straight back.
        """
        try:
            self._queue.remove(request)
            return
        except ValueError:
            pass
        if request._value is not PENDING:
            self.release(request._value)

    def use(self, duration: float, *, kind: str = "use", nbytes: int = 0,
            label: str = "") -> Generator[Event, Any, None]:
        """Sub-protocol: acquire, hold for ``duration``, release.

        Interrupt-safe: an interrupt while queued withdraws the request
        (or returns an already-issued grant) instead of leaking capacity.

        When a profiler is installed the *hold* interval (grant to
        release — queueing time excluded) is recorded as a span of
        ``kind`` on this resource.
        """
        req = self.request()
        try:
            grant = yield req
        except BaseException:
            self.cancel(req)
            raise
        rec = self.sim.recorder
        sid = None
        if rec is not None:
            sid = rec.open(kind, resource=self.name or f"res-{id(self):x}",
                           nbytes=nbytes, label=label)
        try:
            yield self.sim.timeout(duration)
        finally:
            if sid is not None:
                # Close before releasing so the next grantee observes a
                # closed predecessor span at the same instant.
                rec.close(sid)
            self.release(grant)

    def _new_grant(self) -> int:
        self._grant_seq += 1
        self._busy_since[self._grant_seq] = self.sim.now
        return self._grant_seq


class BandwidthLink:
    """A point-to-point link with latency + serialized bandwidth.

    A transfer of ``nbytes`` costs ``latency + nbytes / bandwidth`` of link
    occupancy; concurrent transfers queue FIFO.  This is the LogGP-flavored
    model used for PCIe lanes, IB ports, and NVLink-less GPU peer paths.

    ``per_message_overhead`` models fixed software cost per message (e.g.
    a cudaMemcpy launch or an MPI envelope) paid by the transfer but *not*
    occupying the wire — important for the OpenMPI small-segment pathology
    in Fig. 12.
    """

    def __init__(self, sim: Simulator, *, bandwidth: float, latency: float,
                 name: str = "", per_message_overhead: float = 0.0,
                 jitter: float = 0.0):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0 or per_message_overhead < 0:
            raise ValueError("latency/overhead must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.sim = sim
        self.bandwidth = bandwidth  # bytes / second
        self.latency = latency      # seconds
        self.per_message_overhead = per_message_overhead
        #: Max fractional service-time noise (active only when the
        #: simulator was built with a noise seed).
        self.jitter = jitter
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)
        self.bytes_moved = 0
        self.messages = 0

    @property
    def busy_time(self) -> float:
        return self._res.busy_time

    def occupancy(self, nbytes: int) -> float:
        """Wire time for a message of ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int, *, kind: str = "xfer",
                 ) -> Generator[Event, Any, None]:
        """Sub-protocol: move ``nbytes`` across the link (queues FIFO)."""
        self.messages += 1
        self.bytes_moved += nbytes
        if self.per_message_overhead:
            rec = self.sim.recorder
            if rec is not None:
                sid = rec.open("overhead", label=self.name)
                yield self.sim.timeout(self.per_message_overhead)
                rec.close(sid)
            else:
                yield self.sim.timeout(self.per_message_overhead)
        yield from self._res.use(self.occupancy(nbytes)
                                 * self.sim.jitter_factor(self.jitter),
                                 kind=kind, nbytes=nbytes)


class Store:
    """A bounded FIFO item store (producer/consumer queue).

    Unlike :class:`repro.sim.sync.Channel`, a Store supports non-blocking
    inspection (``peek``/``__len__``) used by the data-reader free queues.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Any:
        if not self._items:
            raise LookupError("store is empty")
        return self._items[0]

    def put(self, item: Any) -> Event:
        ev = self.sim.event()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                pev, item = self._putters.popleft()
                self._items.append(item)
                pev.succeed(None)
        elif self._putters:
            pev, item = self._putters.popleft()
            ev.succeed(item)
            pev.succeed(None)
        else:
            self._getters.append(ev)
        return ev
