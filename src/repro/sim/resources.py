"""Shared-resource models: serialized links, engines, and stores.

Physical resources in the cluster model (PCIe links, NIC ports, GPU copy
engines, LMDB read locks) are contended.  The canonical contention model
used throughout this repo is *FIFO serialization*: a transfer occupies the
resource for its full duration, and queued requests observe the backlog.
This captures the first-order effect the paper's co-designs exploit
(communication serializes on links; overlap hides it behind compute).

The three classes here are the highest-churn objects in the simulation
after the kernel's own events, so they are ``__slots__``-ed, and the
chunked hold patterns that collectives drive through links have a batched
fast path (:func:`pipeline_exit_times`, :meth:`BandwidthLink.transfer_train`)
that computes a K-chunk occupancy schedule as one vectorized NumPy
recurrence instead of O(K) request/timeout/release round-trips.  See
``docs/PERFORMANCE.md`` for when the batched path disables itself.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Generator, Iterable, Optional, Sequence

import numpy as np

from .core import Event, PENDING, Simulator

__all__ = ["Resource", "BandwidthLink", "Store", "pipeline_exit_times"]


class Resource:
    """A capacity-limited resource with FIFO grant order.

    Usage (inside a process generator)::

        grant = yield resource.request()
        try:
            yield sim.timeout(duration)
        finally:
            resource.release(grant)

    or use :meth:`use` which packages the pattern.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue",
                 "_cancelled", "_busy_since", "_grant_seq", "busy_time")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        #: Tombstoned (cancelled) requests still physically in _queue;
        #: they are skipped lazily at hand-off time, so cancel() is O(1)
        #: even under interrupt storms (fault injection).
        self._cancelled: set = set()
        # Telemetry: cumulative busy time (integrated over grants).
        self._busy_since: dict[int, float] = {}
        self._grant_seq = 0
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        return len(self._queue) - len(self._cancelled)

    @property
    def idle(self) -> bool:
        """True when nothing holds or waits for the resource (the
        precondition for batched schedule fast paths)."""
        return self._in_use == 0 and len(self._queue) == len(self._cancelled)

    def request(self) -> Event:
        """Event triggering with a grant token once capacity is available."""
        ev = self.sim.event()
        if self._in_use < self.capacity:
            # Immediate grant, built directly in the completed-in-place
            # state (equivalent to succeed() with no waiters registered,
            # minus the call): the requester's trampoline consumes it
            # without a scheduler turn.
            self._in_use += 1
            ev._value = self._new_grant()
            ev._scheduled = True
            ev.callbacks = None
        else:
            self._queue.append(ev)
        return ev

    def release(self, grant: int) -> None:
        start = self._busy_since.pop(grant, None)
        if start is None:
            raise ValueError(f"unknown or already-released grant {grant!r}")
        self.busy_time += self.sim.now - start
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            ev = queue.popleft()
            if cancelled and ev in cancelled:
                cancelled.discard(ev)
                continue
            ev.succeed(self._new_grant())
            return
        self._in_use -= 1

    def cancel(self, request: Event) -> None:
        """Withdraw a ``request()`` whose grant will never be consumed.

        Needed for interrupt cleanup: a process interrupted while queued
        would otherwise leave its request in line, and the grant issued
        to it later would never be released (capacity leak).  If the
        grant was already issued, it is handed straight back.  A queued
        request is tombstoned (O(1)) and skipped at hand-off time rather
        than scanned out of the wait queue.
        """
        if request._value is not PENDING:
            self.release(request._value)
            return
        self._cancelled.add(request)

    def use(self, duration: float, *, kind: str = "use", nbytes: int = 0,
            label: str = "") -> Generator[Event, Any, None]:
        """Sub-protocol: acquire, hold for ``duration``, release.

        Interrupt-safe: an interrupt while queued withdraws the request
        (or returns an already-issued grant) instead of leaking capacity.

        When a profiler is installed the *hold* interval (grant to
        release — queueing time excluded) is recorded as a span of
        ``kind`` on this resource.
        """
        req = self.request()
        try:
            grant = yield req
        except BaseException:
            self.cancel(req)
            raise
        rec = self.sim.recorder
        if rec is None:
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release(grant)
            return
        sid = rec.open(kind, resource=self.name or f"res-{id(self):x}",
                       nbytes=nbytes, label=label)
        try:
            yield self.sim.timeout(duration)
        finally:
            # Close before releasing so the next grantee observes a
            # closed predecessor span at the same instant.
            rec.close(sid)
            self.release(grant)

    def _new_grant(self) -> int:
        self._grant_seq += 1
        self._busy_since[self._grant_seq] = self.sim.now
        return self._grant_seq

    def _absorb_idle(self, gap: float) -> None:
        """Deduct scheduled idle time from the busy-time integral.

        Used by batched schedule fast paths, which hold the resource
        across the whole train (so foreign arrivals queue behind it)
        but must report the same utilization as the per-chunk path.
        """
        self.busy_time -= gap


def pipeline_exit_times(overheads: Sequence[float],
                        occupancies: np.ndarray,
                        start: float = 0.0) -> np.ndarray:
    """Exit times of K chunks flowing through S serial FIFO stages.

    ``overheads[s]`` is the per-chunk transit cost paid *before*
    requesting stage ``s`` (it overlaps across chunks — e.g. a cudaMemcpy
    launch); ``occupancies[s, k]`` is chunk ``k``'s hold time on stage
    ``s``'s resource.  Chunk ``k`` requests stage ``s`` at
    ``E[k, s-1] + overheads[s]`` and is granted FIFO behind chunk
    ``k - 1``, exactly the schedule the per-chunk event model realizes
    when the stages' resources carry no foreign traffic::

        E[k, s] = max(E[k, s-1] + ovh[s], E[k-1, s]) + occ[s, k]

    ``overheads[s]`` may also be a sequence of delays: the per-chunk
    event model pays them as *successive* timeouts, and float addition
    does not associate, so ``(t + a) + b`` must be reproduced literally
    rather than as ``t + (a + b)``.  For the same reason the recurrence
    runs sequentially over chunks in exact event order (the occupancy
    rows are still built vectorized): the schedule must land on the
    per-chunk times to the last ULP, so batched and per-chunk runs are
    bit-identical, not merely close.  Returns the full exit-time matrix
    ``E`` with shape (S, K).
    """
    occupancies = np.asarray(occupancies, dtype=np.float64)
    n_stages, n_chunks = occupancies.shape
    exits = np.empty_like(occupancies)
    prev = [float(start)] * n_chunks
    for s in range(n_stages):
        occ = occupancies[s].tolist()
        ovh = overheads[s]
        steps = ovh if isinstance(ovh, (tuple, list)) else (ovh,)
        row = exits[s]
        tail = -math.inf
        for k in range(n_chunks):
            r = prev[k]
            for d in steps:
                r += d
            if tail > r:
                r = tail
            tail = r + occ[k]
            row[k] = tail
        prev = row.tolist()
    return exits


class BandwidthLink:
    """A point-to-point link with latency + serialized bandwidth.

    A transfer of ``nbytes`` costs ``latency + nbytes / bandwidth`` of link
    occupancy; concurrent transfers queue FIFO.  This is the LogGP-flavored
    model used for PCIe lanes, IB ports, and NVLink-less GPU peer paths.

    ``per_message_overhead`` models fixed software cost per message (e.g.
    a cudaMemcpy launch or an MPI envelope) paid by the transfer but *not*
    occupying the wire — important for the OpenMPI small-segment pathology
    in Fig. 12.
    """

    __slots__ = ("sim", "bandwidth", "latency", "per_message_overhead",
                 "jitter", "name", "_res", "bytes_moved", "messages")

    #: Fault hook: ``None`` on a healthy link; FaultyLink overrides it
    #: with a method that raises when the link is down or dropping.
    #: A class attribute (not a slot) so the hot multi-link path reads
    #: it with a plain attribute load instead of getattr-with-default.
    check_fault = None

    #: Corruption hook, same pattern: ``None`` on a healthy link;
    #: FaultyLink overrides it with a method that consumes one pending
    #: payload corruption and reports whether the delivery is flipped.
    consume_corruption = None

    def __init__(self, sim: Simulator, *, bandwidth: float, latency: float,
                 name: str = "", per_message_overhead: float = 0.0,
                 jitter: float = 0.0):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0 or per_message_overhead < 0:
            raise ValueError("latency/overhead must be >= 0")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.sim = sim
        self.bandwidth = bandwidth  # bytes / second
        self.latency = latency      # seconds
        self.per_message_overhead = per_message_overhead
        #: Max fractional service-time noise (active only when the
        #: simulator was built with a noise seed).
        self.jitter = jitter
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)
        self.bytes_moved = 0
        self.messages = 0

    @property
    def busy_time(self) -> float:
        return self._res.busy_time

    def occupancy(self, nbytes: int) -> float:
        """Wire time for a message of ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int, *, kind: str = "xfer",
                 ) -> Generator[Event, Any, None]:
        """Sub-protocol: move ``nbytes`` across the link (queues FIFO)."""
        self.messages += 1
        self.bytes_moved += nbytes
        sim = self.sim
        rec = sim.recorder
        if self.per_message_overhead:
            if rec is not None:
                sid = rec.open("overhead", label=self.name)
                yield sim.timeout(self.per_message_overhead)
                rec.close(sid)
            else:
                yield sim.timeout(self.per_message_overhead)
        duration = self.occupancy(nbytes)
        if self.jitter:
            duration *= sim.jitter_factor(self.jitter)
        res = self._res
        req = res.request()
        try:
            grant = yield req
        except BaseException:
            res.cancel(req)
            raise
        if rec is None:
            try:
                yield sim.timeout(duration)
            finally:
                res.release(grant)
            return
        sid = rec.open(kind, resource=res.name or f"res-{id(res):x}",
                       nbytes=nbytes)
        try:
            yield sim.timeout(duration)
        finally:
            rec.close(sid)
            res.release(grant)

    # -- batched schedule fast path -----------------------------------------
    def train_eligible(self) -> bool:
        """True when a chunk train on this link may be collapsed into one
        precomputed hold: no per-chunk observer (profiler spans), no armed
        jitter draws to replay, no fault plan hooked in, and nothing
        currently holding or queued on the link."""
        return (self.sim.recorder is None
                and (self.sim.rng is None or self.jitter == 0.0)
                and self.check_fault is None
                and self._res.idle)

    def transfer_train(self, sizes: Iterable[int], *, kind: str = "xfer",
                       ) -> Generator[Event, Any, None]:
        """Move a back-to-back train of messages (sizes in bytes).

        Equivalent to ``for n in sizes: yield from self.transfer(n)`` —
        and falls back to exactly that whenever :meth:`train_eligible`
        is false — but the eligible path posts the whole train as one
        precomputed hold (a constant number of events instead of O(K)).
        While the train runs the link reads as continuously busy, so
        foreign arrivals queue behind it; the busy-time integral is
        corrected to the true wire time.
        """
        sizes = list(sizes)
        if len(sizes) < 2 or not self.train_eligible():
            for n in sizes:
                yield from self.transfer(n, kind=kind)
            return
        self.messages += len(sizes)
        sim = self.sim
        pmo = self.per_message_overhead
        # The end instant is accumulated with the exact add sequence the
        # per-chunk path realizes (overhead timeout, then hold, chunk by
        # chunk): float addition does not associate, and the batched
        # schedule must land on the per-chunk times to the last ULP.
        end = sim.now
        wire = 0.0
        for n in sizes:
            self.bytes_moved += n
            occ = self.occupancy(n)
            wire += occ
            if pmo:
                end += pmo
            end += occ
        res = self._res
        grant = (yield res.request())
        held = end - sim.now
        try:
            yield sim.timeout_at(end)
        finally:
            res.release(grant)
            res._absorb_idle(held - wire)


class Store:
    """A bounded FIFO item store (producer/consumer queue).

    Unlike :class:`repro.sim.sync.Channel`, a Store supports non-blocking
    inspection (``peek``/``__len__``) used by the data-reader free queues.
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def peek(self) -> Any:
        if not self._items:
            raise LookupError("store is empty")
        return self._items[0]

    def put(self, item: Any) -> Event:
        ev = self.sim.event()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                pev, item = self._putters.popleft()
                self._items.append(item)
                pev.succeed(None)
        elif self._putters:
            pev, item = self._putters.popleft()
            ev.succeed(item)
            pev.succeed(None)
        else:
            self._getters.append(ev)
        return ev
