"""Phase/interval tracing for timing breakdowns.

The paper reports *per-phase* timings — data propagation vs. forward/
backward compute vs. gradient aggregation (Fig. 13, Table 2).  The
:class:`Tracer` records named intervals per actor (rank) and aggregates
them into the phase-breakdown rows those experiments print.
"""

from __future__ import annotations

import json
import re
from collections import defaultdict
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from .core import Simulator

__all__ = ["Interval", "Tracer", "PhaseTimer", "natural_sort_key"]

_NUM_RE = re.compile(r"(\d+)")


def natural_sort_key(s: str) -> Tuple:
    """Sort key that orders embedded integers numerically, so actor
    'r10' sorts after 'r9' (not between 'r1' and 'r2')."""
    return tuple(int(t) if t.isdigit() else t
                 for t in _NUM_RE.split(s))


class Interval(NamedTuple):
    """A closed interval of simulated time attributed to a phase."""

    actor: str
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Records intervals and answers aggregate timing queries."""

    def __init__(self, sim: Simulator, enabled: bool = True):
        self.sim = sim
        self.enabled = enabled
        self.intervals: List[Interval] = []
        self._open: Dict[Tuple[str, str], float] = {}
        # phase -> summed duration per actor, maintained on end() so the
        # per-iteration report queries don't rescan every interval.
        self._totals: Dict[str, Dict[str, float]] = {}

    def begin(self, actor: str, phase: str) -> None:
        if not self.enabled:
            return
        key = (actor, phase)
        if key in self._open:
            raise RuntimeError(f"phase {phase!r} already open for {actor!r}")
        self._open[key] = self.sim.now
        rec = self.sim.recorder
        if rec is not None:
            rec.phase_push(phase)

    def end(self, actor: str, phase: str) -> None:
        if not self.enabled:
            return
        key = (actor, phase)
        start = self._open.pop(key, None)
        if start is None:
            raise RuntimeError(f"phase {phase!r} not open for {actor!r}")
        now = self.sim.now
        self.intervals.append(Interval(actor, phase, start, now))
        per_actor = self._totals.get(phase)
        if per_actor is None:
            per_actor = self._totals[phase] = {}
        per_actor[actor] = per_actor.get(actor, 0.0) + (now - start)
        rec = self.sim.recorder
        if rec is not None:
            rec.phase_pop(phase)

    def abandon(self, actor: str) -> None:
        """Discard open phases for ``actor`` (and its sub-actors, e.g.
        ``r3.helper``).  Used when a fault unwinds a rank mid-interval:
        the cut-short phase is dropped rather than recorded, and the
        replayed iteration may re-open it without tripping the
        double-begin check."""
        prefix = actor + "."
        for key in [k for k in self._open
                    if k[0] == actor or k[0].startswith(prefix)]:
            del self._open[key]
        rec = self.sim.recorder
        if rec is not None:
            rec.phase_clear()

    def timer(self, actor: str, phase: str) -> "PhaseTimer":
        return PhaseTimer(self, actor, phase)

    # -- queries -------------------------------------------------------------
    def total(self, phase: str, actor: Optional[str] = None) -> float:
        """Sum of interval durations for ``phase`` (optionally one actor)."""
        per_actor = self._totals.get(phase)
        if per_actor is None:
            return 0.0
        if actor is not None:
            return per_actor.get(actor, 0.0)
        return sum(per_actor.values())

    def busy_union(self, phase: str, actor: Optional[str] = None) -> float:
        """Length of the union of intervals for ``phase`` (overlap-aware).

        This is the right statistic for "time the run spent in phase X"
        when many ranks execute the phase concurrently.
        """
        ivs = sorted((iv.start, iv.end) for iv in self.intervals
                     if iv.phase == phase
                     and (actor is None or iv.actor == actor))
        total = 0.0
        cur_s: Optional[float] = None
        cur_e = 0.0
        for s, e in ivs:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                total += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            total += cur_e - cur_s
        return total

    def breakdown(self, actor: Optional[str] = None) -> Dict[str, float]:
        """Map phase -> total duration (per actor or across all)."""
        out: Dict[str, float] = defaultdict(float)
        for iv in self.intervals:
            if actor is None or iv.actor == actor:
                out[iv.phase] += iv.duration
        return dict(out)

    def actors(self) -> List[str]:
        return sorted({iv.actor for iv in self.intervals})

    def phases(self) -> List[str]:
        return sorted({iv.phase for iv in self.intervals})

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    # -- export ---------------------------------------------------------------
    def to_chrome_trace(self) -> List[dict]:
        """Chrome trace-event JSON (load in chrome://tracing / Perfetto).

        Each interval becomes a complete ('X') event; actors map to
        thread ids so per-rank timelines stack naturally ('r10' after
        'r9', helpers next to their rank).  Metadata ('M') events name
        each track so viewers show actor names instead of bare tids.
        Timestamps are microseconds, per the trace-event spec.
        """
        actors = sorted({iv.actor for iv in self.intervals},
                        key=natural_sort_key)
        actor_tid = {a: i + 1 for i, a in enumerate(actors)}
        events: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "repro.sim"},
        }]
        for a, tid in actor_tid.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": a},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": 0,
                "tid": tid, "args": {"sort_index": tid},
            })
        events.extend({
            "name": iv.phase,
            "cat": "sim",
            "ph": "X",
            "pid": 0,
            "tid": actor_tid[iv.actor],
            "ts": iv.start * 1e6,
            "dur": iv.duration * 1e6,
            "args": {"actor": iv.actor},
        } for iv in self.intervals)
        return events

    def save_chrome_trace(self, path: str) -> None:
        """Write the trace to a JSON file."""
        with open(path, "w") as f:
            json.dump({"traceEvents": self.to_chrome_trace()}, f)


class PhaseTimer:
    """Context-manager-flavored helper for generator code.

    Generator processes cannot use ``with`` blocks across yields cleanly,
    so the pattern is explicit ``t = tracer.timer(a, p); t.begin(); ...;
    t.end()``; both methods are idempotent-checked by :class:`Tracer`.
    """

    __slots__ = ("tracer", "actor", "phase")

    def __init__(self, tracer: Tracer, actor: str, phase: str):
        self.tracer = tracer
        self.actor = actor
        self.phase = phase

    def begin(self) -> None:
        self.tracer.begin(self.actor, self.phase)

    def end(self) -> None:
        self.tracer.end(self.actor, self.phase)
