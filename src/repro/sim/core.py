"""Discrete-event simulation kernel.

This module is the foundation of the whole reproduction: every "GPU",
"MPI rank", "helper thread", and "network link" in the repo is a coroutine
process scheduled on a single simulated clock.  The design follows the
classic event/process model (as popularized by SimPy) but is implemented
from scratch so the repository is self-contained:

- :class:`Event` — a one-shot occurrence with a value (or an exception).
- :class:`Timeout` — an event that triggers after a simulated delay.
- :class:`Process` — wraps a generator; the generator *yields* events and
  is resumed with the event's value once it triggers.  A process is itself
  an event that triggers when the generator returns.
- :class:`Simulator` — the event loop.

Generators compose with ``yield from``, which is how multi-step operations
(e.g. a pipelined chunked-chain reduction) are expressed as reusable
sub-protocols.

Scheduler
---------
Events are totally ordered by ``(time, priority, insertion order)``.
The default scheduler realizes that order with two tiers instead of one
flat heap (see ``docs/PERFORMANCE.md``):

- a **zero-delay FIFO lane** for URGENT events (``succeed``/``fail``/
  interrupts/process kicks — always scheduled *at the current instant*),
  so same-instant signalling never touches the heap, and
- a **bucket queue** for timeouts: events sharing an exact trigger time
  share one FIFO bucket, and a small heap orders the *distinct* times.
  Insertion order within a bucket is creation order, so the realized
  order is identical to the flat heap's ``(time, priority, seq)`` sort.

Processed ``Event``/``Timeout`` objects that are no longer referenced
anywhere are recycled through a free list (``sys.getrefcount`` guarded,
so an object some condition or test still holds is never reused).

Setting ``REPRO_SIM_SLOWPATH=1`` (or ``Simulator(slowpath=True)``)
selects the reference scheduler — one flat ``heapq`` ordered by
``(time, priority, seq)`` with no lane, buckets, or pooling.  Both
schedulers realize the same total order, so same-seed runs are
event-for-event identical (``tests/test_sim_fastpath.py`` asserts this
across the conformance matrix).

Signalling protocol
-------------------
Triggering an event that has **no registered callbacks** completes it
in place — no scheduler turn is consumed, and a later ``add_callback``
(or a process yielding it) observes it as already processed.  Processes
therefore *continue inline* through already-completed events (a resource
grant that was immediately available, a request completed before it was
waited on) via a trampoline in :meth:`Process._resume`.  This removes
the per-hop "schedule URGENT, take a loop turn, resume" round-trip from
every uncontended fast path while leaving all simulated times unchanged;
it applies identically in both scheduler modes.  Failed events are
always scheduled so an unhandled failure still surfaces in the loop.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, out):
...     yield sim.timeout(2.5)
...     out.append(sim.now)
>>> out = []
>>> _ = sim.process(worker(sim, out))
>>> sim.run()
>>> out
[2.5]
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import sys
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry.metrics import MetricsRegistry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "PENDING",
]

#: Sentinel for an event that has not been triggered yet.
PENDING = object()

#: Priority used for events scheduled by :meth:`Event.succeed` — they run
#: before timeouts scheduled at the same instant so that zero-latency
#: signalling (condition flags, queue hand-offs) is processed promptly.
URGENT = 0
NORMAL = 1

#: Free-list caps (enough to cover a training iteration's churn without
#: pinning unbounded memory on pathological runs).  Sized above the
#: typical number of simultaneously-live events in a 32-GPU training
#: step so steady state allocates nothing.
_POOL_MAX = 4096


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (double-trigger, deadlock, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulated timeline.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, at which point all registered callbacks run (waiting
    processes are resumed).  Triggering twice is an error.  An event
    succeeded while nobody is registered completes in place (see the
    module docstring); one with callbacks is scheduled URGENT so its
    waiters resume from the event loop, never from inside the caller.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "_defused", "_ctx_span")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False
        #: Causal context for profiling: id of the span the triggering
        #: process last recorded (set by the scheduler when a recorder
        #: is installed; always ``None`` otherwise).
        self._ctx_span: Optional[int] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event fully happened)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger this event *now* with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._scheduled = True
        if self.callbacks:
            self.sim._push_urgent(self)
        else:
            # Nobody registered: complete in place, no scheduler turn.
            self.callbacks = None
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to trigger *now*, raising in waiters.

        Always takes a scheduler turn (even with no callbacks) so the
        loop's unhandled-failure check can surface orphaned errors.
        """
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._scheduled = True
        self.sim._push_urgent(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event happens (immediately if past)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class _EagerKick:
    """Stand-in for the kick event when a process starts inline."""

    _ok = True
    _value = None
    _ctx_span = None


_EAGER_KICK = _EagerKick()


class Process(Event):
    """A running coroutine; also an event that fires when it finishes."""

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 eager: bool = False):
        if not hasattr(gen, "send"):
            raise TypeError(f"process() requires a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        if eager and sim.recorder is None:
            # Runtime-internal helpers (transfer movers, deferred NBC
            # bodies) opt into starting inline: the generator runs to
            # its first real wait right here, skipping the kick event
            # and a scheduler turn.  Only meaningful for spawn sites
            # whose first segment touches state no other same-instant
            # event races for in a way the caller cares about.  Under a
            # profiler the kick path is kept so ``on_spawn`` registers
            # the parent before any span is recorded.
            prev = sim._active_process
            try:
                self._resume(_EAGER_KICK)
            finally:
                sim._active_process = prev
            return
        # Kick-start on the next event-loop step at the current time.
        init = sim._fresh_event()
        init._value = None
        init.callbacks.append(self._resume)
        sim._push_urgent(init)
        init._scheduled = True

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} already finished")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        ev = self.sim._fresh_event()
        ev._ok = False
        ev._value = Interrupt(cause)
        ev.callbacks.append(self._resume)
        # Interrupts must not trip the unhandled-failure check.
        ev._defused = True
        self.sim._push_urgent(ev)
        ev._scheduled = True

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        sim = self.sim
        gen_send = self.gen.send
        # Loop-invariant within one wakeup: the recorder cannot change
        # while a process is being resumed.
        rec = sim.recorder
        # Trampoline: an already-processed yield target (resource grant
        # that was free, request completed before the wait) is consumed
        # inline rather than through a scheduled turn.
        while True:
            self._target = None
            if rec is not None and event._ctx_span is not None:
                # The event that wakes us carries the triggering
                # process's latest span: note it as a causal predecessor
                # of whatever this process records next.
                rec.note_wakeup(self, event._ctx_span)
            sim._active_process = self
            try:
                if event._ok:
                    result = gen_send(event._value)
                else:
                    result = self.gen.throw(event._value)
            except StopIteration as stop:
                sim._active_process = None
                if rec is not None:
                    # Completion context must be set explicitly — the
                    # active process is already cleared by the time
                    # waiters resume.
                    self._ctx_span = rec.last_span_of(self)
                    rec.on_exit(self)
                if not self._scheduled:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                sim._active_process = None
                if rec is not None:
                    self._ctx_span = rec.last_span_of(self)
                    rec.on_exit(self)
                if not self._scheduled:
                    self.fail(exc)
                    return
                raise
            sim._active_process = None

            if not isinstance(result, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {result!r}; "
                    "processes must yield Event instances")
            if result.sim is not sim:
                raise SimulationError(
                    "yielded event belongs to another Simulator")
            cbs = result.callbacks
            if cbs is None:
                event = result  # already happened: continue inline
                continue
            self._target = result
            cbs.append(self._resume)
            return


class Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_n_done", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        #: Values of components processed so far, accumulated by _check
        #: (one dict store per completion; the final result dict is
        #: assembled once, in declaration order).
        self._values: dict = {}
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _adopt_ctx(self, event: Event) -> None:
        # _check runs as an event callback (no active process), so the
        # profiling context must be relayed from the completing events;
        # the latest completion wins (for AllOf it is the release cause).
        if event._ctx_span is not None:
            self._ctx_span = event._ctx_span

    def _collect(self) -> dict:
        # Component values in declaration order.  Only events that have
        # *happened* by trigger time are present (their _check recorded
        # them); a Timeout is "scheduled" from birth but occurs later.
        values = self._values
        return {ev: values[ev] for ev in self.events if ev in values}


class AllOf(Condition):
    """Triggers once *all* component events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        self._adopt_ctx(event)
        if not event._ok:
            self.fail(event._value)
            return
        self._values[event] = event._value
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers once *any* component event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        self._adopt_ctx(event)
        if not event._ok:
            self.fail(event._value)
            return
        self._values[event] = event._value
        self.succeed(self._collect())


class Simulator:
    """The event loop: schedules events on a virtual clock.

    Notes
    -----
    Determinism: ties at the same timestamp are broken by scheduling
    priority and then by insertion order, so repeated runs of the same
    program produce identical traces (a property the tests rely on).

    ``slowpath=True`` (or env ``REPRO_SIM_SLOWPATH=1``) selects the
    reference flat-heap scheduler; see the module docstring.
    """

    def __init__(self, seed: Optional[int] = None,
                 slowpath: Optional[bool] = None):
        if slowpath is None:
            slowpath = os.environ.get("REPRO_SIM_SLOWPATH", "") not in ("", "0")
        self._slow = bool(slowpath)
        self._now = 0.0
        # Reference scheduler: one flat heap of (time, prio, seq, event).
        self._heap: list = []
        self._seq = itertools.count()
        # Fast scheduler: URGENT FIFO lane + bucket queue over distinct
        # trigger times (_times is a heap of keys into _buckets; _bidx is
        # the drain cursor into the current front bucket).
        from collections import deque
        self._lane: Any = deque()
        self._times: list = []
        self._buckets: dict = {}
        self._bidx = 0
        # Free lists for processed, unreferenced Event/Timeout objects.
        self._epool: list = []
        self._tpool: list = []
        self._active_process: Optional[Process] = None
        self._event_count = 0
        #: Optional :class:`repro.prof.SpanRecorder`.  ``None`` (default)
        #: disables all span recording; instrumentation sites throughout
        #: the repo gate on this attribute so the off path costs one
        #: attribute load and simulated times are bit-identical.
        self.recorder = None
        #: Optional :class:`repro.check.InvariantChecker`.  ``None``
        #: (default) disables runtime invariant checking (SPMD lockstep,
        #: tag-space audit, request/buffer leak tracking).  Like the
        #: recorder, a checker is strictly passive — it never schedules
        #: events — so checked and unchecked runs are event-for-event
        #: identical.
        self.checker = None
        #: Optional :class:`repro.telemetry.TelemetrySession`.  ``None``
        #: (default) disables runtime introspection; like the recorder
        #: and checker, a session is strictly passive (hooks never
        #: schedule events), so an instrumented run is event-for-event
        #: identical and the off path costs one attribute load.
        self.telemetry = None
        #: Always-present metrics registry: the single source of truth
        #: for runtime counters (``TransportMetrics`` and the telemetry
        #: PVARs are views over it).  Creating it is one dict; counters
        #: only accumulate when something increments them.
        self.metrics = MetricsRegistry()
        #: Optional noise source for skew modeling.  ``None`` (default)
        #: means a perfectly quiet machine; a seed gives *deterministic*
        #: jitter (runs remain reproducible functions of the seed).
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None)

    def jitter_factor(self, amount: float) -> float:
        """Multiplicative service-time noise: uniform in
        ``[1, 1 + amount)`` when a noise source is armed, else exactly 1.

        Used by links and kernels to model OS noise / DVFS / congestion
        skew — the effect that bounds chain length on real systems
        (Section 5's "skew-tolerant" axis).
        """
        if amount < 0:
            raise ValueError("jitter amount must be >= 0")
        if self.rng is None or amount == 0.0:
            return 1.0
        return 1.0 + amount * self.rng.random()

    def straggler_factor(self, spread: float) -> float:
        """Persistent slow-down factor drawn once per facility at build
        time: uniform in ``[1, 1 + spread)``.

        Unlike per-message jitter (which averages out over a pipeline),
        persistent heterogeneity gates chain throughput by the *slowest*
        member — the skew effect that bounds chain length on real
        clusters.
        """
        return self.jitter_factor(spread)

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def event_count(self) -> int:
        """Total number of events processed (telemetry/tests)."""
        return self._event_count

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event (manual signalling)."""
        return self._fresh_event()

    def _fresh_event(self) -> Event:
        pool = self._epool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = PENDING
            ev._ok = True
            ev._scheduled = False
            ev._defused = False
            ev._ctx_span = None
            return ev
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        pool = self._tpool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        t = pool.pop()
        t.callbacks = []
        t._value = value
        t._ok = True
        t._scheduled = True
        t._defused = False
        t._ctx_span = None
        t.delay = delay
        # _schedule(NORMAL) inlined — this is the hottest factory.
        rec = self.recorder
        if rec is not None and self._active_process is not None:
            t._ctx_span = rec.last_span_of(self._active_process)
        if self._slow:
            heapq.heappush(
                self._heap, (self._now + delay, NORMAL, next(self._seq), t))
            return t
        when = self._now + delay
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [t]
            heapq.heappush(self._times, when)
        else:
            bucket.append(t)
        return t

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """An event that fires at absolute simulated time ``when``.

        Used by batched schedule fast paths, which precompute exact exit
        instants: round-tripping through a relative delay
        (``now + (when - now)``) could land one float ULP off the
        per-chunk schedule being replicated.
        """
        if when < self._now:
            raise ValueError(
                f"timeout_at({when!r}) is in the past (now={self._now!r})")
        pool = self._tpool
        if pool:
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._ok = True
            t._scheduled = True
            t._defused = False
            t._ctx_span = None
        else:
            t = Timeout.__new__(Timeout)
            Event.__init__(t, self)
            t._value = value
            t._scheduled = True
        t.delay = when - self._now
        rec = self.recorder
        if rec is not None and self._active_process is not None:
            t._ctx_span = rec.last_span_of(self._active_process)
        if self._slow:
            heapq.heappush(self._heap, (when, NORMAL, next(self._seq), t))
            return t
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [t]
            heapq.heappush(self._times, when)
        else:
            bucket.append(t)
        return t

    def process(self, gen: Generator, name: str = "",
                eager: bool = False) -> Process:
        """Start running ``gen`` as a process.

        ``eager=True`` lets the process begin inline (no kick event)
        when no profiler is installed — see :class:`Process`.
        """
        parent = self._active_process
        proc = Process(self, gen, name=name, eager=eager)
        if self.recorder is not None:
            # Auxiliary processes (movers, staged chunks, helpers)
            # attribute their spans to the rank/phase that spawned them.
            self.recorder.on_spawn(proc, parent)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _push_urgent(self, event: Event) -> None:
        """Enqueue an URGENT event at the current instant (caller sets
        ``_scheduled``).  URGENT events are only ever created *now*, so
        the FIFO lane realizes their ``(now, 0, seq)`` heap order."""
        rec = self.recorder
        if (rec is not None and event._ctx_span is None
                and self._active_process is not None):
            # Capture the scheduling process's latest span so whoever
            # this event wakes knows what it causally waited on.
            event._ctx_span = rec.last_span_of(self._active_process)
        if self._slow:
            heapq.heappush(
                self._heap, (self._now, URGENT, next(self._seq), event))
        else:
            self._lane.append(event)

    def _schedule(self, event: Event, priority: int,
                  delay: float = 0.0) -> None:
        event._scheduled = True
        if priority == URGENT and delay == 0.0:
            self._push_urgent(event)
            return
        rec = self.recorder
        if (rec is not None and event._ctx_span is None
                and self._active_process is not None):
            event._ctx_span = rec.last_span_of(self._active_process)
        if self._slow:
            heapq.heappush(
                self._heap,
                (self._now + delay, priority, next(self._seq), event))
            return
        t = self._now + delay
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [event]
            heapq.heappush(self._times, t)
        else:
            bucket.append(event)

    def _pop(self) -> Event:
        """Remove and return the next event in ``(time, priority, seq)``
        order, advancing the clock (fast scheduler)."""
        lane = self._lane
        if lane:
            return lane.popleft()
        t = self._times[0]
        bucket = self._buckets[t]
        i = self._bidx
        event = bucket[i]
        bucket[i] = None
        i += 1
        if i == len(bucket):
            heapq.heappop(self._times)
            del self._buckets[t]
            self._bidx = 0
        else:
            self._bidx = i
        self._now = t
        return event

    # -- execution -----------------------------------------------------------
    def step(self) -> Event:
        """Process exactly one event; returns it (trace/debug hook)."""
        if self._slow:
            when, _prio, _seq, event = heapq.heappop(self._heap)
            if when < self._now:  # pragma: no cover - defensive
                raise SimulationError("time ran backwards")
            self._now = when
        else:
            if not self._lane and not self._times:
                raise IndexError("step from an empty schedule")
            event = self._pop()
        self._event_count += 1
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        if not event._ok and not callbacks and not event._defused:
            # A failed event nobody waited on: surface the error rather
            # than silently dropping it.
            raise event._value
        tel = self.telemetry
        if tel is not None and self._now >= tel.next_scrape_at:
            # Sampling happens *between* events rather than as a
            # scheduled process: a periodic process would keep the
            # schedule non-empty (run() would never drain) and would
            # perturb the event stream.  This way instrumented runs stay
            # event-for-event identical and scrapes land on the first
            # event at-or-after each grid instant.
            tel.scrape(self._now)
        return event

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule is empty or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        if self._slow:
            heap = self._heap
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return
                self.step()
            if until is not None:
                self._now = until
            return
        self._run_fast(until)

    def _run_fast(self, until: Optional[float]) -> None:
        # The hot loop of every benchmark: locals for the schedule
        # tiers, the observers fused into one None-check each, event
        # dispatch inlined (identical to step(), minus call overhead).
        lane = self._lane
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        getrefcount = sys.getrefcount
        epool = self._epool
        tpool = self._tpool
        tel = self.telemetry
        count = self._event_count
        try:
            while True:
                if lane:
                    event = lane.popleft()
                elif times:
                    t = times[0]
                    if until is not None and t > until:
                        self._now = until
                        return
                    bucket = buckets[t]
                    i = self._bidx
                    event = bucket[i]
                    bucket[i] = None
                    i += 1
                    if i == len(bucket):
                        heappop(times)
                        del buckets[t]
                        self._bidx = 0
                    else:
                        self._bidx = i
                    self._now = t
                else:
                    break
                count += 1
                callbacks = event.callbacks
                event.callbacks = None
                for fn in callbacks:
                    fn(event)
                if not event._ok and not callbacks and not event._defused:
                    raise event._value
                if tel is not None and self._now >= tel.next_scrape_at:
                    tel.scrape(self._now)
                # Recycle the drained event if nothing else references
                # it (refcount 2 = the local + getrefcount's argument).
                cls = event.__class__
                if cls is Event:
                    if len(epool) < _POOL_MAX and getrefcount(event) == 2:
                        epool.append(event)
                elif cls is Timeout:
                    if len(tpool) < _POOL_MAX and getrefcount(event) == 2:
                        tpool.append(event)
        finally:
            self._event_count = count
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._slow:
            return self._heap[0][0] if self._heap else float("inf")
        if self._lane:
            return self._now
        return self._times[0] if self._times else float("inf")
