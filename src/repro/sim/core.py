"""Discrete-event simulation kernel.

This module is the foundation of the whole reproduction: every "GPU",
"MPI rank", "helper thread", and "network link" in the repo is a coroutine
process scheduled on a single simulated clock.  The design follows the
classic event/process model (as popularized by SimPy) but is implemented
from scratch so the repository is self-contained:

- :class:`Event` — a one-shot occurrence with a value (or an exception).
- :class:`Timeout` — an event that triggers after a simulated delay.
- :class:`Process` — wraps a generator; the generator *yields* events and
  is resumed with the event's value once it triggers.  A process is itself
  an event that triggers when the generator returns.
- :class:`Simulator` — the event loop: a priority heap ordered by
  ``(time, priority, sequence)``.

Generators compose with ``yield from``, which is how multi-step operations
(e.g. a pipelined chunked-chain reduction) are expressed as reusable
sub-protocols.

Example
-------
>>> sim = Simulator()
>>> def worker(sim, out):
...     yield sim.timeout(2.5)
...     out.append(sim.now)
>>> out = []
>>> _ = sim.process(worker(sim, out))
>>> sim.run()
>>> out
[2.5]
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry.metrics import MetricsRegistry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "PENDING",
]

#: Sentinel for an event that has not been triggered yet.
PENDING = object()

#: Priority used for events scheduled by :meth:`Event.succeed` — they run
#: before timeouts scheduled at the same instant so that zero-latency
#: signalling (condition flags, queue hand-offs) is processed promptly.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for invalid simulator usage (double-trigger, deadlock, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulated timeline.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    schedules it to *trigger*, at which point all registered callbacks run
    (waiting processes are resumed).  Triggering twice is an error.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "_defused", "_ctx_span")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False
        #: Causal context for profiling: id of the span the triggering
        #: process last recorded (set by the scheduler when a recorder
        #: is installed; always ``None`` otherwise).
        self._ctx_span: Optional[int] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to occur."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event fully happened)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if still pending."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to trigger *now* with ``value``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to trigger *now*, raising in waiters."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, URGENT)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event happens (immediately if past)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class Process(Event):
    """A running coroutine; also an event that fires when it finishes."""

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"process() requires a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick-start on the next event-loop step at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, URGENT)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} already finished")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev.callbacks.append(self._resume)
        # Interrupts must not trip the unhandled-failure check.
        ev._defused = True
        self.sim._schedule(ev, URGENT)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        sim = self.sim
        rec = sim.recorder
        if rec is not None and event._ctx_span is not None:
            # The event that wakes us carries the triggering process's
            # latest span: note it as a causal predecessor of whatever
            # this process records next.
            rec.note_wakeup(self, event._ctx_span)
        sim._active_process = self
        try:
            if event._ok:
                result = self.gen.send(event._value)
            else:
                result = self.gen.throw(event._value)
        except StopIteration as stop:
            sim._active_process = None
            if rec is not None:
                # Completion context must be set explicitly — the active
                # process is already cleared when succeed() schedules us.
                self._ctx_span = rec.last_span_of(self)
                rec.on_exit(self)
            if not self._scheduled:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if rec is not None:
                self._ctx_span = rec.last_span_of(self)
                rec.on_exit(self)
            if not self._scheduled:
                self.fail(exc)
                return
            raise
        sim._active_process = None

        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}; "
                "processes must yield Event instances")
        if result.sim is not sim:
            raise SimulationError("yielded event belongs to another Simulator")
        self._target = result
        result.add_callback(self._resume)


class Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _adopt_ctx(self, event: Event) -> None:
        # _check runs as an event callback (no active process), so the
        # profiling context must be relayed from the completing events;
        # the latest completion wins (for AllOf it is the release cause).
        if event._ctx_span is not None:
            self._ctx_span = event._ctx_span

    def _collect(self) -> dict:
        # Only events that have actually *happened* (callbacks ran) count;
        # a Timeout is "scheduled" from birth but occurs later.
        return {ev: ev._value for ev in self.events if ev.processed}


class AllOf(Condition):
    """Triggers once *all* component events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        self._adopt_ctx(event)
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._n_done == len(self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers once *any* component event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._scheduled:
            return
        self._adopt_ctx(event)
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: schedules events on a virtual clock.

    Notes
    -----
    Determinism: ties at the same timestamp are broken by scheduling
    priority and then by insertion order, so repeated runs of the same
    program produce identical traces (a property the tests rely on).
    """

    def __init__(self, seed: Optional[int] = None):
        self._now = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        self._event_count = 0
        #: Optional :class:`repro.prof.SpanRecorder`.  ``None`` (default)
        #: disables all span recording; instrumentation sites throughout
        #: the repo gate on this attribute so the off path costs one
        #: attribute load and simulated times are bit-identical.
        self.recorder = None
        #: Optional :class:`repro.check.InvariantChecker`.  ``None``
        #: (default) disables runtime invariant checking (SPMD lockstep,
        #: tag-space audit, request/buffer leak tracking).  Like the
        #: recorder, a checker is strictly passive — it never schedules
        #: events — so checked and unchecked runs are event-for-event
        #: identical.
        self.checker = None
        #: Optional :class:`repro.telemetry.TelemetrySession`.  ``None``
        #: (default) disables runtime introspection; like the recorder
        #: and checker, a session is strictly passive (hooks never
        #: schedule events), so an instrumented run is event-for-event
        #: identical and the off path costs one attribute load.
        self.telemetry = None
        #: Always-present metrics registry: the single source of truth
        #: for runtime counters (``TransportMetrics`` and the telemetry
        #: PVARs are views over it).  Creating it is one dict; counters
        #: only accumulate when something increments them.
        self.metrics = MetricsRegistry()
        #: Optional noise source for skew modeling.  ``None`` (default)
        #: means a perfectly quiet machine; a seed gives *deterministic*
        #: jitter (runs remain reproducible functions of the seed).
        self.rng: Optional[random.Random] = (
            random.Random(seed) if seed is not None else None)

    def jitter_factor(self, amount: float) -> float:
        """Multiplicative service-time noise: uniform in
        ``[1, 1 + amount)`` when a noise source is armed, else exactly 1.

        Used by links and kernels to model OS noise / DVFS / congestion
        skew — the effect that bounds chain length on real systems
        (Section 5's "skew-tolerant" axis).
        """
        if amount < 0:
            raise ValueError("jitter amount must be >= 0")
        if self.rng is None or amount == 0.0:
            return 1.0
        return 1.0 + amount * self.rng.random()

    def straggler_factor(self, spread: float) -> float:
        """Persistent slow-down factor drawn once per facility at build
        time: uniform in ``[1, 1 + spread)``.

        Unlike per-message jitter (which averages out over a pipeline),
        persistent heterogeneity gates chain throughput by the *slowest*
        member — the skew effect that bounds chain length on real
        clusters.
        """
        return self.jitter_factor(spread)

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def event_count(self) -> int:
        """Total number of events processed (telemetry/tests)."""
        return self._event_count

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event (manual signalling)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start running ``gen`` as a process."""
        parent = self._active_process
        proc = Process(self, gen, name=name)
        if self.recorder is not None:
            # Auxiliary processes (movers, staged chunks, helpers)
            # attribute their spans to the rank/phase that spawned them.
            self.recorder.on_spawn(proc, parent)
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int,
                  delay: float = 0.0) -> None:
        event._scheduled = True
        rec = self.recorder
        if (rec is not None and event._ctx_span is None
                and self._active_process is not None):
            # Capture the scheduling process's latest span so whoever
            # this event wakes knows what it causally waited on.
            event._ctx_span = rec.last_span_of(self._active_process)
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event))

    # -- execution -----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time ran backwards")
        self._now = when
        self._event_count += 1
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
        if (not event._ok and not callbacks
                and not getattr(event, "_defused", False)):
            # A failed event nobody waited on: surface the error rather
            # than silently dropping it.
            raise event._value
        tel = self.telemetry
        if tel is not None and self._now >= tel.next_scrape_at:
            # Sampling happens *between* events rather than as a
            # scheduled process: a periodic process would keep the heap
            # non-empty (run() would never drain) and would perturb the
            # event stream.  This way instrumented runs stay
            # event-for-event identical and scrapes land on the first
            # event at-or-after each grid instant.
            tel.scrape(self._now)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")
