"""Discrete-event simulation substrate (events, processes, resources)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    SimulationError,
    Timeout,
)
from .resources import BandwidthLink, Resource, Store
from .sync import Barrier, Channel, Flag, Mutex, Semaphore
from .trace import Interval, PhaseTimer, Tracer

__all__ = [
    "AllOf", "AnyOf", "Event", "Interrupt", "Process", "Simulator",
    "SimulationError", "Timeout",
    "BandwidthLink", "Resource", "Store",
    "Barrier", "Channel", "Flag", "Mutex", "Semaphore",
    "Interval", "PhaseTimer", "Tracer",
]
