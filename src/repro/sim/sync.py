"""Synchronization primitives built on the simulation kernel.

These mirror the concurrency primitives the paper's implementation relies
on — most importantly the *condition flag* used between the main thread and
the helper thread in the SC-OBR co-design (Section 4.3), and barriers used
for iteration boundaries between SPMD solvers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Event, Simulator

__all__ = ["Flag", "Semaphore", "Mutex", "Barrier", "Channel"]


class Flag:
    """A level-triggered condition flag (C++ ``condition_variable`` + bool).

    ``wait()`` returns immediately if the flag is already set; otherwise it
    blocks until :meth:`set` is called.  :meth:`clear` re-arms the flag.
    This is exactly the main-thread/helper-thread signalling primitive of
    the SC-OBR design.
    """

    def __init__(self, sim: Simulator, value: bool = False):
        self.sim = sim
        self._value = value
        self._waiters: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._value

    def set(self, payload: Any = None) -> None:
        """Set the flag and release all current waiters."""
        self._value = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(payload)

    def clear(self) -> None:
        self._value = False

    def wait(self) -> Event:
        """Event that triggers when the flag is (or becomes) set."""
        ev = self.sim.event()
        if self._value:
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.sim = sim
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self._value > 0:
            self._value -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._value += 1


class Mutex(Semaphore):
    """A binary semaphore."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, value=1)


class Barrier:
    """An N-party reusable barrier.

    Each generation releases all parties once the Nth arrives; the barrier
    then resets for the next generation.  ``arrive()`` returns an event the
    caller yields on.
    """

    def __init__(self, sim: Simulator, parties: int):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._waiters: list[Event] = []
        self._broken: Optional[BaseException] = None

    def abort(self, exc: BaseException) -> None:
        """Break the barrier: fail all current waiters with ``exc`` and
        make every future :meth:`arrive` fail immediately.

        Used by communicator revocation — a dead rank will never arrive,
        so survivors parked on the barrier must be released into their
        recovery path instead of deadlocking.
        """
        self._broken = exc
        self._count = 0
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            w.fail(exc)

    def arrive(self) -> Event:
        ev = self.sim.event()
        # Defused: an abort() may fail this event after its waiter was
        # interrupted (a crashed rank parked here) — failure with no
        # listener must not crash the kernel.
        ev._defused = True
        if self._broken is not None:
            ev.fail(self._broken)
            return ev
        self._count += 1
        if self._count == self.parties:
            gen = self._generation
            self._generation += 1
            self._count = 0
            waiters, self._waiters = self._waiters, []
            ev.succeed(gen)
            for w in waiters:
                w.succeed(gen)
        else:
            self._waiters.append(ev)
        return ev


class Channel:
    """An unbounded (or bounded) FIFO message channel between processes.

    ``put`` returns an event that triggers once the item is accepted
    (immediately unless the channel is bounded and full); ``get`` returns
    an event that triggers with the next item.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = self.sim.event()
        if self._getters:
            # Direct hand-off to a waiting consumer.
            self._getters.popleft().succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed(None)
        elif self._putters:
            put_ev, item = self._putters.popleft()
            ev.succeed(item)
            put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev
