"""I/O substrate: datasets, LMDB, Lustre, data layers, parallel readers."""

from .checkpoint import CheckpointStore, Snapshot
from .datalayer import DataLayer, DataReader, PREFETCH_DEPTH, make_backend
from .dataset import CIFAR10, DatasetSpec, IMAGENET, MNIST, get_dataset
from .lmdb import SimLMDB
from .lustre import SimLustre
from .sampler import ShardedSampler

__all__ = [
    "CheckpointStore", "Snapshot",
    "DataLayer", "DataReader", "PREFETCH_DEPTH", "make_backend",
    "CIFAR10", "DatasetSpec", "IMAGENET", "MNIST", "get_dataset",
    "SimLMDB", "SimLustre", "ShardedSampler",
]
