"""Simulated Lustre parallel file system.

The S-Caffe parallel-reader design (Section 4.1) bets on Lustre: many
clients streaming image files concurrently from many OSTs scale far
better than funneling everything through one database.  Model: each
client streams at up to the per-client rate; the object storage targets
provide a large aggregate ceiling shared fairly among active readers.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hardware.calibration import Calibration
from ..sim import Event, Simulator
from .dataset import DatasetSpec

__all__ = ["SimLustre"]


class SimLustre:
    """A Lustre mount shared by all reader threads of a job."""

    #: Metadata (MDS lookup + open) cost per file-open batch.
    METADATA_OVERHEAD = 150e-6

    def __init__(self, sim: Simulator, dataset: DatasetSpec,
                 cal: Calibration):
        self.sim = sim
        self.dataset = dataset
        self.cal = cal
        self._readers = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def n_readers(self) -> int:
        return self._readers

    def register_reader(self) -> int:
        self._readers += 1
        return self._readers - 1

    def effective_reader_bw(self) -> float:
        """Fair share of the aggregate, capped at the per-client rate."""
        n = max(1, self._readers)
        return min(self.cal.lustre_per_client_bw,
                   self.cal.lustre_aggregate_bw / n)

    def read(self, n_samples: int) -> Generator[Event, Any, int]:
        """Sub-protocol: stream ``n_samples`` image files (ImageDataLayer
        access pattern).  Returns bytes read."""
        if n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        nbytes = n_samples * self.dataset.encoded_bytes
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(nbytes / self.effective_reader_bw())
        self.bytes_read += nbytes
        return nbytes

    def write(self, nbytes: int) -> Generator[Event, Any, None]:
        """Sub-protocol: stream ``nbytes`` out (checkpoint traffic).

        Writes share the same fair-share rate model as reads: an active
        checkpoint competes with the job's own data readers for the OSTs.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(nbytes / self.effective_reader_bw())
        self.bytes_written += nbytes
