"""Simulated LMDB database.

Caffe stores ImageNet/CIFAR as an LMDB key-value store read through a
memory-mapped B-tree.  LMDB permits concurrent readers, but its
scalability is bounded: page-cache thrash and reader-table contention
collapse aggregate throughput well before DL-scale reader counts.  The
paper observes (Sections 3.2, 6.3): *"LMDB does not scale for more than
64 parallel readers"* and "beyond 64 GPUs, we experienced severe
degradation or race conditions for LMDB".

Model: each read holds a short serialized critical section (reader-table
registration) and then streams at the per-reader rate, subject to an
aggregate cap; past ``lmdb_scalability_limit`` registered readers the
aggregate degrades quadratically — reproducing the Fig. 8 S-Caffe-L
plateau/collapse.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hardware.calibration import Calibration
from ..sim import Event, Resource, Simulator
from .dataset import DatasetSpec

__all__ = ["SimLMDB"]


class SimLMDB:
    """A shared LMDB environment with a contention-aware cost model."""

    #: Serialized reader-table critical section per batch read.
    LOCK_OVERHEAD = 40e-6

    def __init__(self, sim: Simulator, dataset: DatasetSpec,
                 cal: Calibration):
        self.sim = sim
        self.dataset = dataset
        self.cal = cal
        self._readers = 0
        self._lock = Resource(sim, capacity=1, name="lmdb.lock")
        self.bytes_read = 0

    @property
    def n_readers(self) -> int:
        return self._readers

    def register_reader(self) -> int:
        """Register a reader thread; returns its id."""
        self._readers += 1
        return self._readers - 1

    def effective_reader_bw(self) -> float:
        """Per-reader streaming bandwidth given current registration.

        Up to the scalability limit, readers share the aggregate fairly
        (each capped by the single-reader rate).  Beyond the limit the
        aggregate collapses steeply — page-cache thrash, reader-table
        contention, and mmap TLB shootdowns compound (the paper reports
        "severe degradation or race conditions" past 64 readers).
        """
        n = max(1, self._readers)
        limit = self.cal.lmdb_scalability_limit
        if n > limit:
            # Page-cache thrash cliff: the mmap working set of > limit
            # concurrent cursors no longer fits, and every reader drops
            # to the shared backing-storage rate.
            aggregate = self.cal.lmdb_thrash_floor_bw
        else:
            aggregate = self.cal.lmdb_reader_bw * n
        return min(self.cal.lmdb_reader_bw, aggregate / n)

    def lock_hold_time(self) -> float:
        """Reader-table critical section; the table scan is O(readers),
        so the hold time grows once the table overflows its design
        size."""
        n = max(1, self._readers)
        limit = self.cal.lmdb_scalability_limit
        scale = (n / limit) ** 2 if n > limit else 1.0
        return self.LOCK_OVERHEAD * scale

    def read(self, n_samples: int) -> Generator[Event, Any, int]:
        """Sub-protocol: read ``n_samples`` encoded records.

        Returns the number of bytes read.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        nbytes = n_samples * self.dataset.encoded_bytes
        yield from self._lock.use(self.lock_hold_time())
        yield self.sim.timeout(nbytes / self.effective_reader_bw())
        self.bytes_read += nbytes
        return nbytes
