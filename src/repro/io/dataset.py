"""Training-set descriptors for the paper's workloads.

Sizes describe the *on-disk, encoded* form (what the I/O subsystem
streams) and the decoded tensor form (what lands in GPU memory).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "IMAGENET", "CIFAR10", "MNIST", "get_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """A training dataset as seen by the I/O subsystem."""

    name: str
    n_samples: int
    #: Average encoded (JPEG/packed) sample size on disk.
    encoded_bytes: int
    #: Decoded tensor size (C*H*W*4 bytes) fed to the first layer.
    decoded_bytes: int
    n_classes: int
    #: Decode-cost multiplier on the base JPEG-decode rate: raw/packed
    #: datasets (CIFAR, MNIST) only deserialize, JPEG datasets decode.
    decode_speed_factor: float = 1.0

    def __post_init__(self):
        if min(self.n_samples, self.encoded_bytes,
               self.decoded_bytes, self.n_classes) <= 0:
            raise ValueError("dataset dimensions must be positive")

    def epoch_bytes(self) -> int:
        return self.n_samples * self.encoded_bytes


#: ILSVRC 2012 ("over a million images spread across 1,000 categories").
IMAGENET = DatasetSpec("imagenet", 1_281_167, 110_000, 3 * 224 * 224 * 4,
                       1000)
#: CIFAR-10: 50k 32x32x3 training images (raw pixels, no JPEG decode).
CIFAR10 = DatasetSpec("cifar10", 50_000, 3_100, 3 * 32 * 32 * 4, 10,
                      decode_speed_factor=8.0)
#: MNIST: 60k 28x28 grayscale images (raw).
MNIST = DatasetSpec("mnist", 60_000, 800, 28 * 28 * 4, 10,
                    decode_speed_factor=8.0)

_DATASETS = {d.name: d for d in (IMAGENET, CIFAR10, MNIST)}


def get_dataset(name: str) -> DatasetSpec:
    try:
        return _DATASETS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(_DATASETS)}")
