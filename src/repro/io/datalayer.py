"""Data layers and reader threads.

Caffe's I/O architecture (Section 3.2): a *Data Reader* thread constantly
pulls records from the store into memory queues; solvers pop decoded
batches.  Two arrangements are modeled:

- **Shared reader** (original Caffe): one reader thread fills one shared
  queue that all intra-node solvers pop from — fine in one process,
  impossible across nodes.
- **Parallel readers** (S-Caffe, Fig. 3): one reader per solver process,
  each with its own distributed queue, backed either by LMDB
  (``S-Caffe-L``) or by Lustre + ImageDataLayer (``S-Caffe``).

A reader prefetches ahead of the solver (bounded queue), so in steady
state I/O hides behind compute unless the backend's effective bandwidth
drops below the consumption rate — exactly the LMDB-at-scale failure.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, Union

from ..sim import Event, Simulator, Store
from .dataset import DatasetSpec
from .lmdb import SimLMDB
from .lustre import SimLustre

__all__ = ["DataBackend", "DataReader", "DataLayer", "make_backend"]

#: Batches the reader keeps ahead of the consumer.
PREFETCH_DEPTH = 3


class DataBackend(Protocol):
    """What a reader needs from a storage backend."""

    dataset: DatasetSpec

    def register_reader(self) -> int: ...
    def read(self, n_samples: int) -> Generator[Event, Any, int]: ...


def make_backend(kind: str, sim: Simulator, dataset: DatasetSpec,
                 cal) -> Union[SimLMDB, SimLustre]:
    """Backend factory: ``"lmdb"`` or ``"lustre"`` (ImageDataLayer)."""
    if kind == "lmdb":
        return SimLMDB(sim, dataset, cal)
    if kind in ("lustre", "imagedata"):
        return SimLustre(sim, dataset, cal)
    raise ValueError(f"unknown backend kind {kind!r}")


class DataReader:
    """A reader thread: read -> decode -> enqueue, forever."""

    def __init__(self, sim: Simulator, backend: DataBackend,
                 batch_samples: int, *, decode_bw: float,
                 queue_depth: int = PREFETCH_DEPTH, name: str = "reader"):
        if batch_samples < 1:
            raise ValueError("batch_samples must be >= 1")
        self.sim = sim
        self.backend = backend
        self.batch_samples = batch_samples
        self.decode_bw = decode_bw
        self.queue: Store = Store(sim, capacity=queue_depth)
        self.name = name
        self.batches_produced = 0
        backend.register_reader()
        self._proc = sim.process(self._run(), name=name)

    def _run(self):
        from ..sim import Interrupt
        try:
            decode_rate = (self.decode_bw
                           * self.backend.dataset.decode_speed_factor)
            while True:
                nbytes = yield from self.backend.read(self.batch_samples)
                # JPEG decode / raw unpack on the reader's CPU core.
                yield self.sim.timeout(nbytes / decode_rate)
                self.batches_produced += 1
                yield self.queue.put(self.batch_samples)
        except Interrupt:
            return

    def stop(self) -> None:
        if self._proc.is_alive:
            self._proc.interrupt("stop")


class DataLayer:
    """Solver-facing view: pop the next prepared batch.

    ``next_batch`` returns the number of samples delivered (the reader's
    batch granularity matches the solver's per-iteration need).
    """

    def __init__(self, reader: DataReader):
        self.reader = reader
        self.batches_consumed = 0
        #: Cumulative time this solver stalled waiting on I/O.
        self.stall_time = 0.0

    def next_batch(self) -> Generator[Event, Any, int]:
        start = self.reader.sim.now
        n = yield self.reader.queue.get()
        self.stall_time += self.reader.sim.now - start
        self.batches_consumed += 1
        return n
