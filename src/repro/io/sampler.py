"""Deterministic sharded sampling for data-parallel training.

In the data-parallel approach "the same model is replicated for every
processing element ... but is fed with different parts of the training
data" (Section 3.1).  The sampler makes that split explicit and
reproducible: each epoch is a seeded permutation of the dataset, cut
into P disjoint contiguous shards; rank r draws its batches from shard
r.  Determinism matters twice — parallel readers on different nodes
must agree on the split with no communication, and equivalence tests
need bit-identical batch schedules.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .dataset import DatasetSpec

__all__ = ["ShardedSampler"]


class ShardedSampler:
    """Epoch-permuted, disjoint per-rank sampling."""

    def __init__(self, dataset: DatasetSpec, *, n_shards: int, shard: int,
                 batch: int, shuffle: bool = True, seed: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0 <= shard < n_shards:
            raise ValueError(f"shard {shard} not in [0, {n_shards})")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if dataset.n_samples < n_shards:
            raise ValueError("fewer samples than shards")
        self.dataset = dataset
        self.n_shards = n_shards
        self.shard = shard
        self.batch = batch
        self.shuffle = shuffle
        self.seed = seed
        #: Samples per shard (dataset truncated to a multiple of shards,
        #: as Caffe's epoch accounting does).
        self.shard_size = dataset.n_samples // n_shards

    @property
    def batches_per_epoch(self) -> int:
        return max(1, self.shard_size // self.batch)

    def _epoch_permutation(self, epoch: int) -> np.ndarray:
        if not self.shuffle:
            return np.arange(self.n_shards * self.shard_size)
        rng = np.random.default_rng((self.seed, epoch))
        return rng.permutation(self.n_shards * self.shard_size)

    def epoch_of(self, iteration: int) -> int:
        if iteration < 0:
            raise ValueError("iteration must be >= 0")
        return iteration // self.batches_per_epoch

    def batch_indices(self, iteration: int) -> np.ndarray:
        """Dataset indices this shard trains at a global iteration."""
        epoch = self.epoch_of(iteration)
        within = iteration % self.batches_per_epoch
        perm = self._epoch_permutation(epoch)
        lo = self.shard * self.shard_size + within * self.batch
        return perm[lo:lo + self.batch]

    def __iter__(self) -> Iterator[np.ndarray]:
        """Stream batches forever (one per global iteration)."""
        it = 0
        while True:
            yield self.batch_indices(it)
            it += 1
