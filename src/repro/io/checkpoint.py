"""Solver-state checkpointing with modeled D2H + parallel-FS write cost.

Long training runs on failure-prone clusters periodically snapshot the
solver state (parameters + momentum, like Caffe's ``.solverstate``) so a
rank crash costs at most one checkpoint interval of recomputation.  The
cost model has three parts:

1. **D2H drain** — the packed state crosses the root GPU's PCIe uplink
   (contending with training traffic, which is why checkpointing is not
   free even though it happens between iterations);
2. **metadata** — one MDS open/commit round-trip;
3. **stream-out** — the byte stream at the per-client Lustre write rate.

Restore is the mirror image (stream-in + H2D).  The store keeps only the
latest snapshot — the restart protocol never reaches further back.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hardware.calibration import Calibration
from ..hardware.gpu import GPUDevice
from ..sim import Event, Simulator

__all__ = ["Snapshot", "CheckpointStore", "snapshot_checksum"]


def snapshot_checksum(iteration: int, nbytes: int,
                      payload: Optional[Any]) -> int:
    """CRC32 over the snapshot's identifying content.

    Payload-carrying snapshots hash the real bytes; size-only runs hash
    the metadata, which still detects the modeled corruption (the
    corruptor records itself by breaking the stored checksum).
    """
    if payload is not None:
        import numpy as np
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    return zlib.crc32(f"{iteration}:{nbytes}".encode())


@dataclass(frozen=True)
class Snapshot:
    """One persisted solver state."""

    #: Number of *completed* iterations at save time (restart resumes
    #: at this iteration index).
    iteration: int
    nbytes: int
    #: Simulated time the save committed.
    time: float
    #: Optional real payload (adapter parameter vector) for real-math runs.
    payload: Optional[Any] = None
    #: CRC32 recorded at save time; verified on restore.
    checksum: int = 0
    #: True once a :class:`~repro.faults.plan.CorruptCheckpoint` fault
    #: rotted this snapshot (its stored checksum no longer matches).
    corrupted: bool = False


class CheckpointStore:
    """Latest-snapshot store with calibrated save/restore cost."""

    #: MDS open + commit cost per snapshot operation.
    METADATA_OVERHEAD = 150e-6

    def __init__(self, sim: Simulator, cal: Calibration, *,
                 write_bw: Optional[float] = None,
                 read_bw: Optional[float] = None):
        self.sim = sim
        self.cal = cal
        self._write_bw = write_bw or cal.lustre_per_client_bw
        self._read_bw = read_bw or cal.lustre_per_client_bw
        self._latest: Optional[Snapshot] = None
        # Telemetry
        self.saves = 0
        self.restores = 0
        self.save_time = 0.0
        self.restore_time = 0.0
        self.bytes_written = 0
        #: Restores that found a corrupted snapshot (and discarded it).
        self.checksum_failures = 0

    @property
    def latest(self) -> Optional[Snapshot]:
        return self._latest

    @property
    def completed_iterations(self) -> int:
        """Iterations safely persisted (0 before the first snapshot)."""
        return 0 if self._latest is None else self._latest.iteration

    def save(self, gpu: GPUDevice, nbytes: int, iteration: int,
             payload: Optional[Any] = None) -> Generator[Event, Any, None]:
        """Sub-protocol: persist ``nbytes`` of solver state from ``gpu``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        t0 = self.sim.now
        yield self.sim.timeout(self.cal.cuda_copy_overhead)
        yield from gpu.pcie_up.transfer(nbytes)
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(nbytes / self._write_bw)
        self._latest = Snapshot(
            iteration=iteration, nbytes=nbytes, time=self.sim.now,
            payload=payload,
            checksum=snapshot_checksum(iteration, nbytes, payload))
        self.saves += 1
        self.bytes_written += nbytes
        self.save_time += self.sim.now - t0

    def corrupt_latest(self) -> bool:
        """Rot the latest snapshot in place (fault-injection hook).

        Returns True if there was a snapshot to corrupt.  The stored
        checksum is left untouched while the ``corrupted`` flag marks
        the content as rotten, so :meth:`restore`'s verify fails exactly
        as it would on a real bad block.
        """
        if self._latest is None:
            return False
        self._latest = dataclasses.replace(self._latest, corrupted=True)
        return True

    def verify(self, snap: Snapshot) -> bool:
        """Does the snapshot's stored checksum match its content?"""
        if snap.corrupted:
            return False
        return snap.checksum == snapshot_checksum(
            snap.iteration, snap.nbytes, snap.payload)

    def restore(self, gpu: GPUDevice
                ) -> Generator[Event, Any, Optional[Snapshot]]:
        """Sub-protocol: stream the latest snapshot back onto ``gpu``.

        Returns the snapshot, or None when nothing was ever saved (the
        restart then recomputes from iteration 0).  A snapshot whose
        checksum no longer verifies is *discarded* and None returned:
        bounded rollback to iteration 0 rather than resuming training
        from silently wrong solver state.
        """
        snap = self._latest
        if snap is None:
            return None
        t0 = self.sim.now
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(snap.nbytes / self._read_bw)
        if not self.verify(snap):
            # The stream-in already cost its read time (you must read
            # the bytes to hash them); the H2D is skipped.
            self.checksum_failures += 1
            self._latest = None
            self.restore_time += self.sim.now - t0
            return None
        yield self.sim.timeout(self.cal.cuda_copy_overhead)
        yield from gpu.pcie_down.transfer(snap.nbytes)
        self.restores += 1
        self.restore_time += self.sim.now - t0
        return snap
