"""Solver-state checkpointing with modeled D2H + parallel-FS write cost.

Long training runs on failure-prone clusters periodically snapshot the
solver state (parameters + momentum, like Caffe's ``.solverstate``) so a
rank crash costs at most one checkpoint interval of recomputation.  The
cost model has three parts:

1. **D2H drain** — the packed state crosses the root GPU's PCIe uplink
   (contending with training traffic, which is why checkpointing is not
   free even though it happens between iterations);
2. **metadata** — one MDS open/commit round-trip;
3. **stream-out** — the byte stream at the per-client Lustre write rate.

Restore is the mirror image (stream-in + H2D).  The store keeps only the
latest snapshot — the restart protocol never reaches further back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..hardware.calibration import Calibration
from ..hardware.gpu import GPUDevice
from ..sim import Event, Simulator

__all__ = ["Snapshot", "CheckpointStore"]


@dataclass(frozen=True)
class Snapshot:
    """One persisted solver state."""

    #: Number of *completed* iterations at save time (restart resumes
    #: at this iteration index).
    iteration: int
    nbytes: int
    #: Simulated time the save committed.
    time: float
    #: Optional real payload (adapter parameter vector) for real-math runs.
    payload: Optional[Any] = None


class CheckpointStore:
    """Latest-snapshot store with calibrated save/restore cost."""

    #: MDS open + commit cost per snapshot operation.
    METADATA_OVERHEAD = 150e-6

    def __init__(self, sim: Simulator, cal: Calibration, *,
                 write_bw: Optional[float] = None,
                 read_bw: Optional[float] = None):
        self.sim = sim
        self.cal = cal
        self._write_bw = write_bw or cal.lustre_per_client_bw
        self._read_bw = read_bw or cal.lustre_per_client_bw
        self._latest: Optional[Snapshot] = None
        # Telemetry
        self.saves = 0
        self.restores = 0
        self.save_time = 0.0
        self.restore_time = 0.0
        self.bytes_written = 0

    @property
    def latest(self) -> Optional[Snapshot]:
        return self._latest

    @property
    def completed_iterations(self) -> int:
        """Iterations safely persisted (0 before the first snapshot)."""
        return 0 if self._latest is None else self._latest.iteration

    def save(self, gpu: GPUDevice, nbytes: int, iteration: int,
             payload: Optional[Any] = None) -> Generator[Event, Any, None]:
        """Sub-protocol: persist ``nbytes`` of solver state from ``gpu``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        t0 = self.sim.now
        yield self.sim.timeout(self.cal.cuda_copy_overhead)
        yield from gpu.pcie_up.transfer(nbytes)
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(nbytes / self._write_bw)
        self._latest = Snapshot(iteration=iteration, nbytes=nbytes,
                                time=self.sim.now, payload=payload)
        self.saves += 1
        self.bytes_written += nbytes
        self.save_time += self.sim.now - t0

    def restore(self, gpu: GPUDevice
                ) -> Generator[Event, Any, Optional[Snapshot]]:
        """Sub-protocol: stream the latest snapshot back onto ``gpu``.

        Returns the snapshot, or None when nothing was ever saved (the
        restart then recomputes from iteration 0).
        """
        snap = self._latest
        if snap is None:
            return None
        t0 = self.sim.now
        yield self.sim.timeout(self.METADATA_OVERHEAD)
        yield self.sim.timeout(snap.nbytes / self._read_bw)
        yield self.sim.timeout(self.cal.cuda_copy_overhead)
        yield from gpu.pcie_down.transfer(snap.nbytes)
        self.restores += 1
        self.restore_time += self.sim.now - t0
        return snap
