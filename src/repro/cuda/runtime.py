"""Simulated CUDA runtime: copies, peer transfers, kernels.

All operations are *sub-protocols* — generators the caller drives with
``yield from`` inside a sim process.  Timing comes from the calibration
constants attached to the cluster; payload movement (when buffers carry
real arrays) happens at completion time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hardware import Cluster, multi_link_transfer
from ..hardware.gpu import GPUDevice
from ..sim import Event
from .memory import DeviceBuffer, HostBuffer

__all__ = ["CudaRuntime"]


class CudaRuntime:
    """Per-cluster CUDA operations with calibrated timing."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal

    # -- copies --------------------------------------------------------------
    def _staging_factor(self, host: Optional[HostBuffer]) -> float:
        if host is not None and not host.pinned:
            return self.cal.unpinned_factor
        return 1.0

    def _timed(self, kind: str, duration: float, *, nbytes: int = 0,
               label: str = "") -> Generator[Event, Any, None]:
        """A plain timeout, recorded as a resource-less span when a
        profiler is installed (launch overheads, D2D copies)."""
        rec = self.sim.recorder
        if rec is None:
            yield self.sim.timeout(duration)
            return
        sid = rec.open(kind, nbytes=nbytes, label=label)
        try:
            yield self.sim.timeout(duration)
        finally:
            rec.close(sid)

    def memcpy_d2h(self, src: DeviceBuffer, dst: Optional[HostBuffer] = None,
                   nbytes: Optional[int] = None,
                   ) -> Generator[Event, Any, None]:
        """Device -> host copy over the GPU's PCIe uplink."""
        n = src.nbytes if nbytes is None else nbytes
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_cuda_copy("d2h", n)
        yield from self._timed("overhead", self.cal.cuda_copy_overhead,
                               label="cudaMemcpy")
        factor = self._staging_factor(dst)
        eff = int(n / factor) if factor != 1.0 else n
        yield from src.device.pcie_up.transfer(eff, kind="d2h")
        if dst is not None:
            dst.copy_payload_from(src, nbytes=n)

    def memcpy_h2d(self, dst: DeviceBuffer, src: Optional[HostBuffer] = None,
                   nbytes: Optional[int] = None,
                   ) -> Generator[Event, Any, None]:
        """Host -> device copy over the GPU's PCIe downlink."""
        n = dst.nbytes if nbytes is None else nbytes
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_cuda_copy("h2d", n)
        yield from self._timed("overhead", self.cal.cuda_copy_overhead,
                               label="cudaMemcpy")
        factor = self._staging_factor(src)
        eff = int(n / factor) if factor != 1.0 else n
        yield from dst.device.pcie_down.transfer(eff, kind="h2d")
        if src is not None:
            dst.copy_payload_from(src, nbytes=n)

    def memcpy_d2d(self, device: GPUDevice, nbytes: int,
                   ) -> Generator[Event, Any, None]:
        """Same-device copy at device-memory bandwidth."""
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_cuda_copy("d2d", nbytes)
        yield from self._timed("d2d", self.cal.cuda_copy_overhead
                               + nbytes / device.spec.membw, nbytes=nbytes,
                               label=device.name)

    def memcpy_p2p(self, src: DeviceBuffer, dst: DeviceBuffer,
                   nbytes: Optional[int] = None, *, src_offset: int = 0,
                   dst_offset: int = 0) -> Generator[Event, Any, None]:
        """Peer-to-peer copy between GPUs on the same node (CUDA IPC).

        Holds both devices' PCIe uplinks for the cut-through duration.
        """
        if src.device.node_index != dst.device.node_index:
            raise ValueError(
                f"P2P requires same node: {src.device.name} vs "
                f"{dst.device.name}")
        n = min(src.nbytes, dst.nbytes) if nbytes is None else nbytes
        if src.device is dst.device:
            yield from self.memcpy_d2d(src.device, n)
        else:
            tel = self.sim.telemetry
            if tel is not None:
                tel.on_cuda_copy("p2p", n)
            links = [src.device.pcie_up, dst.device.pcie_down]
            yield from multi_link_transfer(
                self.sim, links, n, extra_time=self.cal.cuda_copy_overhead,
                kind="p2p")
        dst.copy_payload_from(src, nbytes=n, src_offset=src_offset,
                              dst_offset=dst_offset)

    # -- kernels ---------------------------------------------------------------
    def launch(self, device: GPUDevice, *, flops: float = 0.0,
               duration: Optional[float] = None,
               ) -> Generator[Event, Any, None]:
        """Run a compute kernel on ``device`` (serializes on the SM array)."""
        dur = (device.spec.compute_time(flops) if duration is None
               else duration)
        if self.cal.compute_jitter:
            dur *= self.sim.jitter_factor(self.cal.compute_jitter)
        dur *= device.compute_slowdown
        yield from device.compute.use(self.cal.kernel_launch_overhead + dur,
                                      kind="kernel")

    def reduce_kernel(self, acc: DeviceBuffer, contrib: DeviceBuffer,
                      nbytes: Optional[int] = None, *, offset: int = 0,
                      ) -> Generator[Event, Any, None]:
        """On-device elementwise sum ``acc += contrib`` over a byte range.

        Both buffers must live on the same device (the contribution is
        assumed already transferred there by the caller).
        """
        if acc.device is not contrib.device:
            raise ValueError("reduce_kernel operands must be co-resident")
        n = min(acc.nbytes, contrib.nbytes) if nbytes is None else nbytes
        yield from acc.device.compute.use(
            self.cal.kernel_launch_overhead + acc.device.spec.reduce_time(n),
            kind="reduce", nbytes=n)
        acc.accumulate_payload_from(contrib, nbytes=n, offset=offset)

    def cpu_reduce(self, node_index: int, acc, contrib,
                   nbytes: Optional[int] = None, *, offset: int = 0,
                   ) -> Generator[Event, Any, None]:
        """Host-side elementwise sum (used by the OpenMPI/MV2 profiles)."""
        node = self.cluster.nodes[node_index]
        n = min(acc.nbytes, contrib.nbytes) if nbytes is None else nbytes
        yield from node.cpu_reduce.transfer(n, kind="cpu_reduce")
        acc.accumulate_payload_from(contrib, nbytes=n, offset=offset)
