"""CUDA streams and events (in-order work queues).

A :class:`Stream` executes submitted sub-protocols strictly in submission
order, like a CUDA stream; different streams on the same device still
contend for the device's SM/PCIe resources, which is how copy/compute
overlap (and its limits) emerges in the model.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hardware.gpu import GPUDevice
from ..sim import Channel, Event, Simulator

__all__ = ["Stream", "CudaEvent"]


class CudaEvent:
    """A recordable marker; ``synchronize`` waits until it completes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._done = sim.event()

    def _complete(self) -> None:
        if not self._done.triggered:
            self._done.succeed(self.sim.now)

    @property
    def completed(self) -> bool:
        return self._done.triggered

    def synchronize(self) -> Event:
        """Event the caller yields to wait for completion."""
        if self._done.triggered:
            ev = self.sim.event()
            ev.succeed(self._done._value)
            return ev
        # Piggyback on the completion event.
        ev = self.sim.event()
        self._done.add_callback(lambda e: ev.succeed(e._value))
        return ev


class Stream:
    """An in-order asynchronous work queue bound to one device."""

    _SENTINEL = object()

    def __init__(self, device: GPUDevice, name: str = ""):
        self.device = device
        self.sim = device.sim
        self.name = name or f"{device.name}.stream"
        self._queue = Channel(self.sim)
        self._pending = 0
        self.sim.process(self._worker(), name=self.name)

    @property
    def pending(self) -> int:
        """Number of submitted operations not yet completed."""
        return self._pending

    def submit(self, op: Generator[Event, Any, Any]) -> Event:
        """Enqueue a sub-protocol; returns an event for its completion."""
        done = self.sim.event()
        self._pending += 1
        self._queue.put((op, done))
        return done

    def record(self) -> CudaEvent:
        """Record a CUDA event after all currently queued work."""
        cev = CudaEvent(self.sim)
        def marker():
            cev._complete()
            return
            yield  # pragma: no cover - makes this a generator
        self.submit(marker())
        return cev

    def synchronize(self) -> Event:
        """Event that fires once all submitted work has drained."""
        if self._pending == 0:
            ev = self.sim.event()
            ev.succeed(None)
            return ev
        return self.record().synchronize()

    def _worker(self):
        while True:
            op, done = yield self._queue.get()
            try:
                result = yield from op
            except BaseException as exc:
                self._pending -= 1
                done.fail(exc)
            else:
                self._pending -= 1
                done.succeed(result)
