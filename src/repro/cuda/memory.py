"""Device/host buffer abstractions.

Buffers are *payload-optional*: every buffer knows its size (for the
timing model); it may additionally carry a real :class:`numpy.ndarray`
payload.  Small-scale correctness tests push real arrays through the
simulated MPI stack and check numerical equivalence; large-scale (160-GPU)
benchmark runs use size-only buffers so memory stays bounded.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hardware.gpu import GPUDevice

__all__ = ["DeviceBuffer", "HostBuffer", "buffer_tracker"]

#: Optional allocation observer (an object with ``on_alloc(buf)`` /
#: ``on_free(buf)``), installed by :class:`repro.check.InvariantChecker`
#: for end-of-run scratch-leak detection.  Module-level because buffers
#: carry no simulator reference; ``None`` (default) disables tracking
#: at the cost of one global load per alloc/free.
buffer_tracker = None


class _BufferBase:
    """Shared behaviour of device and host buffers."""

    __slots__ = ("nbytes", "data", "name")

    def __init__(self, nbytes: int, data: Optional[np.ndarray],
                 name: str = ""):
        if data is not None:
            data = np.ascontiguousarray(data)
            if data.nbytes != nbytes:
                raise ValueError(
                    f"payload has {data.nbytes} bytes, declared {nbytes}")
        elif nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.nbytes = int(nbytes)
        self.data = data
        self.name = name

    @property
    def has_data(self) -> bool:
        return self.data is not None

    def copy_payload_from(self, other: "_BufferBase", *, nbytes:
                          Optional[int] = None, src_offset: int = 0,
                          dst_offset: int = 0) -> None:
        """Copy real payload bytes (no-op when either side is size-only)."""
        if self.data is None or other.data is None:
            return
        n = self.nbytes if nbytes is None else nbytes
        dst = self.data.view(np.uint8)
        src = other.data.view(np.uint8)
        dst[dst_offset:dst_offset + n] = src[src_offset:src_offset + n]

    def accumulate_payload_from(self, other: "_BufferBase", *,
                                nbytes: Optional[int] = None,
                                offset: int = 0) -> None:
        """Elementwise-add ``other``'s payload into ours (sum reduction).

        ``offset``/``nbytes`` are in bytes and must be element-aligned.
        """
        if self.data is None or other.data is None:
            return
        if self.data.dtype != other.data.dtype:
            raise TypeError(
                f"dtype mismatch {self.data.dtype} vs {other.data.dtype}")
        item = self.data.dtype.itemsize
        n = self.nbytes if nbytes is None else nbytes
        if offset % item or n % item:
            raise ValueError("offset/nbytes must be element-aligned")
        lo, hi = offset // item, (offset + n) // item
        flat = self.data.reshape(-1)
        oflat = other.data.reshape(-1)
        flat[lo:hi] += oflat[lo:hi]


class DeviceBuffer(_BufferBase):
    """A buffer resident in a GPU's memory (accounted by the allocator)."""

    __slots__ = ("device", "_freed")

    def __init__(self, device: GPUDevice, nbytes: int,
                 data: Optional[np.ndarray] = None, name: str = ""):
        super().__init__(nbytes, data, name)
        self.device = device
        device.reserve(self.nbytes)
        self._freed = False
        if buffer_tracker is not None:
            buffer_tracker.on_alloc(self)

    @classmethod
    def zeros(cls, device: GPUDevice, shape, dtype=np.float32,
              name: str = "") -> "DeviceBuffer":
        arr = np.zeros(shape, dtype=dtype)
        return cls(device, arr.nbytes, arr, name=name)

    @classmethod
    def from_array(cls, device: GPUDevice, arr: np.ndarray,
                   name: str = "") -> "DeviceBuffer":
        arr = np.ascontiguousarray(arr)
        return cls(device, arr.nbytes, arr.copy(), name=name)

    def free(self) -> None:
        """Return the allocation to the device (idempotent error)."""
        if self._freed:
            raise RuntimeError(f"double free of {self.name or self!r}")
        self.device.unreserve(self.nbytes)
        self._freed = True
        self.data = None
        if buffer_tracker is not None:
            buffer_tracker.on_free(self)

    @property
    def freed(self) -> bool:
        return self._freed

    def __repr__(self) -> str:  # pragma: no cover
        payload = "data" if self.has_data else "size-only"
        return (f"<DeviceBuffer {self.name or id(self):#x} {self.nbytes}B "
                f"{payload} on {self.device.name}>")


class HostBuffer(_BufferBase):
    """A buffer in host DRAM (staging buffers for non-GDR protocols)."""

    __slots__ = ("pinned",)

    def __init__(self, nbytes: int, data: Optional[np.ndarray] = None,
                 *, pinned: bool = True, name: str = ""):
        super().__init__(nbytes, data, name)
        self.pinned = pinned

    def __repr__(self) -> str:  # pragma: no cover
        kind = "pinned" if self.pinned else "pageable"
        return f"<HostBuffer {self.name or id(self):#x} {self.nbytes}B {kind}>"
