"""Simulated CUDA runtime: device buffers, streams, copies, kernels."""

from .memory import DeviceBuffer, HostBuffer
from .runtime import CudaRuntime
from .stream import CudaEvent, Stream

__all__ = ["DeviceBuffer", "HostBuffer", "CudaRuntime", "CudaEvent", "Stream"]
