"""Differential conformance harness for the collective suite.

Every :class:`Case` runs one collective over real NumPy payloads on a
freshly built simulated cluster, with an
:class:`~repro.check.invariants.InvariantChecker` installed, and
compares the result byte-for-byte against the plain-NumPy reference
semantics in :mod:`repro.check.reference`.  A case fails if

- any rank program raises or never finishes (deadlock),
- any rank's result deviates from the reference by a single byte, or
- the run leaves an invariant violation behind (lockstep break, tag
  outside its reservation, leaked request/scratch/staging buffer,
  queue residue).

Cases are plain frozen dataclasses with a stable one-line ``spec()``
encoding, so any failure is reproducible from its printed spec alone:
``repro check --case '<spec>'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from ..cuda import DeviceBuffer
from ..faults import DropMessages, FaultInjector, FaultPlan
from ..hardware import cluster_a
from ..mpi import MPIRuntime
from ..mpi.collectives import (
    allgather_ring, allreduce_reduce_bcast, allreduce_ring, bcast_binomial,
    bcast_flat, bcast_scatter_allgather, block_partition, gather_binomial,
    hierarchical_reduce, reduce_binomial, reduce_chain, reduce_scatter_ring,
    scatter_binomial,
)
from ..nccl import (
    nccl_allgather, nccl_allreduce_ring, nccl_allreduce_tree,
    nccl_bcast_ring, nccl_bcast_tree, nccl_reduce_scatter, ring_order,
)
from ..sim import Simulator
from .invariants import InvariantChecker
from .reference import (
    allgather_reference, gather_reference, rank_payload, reduce_reference,
    reduce_scatter_reference, scatter_reference,
)

__all__ = ["Case", "CaseResult", "COLLECTIVES", "run_case", "parse_case",
           "generate_matrix", "run_matrix"]

#: Collectives the harness can drive, in canonical order.  The
#: ``nccl_*`` entries are the NCCL backend's suite; like the MPI ones
#: they run under every profile on the backend axis (the algorithms are
#: substrate-generic — only ``nccl`` makes them the *native* choice).
COLLECTIVES = (
    "reduce_binomial", "reduce_chain", "hierarchical_reduce",
    "allreduce_ring", "allreduce_reduce_bcast",
    "bcast_binomial", "bcast_flat", "bcast_scatter_allgather",
    "gather_binomial", "scatter_binomial",
    "allgather_ring", "reduce_scatter_ring",
    "nccl_allreduce_ring", "nccl_allreduce_tree",
    "nccl_bcast_ring", "nccl_bcast_tree",
    "nccl_allgather", "nccl_reduce_scatter",
)

#: Collectives whose result ignores ``root``.
_ROOTLESS = {"allreduce_ring", "allgather_ring", "reduce_scatter_ring",
             "nccl_allreduce_ring", "nccl_allreduce_tree",
             "nccl_allgather", "nccl_reduce_scatter"}


@dataclass(frozen=True)
class Case:
    """One conformance-matrix entry (fully determines a run)."""

    collective: str
    P: int
    nbytes: int
    root: int = 0
    chunk_bytes: Optional[int] = None
    window: Optional[int] = None
    profile: str = "mv2gdr"
    hr_config: Optional[str] = None
    seed: int = 0
    fault: Optional[str] = None

    def spec(self) -> str:
        """Stable one-line encoding, accepted by :func:`parse_case`."""
        parts = [f"collective={self.collective}", f"P={self.P}",
                 f"nbytes={self.nbytes}", f"root={self.root}",
                 f"profile={self.profile}", f"seed={self.seed}"]
        if self.chunk_bytes is not None:
            parts.append(f"chunk_bytes={self.chunk_bytes}")
        if self.window is not None:
            parts.append(f"window={self.window}")
        if self.hr_config is not None:
            parts.append(f"hr_config={self.hr_config}")
        if self.fault is not None:
            parts.append(f"fault={self.fault}")
        return ",".join(parts)

    def repro_command(self) -> str:
        return f"PYTHONPATH=src python -m repro.cli check --case '{self.spec()}'"


def parse_case(spec: str) -> Case:
    """Inverse of :meth:`Case.spec`."""
    kv: Dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            k, v = part.split("=", 1)
        except ValueError:
            raise ValueError(f"bad case field {part!r} (expected key=value)")
        kv[k.strip()] = v.strip()
    ints = {"P", "nbytes", "root", "chunk_bytes", "window", "seed"}
    kwargs: Dict[str, object] = {}
    for k, v in kv.items():
        if k in ints:
            kwargs[k] = int(v)
        elif k in ("collective", "profile", "hr_config", "fault"):
            kwargs[k] = v
        else:
            raise ValueError(f"unknown case field {k!r}")
    if "collective" not in kwargs:
        raise ValueError("case spec needs collective=...")
    case = Case(**kwargs)
    if case.collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {case.collective!r}")
    return case


@dataclass
class CaseResult:
    case: Case
    failures: List[str] = field(default_factory=list)
    sim_time: float = 0.0
    n_events: int = 0
    #: Telemetry PVAR snapshot at end of run (cross-validated against
    #: the checker's independent tally before being stored).
    pvars: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        head = f"{'PASS' if self.ok else 'FAIL'} {self.case.spec()}"
        if self.ok:
            return head
        lines = [head] + [f"    {f}" for f in self.failures]
        lines.append(f"    repro: {self.case.repro_command()}")
        return "\n".join(lines)


def _root_for_rank(case: Case, rank: int) -> int:
    """Seam for the mutation self-test: the root a given rank *believes*
    in.  Correct SPMD code returns ``case.root`` for every rank; the
    wrong-root mutant patches this to desynchronize one rank."""
    return case.root


def _program(case: Case, payloads: List[np.ndarray]):
    """Build the SPMD rank program for ``case``.

    Each program returns the rank's checked output array (or None for
    ranks with no checked output, e.g. non-roots of a plain reduce).
    """
    coll = case.collective
    n_elem = case.nbytes // 4

    def reduce_like(algo):
        def program(ctx):
            root = _root_for_rank(case, ctx.rank)
            sendbuf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            recvbuf = (DeviceBuffer.zeros(ctx.gpu, n_elem)
                       if ctx.rank == root else None)
            yield from algo(ctx, sendbuf, recvbuf, root)
            return recvbuf.data.copy() if recvbuf is not None else None
        return program

    if coll == "reduce_binomial":
        return reduce_like(reduce_binomial)
    if coll == "reduce_chain":
        def chain(ctx, sendbuf, recvbuf, root):
            yield from reduce_chain(ctx, sendbuf, recvbuf, root,
                                    chunk_bytes=case.chunk_bytes,
                                    window=case.window)
        return reduce_like(chain)
    if coll == "hierarchical_reduce":
        def hr(ctx, sendbuf, recvbuf, root):
            yield from hierarchical_reduce(ctx, sendbuf, recvbuf, root,
                                           config=case.hr_config or "CB-4",
                                           chunk_bytes=case.chunk_bytes)
        return reduce_like(hr)

    if coll in ("allreduce_ring", "allreduce_reduce_bcast"):
        def program(ctx):
            sendbuf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            recvbuf = DeviceBuffer.zeros(ctx.gpu, n_elem)
            if coll == "allreduce_ring":
                yield from allreduce_ring(ctx, sendbuf, recvbuf)
            else:
                yield from allreduce_reduce_bcast(
                    ctx, sendbuf, recvbuf,
                    root=_root_for_rank(case, ctx.rank))
            return recvbuf.data.copy()
        return program

    if coll in ("bcast_binomial", "bcast_flat", "bcast_scatter_allgather"):
        algo = {"bcast_binomial": bcast_binomial, "bcast_flat": bcast_flat,
                "bcast_scatter_allgather": bcast_scatter_allgather}[coll]
        def program(ctx):
            root = _root_for_rank(case, ctx.rank)
            buf = (DeviceBuffer.from_array(ctx.gpu, payloads[root])
                   if ctx.rank == root
                   else DeviceBuffer.zeros(ctx.gpu, n_elem))
            yield from algo(ctx, buf, root)
            return buf.data.copy()
        return program

    if coll in ("gather_binomial", "scatter_binomial"):
        def program(ctx):
            root = _root_for_rank(case, ctx.rank)
            if coll == "gather_binomial" or ctx.rank == root:
                buf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            else:
                buf = DeviceBuffer.zeros(ctx.gpu, n_elem)
            if coll == "gather_binomial":
                yield from gather_binomial(ctx, buf, root)
            else:
                yield from scatter_binomial(ctx, buf, root)
            return buf.data.copy()
        return program

    if coll == "allgather_ring":
        def program(ctx):
            buf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            yield from allgather_ring(ctx, buf)
            return buf.data.copy()
        return program

    if coll == "reduce_scatter_ring":
        def program(ctx):
            sendbuf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            recvbuf = DeviceBuffer.zeros(ctx.gpu, n_elem)
            yield from reduce_scatter_ring(ctx, sendbuf, recvbuf)
            return recvbuf.data.copy()
        return program

    if coll in ("nccl_allreduce_ring", "nccl_allreduce_tree",
                "nccl_reduce_scatter"):
        algo = {"nccl_allreduce_ring": nccl_allreduce_ring,
                "nccl_allreduce_tree": nccl_allreduce_tree,
                "nccl_reduce_scatter": nccl_reduce_scatter}[coll]
        def program(ctx):
            sendbuf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            recvbuf = DeviceBuffer.zeros(ctx.gpu, n_elem)
            yield from algo(ctx, sendbuf, recvbuf,
                            chunk_bytes=case.chunk_bytes)
            return recvbuf.data.copy()
        return program

    if coll in ("nccl_bcast_ring", "nccl_bcast_tree"):
        algo = (nccl_bcast_ring if coll == "nccl_bcast_ring"
                else nccl_bcast_tree)
        def program(ctx):
            root = _root_for_rank(case, ctx.rank)
            buf = (DeviceBuffer.from_array(ctx.gpu, payloads[root])
                   if ctx.rank == root
                   else DeviceBuffer.zeros(ctx.gpu, n_elem))
            yield from algo(ctx, buf, root, chunk_bytes=case.chunk_bytes)
            return buf.data.copy()
        return program

    if coll == "nccl_allgather":
        def program(ctx):
            buf = DeviceBuffer.from_array(ctx.gpu, payloads[ctx.rank])
            yield from nccl_allgather(ctx, buf,
                                      chunk_bytes=case.chunk_bytes)
            return buf.data.copy()
        return program

    raise ValueError(f"unknown collective {coll!r}")


def _verify(case: Case, payloads: List[np.ndarray],
            results: List[Optional[np.ndarray]], failures: List[str]) -> None:
    """Byte-exact comparison of per-rank outputs against the reference."""
    coll = case.collective
    root = case.root

    def check(rank: int, got: Optional[np.ndarray], want: np.ndarray,
              what: str) -> None:
        if got is None:
            failures.append(f"rank {rank}: no {what} output")
            return
        if got.shape != want.shape or not np.array_equal(
                got.view(np.uint8), want.view(np.uint8)):
            bad = int(np.sum(got != want)) if got.shape == want.shape else -1
            failures.append(
                f"rank {rank}: {what} deviates from reference "
                f"({bad if bad >= 0 else 'shape'} wrong element(s))")

    if coll in ("reduce_binomial", "reduce_chain", "hierarchical_reduce"):
        check(root, results[root], reduce_reference(payloads), "reduce")
    elif coll in ("allreduce_ring", "allreduce_reduce_bcast",
                  "nccl_allreduce_ring", "nccl_allreduce_tree"):
        want = reduce_reference(payloads)
        for r, got in enumerate(results):
            check(r, got, want, "allreduce")
    elif coll.startswith("bcast") or coll.startswith("nccl_bcast"):
        want = payloads[root]
        for r, got in enumerate(results):
            check(r, got, want, "bcast")
    elif coll == "gather_binomial":
        check(root, results[root], gather_reference(payloads), "gather")
    elif coll == "scatter_binomial":
        for r, got in enumerate(results):
            want = scatter_reference(payloads[root], r, case.P)
            off, n = block_partition(case.nbytes, case.P)[r]
            check(r, got[off // 4:(off + n) // 4], want, "scatter")
    elif coll in ("allgather_ring", "nccl_allgather"):
        want = allgather_reference(payloads)
        for r, got in enumerate(results):
            check(r, got, want, "allgather")
    elif coll == "reduce_scatter_ring":
        for r, got in enumerate(results):
            want = reduce_scatter_reference(payloads, r)
            off, n = block_partition(case.nbytes, case.P)[(r + 1) % case.P]
            check(r, got[off // 4:(off + n) // 4], want, "reduce_scatter")
    elif coll == "nccl_reduce_scatter":
        # Blocks are indexed by ring *position*: the rank at position i
        # ends holding fully-reduced block (i+1) mod P.  Recompute the
        # topology ring from the case geometry (cluster_a block
        # placement: 16 GPUs per node, ranks in global order).
        full = reduce_reference(payloads)
        order = ring_order([r // 16 for r in range(case.P)])
        blocks = block_partition(case.nbytes, case.P)
        for i, r in enumerate(order):
            off, n = blocks[(i + 1) % case.P]
            check(r, results[r][off // 4:(off + n) // 4]
                  if results[r] is not None else None,
                  full[off // 4:(off + n) // 4], "reduce_scatter")


def _fault_plan(case: Case) -> Optional[FaultPlan]:
    if case.fault is None:
        return None
    if case.fault == "drops":
        # Two messages lost on rank 0's PCIe uplink right as the
        # collective starts: the transport retries transparently, so the
        # result must still be byte-exact.
        return FaultPlan("conformance.drops", (
            DropMessages(time=1e-6, target=("pcie", 0, "up"), count=2),))
    raise ValueError(f"unknown fault kind {case.fault!r}")


def run_case(case: Case) -> CaseResult:
    """Run one conformance case; never raises for in-run failures."""
    res = CaseResult(case)
    if case.collective not in COLLECTIVES:
        res.failures.append(f"unknown collective {case.collective!r}")
        return res
    if not 0 <= case.root < case.P:
        res.failures.append(f"root {case.root} out of range for P={case.P}")
        return res
    if case.nbytes % 4:
        res.failures.append("nbytes must be 4-byte aligned (float32)")
        return res

    sim = Simulator(seed=case.seed)
    cluster = cluster_a(sim, n_nodes=max(1, (case.P + 15) // 16))
    runtime = MPIRuntime(cluster, case.profile)
    comm = runtime.world(case.P)
    payloads = [rank_payload(case.seed, r, case.nbytes)
                for r in range(case.P)]
    program = _program(case, payloads)

    plan = _fault_plan(case)
    if plan is not None:
        FaultInjector(cluster, plan).arm()

    chk = InvariantChecker()
    chk.install(sim)
    # Telemetry rides along on every case: its per-collective byte
    # attribution is cross-validated against the checker's independent
    # tally below, so the two ledgers keep each other honest.
    from ..telemetry import TelemetrySession
    tel = TelemetrySession()
    tel.attach(sim)
    tel.install()
    aborted = False
    try:
        procs = runtime.spawn(comm, program)
        try:
            sim.run()
        except Exception as exc:
            aborted = True
            res.failures.append(f"simulation aborted: {exc!r}")
    finally:
        tel.uninstall()
        chk.uninstall()

    res.sim_time = sim.now
    res.n_events = sim.event_count

    if not aborted:
        stuck = [i for i, p in enumerate(procs) if p.is_alive]
        if stuck:
            res.failures.append(f"deadlock: ranks {stuck} never finished")
        else:
            failed = [(i, p.value) for i, p in enumerate(procs) if not p.ok]
            if failed:
                for i, exc in failed:
                    res.failures.append(f"rank {i} raised {exc!r}")
            else:
                _verify(case, payloads, [p.value for p in procs],
                        res.failures)
        if not stuck:
            for v in chk.end_of_run(transport=runtime.transport):
                res.failures.append(str(v))
            got = {k: int(v)
                   for k, v in tel.pvar_read("mpi.coll.bytes").items()}
            want = {k: int(v) for k, v in chk.coll_bytes.items()}
            if got != want:
                res.failures.append(
                    f"telemetry coll-bytes mismatch: pvar {got} "
                    f"vs checker tally {want}")
        res.pvars = tel.pvar_snapshot()
    else:
        # A crashed simulation leaves queues/requests in arbitrary
        # states; the abort itself is the failure.
        res.failures.extend(str(v) for v in chk.violations)
    return res


# -- matrix generation ---------------------------------------------------------

#: Regression configurations for the two fixed tag-space bugs: a chain
#: reduce with >4096 chunks (historically spilled past its TAG_BLOCK
#: into the next collective's space) and rings with P > 513 ranks
#: (historically the allgather phase's hardcoded ``tag0 + 512`` offset
#: collided with reduce-scatter tags).
BOUNDARY_CASES = (
    Case("reduce_chain", P=3, nbytes=4 * 4160, chunk_bytes=4),
    Case("reduce_binomial", P=2, nbytes=4 * 4100, profile="openmpi"),
    Case("allreduce_ring", P=514, nbytes=4),
    Case("allgather_ring", P=515, nbytes=4),
    Case("reduce_scatter_ring", P=515, nbytes=4),
    # NCCL boundary cells: multi-node rings with empty tail blocks, a
    # tiny-chunk ring allreduce whose tag reservation spans multiple
    # TAG_BLOCK units, and the P=3 tree special case.
    Case("nccl_allreduce_ring", P=514, nbytes=4, profile="nccl"),
    Case("nccl_reduce_scatter", P=33, nbytes=4, profile="nccl"),
    Case("nccl_allreduce_ring", P=3, nbytes=4 * 4160, chunk_bytes=4,
         profile="nccl"),
    Case("nccl_allreduce_tree", P=3, nbytes=4096, profile="nccl"),
    Case("nccl_bcast_tree", P=3, nbytes=4096, root=2, profile="nccl"),
)

#: The backend axis of the matrix — derived from the profile registry
#: so a newly registered backend is swept automatically.
from ..mpi.profiles import profile_names as _profile_names  # noqa: E402

_PROFILES = tuple(_profile_names())


def generate_matrix(seed: int = 0, *, quick: bool = False,
                    max_p: Optional[int] = None) -> List[Case]:
    """The randomized-but-seeded conformance matrix.

    Always includes one case per (collective, profile) pair plus the
    :data:`BOUNDARY_CASES`; non-quick mode adds randomized sweeps over
    (P, root, nbytes, chunk_bytes, window) and fault-injected runs.
    """
    rng = np.random.default_rng(seed)
    cases: List[Case] = []

    def rand_p() -> int:
        return int(rng.integers(2, 17))

    def rand_nbytes() -> int:
        return 4 * int(rng.integers(1, 1 << int(rng.integers(1, 13))))

    # Coverage floor: every collective under every profile.
    for profile in _PROFILES:
        for coll in COLLECTIVES:
            P = rand_p()
            kw: Dict[str, object] = {}
            if coll not in _ROOTLESS:
                kw["root"] = int(rng.integers(0, P))
            if coll == "reduce_chain":
                kw["chunk_bytes"] = int(
                    rng.choice([64, 256, 1024]))
                kw["window"] = int(rng.choice([1, 2, 8]))
            if coll == "hierarchical_reduce":
                kw["hr_config"] = str(rng.choice(
                    ["CB-4", "CC-4", "CCB-4", "CB-8"]))
                P = max(P, 8)
                kw["root"] = int(rng.integers(0, P))
            if coll.startswith("nccl_"):
                kw["chunk_bytes"] = int(rng.choice([64, 256, 4096]))
            cases.append(Case(coll, P=P, nbytes=rand_nbytes(),
                              profile=profile, seed=seed, **kw))

    rounds = 1 if quick else 4
    for _ in range(rounds):
        for coll in COLLECTIVES:
            P = rand_p()
            kw = {}
            if coll not in _ROOTLESS:
                kw["root"] = int(rng.integers(0, P))
            if coll == "reduce_chain":
                kw["chunk_bytes"] = int(rng.choice([4, 64, 4096]))
                kw["window"] = (None if rng.integers(0, 2)
                                else int(rng.integers(1, 9)))
            if coll == "hierarchical_reduce":
                kw["hr_config"] = str(rng.choice(
                    ["CB-2", "CB-4", "CC-4", "CCB-2", "CCB-4"]))
                P = max(P, 6)
                kw["root"] = int(rng.integers(0, P))
            if coll.startswith("nccl_"):
                kw["chunk_bytes"] = (None if rng.integers(0, 2)
                                     else int(rng.choice([4, 64, 4096])))
            fault = "drops" if rng.integers(0, 4) == 0 else None
            cases.append(Case(coll, P=P, nbytes=rand_nbytes(),
                              profile=str(rng.choice(_PROFILES)),
                              seed=int(rng.integers(0, 1 << 16)),
                              fault=fault, **kw))

    cases.extend(BOUNDARY_CASES)
    if max_p is not None:
        cases = [c for c in cases if c.P <= max_p]
    # Quick mode keeps the big-P boundary rings but drops the heaviest
    # random payloads to stay CI-friendly.
    if quick:
        cases = [c if c.nbytes <= 1 << 14 else replace(c, nbytes=1 << 14)
                 for c in cases]
    return cases


def run_matrix(cases: List[Case], *, stop_on_fail: bool = False,
               progress=None) -> List[CaseResult]:
    results = []
    for case in cases:
        r = run_case(case)
        results.append(r)
        if progress is not None:
            progress(r)
        if stop_on_fail and not r.ok:
            break
    return results
