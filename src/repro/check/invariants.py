"""Runtime invariant checkers for the simulated MPI stack.

An :class:`InvariantChecker` installs itself as ``sim.checker`` (and as
the :data:`repro.cuda.memory.buffer_tracker`) and passively observes the
run through the hook points the runtime exposes:

- ``coll_tags`` reports every collective tag reservation
  (:meth:`on_collective`) — feeding the **SPMD lockstep** validator
  (all ranks of a communicator must invoke the same collective sequence
  with the same tag footprint) and the reservation ledger the
  **tag-space auditor** checks sends/receives against;
- ``Communicator.isend`` / ``irecv`` report every message envelope
  (:meth:`on_send` / :meth:`on_recv_post`) — audited against the ledger
  so a message outside its collective's reserved block is flagged at the
  call site, not discovered as cross-matched payloads;
- ``Request`` reports creation and waits — feeding the **end-of-run
  leak check** (a request still incomplete when the event heap drains is
  a lost message or protocol skew);
- ``DeviceBuffer`` alloc/free and ``RankContext.scratch_like`` feed the
  **scratch-leak check** (collectives must free what they allocate);
- ``TransportMetrics.stagings_live`` must return to zero.

Checkers are strictly passive: they never schedule events, so a checked
run is event-for-event identical to an unchecked one, and ``sim.checker
= None`` (the default) costs one attribute load per hook site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..cuda import memory
from ..mpi.collectives.base import COLL_TAG_BASE, TAG_BLOCK, TagBlock

__all__ = ["Violation", "InvariantChecker"]


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    ``kind`` is one of: ``lockstep``, ``tag-audit``, ``request-leak``,
    ``queue-residue``, ``buffer-leak``, ``staging-leak``.
    """

    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.kind}] {self.detail}"


@dataclass
class _CommLedger:
    """Per-communicator reservation state."""

    name: str
    #: seq -> (collective name, tag count, first registering rank).
    seqs: Dict[int, Tuple[str, int, int]] = field(default_factory=dict)
    #: TAG_BLOCK unit index -> owning TagBlock (spans may cover several
    #: units for jumbo reservations).
    units: Dict[int, TagBlock] = field(default_factory=dict)


class InvariantChecker:
    """Collects :class:`Violation`\\ s over one simulated run.

    Usage::

        chk = InvariantChecker()
        chk.install(sim)
        try:
            ... run the workload ...
        finally:
            chk.uninstall()
        chk.end_of_run(transport=runtime.transport)
        assert not chk.violations
    """

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        #: Collective name -> payload bytes sent under its tag blocks.
        #: Independent tally the telemetry layer's ``mpi.coll.bytes``
        #: PVAR is cross-validated against (same ledger, separate code).
        self.coll_bytes: Dict[str, int] = {}
        self._ledgers: Dict[int, _CommLedger] = {}
        self._comms: Dict[int, object] = {}
        self._requests: list = []
        self._live_buffers: Dict[int, object] = {}
        self._scratch_ids: set = set()
        self._sim = None
        self._prev_tracker = None

    # -- lifecycle -------------------------------------------------------------
    def install(self, sim) -> None:
        if sim.checker is not None:
            raise RuntimeError("simulator already has a checker installed")
        self._sim = sim
        sim.checker = self
        self._prev_tracker = memory.buffer_tracker
        memory.buffer_tracker = self

    def uninstall(self) -> None:
        if self._sim is not None:
            self._sim.checker = None
            self._sim = None
        memory.buffer_tracker = self._prev_tracker
        self._prev_tracker = None

    def _flag(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind, detail))

    # -- collective lockstep + reservation ledger ---------------------------
    def on_collective(self, comm, rank: int, seq: int,
                      block: TagBlock) -> None:
        led = self._ledgers.get(comm.id)
        if led is None:
            led = self._ledgers[comm.id] = _CommLedger(comm.name)
            self._comms[comm.id] = comm
        prior = led.seqs.get(seq)
        if prior is None:
            led.seqs[seq] = (block.name, block.count, rank)
            units = -(-block.count // TAG_BLOCK)
            first = (block.base - COLL_TAG_BASE) // TAG_BLOCK
            for u in range(first, first + units):
                led.units[u] = block
        elif prior[0] != block.name or prior[1] != block.count:
            self._flag(
                "lockstep",
                f"comm {led.name} seq {seq}: rank {rank} invoked "
                f"{block.name or '?'} ({block.count} tags) but rank "
                f"{prior[2]} invoked {prior[0] or '?'} ({prior[1]} tags)")

    # -- tag-space audit ----------------------------------------------------------
    def _audit_tag(self, comm, who: str, tag: int) -> None:
        if tag < COLL_TAG_BASE:
            return  # user pt2pt space: no reservation discipline
        led = self._ledgers.get(comm.id)
        block = None
        if led is not None:
            block = led.units.get((tag - COLL_TAG_BASE) // TAG_BLOCK)
        if block is None:
            self._flag(
                "tag-audit",
                f"comm {comm.name}: {who} tag {tag:#x} is in collective "
                f"space but inside no reserved block")
        elif not block.base <= tag < block.base + block.count:
            self._flag(
                "tag-audit",
                f"comm {comm.name}: {who} tag {tag:#x} outside "
                f"{block.name or 'collective'}'s reservation "
                f"[{block.base:#x}, {block.base + block.count:#x})")

    def on_send(self, comm, src_rank: int, dst_rank: int, tag: int,
                nbytes: int) -> None:
        self._comms.setdefault(comm.id, comm)
        self._audit_tag(comm, f"send {src_rank}->{dst_rank}", tag)
        if tag >= COLL_TAG_BASE:
            led = self._ledgers.get(comm.id)
            block = (led.units.get((tag - COLL_TAG_BASE) // TAG_BLOCK)
                     if led is not None else None)
            name = (block.name or "unnamed") if block is not None \
                else "unknown"
            self.coll_bytes[name] = self.coll_bytes.get(name, 0) + nbytes

    def on_recv_post(self, comm, dst_rank: int, source: int, tag: int,
                     nbytes: int) -> None:
        self._comms.setdefault(comm.id, comm)
        if tag >= 0:  # ANY_TAG posts match anything; nothing to audit
            self._audit_tag(comm, f"recv {source}->{dst_rank}", tag)

    # -- request tracking ---------------------------------------------------------
    def on_request(self, req) -> None:
        self._requests.append(req)

    def on_wait(self, req) -> None:
        pass  # reserved for wait-ordering diagnostics

    # -- buffer tracking (memory.buffer_tracker protocol) --------------------
    def on_alloc(self, buf) -> None:
        self._live_buffers[id(buf)] = buf

    def on_free(self, buf) -> None:
        self._live_buffers.pop(id(buf), None)
        self._scratch_ids.discard(id(buf))

    def on_scratch(self, buf) -> None:
        self._scratch_ids.add(id(buf))

    # -- end of run ------------------------------------------------------------
    def end_of_run(self, transport=None) -> List[Violation]:
        """Run the leak checks after the simulator drains; returns all
        violations accumulated over the run."""
        for req in self._requests:
            if not req.completed:
                self._flag(
                    "request-leak",
                    f"request {req.label or hex(id(req))} still incomplete "
                    f"at end of run")
        for cid, comm in self._comms.items():
            for r, q in comm._unexpected.items():
                if q:
                    self._flag(
                        "queue-residue",
                        f"comm {comm.name}: {len(q)} unconsumed unexpected "
                        f"message(s) for rank {r} "
                        f"(tags {[s.tag for s in q][:4]})")
            for r, q in comm._posted.items():
                if q:
                    self._flag(
                        "queue-residue",
                        f"comm {comm.name}: {len(q)} never-matched posted "
                        f"receive(s) on rank {r} "
                        f"(tags {[p.tag for p in q][:4]})")
        for bid in self._scratch_ids:
            buf = self._live_buffers.get(bid)
            if buf is not None:
                self._flag(
                    "buffer-leak",
                    f"scratch buffer {buf.name or hex(bid)} "
                    f"({buf.nbytes} B on {buf.device.name}) never freed")
        if transport is not None and transport.metrics.stagings_live:
            self._flag(
                "staging-leak",
                f"{transport.metrics.stagings_live} host staging "
                f"buffer(s) still live (peak {transport.metrics.stagings_peak})")
        return self.violations

    def report(self) -> str:
        if not self.violations:
            return "no invariant violations"
        return "\n".join(str(v) for v in self.violations)
