"""Plain-NumPy reference semantics for the conformance harness.

Byte-exactness strategy: payloads are small *integer-valued* float32
arrays (entries in [-8, 8], generated from the case seed).  Every
per-element sum over <= 520 ranks is then exactly representable in
float32 and independent of association order, so the simulated
collectives — whatever their reduction tree/chain/ring order — must
match the reference bit-for-bit, and any deviation is a real protocol
bug rather than floating-point reassociation noise.  References are
computed in int64 and cast once, making them order-independent by
construction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..mpi.collectives.gather_scatter import block_partition

__all__ = ["rank_payload", "reduce_reference", "allgather_reference",
           "gather_reference", "scatter_reference",
           "reduce_scatter_reference"]


def rank_payload(seed: int, rank: int, nbytes: int) -> np.ndarray:
    """Rank ``rank``'s float32 contribution (deterministic in seed)."""
    if nbytes % 4:
        raise ValueError("payloads are float32: nbytes must be 4-aligned")
    rng = np.random.default_rng((seed, rank))
    return rng.integers(-8, 9, size=nbytes // 4).astype(np.float32)


def reduce_reference(payloads: List[np.ndarray]) -> np.ndarray:
    """SUM over all ranks, order-independent (int64 accumulation)."""
    acc = np.zeros(payloads[0].shape, dtype=np.int64)
    for p in payloads:
        acc += p.astype(np.int64)
    return acc.astype(np.float32)


def gather_reference(payloads: List[np.ndarray]) -> np.ndarray:
    """Root's buffer after MPI_Gather: block i comes from rank i."""
    P = len(payloads)
    nbytes = payloads[0].nbytes
    out = payloads[0].copy()  # unclaimed tail bytes keep local content
    for i, (off, n) in enumerate(block_partition(nbytes, P)):
        lo, hi = off // 4, (off + n) // 4
        out[lo:hi] = payloads[i][lo:hi]
    return out


def allgather_reference(payloads: List[np.ndarray]) -> np.ndarray:
    """Every rank's buffer after MPI_Allgather (same as gather, but the
    result is identical on all ranks)."""
    return gather_reference(payloads)


def scatter_reference(root_payload: np.ndarray, rank: int,
                      P: int) -> np.ndarray:
    """Rank ``rank``'s owned block after MPI_Scatter from the root."""
    off, n = block_partition(root_payload.nbytes, P)[rank]
    lo, hi = off // 4, (off + n) // 4
    return root_payload[lo:hi].copy()


def reduce_scatter_reference(payloads: List[np.ndarray], rank: int
                             ) -> np.ndarray:
    """Rank ``rank``'s fully-reduced block after the ring
    reduce-scatter: the ring rotation leaves block ``(rank+1) % P``
    fully reduced on rank ``rank``."""
    P = len(payloads)
    total = reduce_reference(payloads)
    off, n = block_partition(payloads[0].nbytes, P)[(rank + 1) % P]
    lo, hi = off // 4, (off + n) // 4
    return total[lo:hi].copy()
