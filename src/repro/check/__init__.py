"""Conformance harness and runtime invariant checkers (``repro check``).

Three layers, designed to make collective-protocol bugs loud:

1. :mod:`~repro.check.invariants` — passive runtime checkers (SPMD
   lockstep, tag-space audit, end-of-run leak checks) installed as
   ``sim.checker``; zero-cost when absent.
2. :mod:`~repro.check.harness` — a differential matrix running every
   collective against plain-NumPy reference semantics, byte-exactly,
   across (P, root, size, chunking, window, profile, faults).
3. :mod:`~repro.check.mutation` — a self-test seeding deliberate bugs
   and asserting the two layers above catch each one.
"""

from .chaos import (
    ChaosCase, ChaosResult, FAULT_KINDS, chaos_outcome_tally,
    generate_chaos_matrix, parse_chaos_case, run_chaos, run_chaos_case,
    run_chaos_selftest,
)
from .harness import (
    BOUNDARY_CASES, COLLECTIVES, Case, CaseResult, generate_matrix,
    parse_case, run_case, run_matrix,
)
from .invariants import InvariantChecker, Violation
from .mutation import MUTATIONS, MutationOutcome, run_mutation_selftest
from .reference import rank_payload, reduce_reference

__all__ = [
    "BOUNDARY_CASES", "COLLECTIVES", "Case", "CaseResult",
    "generate_matrix", "parse_case", "run_case", "run_matrix",
    "ChaosCase", "ChaosResult", "FAULT_KINDS", "chaos_outcome_tally",
    "generate_chaos_matrix", "parse_chaos_case", "run_chaos",
    "run_chaos_case", "run_chaos_selftest",
    "InvariantChecker", "Violation",
    "MUTATIONS", "MutationOutcome", "run_mutation_selftest",
    "rank_payload", "reduce_reference",
]
