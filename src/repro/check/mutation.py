"""Mutation self-test: prove the harness catches the bugs it exists for.

Each mutation seeds one deliberate protocol bug into the live runtime
(via targeted monkeypatching), runs a conformance case that exercises
the mutated path, and demands the harness FAIL it.  A mutation the
harness passes means a detection gap — the self-test fails loudly, so
the conformance suite cannot silently rot into a rubber stamp.

Mutations:

- ``flipped_tag`` — every collective-space send goes out with its tag's
  low bit flipped (a classic off-by-one in tag arithmetic).  Expected
  detection: tag-audit violation at the send site, then deadlock /
  request leaks as receives never match.
- ``skipped_segment`` — reductions at buffer offset 0 are silently
  skipped (a lost-chunk bug).  Expected detection: byte-exact
  divergence from the NumPy reference.
- ``wrong_root`` — the last rank disagrees about the collective's root
  (an SPMD divergence).  Expected detection: deadlock or wrong bytes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import List

from ..mpi.collectives.base import COLL_TAG_BASE
from ..mpi.communicator import Communicator
from . import harness
from .harness import Case, run_case

__all__ = ["MUTATIONS", "MutationOutcome", "run_mutation_selftest",
           "flipped_tag", "skipped_segment", "wrong_root"]


@contextmanager
def flipped_tag():
    """All collective-space sends carry ``tag ^ 1``."""
    orig = Communicator.isend

    def patched(self, src_rank, dst_rank, buf, *, tag=0, **kw):
        if tag >= COLL_TAG_BASE:
            tag ^= 1
        return orig(self, src_rank, dst_rank, buf, tag=tag, **kw)

    Communicator.isend = patched
    try:
        yield
    finally:
        Communicator.isend = orig


@contextmanager
def skipped_segment():
    """Reductions at offset 0 become no-ops (first chunk never folded)."""
    import importlib
    # The collectives package re-exports the ``reduce`` *function*, which
    # shadows the submodule attribute — resolve the module explicitly.
    reduce_mod = importlib.import_module("repro.mpi.collectives.reduce")
    orig = reduce_mod.apply_reduction

    def patched(ctx, acc, contrib, nbytes, *, offset=0):
        if offset == 0:
            return
            yield  # pragma: no cover — keeps this a generator function
        yield from orig(ctx, acc, contrib, nbytes, offset=offset)

    reduce_mod.apply_reduction = patched
    try:
        yield
    finally:
        reduce_mod.apply_reduction = orig


@contextmanager
def wrong_root():
    """The last rank believes the root is ``(root + 1) % P``."""
    orig = harness._root_for_rank

    def patched(case, rank):
        if rank == case.P - 1:
            return (case.root + 1) % case.P
        return case.root

    harness._root_for_rank = patched
    try:
        yield
    finally:
        harness._root_for_rank = orig


#: (name, context manager, case exercising the mutated path).
MUTATIONS = (
    ("flipped_tag", flipped_tag,
     Case("bcast_binomial", P=4, nbytes=256)),
    ("skipped_segment", skipped_segment,
     Case("reduce_chain", P=3, nbytes=1024, chunk_bytes=64)),
    ("wrong_root", wrong_root,
     Case("reduce_binomial", P=4, nbytes=256)),
)


@dataclass
class MutationOutcome:
    name: str
    detected: bool
    clean_ok: bool
    failures: List[str]

    def describe(self) -> str:
        verdict = "DETECTED" if self.detected else "MISSED"
        if not self.clean_ok:
            verdict = "BROKEN-BASELINE"
        out = [f"{verdict:>16}  {self.name}"]
        out += [f"    {f}" for f in self.failures[:4]]
        return "\n".join(out)


def run_mutation_selftest() -> List[MutationOutcome]:
    """For each mutation: the un-mutated case must PASS, the mutated one
    must FAIL.  Returns one outcome per mutation."""
    outcomes = []
    for name, mutation, case in MUTATIONS:
        clean_ok = run_case(case).ok
        with mutation():
            mutated = run_case(case)
        outcomes.append(MutationOutcome(
            name=name, detected=not mutated.ok, clean_ok=clean_ok,
            failures=list(mutated.failures)))
    return outcomes
