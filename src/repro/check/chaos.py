"""Chaos conformance: the outcome-trichotomy gate (``repro check --chaos``).

The fault-semantics contract this harness enforces: a collective run
under *any* seeded fault plan ends in exactly one of three outcomes —

- ``exact``     — byte-exact result, no recovery machinery engaged
                  (the fault missed the traffic, or only slowed it);
- ``recovered`` — byte-exact result after transparent bounded retry /
                  checksum-triggered retransmit;
- ``error``     — a clean *typed* error (:class:`TransportTimeout`,
                  :class:`IntegrityError`, :class:`RankFailure`,
                  :class:`CommRevoked`, :class:`RequestTimeout`,
                  :class:`CollectiveTimeout`, or an
                  :class:`~repro.sim.Interrupt` carrying one of those /
                  a :class:`~repro.faults.CrashRank`).

Two further buckets must NEVER occur, and fail the gate:

- ``silent``    — wrong bytes with no error raised, or the transport's
                  ``integrity.silent_corruptions`` counter went
                  non-zero (a corrupted delivery survived verify);
- ``hang``      — the event schedule drained while rank processes were
                  still alive (deadlock), or an *untyped* exception
                  escaped.

Every case is a frozen :class:`ChaosCase` with a stable one-line
``spec()``, so any failing cell reproduces from its printed spec alone:
``repro check --chaos-case '<spec>'``.  :func:`run_chaos_selftest`
proves the gate has teeth by disabling the checksum verify (must
classify ``silent``) and the watchdog (must classify ``hang``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..faults import (
    CorruptMessages, DropMessages, FaultInjector, FaultPlan, LinkDegrade,
    LinkFlap, StallLink,
)
from ..faults.plan import CrashRank
from ..hardware import cluster_a
from ..mpi import (
    CollectiveTimeout, CommRevoked, IntegrityError, MPIRuntime, RankFailure,
    RequestTimeout, TransportTimeout,
)
from ..sim import Interrupt, Simulator
from . import harness
from .harness import COLLECTIVES, Case, _PROFILES
from .mutation import MutationOutcome
from .reference import rank_payload

__all__ = ["ChaosCase", "ChaosResult", "FAULT_KINDS", "run_chaos_case",
           "parse_chaos_case", "generate_chaos_matrix", "run_chaos",
           "chaos_outcome_tally", "run_chaos_selftest"]

#: Fault kinds the chaos matrix sweeps, in canonical order.
FAULT_KINDS = ("corrupt", "corrupt-storm", "stall", "drop", "flap",
               "degrade")

#: Exception types that count as a *clean typed error* outcome.
TYPED_ERRORS = (TransportTimeout, RankFailure, CommRevoked, RequestTimeout,
                CollectiveTimeout)

#: The three acceptable outcomes (the trichotomy).
GOOD_OUTCOMES = ("exact", "recovered", "error")


@dataclass(frozen=True)
class ChaosCase:
    """One chaos-matrix cell (fully determines a run)."""

    collective: str
    P: int
    nbytes: int
    kind: str
    profile: str = "mv2gdr"
    seed: int = 0

    def spec(self) -> str:
        """Stable one-line encoding, accepted by :func:`parse_chaos_case`."""
        return (f"collective={self.collective},P={self.P},"
                f"nbytes={self.nbytes},kind={self.kind},"
                f"profile={self.profile},seed={self.seed}")

    def repro_command(self) -> str:
        return ("PYTHONPATH=src python -m repro.cli check "
                f"--chaos-case '{self.spec()}'")

    @property
    def victim(self) -> int:
        """The rank whose PCIe lanes the fault targets (never the root,
        which the harness pins at 0)."""
        return 1 + self.seed % max(1, self.P - 1)


def parse_chaos_case(spec: str) -> ChaosCase:
    """Inverse of :meth:`ChaosCase.spec`."""
    kv: Dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            k, v = part.split("=", 1)
        except ValueError:
            raise ValueError(f"bad case field {part!r} (expected key=value)")
        kv[k.strip()] = v.strip()
    kwargs: Dict[str, object] = {}
    for k, v in kv.items():
        if k in ("P", "nbytes", "seed"):
            kwargs[k] = int(v)
        elif k in ("collective", "kind", "profile"):
            kwargs[k] = v
        else:
            raise ValueError(f"unknown chaos case field {k!r}")
    for need in ("collective", "kind"):
        if need not in kwargs:
            raise ValueError(f"chaos case spec needs {need}=...")
    case = ChaosCase(**kwargs)
    if case.collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {case.collective!r}")
    if case.kind not in FAULT_KINDS:
        raise ValueError(f"unknown fault kind {case.kind!r} "
                         f"(have {FAULT_KINDS})")
    return case


@dataclass
class ChaosResult:
    case: ChaosCase
    outcome: str = "exact"
    detail: str = ""
    failures: List[str] = field(default_factory=list)
    sim_time: float = 0.0
    #: Integrity / recovery counters at end of run.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Flight-recorder timeline (last-N span events) for every verdict
    #: that is not a clean exact/recovered finish, so a hang or
    #: corruption cell ships its final moments alongside the spec.
    flight: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome in GOOD_OUTCOMES and not self.failures

    def describe(self) -> str:
        head = (f"{'PASS' if self.ok else 'FAIL'} "
                f"[{self.outcome:>9}] {self.case.spec()}")
        if self.ok:
            return head
        lines = [head] + [f"    {f}" for f in self.failures]
        lines.append(f"    repro: {self.case.repro_command()}")
        return "\n".join(lines)


def chaos_plan(case: ChaosCase) -> FaultPlan:
    """The seeded fault plan for one cell.

    Both PCIe directions of the victim rank are targeted so every
    collective's traffic pattern (send-heavy roots, receive-heavy
    leaves, rings) crosses a faulted lane.
    """
    up = ("pcie", case.victim, "up")
    down = ("pcie", case.victim, "down")
    kind = case.kind
    # Collectives at these sizes complete within microseconds and many
    # ranks touch a given link exactly once, in the very first round —
    # so every fault arms at t=0 (and the injector is armed before the
    # rank programs spawn) to guarantee the faulted lane sees traffic.
    if kind == "corrupt":
        # A couple of bit-flipped deliveries: the checksum layer must
        # detect and retransmit within the retry budget.
        events = (CorruptMessages(time=0.0, target=up, count=2),
                  CorruptMessages(time=0.0, target=down, count=2))
    elif kind == "corrupt-storm":
        # More corruptions than the retransmit budget can absorb on one
        # transfer: a persistent corruptor, which must surface as a
        # typed IntegrityError rather than wrong bytes.
        events = (CorruptMessages(time=0.0, target=up, count=64),
                  CorruptMessages(time=0.0, target=down, count=64))
    elif kind == "stall":
        events = (StallLink(start=0.0, target=up),
                  StallLink(start=0.0, target=down))
    elif kind == "drop":
        events = (DropMessages(time=0.0, target=up, count=2),
                  DropMessages(time=0.0, target=down, count=2))
    elif kind == "flap":
        # Even seeds flap briefly (retries bridge it: recovered); odd
        # seeds outlast the whole backoff budget (typed timeout).
        duration = 0.004 if case.seed % 2 == 0 else 0.05
        events = (LinkFlap(start=0.0, duration=duration, target=up),
                  LinkFlap(start=0.0, duration=duration, target=down))
    elif kind == "degrade":
        events = (LinkDegrade(start=0.0, duration=0.01, target=up,
                              factor=8.0),
                  LinkDegrade(start=0.0, duration=0.01, target=down,
                              factor=8.0))
    else:
        raise ValueError(f"unknown fault kind {kind!r}")
    return FaultPlan(name=f"chaos.{kind}", events=events)


def _typed(exc: BaseException) -> bool:
    if isinstance(exc, TYPED_ERRORS):
        return True
    if isinstance(exc, Interrupt):
        return isinstance(exc.cause, (CrashRank,) + TYPED_ERRORS)
    return False


def run_chaos_case(case: ChaosCase) -> ChaosResult:
    """Run one chaos cell and classify its outcome; never raises for
    in-run failures."""
    res = ChaosResult(case)
    if case.collective not in COLLECTIVES:
        res.outcome = "hang"
        res.failures.append(f"unknown collective {case.collective!r}")
        return res
    if case.P < 2 or case.P > 16:
        res.outcome = "hang"
        res.failures.append("chaos cases need 2 <= P <= 16 (single node)")
        return res

    hcase = Case(case.collective, P=case.P, nbytes=case.nbytes,
                 profile=case.profile, seed=case.seed)
    sim = Simulator(seed=case.seed)
    cluster = cluster_a(sim, n_nodes=1)
    runtime = MPIRuntime(cluster, case.profile)
    comm = runtime.world(case.P)
    payloads = [rank_payload(case.seed, r, case.nbytes)
                for r in range(case.P)]
    program = harness._program(hcase, payloads)

    # Every cell runs under a span recorder + flight ring (both
    # passive: simulated times are bit-identical either way), so a
    # failing verdict carries its last-N-events timeline.
    from ..obs import FlightRecorder
    from ..prof import SpanRecorder
    flight = FlightRecorder(SpanRecorder(sim), capacity=256)

    # Arm the injector BEFORE spawning ranks: its t=0 drivers are then
    # scheduled ahead of the rank programs, so fault state is in place
    # before the first transfer attempt of the first round.
    injector = FaultInjector(cluster, chaos_plan(case))
    injector.arm(runtime=runtime)
    procs = runtime.spawn(comm, program)
    if case.kind == "stall":
        # Stalls are the one fault the retry loop cannot see (no
        # attempt ever fails); the watchdog converts them.
        wd = runtime.ensure_watchdog()
        wd.flight = flight
        wd.arm(procs, comm.gpus, nbytes=case.nbytes)

    error: Optional[BaseException] = None
    try:
        sim.run()
    except Exception as exc:
        error = exc

    res.sim_time = sim.now
    tm = runtime.transport.metrics
    res.counters = {
        "injected": injector.total_injected,
        "retries": tm.retries,
        "timeouts": tm.timeouts,
        "corrupt_detected": tm.corrupt_detected,
        "retransmits": tm.retransmits,
        "integrity_failures": tm.integrity_failures,
        "silent_corruptions": tm.silent_corruptions,
    }
    wd = runtime.watchdog
    if wd is not None:
        res.counters["watchdog_timeouts"] = wd.timeouts
        res.counters["watchdog_escalations"] = wd.escalations

    if tm.silent_corruptions:
        res.outcome = "silent"
        res.failures.append(
            f"{tm.silent_corruptions} corrupted deliveries passed "
            f"verification (checksum layer broken)")
        res.flight = flight.snapshot()
        return res

    if error is not None:
        if _typed(error):
            res.outcome = "error"
            res.detail = f"{type(error).__name__}: {error}"
        else:
            res.outcome = "hang"
            res.failures.append(f"untyped error escaped: {error!r}")
        res.flight = flight.snapshot()
        return res

    alive = [i for i, p in enumerate(procs) if p.is_alive]
    if alive:
        res.outcome = "hang"
        res.failures.append(
            f"deadlock: ranks {alive} still parked after the event "
            f"schedule drained")
        res.flight = flight.snapshot()
        return res

    # Clean drain, every rank finished: the bytes must be exact.
    byte_failures: List[str] = []
    harness._verify(hcase, payloads, [p.value for p in procs],
                    byte_failures)
    if byte_failures:
        res.outcome = "silent"
        res.failures.extend(byte_failures)
        res.failures.append("wrong bytes with no error raised")
        res.flight = flight.snapshot()
        return res
    recovered = (tm.retries or tm.retransmits or tm.corrupt_detected
                 or tm.drops_detected or tm.link_down_detected)
    res.outcome = "recovered" if recovered else "exact"
    return res


# -- matrix -------------------------------------------------------------------

def generate_chaos_matrix(seed: int = 0, *,
                          quick: bool = False) -> List[ChaosCase]:
    """The seeded chaos matrix: collective x profile x fault kind.

    Full mode sweeps every registered profile; quick mode keeps one MPI
    profile plus the nccl backend for CI.
    """
    rng = np.random.default_rng(seed)
    profiles = (_PROFILES[0], "nccl") if quick else _PROFILES
    cases: List[ChaosCase] = []
    for profile in profiles:
        for coll in COLLECTIVES:
            for kind in FAULT_KINDS:
                P = int(rng.integers(2, 9))
                if coll == "hierarchical_reduce":
                    P = max(P, 8)
                nbytes = 4 * int(rng.integers(8, 1 << 10))
                cases.append(ChaosCase(
                    coll, P=P, nbytes=nbytes, kind=kind, profile=profile,
                    seed=int(rng.integers(0, 1 << 16))))
    return cases


def run_chaos(cases: List[ChaosCase], *, stop_on_fail: bool = False,
              progress=None) -> List[ChaosResult]:
    results = []
    for case in cases:
        r = run_chaos_case(case)
        results.append(r)
        if progress is not None:
            progress(r)
        if stop_on_fail and not r.ok:
            break
    return results


def chaos_outcome_tally(results: List[ChaosResult]) -> Dict[str, int]:
    """Outcome -> count over a result set (all buckets present)."""
    tally = {k: 0 for k in GOOD_OUTCOMES + ("silent", "hang")}
    for r in results:
        tally[r.outcome] = tally.get(r.outcome, 0) + 1
    return tally


# -- mutation self-test --------------------------------------------------------

@contextmanager
def disabled_verify():
    """The checksum verify becomes a no-op: corruption sails through."""
    from ..mpi.transport import DeviceTransport
    orig = DeviceTransport._verify

    def patched(self, *args, **kwargs):
        return None

    DeviceTransport._verify = patched
    try:
        yield
    finally:
        DeviceTransport._verify = orig


@contextmanager
def disabled_watchdog():
    """Arming the watchdog becomes a no-op: stalls hang forever."""
    from ..mpi.watchdog import CollectiveWatchdog
    orig = CollectiveWatchdog.arm

    def patched(self, *args, **kwargs):
        return None

    CollectiveWatchdog.arm = patched
    try:
        yield
    finally:
        CollectiveWatchdog.arm = orig


#: (name, context manager, case, outcome the mutated run must produce).
CHAOS_MUTATIONS = (
    ("disabled_verify", disabled_verify,
     ChaosCase("bcast_binomial", P=4, nbytes=1024, kind="corrupt", seed=3),
     "silent"),
    ("disabled_watchdog", disabled_watchdog,
     ChaosCase("allreduce_ring", P=4, nbytes=1024, kind="stall", seed=5),
     "hang"),
)


def run_chaos_selftest() -> List[MutationOutcome]:
    """Prove the chaos gate has teeth: each sabotaged protection must
    flip its case into the matching BAD outcome, while the unmutated
    case passes."""
    outcomes = []
    for name, mutation, case, want in CHAOS_MUTATIONS:
        clean_ok = run_chaos_case(case).ok
        with mutation():
            mutated = run_chaos_case(case)
        detected = (not mutated.ok) and mutated.outcome == want
        failures = [f"outcome={mutated.outcome} (expected {want})"]
        failures += list(mutated.failures)
        outcomes.append(MutationOutcome(
            name=name, detected=detected, clean_ok=clean_ok,
            failures=failures))
    return outcomes
