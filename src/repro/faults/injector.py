"""Fault delivery: resolve a plan against a live cluster and drive it.

The injector owns no policy — it swaps
:class:`~repro.hardware.faults.FaultyLink` wrappers onto the targeted
links, flips their fault state at the scheduled times, throttles
straggler GPUs, and crashes rank processes via
:meth:`~repro.sim.Process.interrupt`.  Detection of a crash reaches the
:class:`~repro.mpi.failure.FailureDetector` one ``detect_latency``
later, which is when survivors' pending operations start failing.

An injector armed with a quiet plan spawns no processes and touches no
links: the simulation is event-for-event identical to an uninjected run.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..hardware import Cluster
from ..hardware.faults import FaultyLink
from ..sim import Event, Process
from .plan import (
    CorruptCheckpoint, CorruptMessages, CrashRank, DropMessages, FaultPlan,
    GpuSlow, LinkDegrade, LinkFlap, StallLink,
)

__all__ = ["FaultInjector", "DEFAULT_DETECT_LATENCY"]

#: Failure-detector latency: heartbeat period + suspicion threshold.
#: The *default* for :attr:`repro.mpi.failure.FailureDetector.detect_latency`,
#: which is the live value (settable via the ``mpi.detect_latency`` CVAR);
#: the constant survives for back-compat and as the fallback when no
#: runtime is attached.
DEFAULT_DETECT_LATENCY = 2e-3


class FaultInjector:
    """Arms a :class:`FaultPlan` against a cluster (and optionally a set
    of rank processes + MPI runtime for crash delivery/detection)."""

    def __init__(self, cluster: Cluster, plan: FaultPlan):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        #: Telemetry: events actually applied, by kind.
        self.injected: Dict[str, int] = {}
        self.crashed_ranks: List[int] = []

    # -- target resolution -------------------------------------------------
    def _resolve_link(self, target) -> FaultyLink:
        """The FaultyLink for a symbolic target, swapping one in on
        first use.  Transfer paths fetch link attributes per message, so
        an arm-time swap is observed by all subsequent traffic."""
        kind = target[0]
        if kind == "pcie":
            _, gpu_index, direction = target
            owner = self.cluster.gpus[gpu_index]
            attr = f"pcie_{direction}"
        elif kind == "nic":
            _, node_index, nic_index, direction = target
            owner = self.cluster.nodes[node_index].nics[nic_index]
            attr = direction
        else:
            raise KeyError(f"unknown link target kind {kind!r}")
        link = getattr(owner, attr)
        if not isinstance(link, FaultyLink):
            link = FaultyLink.from_link(link)
            setattr(owner, attr, link)
            # Tell the transport its topology now carries fault-capable
            # links, enabling the per-transfer integrity layer.
            self.cluster.fault_links_armed = True
        return link

    def _suspect_gpu(self, target):
        """The GPU most plausibly blamed for a fault on ``target`` (None
        for NIC faults, which are shared by a whole node)."""
        if target[0] == "pcie":
            return self.cluster.gpus[target[1]]
        return None

    # -- arming ------------------------------------------------------------
    def arm(self, *, runtime=None, procs: Optional[List[Process]] = None,
            gpus=None, checkpoint=None,
            detect_latency: Optional[float] = None) -> None:
        """Spawn one driver process per scheduled event.

        ``runtime``/``procs``/``gpus`` are needed only for
        :class:`CrashRank` events (who to interrupt, which GPU to report
        dead); ``checkpoint`` only for :class:`CorruptCheckpoint`;
        link/GPU faults need just the cluster.  ``detect_latency=None``
        reads the failure detector's live value (the ``mpi.detect_latency``
        CVAR) at delivery time; pass a float to pin it.
        """
        for ev in self.plan.events:
            self.sim.process(
                self._drive(ev, runtime, procs, gpus, checkpoint,
                            detect_latency),
                name=f"fault.{type(ev).__name__}")

    def _count(self, ev) -> None:
        key = type(ev).__name__
        self.injected[key] = self.injected.get(key, 0) + 1

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _watchdog(self, runtime):
        return getattr(runtime, "watchdog", None) if runtime else None

    def _delay(self, t: float) -> Generator[Event, Any, None]:
        """Wait until fire time.  A zero delay yields nothing at all:
        the fault state is applied during the driver's *initial* resume,
        which (drivers being armed before rank programs spawn) runs
        before any t=0 transfer attempt — a ``timeout(0)`` would requeue
        behind them and miss the whole first round."""
        if t > 0:
            yield self.sim.timeout(t)

    def _drive(self, ev, runtime, procs, gpus, checkpoint, detect_latency
               ) -> Generator[Event, Any, None]:
        if isinstance(ev, LinkDegrade):
            link = self._resolve_link(ev.target)
            yield from self._delay(ev.start)
            link.degrade(ev.factor)
            self._count(ev)
            wd = self._watchdog(runtime)
            if wd is not None:
                wd.flag_straggler(ev.target)
            yield self.sim.timeout(ev.duration)
            link.restore()
        elif isinstance(ev, LinkFlap):
            link = self._resolve_link(ev.target)
            yield from self._delay(ev.start)
            link.set_down(True)
            self._count(ev)
            yield self.sim.timeout(ev.duration)
            link.set_down(False)
        elif isinstance(ev, DropMessages):
            link = self._resolve_link(ev.target)
            yield from self._delay(ev.time)
            link.drop_next(ev.count)
            self._count(ev)
        elif isinstance(ev, GpuSlow):
            gpu = self.cluster.gpus[ev.gpu]
            yield from self._delay(ev.start)
            gpu.compute_slowdown = ev.factor
            self._count(ev)
            wd = self._watchdog(runtime)
            if wd is not None:
                wd.flag_straggler(("gpu", ev.gpu))
        elif isinstance(ev, CorruptMessages):
            link = self._resolve_link(ev.target)
            yield from self._delay(ev.time)
            link.corrupt_next(ev.count)
            self._count(ev)
        elif isinstance(ev, StallLink):
            link = self._resolve_link(ev.target)
            yield from self._delay(ev.start)
            link.set_stalled(True)
            self._count(ev)
            wd = self._watchdog(runtime)
            if wd is not None:
                wd.flag_stalled(self._suspect_gpu(ev.target))
        elif isinstance(ev, CorruptCheckpoint):
            yield from self._delay(ev.time)
            if checkpoint is not None and checkpoint.corrupt_latest():
                self._count(ev)
        elif isinstance(ev, CrashRank):
            yield from self._delay(ev.time)
            proc = procs[ev.rank] if procs else None
            if proc is not None and not proc.is_alive:
                return  # rank already finished: nothing to crash
            if proc is not None:
                proc.interrupt(ev)
            self._count(ev)
            self.crashed_ranks.append(ev.rank)
            if runtime is not None and gpus is not None:
                lat = detect_latency
                if lat is None:
                    lat = getattr(runtime.failure_detector,
                                  "detect_latency", DEFAULT_DETECT_LATENCY)
                yield self.sim.timeout(lat)
                runtime.failure_detector.mark_dead(gpus[ev.rank])
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown fault event {ev!r}")
