"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen schedule of fault events at simulated
times — a pure function of its seed, exactly like
:meth:`~repro.sim.Simulator.jitter_factor`: the same (seed, topology,
horizon) always produces the byte-identical schedule, so runs under
fault injection remain reproducible.

Link targets are symbolic (the plan is built before any cluster
exists) and resolved by the injector at arm time:

- ``("pcie", gpu_index, "up" | "down")`` — a GPU's PCIe lane;
- ``("nic", node_index, nic_index, "tx" | "rx")`` — an HCA port link.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple, Union

__all__ = ["LinkDegrade", "LinkFlap", "GpuSlow", "DropMessages",
           "CrashRank", "CorruptMessages", "StallLink", "CorruptCheckpoint",
           "FaultEvent", "FaultPlan", "named_plan", "PLAN_NAMES"]

LinkTarget = Tuple


@dataclass(frozen=True)
class LinkDegrade:
    """Bandwidth divided by ``factor`` during [start, start+duration)."""

    start: float
    duration: float
    target: LinkTarget
    factor: float


@dataclass(frozen=True)
class LinkFlap:
    """Link fully down during [start, start+duration) — transfers fail."""

    start: float
    duration: float
    target: LinkTarget


@dataclass(frozen=True)
class GpuSlow:
    """Permanent compute slowdown of one device from ``start`` on."""

    start: float
    gpu: int
    factor: float


@dataclass(frozen=True)
class DropMessages:
    """The next ``count`` transfers on the link are lost at ``time``."""

    time: float
    target: LinkTarget
    count: int


@dataclass(frozen=True)
class CrashRank:
    """Rank ``rank``'s process dies at ``time`` (fail-stop)."""

    time: float
    rank: int


@dataclass(frozen=True)
class CorruptMessages:
    """The next ``count`` transfers on the link arrive bit-flipped.

    Models a flaky lane / DMA engine silently corrupting payloads in
    flight.  Without the transport's checksum verify this would be
    *silent* corruption — wrong bytes in the result with no error; with
    it, each corrupted delivery is detected and retransmitted.
    """

    time: float
    target: LinkTarget
    count: int


@dataclass(frozen=True)
class StallLink:
    """The link stalls indefinitely from ``start`` on — transfers hang.

    Unlike :class:`LinkFlap` (which *fails* transfers, letting retries
    bridge it), a stalled link accepts the transfer and never completes
    it: the failure mode that turns into a collective hang unless a
    watchdog converts it into a typed timeout.
    """

    start: float
    target: LinkTarget


@dataclass(frozen=True)
class CorruptCheckpoint:
    """The latest checkpoint snapshot is corrupted at ``time``.

    A subsequent restore must detect the bad checksum and discard the
    snapshot (bounded rollback) rather than resume from wrong bytes.
    """

    time: float


FaultEvent = Union[LinkDegrade, LinkFlap, GpuSlow, DropMessages, CrashRank,
                   CorruptMessages, StallLink, CorruptCheckpoint]


def _sort_key(ev: FaultEvent):
    t = ev.start if hasattr(ev, "start") else ev.time
    return (t, type(ev).__name__, repr(ev))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered schedule of fault events."""

    name: str
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_sort_key)))

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_quiet(self) -> bool:
        return not self.events

    @classmethod
    def quiet(cls, name: str = "quiet") -> "FaultPlan":
        return cls(name=name)

    def describe(self) -> str:
        """Deterministic textual schedule (the determinism test compares
        this byte-for-byte across runs)."""
        lines = [f"plan {self.name}: {len(self.events)} events"]
        for ev in self.events:
            lines.append(f"  t={_sort_key(ev)[0]:.6f} {ev!r}")
        return "\n".join(lines)


#: Names accepted by :func:`named_plan` (CLI ``repro chaos --plan``).
#: New names append at the end: plan builders draw from a shared
#: ``random.Random(seed)``, so the draw sequence of existing plans must
#: never change.
PLAN_NAMES = ("quiet", "flaky-nic", "straggler", "flaky", "rank-crash",
              "chaos", "corrupt", "stall")


def named_plan(name: str, *, seed: int, horizon: float, n_ranks: int,
               n_nodes: int, gpus_per_node: int,
               nics_per_node: int = 1) -> FaultPlan:
    """Build one of the canonical plans for a given topology/horizon.

    All randomness comes from ``random.Random(seed)``, so the schedule
    is a pure function of the arguments.  Crash plans never pick rank 0
    (the root solver holds the checkpoint store and the reduced model;
    root failure is job death, which is out of scope for n-1 training).
    """
    if name not in PLAN_NAMES:
        raise KeyError(f"unknown fault plan {name!r} (have {PLAN_NAMES})")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = random.Random(seed)
    events: list = []

    def rank_link(rank: int) -> Tuple:
        if n_ranks <= gpus_per_node or n_nodes <= 1:
            # Single-node job: no inter-node traffic ever touches a NIC,
            # so fault the victim's PCIe lane instead.
            return ("pcie", rank, rng.choice(("up", "down")))
        node = (rank // gpus_per_node) % max(1, n_nodes)
        nic = (rank % gpus_per_node) % max(1, nics_per_node)
        return ("nic", node, nic, rng.choice(("tx", "rx")))

    def flaky_nic():
        victim = rng.randrange(n_ranks)
        target = rank_link(victim)
        # A degradation window, a short flap, and a burst of drops.
        t0 = rng.uniform(0.05, 0.4) * horizon
        events.append(LinkDegrade(start=t0, duration=0.2 * horizon,
                                  target=target,
                                  factor=rng.uniform(2.0, 8.0)))
        t1 = rng.uniform(0.45, 0.7) * horizon
        # A flap is momentary: capped below the transport's cumulative
        # retry-backoff window so retries can bridge it.
        events.append(LinkFlap(start=t1,
                               duration=min(0.02 * horizon, 0.01),
                               target=target))
        t2 = rng.uniform(0.72, 0.9) * horizon
        events.append(DropMessages(time=t2, target=target,
                                   count=rng.randrange(1, 4)))

    def straggler():
        victim = rng.randrange(n_ranks)
        events.append(GpuSlow(start=rng.uniform(0.0, 0.3) * horizon,
                              gpu=victim,
                              factor=rng.uniform(1.2, 1.8)))

    def rank_crash():
        victim = rng.randrange(1, max(2, n_ranks))
        events.append(CrashRank(time=0.5 * horizon, rank=victim))

    def corrupting():
        victim = rng.randrange(n_ranks)
        target = rank_link(victim)
        # A burst of bit-flipped deliveries early, then checkpoint rot
        # late: the run must detect+retransmit the former and
        # detect+discard the latter.
        t0 = rng.uniform(0.05, 0.4) * horizon
        events.append(CorruptMessages(time=t0, target=target,
                                      count=rng.randrange(1, 4)))
        events.append(CorruptCheckpoint(time=0.8 * horizon))

    def stalling():
        victim = rng.randrange(n_ranks)
        target = rank_link(victim)
        events.append(StallLink(start=rng.uniform(0.2, 0.5) * horizon,
                                target=target))

    if name == "flaky-nic":
        flaky_nic()
    elif name == "straggler":
        straggler()
    elif name == "flaky":
        flaky_nic()
        straggler()
    elif name == "rank-crash":
        rank_crash()
    elif name == "chaos":
        flaky_nic()
        straggler()
        rank_crash()
    elif name == "corrupt":
        corrupting()
    elif name == "stall":
        stalling()
    return FaultPlan(name=name, events=tuple(events))
