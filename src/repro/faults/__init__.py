"""Deterministic fault injection for simulated training runs."""

from .injector import DEFAULT_DETECT_LATENCY, FaultInjector
from .plan import (
    CorruptCheckpoint, CorruptMessages, CrashRank, DropMessages, FaultEvent,
    FaultPlan, GpuSlow, LinkDegrade, LinkFlap, PLAN_NAMES, StallLink,
    named_plan,
)

__all__ = [
    "DEFAULT_DETECT_LATENCY", "FaultInjector",
    "CorruptCheckpoint", "CorruptMessages", "CrashRank", "DropMessages",
    "FaultEvent", "FaultPlan", "GpuSlow", "LinkDegrade", "LinkFlap",
    "PLAN_NAMES", "StallLink", "named_plan",
]
