"""Deterministic fault injection for simulated training runs."""

from .injector import DEFAULT_DETECT_LATENCY, FaultInjector
from .plan import (
    CrashRank, DropMessages, FaultEvent, FaultPlan, GpuSlow, LinkDegrade,
    LinkFlap, PLAN_NAMES, named_plan,
)

__all__ = [
    "DEFAULT_DETECT_LATENCY", "FaultInjector",
    "CrashRank", "DropMessages", "FaultEvent", "FaultPlan", "GpuSlow",
    "LinkDegrade", "LinkFlap", "PLAN_NAMES", "named_plan",
]
