"""Fault-capable hardware: degradable/flappable links.

Real fabrics are not quiet: PCIe lanes retrain at lower widths, IB links
flap, switches drop packets under congestion, and a device can throttle
permanently.  :class:`FaultyLink` is a drop-in :class:`BandwidthLink`
whose effective bandwidth and liveness can be changed *while the
simulation runs*; the fault injector (:mod:`repro.faults`) swaps it in
for the links a :class:`~repro.faults.FaultPlan` targets, so an unarmed
cluster carries zero overhead and byte-identical timing.

Fault delivery is exception-based: a transfer attempted on a dead link
(or one with a pending forced drop) raises a :class:`TransportFault`
subclass.  The transport layer (:mod:`repro.mpi.transport`) catches
these and drives the timeout/backoff/retry path; exhausted retries
surface as :class:`~repro.mpi.transport.TransportTimeout`.
"""

from __future__ import annotations

from ..sim import BandwidthLink

__all__ = ["TransportFault", "LinkDownError", "MessageDropped",
           "FaultyLink"]


class TransportFault(RuntimeError):
    """Base for transient link-level faults (retryable by the transport)."""


class LinkDownError(TransportFault):
    """The link is administratively or physically down (flap window)."""


class MessageDropped(TransportFault):
    """The message was lost on the wire (transient drop)."""


class FaultyLink(BandwidthLink):
    """A :class:`BandwidthLink` with runtime-mutable fault state.

    - :meth:`degrade` divides the effective bandwidth by a factor for as
      long as it stays applied (link retraining / congestion window).
    - :meth:`set_down` makes every new transfer raise
      :class:`LinkDownError` until the link comes back up (link flap).
    - :meth:`drop_next` makes the next *k* transfers raise
      :class:`MessageDropped` (transient packet loss).

    In the pristine state (``slowdown == 1``, up, no pending drops) the
    behaviour and timing are bit-identical to the wrapped link.
    """

    def __init__(self, *args, **kwargs):
        self._slowdown = 1.0
        self._down = False
        self._drops_pending = 0
        self._corrupt_pending = 0
        self._stalled = False
        #: Telemetry: faults actually *hit* by traffic on this link.
        self.drops_served = 0
        self.down_hits = 0
        self.corruptions_served = 0
        self.stall_hits = 0
        super().__init__(*args, **kwargs)

    @classmethod
    def from_link(cls, link: BandwidthLink) -> "FaultyLink":
        """A fresh fault-capable clone of ``link`` (same parameters).

        Intended for arm-time swapping, before any traffic has queued on
        the original; in-flight state is not migrated.
        """
        return cls(link.sim, bandwidth=link.bandwidth, latency=link.latency,
                   name=link.name,
                   per_message_overhead=link.per_message_overhead,
                   jitter=link.jitter)

    # ``BandwidthLink.__init__`` assigns ``self.bandwidth``; routing the
    # assignment through this property keeps the base bandwidth separate
    # from the (mutable) degradation factor.
    @property
    def bandwidth(self) -> float:
        return self._base_bandwidth / self._slowdown

    @bandwidth.setter
    def bandwidth(self, value: float) -> None:
        self._base_bandwidth = value

    # -- fault controls ----------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def slowdown(self) -> float:
        return self._slowdown

    def degrade(self, factor: float) -> None:
        """Divide effective bandwidth by ``factor`` (>= 1) until restored."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self._slowdown = factor

    def restore(self) -> None:
        """End a degradation window (full bandwidth again)."""
        self._slowdown = 1.0

    def set_down(self, down: bool = True) -> None:
        self._down = bool(down)

    def drop_next(self, count: int = 1) -> None:
        """Force the next ``count`` transfers to be lost on the wire."""
        if count < 0:
            raise ValueError("drop count must be >= 0")
        self._drops_pending += count

    def corrupt_next(self, count: int = 1) -> None:
        """Bit-flip the payload of the next ``count`` transfers.

        Unlike drops, corruption is *not* exception-based: the transfer
        completes normally and delivers flipped bytes — the whole point
        is that only the receive-side checksum can tell.
        """
        if count < 0:
            raise ValueError("corrupt count must be >= 0")
        self._corrupt_pending += count

    @property
    def is_stalled(self) -> bool:
        return self._stalled

    def set_stalled(self, stalled: bool = True) -> None:
        """Stall the link: new transfers park forever (until a watchdog
        breaks the collective).  A cleared stall only affects transfers
        that have not started yet."""
        self._stalled = bool(stalled)

    # -- fault delivery ----------------------------------------------------
    def check_fault(self) -> None:
        """Raise the pending fault, if any (called at transfer start)."""
        if self._down:
            self.down_hits += 1
            raise LinkDownError(f"link {self.name} is down")
        if self._drops_pending:
            self._drops_pending -= 1
            self.drops_served += 1
            raise MessageDropped(f"message dropped on {self.name}")

    def consume_corruption(self) -> bool:
        """Consume one pending payload corruption (no sim time, no
        events).  Called synchronously by the transport at the start of
        each attempt, so a concurrent transfer on another link cannot be
        mis-attributed the flip."""
        if self._corrupt_pending:
            self._corrupt_pending -= 1
            self.corruptions_served += 1
            return True
        return False

    def stall_transfer(self, nbytes: int):
        """Sub-protocol for a transfer hitting a stalled link: park
        forever (until a watchdog interrupts the collective).  Called by
        :meth:`transfer` and by multi-link paths, which bypass
        :meth:`transfer` and compose link parameters directly."""
        self.stall_hits += 1
        self.messages += 1
        self.bytes_moved += nbytes
        yield self.sim.event()  # never fires: parked until interrupted

    def transfer(self, nbytes: int, **kwargs):
        if self._stalled:
            return self.stall_transfer(nbytes)
        self.check_fault()
        return super().transfer(nbytes, **kwargs)
