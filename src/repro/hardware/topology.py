"""Link-path composition helpers.

Transfers that traverse several physical links (e.g. a GPUDirect-RDMA
message: source PCIe -> source NIC -> fabric -> dest NIC -> dest PCIe)
hold every link for the duration of the cut-through transfer.  Links are
acquired in a globally consistent order (by name) so concurrent multi-link
transfers cannot deadlock.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ..sim import BandwidthLink, Event, Simulator

__all__ = ["cut_through_time", "multi_link_transfer"]


def cut_through_time(links: Sequence[BandwidthLink], nbytes: int) -> float:
    """Cut-through duration: sum of latencies + serialization on the
    narrowest link."""
    if not links:
        raise ValueError("need at least one link")
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    lat = sum(l.latency for l in links)
    bw = min(l.bandwidth for l in links)
    return lat + nbytes / bw


def multi_link_transfer(sim: Simulator, links: Sequence[BandwidthLink],
                        nbytes: int, *, extra_time: float = 0.0,
                        kind: str = "xfer",
                        ) -> Generator[Event, Any, None]:
    """Sub-protocol: hold all ``links`` simultaneously for the cut-through
    duration (+ ``extra_time`` of fixed software overhead on the wire).

    Duplicate links in the path (loopback-style transfers) are collapsed
    to a single acquisition.

    Fault semantics: any :class:`~repro.hardware.faults.FaultyLink` on
    the path is checked up front — a down link or a pending forced drop
    raises before any wire is held, so the transport retry path observes
    a clean failure; a stalled link parks the transfer forever (watchdog
    territory).  Interrupt-safe: an interrupt while queued on a
    link withdraws the pending request instead of leaking the grant.
    """
    if not links:
        raise ValueError("need at least one link")
    if len(links) == 2:
        # Dominant case (PCIe pair, NIC tx/rx): dedup + name-sort inline.
        a, b = links
        if a is b:
            uniq = [a]
        elif a.name <= b.name:
            uniq = [a, b]
        else:
            uniq = [b, a]
    else:
        uniq = []
        seen = set()
        for l in links:
            if id(l) not in seen:
                seen.add(id(l))
                uniq.append(l)
        uniq.sort(key=lambda l: l.name)

    # Fault check, jitter, and the cut-through terms in one pass.  NB the
    # latency sum and bottleneck bandwidth are over ``links`` (duplicates
    # counted, matching cut_through_time); jitter/faults are per physical
    # link.
    for l in uniq:
        check = l.check_fault
        if check is not None:
            check()
            if l.is_stalled:
                # Stalled link: the transfer parks forever instead of
                # failing fast — only a watchdog interrupt releases it.
                yield from l.stall_transfer(nbytes)
    jitter = 0.0
    lat = 0.0
    bw = None
    for l in links:
        lat += l.latency
        lbw = l.bandwidth
        if bw is None or lbw < bw:
            bw = lbw
        if l.jitter > jitter:
            jitter = l.jitter
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    duration = lat + nbytes / bw
    if jitter:
        duration *= sim.jitter_factor(jitter)
    duration += extra_time
    grants = []
    sid = None
    rec = sim.recorder
    try:
        for l in uniq:
            req = l._res.request()
            try:
                grant = yield req
            except BaseException:
                l._res.cancel(req)
                raise
            grants.append((l, grant))
            l.messages += 1
            l.bytes_moved += nbytes
        if rec is not None:
            # One span holding every link, led by the bottleneck link so
            # class attribution (ib vs pcie) follows the narrowest hop.
            narrow = min(uniq, key=lambda l: (l.bandwidth, l.name))
            names = [narrow.name] + [l.name for l in uniq if l is not narrow]
            sid = rec.open(kind, resources=tuple(names), nbytes=nbytes)
        yield sim.timeout(duration)
    finally:
        if sid is not None:
            # Close before releasing: successors granted at this instant
            # must see a closed predecessor.
            rec.close(sid)
        for l, grant in grants:
            l._res.release(grant)
