"""Compute-node model: GPUs + host memory engine + NIC ports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import BandwidthLink, Simulator
from .calibration import Calibration
from .gpu import GPUDevice, GPUSpec

__all__ = ["NICSpec", "NICPort", "NodeSpec", "Node"]


@dataclass(frozen=True)
class NICSpec:
    """An InfiniBand HCA port."""

    name: str
    bandwidth: float
    latency: float


class NICPort:
    """A live HCA port: full-duplex, so independent tx and rx links."""

    def __init__(self, sim: Simulator, spec: NICSpec, node_index: int,
                 jitter: float = 0.0, straggler_spread: float = 0.0):
        self.spec = spec
        self.name = f"node{node_index}.{spec.name}"
        slow = sim.straggler_factor(straggler_spread)
        self.tx = BandwidthLink(sim, bandwidth=spec.bandwidth / slow,
                                latency=spec.latency,
                                name=f"{self.name}.tx", jitter=jitter)
        self.rx = BandwidthLink(sim, bandwidth=spec.bandwidth / slow,
                                latency=spec.latency,
                                name=f"{self.name}.rx", jitter=jitter)

    @property
    def bandwidth(self) -> float:
        return self.spec.bandwidth


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node type."""

    gpus_per_node: int
    gpu_spec: GPUSpec
    nics: tuple          # tuple[NICSpec, ...]
    host_memory_bytes: int = 256 * (1 << 30)

    def __post_init__(self):
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if not self.nics:
            raise ValueError("a node needs at least one NIC")


class Node:
    """A live node: GPU devices, NIC links, and a host staging engine."""

    def __init__(self, sim: Simulator, spec: NodeSpec, *, index: int,
                 first_gpu_index: int, cal: Calibration):
        self.sim = sim
        self.spec = spec
        self.index = index
        self.cal = cal
        self.gpus: List[GPUDevice] = [
            GPUDevice(sim, spec.gpu_spec, node_index=index, local_index=i,
                      global_index=first_gpu_index + i, cal=cal)
            for i in range(spec.gpus_per_node)
        ]
        self.nics: List[NICPort] = [
            NICPort(sim, n, index, jitter=cal.network_jitter,
                    straggler_spread=cal.straggler_spread)
            for n in spec.nics
        ]
        #: Host DRAM copy engine used by staged (non-GDR) protocols.
        self.host_memcpy = BandwidthLink(
            sim, bandwidth=cal.host_memcpy_bw, latency=1e-6,
            name=f"node{index}.hostmem")
        #: CPU-side reduction engine (shared by all ranks on the node).
        self.cpu_reduce = BandwidthLink(
            sim, bandwidth=cal.cpu_reduce_bw, latency=2e-6,
            name=f"node{index}.cpured")

    def nic_for(self, gpu: GPUDevice) -> NICPort:
        """NIC port assigned to a GPU (round-robin over ports)."""
        return self.nics[gpu.local_index % len(self.nics)]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Node {self.index}: {len(self.gpus)}x"
                f"{self.spec.gpu_spec.model}, {len(self.nics)} NIC>")
