"""Cluster hardware model: GPUs, nodes, NICs, and testbed topologies."""

from .calibration import DEFAULT_CALIBRATION, Calibration
from .cluster import Cluster, cluster_a, cluster_b, make_cluster
from .faults import FaultyLink, LinkDownError, MessageDropped, TransportFault
from .gpu import GPUDevice, GPUSpec, K20X, K80, OutOfMemoryError, P100
from .node import NICSpec, Node, NodeSpec
from .topology import cut_through_time, multi_link_transfer

__all__ = [
    "Calibration", "DEFAULT_CALIBRATION",
    "Cluster", "cluster_a", "cluster_b", "make_cluster",
    "FaultyLink", "LinkDownError", "MessageDropped", "TransportFault",
    "GPUDevice", "GPUSpec", "K80", "K20X", "P100", "OutOfMemoryError",
    "NICSpec", "Node", "NodeSpec",
    "cut_through_time", "multi_link_transfer",
]
