"""GPU device model.

A :class:`GPUDevice` owns three contended facilities, mirroring real
hardware concurrency:

- ``compute`` — the SM array; one kernel at a time (Resource, capacity 1).
- ``pcie`` — the device's PCIe gen3 x16 uplink (BandwidthLink).  Both DMA
  copy engines share this wire, so serializing on it is the correct
  first-order contention model.
- a memory allocator with a hard capacity — solvers that receive too large
  an effective batch raise :class:`OutOfMemoryError`, reproducing the
  "missing data points ... where solvers ran out of memory" of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import BandwidthLink, Resource, Simulator
from .calibration import Calibration

__all__ = ["GPUSpec", "GPUDevice", "OutOfMemoryError", "K80", "K20X", "P100"]


class OutOfMemoryError(MemoryError):
    """Device memory allocation exceeded capacity."""


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model."""

    model: str
    memory_bytes: int
    flops: float          # achieved dense-compute FLOPs/s
    membw: float          # effective device-memory bandwidth, B/s
    reduce_bw: float      # elementwise-reduction output throughput, B/s

    def compute_time(self, flops: float) -> float:
        """Duration of a compute kernel performing ``flops`` operations."""
        if flops < 0:
            raise ValueError("flops must be >= 0")
        return flops / self.flops

    def reduce_time(self, nbytes: int) -> float:
        """Duration of an on-device elementwise reduction over ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.reduce_bw


def _spec(model: str, mem_gib: float, cal: Calibration) -> GPUSpec:
    return GPUSpec(
        model=model,
        memory_bytes=int(mem_gib * (1 << 30)),
        flops=cal.gpu_flops(model),
        membw=cal.k80_membw,
        reduce_bw=cal.gpu_reduce_bw,
    )


def K80(cal: Calibration) -> GPUSpec:
    """One GK210 die of a Tesla K80 board (12 GiB visible per die)."""
    return _spec("K80", 12.0, cal)


def K20X(cal: Calibration) -> GPUSpec:
    """Tesla K20x (5 GiB usable, per the GeePS discussion in §7)."""
    return _spec("K20x", 5.0, cal)


def P100(cal: Calibration) -> GPUSpec:
    return _spec("P100", 16.0, cal)


class GPUDevice:
    """A live GPU in a simulated cluster."""

    def __init__(self, sim: Simulator, spec: GPUSpec, *, node_index: int,
                 local_index: int, global_index: int, cal: Calibration):
        self.sim = sim
        self.spec = spec
        self.node_index = node_index
        self.local_index = local_index
        self.global_index = global_index
        self.cal = cal
        self.name = f"gpu{global_index}(n{node_index}.{local_index})"
        self.compute = Resource(sim, capacity=1, name=f"{self.name}.sm")
        # PCIe gen3 is full duplex: independent lanes per direction.
        # Outbound (device -> host/peer/NIC) and inbound carry traffic
        # concurrently — the property chain pipelines rely on.
        slow = sim.straggler_factor(cal.straggler_spread)
        self.pcie_up = BandwidthLink(
            sim, bandwidth=cal.pcie_bw / slow, latency=cal.pcie_latency,
            name=f"{self.name}.pcie_up", jitter=cal.network_jitter)
        self.pcie_down = BandwidthLink(
            sim, bandwidth=cal.pcie_bw / slow, latency=cal.pcie_latency,
            name=f"{self.name}.pcie_down", jitter=cal.network_jitter)
        #: Runtime-mutable compute degradation (fault injection: a
        #: permanently throttled straggler device).  1.0 is float-exact,
        #: so an uninjected device keeps byte-identical kernel timing.
        self.compute_slowdown = 1.0
        self._allocated = 0
        #: Allocation high-watermark (telemetry pvar hw.gpu_mem.peak).
        self.peak_allocated = 0

    # -- memory ------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self._allocated

    def reserve(self, nbytes: int) -> None:
        """Account for a device allocation; raises on OOM."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self._allocated + nbytes > self.spec.memory_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {nbytes} bytes "
                f"({self.free_bytes} free of {self.spec.memory_bytes})")
        self._allocated += nbytes
        if self._allocated > self.peak_allocated:
            self.peak_allocated = self._allocated

    def unreserve(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._allocated:
            raise ValueError(
                f"invalid unreserve of {nbytes} (allocated {self._allocated})")
        self._allocated -= nbytes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<GPUDevice {self.name} {self.spec.model}>"
