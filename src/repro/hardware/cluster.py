"""Cluster assembly and the paper's two testbeds.

The paper evaluates on (Section 6.1):

- **Cluster-A** ("KESCH", Cray CS-Storm): 12 nodes x 8 NVIDIA K80 boards.
  Each K80 is a dual-GPU card, so 16 CUDA devices per node and 192 total.
  Connect-IB dual-port FDR HCAs.
- **Cluster-B**: 20 nodes x 1 K80 board (2 CUDA devices per node, 40
  total), InfiniBand EDR HCAs.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Simulator
from .calibration import DEFAULT_CALIBRATION, Calibration
from .gpu import GPUDevice, K80
from .node import NICSpec, Node, NodeSpec

__all__ = ["Cluster", "cluster_a", "cluster_b", "make_cluster"]


class Cluster:
    """A set of nodes on a full-bisection InfiniBand fabric.

    The fabric core is modeled as non-blocking (real CS-Storm deployments
    are near-full-bisection at this scale); contention arises at NIC ports
    and PCIe uplinks, which :mod:`repro.mpi.protocol` serializes on.
    """

    def __init__(self, sim: Simulator, node_spec: NodeSpec, n_nodes: int,
                 *, cal: Optional[Calibration] = None, name: str = "cluster"):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.cal = cal or DEFAULT_CALIBRATION
        self.name = name
        self.node_spec = node_spec
        #: Set by the fault injector when it swaps a FaultyLink into the
        #: topology.  The transport's integrity layer keys off this flag
        #: so quiet runs pay one attribute load, not a per-transfer
        #: link-walk + checksum.
        self.fault_links_armed = False
        self.nodes: List[Node] = []
        gi = 0
        for i in range(n_nodes):
            self.nodes.append(Node(sim, node_spec, index=i,
                                   first_gpu_index=gi, cal=self.cal))
            gi += node_spec.gpus_per_node
        self.gpus: List[GPUDevice] = [g for nd in self.nodes for g in nd.gpus]

    # -- lookups -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def gpus_per_node(self) -> int:
        return self.node_spec.gpus_per_node

    def gpu(self, global_index: int) -> GPUDevice:
        return self.gpus[global_index]

    def node_of(self, gpu: GPUDevice) -> Node:
        return self.nodes[gpu.node_index]

    def same_node(self, a: GPUDevice, b: GPUDevice) -> bool:
        return a.node_index == b.node_index

    def gpus_for_job(self, n: int) -> List[GPUDevice]:
        """Block-assign the first ``n`` GPUs (fill nodes in order)."""
        if not 1 <= n <= self.n_gpus:
            raise ValueError(
                f"job size {n} not in [1, {self.n_gpus}] for {self.name}")
        return self.gpus[:n]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Cluster {self.name}: {self.n_nodes} nodes x "
                f"{self.gpus_per_node} {self.node_spec.gpu_spec.model}>")


def cluster_a(sim: Simulator, *, n_nodes: int = 12,
              cal: Optional[Calibration] = None) -> Cluster:
    """Cray CS-Storm "KESCH": 16 K80 CUDA devices/node, dual-port FDR."""
    cal = cal or DEFAULT_CALIBRATION
    spec = NodeSpec(
        gpus_per_node=16,
        gpu_spec=K80(cal),
        nics=(NICSpec("ib0", cal.ib_fdr_port_bw, cal.ib_latency),
              NICSpec("ib1", cal.ib_fdr_port_bw, cal.ib_latency)),
    )
    return Cluster(sim, spec, n_nodes, cal=cal, name="Cluster-A")


def cluster_b(sim: Simulator, *, n_nodes: int = 20,
              cal: Optional[Calibration] = None) -> Cluster:
    """20-node cluster, one K80 board (2 CUDA devices)/node, EDR."""
    cal = cal or DEFAULT_CALIBRATION
    spec = NodeSpec(
        gpus_per_node=2,
        gpu_spec=K80(cal),
        nics=(NICSpec("ib0", cal.ib_edr_bw, cal.ib_latency),),
    )
    return Cluster(sim, spec, n_nodes, cal=cal, name="Cluster-B")


def make_cluster(sim: Simulator, kind: str, **kwargs) -> Cluster:
    """Factory by name: ``"A"``/``"cluster-a"`` or ``"B"``/``"cluster-b"``."""
    key = kind.strip().lower().replace("cluster-", "").replace("cluster_", "")
    if key == "a":
        return cluster_a(sim, **kwargs)
    if key == "b":
        return cluster_b(sim, **kwargs)
    raise ValueError(f"unknown cluster kind {kind!r} (want 'A' or 'B')")
