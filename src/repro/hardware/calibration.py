"""Calibration constants for the hardware performance model.

All absolute-performance knobs used by the simulation live here, with
provenance notes.  Numbers are *effective* (achieved) rates, not
datasheet peaks, chosen so the reproduced experiments exhibit the paper's
relative behaviour (speedup factors, crossovers).  Tests pin ratios, not
absolutes, so retuning a constant here cannot silently break correctness
tests — only the shape checks in the benchmark suite.

Provenance key:
  [K80]   NVIDIA Tesla K80 board spec (GK210 x2): 2496 cores/die,
          240 GB/s memory bandwidth/die, ~2.8 TFLOPS SP boost per die.
  [PCIe]  PCIe gen3 x16: 15.75 GB/s raw, ~12 GB/s achieved.
  [EDR]   InfiniBand EDR 4x: 100 Gb/s, ~12 GB/s achieved (Cluster-B).
  [CIB]   Connect-IB dual-port FDR 4x: 56 Gb/s/port, ~6.8 GB/s/port
          achieved (Cluster-A).
  [MV2]   MVAPICH2-GDR 2.2 OMB latencies on comparable hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]

GiB = float(1 << 30)
MiB = float(1 << 20)


@dataclass(frozen=True)
class Calibration:
    """Effective performance constants (SI units: bytes, seconds, FLOPs)."""

    # --- GPU compute -------------------------------------------------------
    #: Achieved SGEMM/conv throughput per K80 CUDA device (GK210 die).
    #: [K80] 2.8 TFLOPS peak x ~0.38 cuDNN-era efficiency.
    k80_flops: float = 1.05e12
    #: K20x achieved throughput (for the FireCaffe comparison note).
    k20x_flops: float = 0.35e12
    #: Effective device-memory bandwidth for elementwise kernels. [K80]
    k80_membw: float = 150e9
    #: GPU elementwise-reduction throughput (bytes of *output* per second;
    #: a sum kernel reads 2 streams and writes 1, so ~membw/3).
    gpu_reduce_bw: float = 50e9
    #: Kernel launch latency (cudaLaunchKernel + driver).
    kernel_launch_overhead: float = 8e-6

    # --- Host / CPU ---------------------------------------------------------
    #: CPU-side reduction throughput (AVX2 vectorized sum over pinned
    #: staging buffers; memory-bound on one Haswell socket).
    cpu_reduce_bw: float = 10.0e9
    #: Host memcpy bandwidth (staging buffer copies).
    host_memcpy_bw: float = 8.0e9

    # --- PCIe ----------------------------------------------------------------
    pcie_bw: float = 12.0e9          # [PCIe] pinned, achieved
    pcie_latency: float = 5e-6
    #: cudaMemcpy call overhead (driver + DMA setup), paid per copy.
    cuda_copy_overhead: float = 10e-6
    #: Penalty factor for unpinned host memory (OpenMPI-era staging).
    unpinned_factor: float = 0.45

    # --- InfiniBand -----------------------------------------------------------
    ib_edr_bw: float = 12.0e9        # [EDR] Cluster-B
    ib_fdr_port_bw: float = 6.8e9    # [CIB] Cluster-A, per port
    ib_latency: float = 1.5e-6
    #: MPI software envelope per message (matching, tag lookup).
    mpi_message_overhead: float = 1.5e-6
    #: GPUDirect RDMA effective bandwidth cap (P2P reads over PCIe root
    #: complex are slower than host-pinned DMA on Haswell-era chipsets).
    gdr_read_bw: float = 6.0e9

    # --- I/O subsystem ----------------------------------------------------------
    #: Lustre aggregate bandwidth available to the job (many OSTs).
    lustre_aggregate_bw: float = 20.0e9
    #: Per-client (per-reader) Lustre streaming bandwidth cap.
    lustre_per_client_bw: float = 0.8e9
    #: LMDB single-reader throughput (mmap page-in + decode).
    lmdb_reader_bw: float = 1.2e9
    #: Reader count beyond which LMDB lock/mmap contention collapses
    #: throughput (Section 6.3: "LMDB does not scale for more than 64
    #: parallel readers").
    lmdb_scalability_limit: int = 64
    #: Aggregate LMDB throughput once the page cache thrashes (shared
    #: backing-storage rate past the reader limit).
    lmdb_thrash_floor_bw: float = 0.5e9
    #: JPEG decode throughput per reader thread (CPU-side).
    decode_bw: float = 0.6e9

    # --- Framework software overheads --------------------------------------------
    #: Per-iteration solver bookkeeping (ApplyUpdate, scaffolding).
    solver_iteration_overhead: float = 4.0e-3
    #: Per-layer launch/dispatch overhead in the framework.
    layer_dispatch_overhead: float = 25e-6
    #: Half-saturation batch size of the conv/GEMM kernels: achieved
    #: throughput scales as b / (b + halfpoint).  Small per-GPU batches
    #: (the strong-scaling regime) under-utilize the SM array, which is
    #: what bends the paper's scaling curves away from linear.
    batch_efficiency_halfpoint: float = 4.0

    # --- Skew / noise modeling ------------------------------------------------
    #: Max fractional service-time noise on network/PCIe transfers.
    #: Active only when the Simulator is constructed with a noise seed;
    #: 0.0 models a perfectly quiet fabric.  Real clusters sit around
    #: 0.05-0.2 (OS noise, congestion, DVFS) — the "skew" axis that
    #: bounds chain length in Section 5.
    network_jitter: float = 0.0
    #: Max fractional noise on GPU kernel durations.
    compute_jitter: float = 0.0
    #: Persistent per-device heterogeneity: each PCIe/NIC link's
    #: effective bandwidth is divided by a factor drawn once (at cluster
    #: build) from [1, 1 + spread).  A straggler in a chain gates every
    #: chunk; a binomial tree only pays on paths through it.
    straggler_spread: float = 0.0

    def batch_efficiency(self, batch: int) -> float:
        """Fraction of peak throughput achieved at a per-GPU batch size."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return batch / (batch + self.batch_efficiency_halfpoint)

    def gpu_flops(self, gpu_model: str) -> float:
        """Achieved FLOPs/s for a named GPU model."""
        table = {"K80": self.k80_flops, "K20x": self.k20x_flops,
                 "P100": 4.0e12}
        try:
            return table[gpu_model]
        except KeyError:
            raise KeyError(f"no calibration for GPU model {gpu_model!r}")


#: Shared default instance.  Benchmarks and cluster builders read this;
#: tests may construct bespoke instances.
DEFAULT_CALIBRATION = Calibration()
