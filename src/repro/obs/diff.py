"""Differential critical-path analysis: *where did the delta go?*

Every S-Caffe claim is comparative — MPI vs NCCL, tuned vs default,
overlap vs no-overlap — and a regression gate's verdict ("7% slower")
is useless without attribution.  This module aligns two profiled runs
and tiles the makespan delta exactly:

1. Each run's critical path (which itself tiles ``[0, makespan]``, see
   :mod:`repro.prof.graph`) is bucketed into **cells** keyed by
   ``(phase, resource class, rank)`` — the finest granularity shared
   by both runs.  Wait gaps get the ``(wait)`` cell key.
2. Cells are aligned by key.  ``delta = cand - base`` per cell; a cell
   present in only one run is **structural** (activity that exists
   only on one side, e.g. a design change that removed a stage).
3. The attribution is closed with an explicit float **residual**
   (``delta - fsum(cell deltas)``, only floating-point dust since the
   cells tile each run), so the components sum to the makespan delta
   *identically* — to the last ULP, by construction.

Marginal tables (per phase, per resource class, per rank) are sums
over the same cells, so each of them tiles the delta too.  The text
rendering leads with whatever moved most; ``diff_trace_events`` emits
a two-process Perfetto trace with both critical paths on parallel
tracks for eyeball comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .runcard import RunCard

__all__ = ["CellDelta", "RunDiff", "diff_cells", "diff_runs",
           "diff_trace_events"]

#: Cell key for critical-path wait gaps.
WAIT_KEY = ("(wait)", "wait", "-")

CellKey = Tuple[str, str, str]  # (phase, resource class, actor)


@dataclass
class CellDelta:
    """One aligned critical-path cell across the two runs."""

    phase: str
    cls: str
    actor: str
    base: float
    cand: float
    #: Present in only one run (the other side contributes 0.0s).
    structural: bool = False

    @property
    def key(self) -> CellKey:
        return (self.phase, self.cls, self.actor)

    @property
    def delta(self) -> float:
        return self.cand - self.base


@dataclass
class RunDiff:
    """The exactly-tiling attribution of ``cand - base``."""

    base_label: str
    cand_label: str
    base_makespan: float
    cand_makespan: float
    cells: List[CellDelta] = field(default_factory=list)
    #: Configuration differences between the two RunCards.
    config_diffs: List[Tuple[str, Any, Any]] = field(default_factory=list)

    @property
    def delta(self) -> float:
        return self.cand_makespan - self.base_makespan

    @property
    def attributed(self) -> float:
        """Exact float sum of all per-cell deltas."""
        return math.fsum(c.delta for c in self.cells)

    @property
    def residual(self) -> float:
        """Floating-point dust closing the attribution:
        ``delta == attributed + residual`` identically."""
        return self.delta - self.attributed

    @property
    def structural_delta(self) -> float:
        return math.fsum(c.delta for c in self.cells if c.structural)

    def components(self) -> List[float]:
        """Every attributed component incl. the residual; sums to
        :attr:`delta` exactly (``math.fsum`` of this list)."""
        return [c.delta for c in self.cells] + [self.residual]

    # -- marginals ------------------------------------------------------------
    def by(self, dim: str) -> Dict[str, float]:
        """Delta summed by ``phase``, ``class``, or ``actor``.

        Each marginal covers every cell exactly once, so (with the
        residual) it tiles the makespan delta as well.
        """
        idx = {"phase": 0, "class": 1, "actor": 2}
        try:
            i = idx[dim]
        except KeyError:
            raise ValueError(f"unknown diff dimension {dim!r} "
                             f"(have {tuple(idx)})")
        out: Dict[str, List[float]] = {}
        for c in self.cells:
            out.setdefault(c.key[i], []).append(c.delta)
        return {k: math.fsum(v) for k, v in out.items()}

    # -- rendering ------------------------------------------------------------
    def _fmt_table(self, title: str, rows: Dict[str, float],
                   top: int) -> List[str]:
        # Percent-of-delta shares are only meaningful when the net
        # delta is not itself floating-point dust.
        denom = abs(self.delta) if abs(self.delta) > 1e-12 else 0.0
        out = [f"  {title}"]
        ordered = sorted(rows.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
        for name, d in ordered[:top]:
            if d == 0.0:
                continue
            share = f"{100.0 * d / self.delta:6.1f}%" if denom else "      "
            out.append(f"    {name:24s} {d * 1e3:+11.3f} ms {share}")
        rest = math.fsum(d for _, d in ordered[top:])
        if rest != 0.0:
            share = f"{100.0 * rest / self.delta:6.1f}%" if denom else ""
            out.append(f"    {'(other)':24s} {rest * 1e3:+11.3f} ms {share}")
        if len(out) == 1:
            out.append("    (no difference)")
        return out

    def render(self, top: int = 8) -> str:
        b, c = self.base_makespan, self.cand_makespan
        pct = f" ({100.0 * self.delta / b:+.2f}%)" if b else ""
        lines = [
            f"run diff: {self.base_label} -> {self.cand_label}",
            f"  makespan {b * 1e3:.3f} ms -> {c * 1e3:.3f} ms   "
            f"delta {self.delta * 1e3:+.3f} ms{pct}",
            f"  attributed over {len(self.cells)} aligned cells "
            f"(residual {self.residual * 1e3:+.6f} ms)",
        ]
        sd = self.structural_delta
        if sd != 0.0:
            n = sum(1 for x in self.cells if x.structural)
            lines.append(f"  structural {sd * 1e3:+.3f} ms "
                         f"({n} cells present in only one run)")
        if self.config_diffs:
            lines.append("  config differences:")
            for name, a, bb in self.config_diffs:
                lines.append(f"    {name:24s} {a!r} -> {bb!r}")
        lines += self._fmt_table("by phase:", self.by("phase"), top)
        lines += self._fmt_table("by resource class:", self.by("class"), top)
        lines += self._fmt_table("by rank:", self.by("actor"), top)
        worst = sorted(self.cells, key=lambda x: (-abs(x.delta), x.key))
        shown = [x for x in worst[:top] if x.delta != 0.0]
        if shown:
            lines.append("  largest cells (phase / class / rank):")
            for x in shown:
                mark = " *" if x.structural else ""
                lines.append(
                    f"    {x.phase:18s} {x.cls:8s} {x.actor:10s} "
                    f"{x.delta * 1e3:+11.3f} ms{mark}")
            if any(x.structural for x in shown):
                lines.append("    (* = structural: present in one run only)")
        return "\n".join(lines)


# -- alignment ----------------------------------------------------------------

def diff_cells(base_cells: Dict[CellKey, float],
               cand_cells: Dict[CellKey, float], *,
               base_makespan: float, cand_makespan: float,
               base_label: str = "base", cand_label: str = "cand",
               config_diffs: Optional[List[Tuple[str, Any, Any]]] = None,
               ) -> RunDiff:
    """Align two cell maps (from :meth:`ActivityGraph.cp_cells`)."""
    cells: List[CellDelta] = []
    for key in sorted(set(base_cells) | set(cand_cells)):
        in_base = key in base_cells
        in_cand = key in cand_cells
        cells.append(CellDelta(
            phase=key[0], cls=key[1], actor=key[2],
            base=base_cells.get(key, 0.0), cand=cand_cells.get(key, 0.0),
            structural=not (in_base and in_cand)))
    return RunDiff(base_label=base_label, cand_label=cand_label,
                   base_makespan=base_makespan,
                   cand_makespan=cand_makespan, cells=cells,
                   config_diffs=list(config_diffs or []))


def _payload_cells(payload: dict) -> Dict[CellKey, float]:
    return {(c["phase"], c["class"], c["actor"]): c["seconds"]
            for c in payload["profile"]["cp_cells"]}


def diff_runs(base: dict, cand: dict, *,
              base_label: Optional[str] = None,
              cand_label: Optional[str] = None) -> RunDiff:
    """Diff two saved run payloads (see :func:`repro.obs.load_run`)."""
    card_b = RunCard.from_payload(base["runcard"])
    card_c = RunCard.from_payload(cand["runcard"])
    return diff_cells(
        _payload_cells(base), _payload_cells(cand),
        base_makespan=base["profile"]["makespan"],
        cand_makespan=cand["profile"]["makespan"],
        base_label=base_label or card_b.describe(),
        cand_label=cand_label or card_c.describe(),
        config_diffs=card_b.diff(card_c))


# -- Perfetto comparison trace ------------------------------------------------

def diff_trace_events(base: dict, cand: dict) -> List[dict]:
    """Two-process trace: each run's critical path on its own track
    group, time-aligned at 0, so the divergence is visible by eye."""
    events: List[dict] = []
    for pid, (payload, role) in enumerate(((base, "base"),
                                           (cand, "cand"))):
        card = RunCard.from_payload(payload["runcard"])
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"{role}: {card.describe()}"}})
        events.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                       "args": {"sort_index": pid}})
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": 1, "args": {"name": "critical path"}})
        for seg in payload["profile"]["cp_timeline"]:
            events.append({
                "name": seg["label"] or seg["phase"],
                "cat": seg["class"],
                "ph": "X", "pid": pid, "tid": 1,
                "ts": seg["start"] * 1e6,
                "dur": (seg["end"] - seg["start"]) * 1e6,
                "args": {"phase": seg["phase"], "class": seg["class"],
                         "actor": seg["actor"]},
            })
    return events
