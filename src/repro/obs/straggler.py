"""Straggler / outlier detection over recorded spans.

A slow rank (or a slow link feeding one) rarely shows up in aggregate
numbers — S-Caffe's reduce designs pipeline around it and the damage
appears as ``(wait)`` time attributed elsewhere.  The detector reads
the raw span timings instead: per-rank busy seconds (helper threads
folded into their rank), per-link busy seconds grouped by resource
class, and the per-GPU traffic totals of the comm matrix.  Anything
``threshold`` times its population median is flagged.

Pure function of the recording — no simulator events, no state beyond
a cache — and exported as ``obs.straggler.*`` PVARs by
:func:`bind_straggler_pvars` (all ``timeseries=False``: the scan is
O(spans), so it runs at export/snapshot time, never per scrape).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["StragglerDetector", "StragglerReport", "bind_straggler_pvars"]

#: Rank processes are named "<comm>.rank<N>" (helpers append another
#: suffix); all of a rank's threads fold into one "rank<N>" bucket.
_RANK_RE = re.compile(r"(?:^|\.)rank(\d+)(?:\.|$)")


def _resource_class(resource: str) -> str:
    """Coarse class of a resource *name* (link-side twin of
    :func:`~repro.prof.span_class`, which classifies spans)."""
    if resource.endswith(".sm"):
        return "compute"
    if ".pcie_" in resource:
        return "pcie"
    if resource.endswith(".tx") or resource.endswith(".rx"):
        return "ib"
    if resource.endswith(".hostmem"):
        return "host"
    if resource.endswith(".cpured"):
        return "cpu"
    return "other"


def _median(values: List[float]) -> float:
    vs = sorted(values)
    n = len(vs)
    if not n:
        return 0.0
    mid = n // 2
    return vs[mid] if n % 2 else 0.5 * (vs[mid - 1] + vs[mid])


@dataclass
class StragglerReport:
    """One detection pass over a recording."""

    threshold: float
    #: Rank ("r0", ...) -> busy seconds (helpers folded in).
    rank_busy: Dict[str, float] = field(default_factory=dict)
    #: Rank -> busy / median busy (1.0 = perfectly balanced).
    rank_skew: Dict[str, float] = field(default_factory=dict)
    flagged_ranks: List[str] = field(default_factory=list)
    #: Link resource name -> busy seconds (comm classes only).
    link_busy: Dict[str, float] = field(default_factory=dict)
    #: Link -> busy / median of its resource class.
    link_skew: Dict[str, float] = field(default_factory=dict)
    slow_links: List[str] = field(default_factory=list)
    #: GPU index -> total bytes sent+received (comm-matrix imbalance).
    rank_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def max_rank_skew(self) -> float:
        return max(self.rank_skew.values(), default=0.0)

    def to_payload(self) -> dict:
        return {
            "threshold": self.threshold,
            "rank_busy": dict(self.rank_busy),
            "rank_skew": dict(self.rank_skew),
            "flagged_ranks": list(self.flagged_ranks),
            "link_busy": dict(self.link_busy),
            "link_skew": dict(self.link_skew),
            "slow_links": list(self.slow_links),
            "rank_bytes": {str(k): v for k, v in self.rank_bytes.items()},
        }

    def render(self) -> str:
        if not self.rank_busy:
            return "  (no rank activity recorded)"
        lines = []
        if self.flagged_ranks:
            worst = max(self.flagged_ranks, key=self.rank_skew.get)
            lines.append(
                f"  stragglers: {len(self.flagged_ranks)} rank(s) >= "
                f"{self.threshold:.2f}x median busy time -- "
                + ", ".join(f"{r} ({self.rank_skew[r]:.2f}x)"
                            for r in self.flagged_ranks)
                + f"; worst {worst}")
        else:
            lines.append(
                f"  stragglers: none (max rank skew "
                f"{self.max_rank_skew:.2f}x, threshold "
                f"{self.threshold:.2f}x)")
        if self.slow_links:
            lines.append(
                "  slow links: "
                + ", ".join(f"{name} ({self.link_skew[name]:.2f}x class "
                            f"median)" for name in self.slow_links))
        return "\n".join(lines)


class StragglerDetector:
    """Skew detection over a live :class:`~repro.prof.SpanRecorder`.

    ``report()`` is cached on the recorder's span count, so the PVAR
    binder can read several variables from one snapshot without
    rescanning the span list each time.
    """

    def __init__(self, recorder, *, threshold: float = 1.5):
        if threshold <= 1.0:
            raise ValueError("straggler threshold must be > 1.0")
        self.recorder = recorder
        self.threshold = threshold
        self._cache: Tuple[int, StragglerReport] = (-1, None)

    def report(self) -> StragglerReport:
        rec = self.recorder
        key = len(rec.spans)
        if self._cache[0] == key:
            return self._cache[1]
        rep = StragglerReport(threshold=self.threshold)

        rank_busy: Dict[str, float] = {}
        link_busy: Dict[str, float] = {}
        for s in rec.spans:
            if s.end is None:
                continue
            d = s.end - s.start
            m = _RANK_RE.search(s.actor)
            if m is not None:
                rank = f"rank{m.group(1)}"
                rank_busy[rank] = rank_busy.get(rank, 0.0) + d
            for r in s.resources:
                cls = _resource_class(r)
                if cls in ("pcie", "ib", "host"):
                    link_busy[r] = link_busy.get(r, 0.0) + d
        rep.rank_busy = rank_busy

        med = _median(list(rank_busy.values()))
        if med > 0.0:
            rep.rank_skew = {r: b / med for r, b in rank_busy.items()}
            rep.flagged_ranks = sorted(
                (r for r, s in rep.rank_skew.items()
                 if s >= self.threshold),
                key=lambda r: -rep.rank_skew[r])

        rep.link_busy = link_busy
        by_class: Dict[str, List[str]] = {}
        for name in link_busy:
            by_class.setdefault(_resource_class(name), []).append(name)
        for cls, names in by_class.items():
            cmed = _median([link_busy[n] for n in names])
            if cmed <= 0.0 or len(names) < 2:
                continue
            for name in names:
                rep.link_skew[name] = link_busy[name] / cmed
        rep.slow_links = sorted(
            (n for n, s in rep.link_skew.items() if s >= self.threshold),
            key=lambda n: -rep.link_skew[n])

        bytes_total: Dict[int, int] = {}
        for (src, dst), (_cnt, nbytes) in rec.comm.items():
            bytes_total[src] = bytes_total.get(src, 0) + nbytes
            bytes_total[dst] = bytes_total.get(dst, 0) + nbytes
        rep.rank_bytes = bytes_total

        self._cache = (key, rep)
        return rep


def bind_straggler_pvars(session, detector: StragglerDetector) -> None:
    """Register the ``obs.straggler.*`` PVAR namespace on ``session``.

    All variables are ``timeseries=False``: each read rescans the span
    list (O(spans), cached per span count), which is fine at snapshot
    or Prometheus-export time but would be quadratic if sampled every
    scrape interval.
    """
    from ..telemetry import PerfVar

    def flagged():
        return len(detector.report().flagged_ranks)

    def max_skew():
        return detector.report().max_rank_skew

    def slow_links():
        return len(detector.report().slow_links)

    def rank_busy():
        return dict(detector.report().rank_busy)

    def link_skew():
        return dict(detector.report().link_skew)

    for pv in (
        PerfVar("obs.straggler.flagged_ranks",
                "ranks whose busy time exceeds the straggler threshold "
                "over the population median", "ranks", flagged,
                timeseries=False),
        PerfVar("obs.straggler.max_rank_skew",
                "worst rank busy time over the median (1.0 = balanced)",
                "ratio", max_skew, timeseries=False),
        PerfVar("obs.straggler.slow_links",
                "links whose busy time exceeds the threshold over their "
                "resource-class median", "links", slow_links,
                timeseries=False),
        PerfVar("obs.straggler.rank_busy",
                "per-rank busy seconds (helper threads folded in)",
                "seconds", rank_busy, labeled=True, timeseries=False),
        PerfVar("obs.straggler.link_skew",
                "per-link busy time over its resource-class median",
                "ratio", link_skew, labeled=True, timeseries=False),
    ):
        if pv.name not in session.pvar_names():
            session.register_pvar(pv)
