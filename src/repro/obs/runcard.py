"""RunCard: the canonical manifest of one profiled run.

Two profile numbers are only comparable when everything that *could*
have moved them is pinned down.  A RunCard captures exactly that
closure for a simulated run — seed, cluster, workload shape, MPI
profile name plus its live CVAR values, the digest of the committed
tuning tables the dispatchers consulted, the scheduler mode, a PVAR
snapshot, and the headline numbers — serialized as canonical JSON
(sorted keys, indent 2, trailing newline, same convention as the
committed tuning tables) so two cards for the same configuration are
byte-identical and any difference is a real configuration delta.

``repro profile --json`` writes a *run file*: a RunCard plus the
machine-readable :meth:`~repro.prof.ProfileReport.to_json_dict`
summary.  ``repro diff`` consumes two run files and attributes the
makespan delta (see :mod:`repro.obs.diff`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RUN_FORMAT", "RunCard", "make_runcard", "run_payload",
           "save_run", "load_run", "tuning_tables_digest"]

#: Format tag of a saved run file (RunCard + profile summary).
RUN_FORMAT = "repro.obs.run/1"


def tuning_tables_digest(dirname: Optional[str] = None) -> str:
    """SHA-256 over the committed tuning tables (filenames + bytes).

    Any byte drift in any table changes the digest, so two RunCards
    with the same digest dispatched over identical tables.  Returns
    ``"none"`` when no tables exist.
    """
    if dirname is None:
        from ..tune import tables
        dirname = tables.tables_dir()
    try:
        names = sorted(n for n in os.listdir(dirname) if n.endswith(".json"))
    except OSError:
        return "none"
    if not names:
        return "none"
    h = hashlib.sha256()
    for name in names:
        with open(os.path.join(dirname, name), "rb") as fh:
            h.update(name.encode())
            h.update(b"\0")
            h.update(fh.read())
            h.update(b"\0")
    return h.hexdigest()


@dataclass
class RunCard:
    """Everything that pins down one profiled run."""

    #: Simulator seed (None = unseeded, jitter-free run).
    seed: Optional[int]
    cluster: str
    gpus: int
    network: str
    dataset: str
    batch_size: int
    iterations: int
    variant: str
    reduce_design: str
    #: MPI profile name ("mv2gdr", "nccl", ...).
    profile: str
    #: Live CVAR values of the profile (every tunable knob).
    cvars: Dict[str, Any] = field(default_factory=dict)
    #: SHA-256 of the committed tuning tables ("none" when absent).
    tuning_digest: str = "none"
    #: Event-scheduler mode ("fast" calendar queue or "slowpath" heap).
    scheduler: str = "fast"
    #: End-of-run PVAR snapshot (empty without telemetry).
    pvars: Dict[str, Any] = field(default_factory=dict)
    #: Headline numbers (makespan, shares, total_time, ...).
    headline: Dict[str, float] = field(default_factory=dict)
    schema_version: int = 1

    # -- serialization -------------------------------------------------------
    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, indent 2, trailing newline."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "RunCard":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    # -- comparison ----------------------------------------------------------
    def diff(self, other: "RunCard") -> List[Tuple[str, Any, Any]]:
        """(field, mine, theirs) for every configuration difference.

        Headline numbers and PVAR snapshots are *outputs*, not
        configuration, so they are excluded; CVARs are compared
        knob-by-knob.
        """
        out: List[Tuple[str, Any, Any]] = []
        skip = {"cvars", "pvars", "headline"}
        for f in dataclasses.fields(self):
            if f.name in skip:
                continue
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b:
                out.append((f.name, a, b))
        for knob in sorted(set(self.cvars) | set(other.cvars)):
            a = self.cvars.get(knob)
            b = other.cvars.get(knob)
            if a != b:
                out.append((f"cvar:{knob}", a, b))
        return out

    def describe(self) -> str:
        return (f"{self.network} x{self.gpus} on Cluster-{self.cluster}, "
                f"{self.variant}/{self.reduce_design}, {self.profile}, "
                f"seed={self.seed}")


def make_runcard(report, cfg, *, cluster_kind: str, n_gpus: int,
                 profile, seed: Optional[int], sim=None,
                 telemetry=None) -> RunCard:
    """Build the card for a finished profiled run.

    ``report`` is the :class:`~repro.core.TrainingReport` (its
    ``.profile`` supplies the headline numbers), ``profile`` the
    :class:`~repro.mpi.MPIProfile` (or its name) the run used.
    """
    from ..mpi.profiles import get_profile
    if isinstance(profile, str):
        profile = get_profile(profile)
    cvars = dataclasses.asdict(profile)
    cvars.pop("name", None)
    headline: Dict[str, float] = {
        "total_time": float(report.total_time),
        "simulated_time": float(report.simulated_time),
        "samples_per_second": float(report.samples_per_second),
    }
    prof = report.profile
    if prof is not None:
        headline.update(
            makespan=float(prof.makespan),
            cp_length=float(prof.cp_length),
            n_spans=float(prof.n_spans),
            comm_share=float(prof.comm_share),
            compute_share=float(prof.compute_share),
        )
    return RunCard(
        seed=seed,
        cluster=cluster_kind,
        gpus=n_gpus,
        network=cfg.network,
        dataset=cfg.dataset,
        batch_size=cfg.batch_size,
        iterations=cfg.iterations,
        variant=cfg.variant,
        reduce_design=cfg.reduce_design,
        profile=profile.name,
        cvars=cvars,
        tuning_digest=tuning_tables_digest(),
        scheduler=("slowpath" if sim is not None and sim._slow else "fast"),
        pvars=telemetry.pvar_snapshot() if telemetry is not None else {},
        headline=headline,
    )


# -- run files ----------------------------------------------------------------

def run_payload(runcard: RunCard, profile_report,
                straggler=None) -> dict:
    """The saved-run payload ``repro diff`` consumes."""
    payload = {
        "format": RUN_FORMAT,
        "runcard": runcard.to_payload(),
        "profile": profile_report.to_json_dict(),
    }
    if straggler is not None:
        payload["straggler"] = straggler.to_payload()
    return payload


def save_run(path: str, runcard: RunCard, profile_report,
             straggler=None) -> dict:
    """Write a canonical-JSON run file; returns the payload."""
    payload = run_payload(runcard, profile_report, straggler)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_run(path: str) -> dict:
    """Read a run file back, validating the format tag."""
    with open(path) as fh:
        payload = json.load(fh)
    fmt = payload.get("format")
    if fmt != RUN_FORMAT:
        raise ValueError(
            f"{path}: not a repro run file (format={fmt!r}, "
            f"expected {RUN_FORMAT!r}; write one with "
            f"'repro profile --json {os.path.basename(path)}')")
    return payload
