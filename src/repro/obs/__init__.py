"""repro.obs — run-comparison observability.

Built on the span/telemetry substrate, four pieces:

- :class:`RunCard` — the canonical manifest of one profiled run
  (seed, cluster, profile + CVARs, tuning-table digest, scheduler
  mode, PVAR snapshot, headline numbers);
- :func:`diff_runs` / :class:`RunDiff` — the differential
  critical-path engine behind ``repro diff A.json B.json``: the
  makespan delta between two saved runs, attributed into an
  exactly-tiling (phase x resource class x rank) breakdown;
- :class:`StragglerDetector` — per-rank skew and slow-link outliers
  from span timings and the comm matrix, exported as
  ``obs.straggler.*`` PVARs via :func:`bind_straggler_pvars`;
- :class:`FlightRecorder` — a bounded ring of recent span events that
  the watchdog escalation path and typed fault errors dump to a
  post-mortem file.

Everything here is passive: seeded runs with these observers attached
are event-for-event identical to runs without.
"""

from .diff import (
    CellDelta, RunDiff, diff_cells, diff_runs, diff_trace_events,
)
from .flight import FlightRecorder
from .runcard import (
    RUN_FORMAT, RunCard, load_run, make_runcard, run_payload, save_run,
    tuning_tables_digest,
)
from .straggler import StragglerDetector, StragglerReport, \
    bind_straggler_pvars

__all__ = [
    "CellDelta",
    "FlightRecorder",
    "RUN_FORMAT",
    "RunCard",
    "RunDiff",
    "StragglerDetector",
    "StragglerReport",
    "bind_straggler_pvars",
    "diff_cells",
    "diff_runs",
    "diff_trace_events",
    "load_run",
    "make_runcard",
    "run_payload",
    "save_run",
    "tuning_tables_digest",
]
