"""Flight recorder: a bounded ring buffer of recent span activity.

Black-box style observability for the fault paths: the recorder keeps
the last ``capacity`` span open/close records (plus free-form notes
from the watchdog), so when a run dies — a typed fault error, a
watchdog escalation, a hang verdict from the chaos gate — the
post-mortem ships the final N events of simulated activity instead of
just the exception string.

Strictly passive, same bar as :class:`~repro.prof.SpanRecorder`: it
observes spans the recorder already captured, never schedules
simulator events, and a seeded run with a flight recorder attached is
event-for-event identical to one without.  Memory is bounded by the
ring (``collections.deque(maxlen=...)``) regardless of run length.
"""

from __future__ import annotations

import json
from collections import deque
from typing import List, Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Last-N-events ring over a :class:`~repro.prof.SpanRecorder`.

    Construct on a recorder to attach (``FlightRecorder(rec)`` sets
    ``rec.flight``); the recorder then forwards every span open/close.
    ``dump()`` freezes the ring into a post-mortem payload and, when a
    ``path`` is configured, writes it as canonical JSON.
    """

    def __init__(self, recorder=None, *, capacity: int = 512,
                 path: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        #: Post-mortem file target for :meth:`dump` (optional).
        self.path = path
        self.events: deque = deque(maxlen=capacity)
        #: Total records ever observed (``seen - len(events)`` dropped).
        self.seen = 0
        #: Number of :meth:`dump` calls taken.
        self.dumps = 0
        #: The most recent post-mortem payload (dict), if any.
        self.last_dump: Optional[dict] = None
        self.recorder = None
        if recorder is not None:
            self.attach(recorder)

    # -- wiring --------------------------------------------------------------
    def attach(self, recorder) -> None:
        """Install on ``recorder``; span opens/closes flow in from here."""
        self.recorder = recorder
        recorder.flight = self

    def detach(self) -> None:
        if self.recorder is not None and self.recorder.flight is self:
            self.recorder.flight = None
        self.recorder = None

    # -- feed (called by SpanRecorder / the watchdog) ------------------------
    def on_open(self, span) -> None:
        self.seen += 1
        self.events.append({
            "ev": "open", "t": span.start, "sid": span.sid,
            "kind": span.kind, "actor": span.actor, "phase": span.phase,
            "op": span.op, "label": span.label,
            "resource": span.resource, "nbytes": span.nbytes,
        })

    def on_close(self, span) -> None:
        self.seen += 1
        self.events.append({
            "ev": "close", "t": span.end, "sid": span.sid,
            "kind": span.kind, "actor": span.actor,
        })

    def note(self, kind: str, detail: str, *, t: Optional[float] = None) -> None:
        """Free-form annotation (watchdog timeouts, escalation steps)."""
        if t is None and self.recorder is not None:
            t = self.recorder.sim.now
        self.seen += 1
        self.events.append({"ev": "note", "t": 0.0 if t is None else t,
                            "kind": kind, "detail": detail})

    # -- post-mortem ---------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """The ring contents, oldest first (copies, JSON-safe)."""
        return [dict(e) for e in self.events]

    def dump(self, reason: str, *, path: Optional[str] = None) -> dict:
        """Freeze the ring into a post-mortem payload.

        Writes canonical JSON to ``path`` (or ``self.path``) when one is
        set; always stores the payload on :attr:`last_dump` so callers
        without a file target (tests, the chaos gate) can attach it to
        their own results.
        """
        payload = {
            "format": "repro.obs.flight/1",
            "reason": reason,
            "time": (self.recorder.sim.now
                     if self.recorder is not None else 0.0),
            "capacity": self.capacity,
            "events_seen": self.seen,
            "events_dropped": max(0, self.seen - len(self.events)),
            "events": self.snapshot(),
        }
        self.dumps += 1
        self.last_dump = payload
        target = path or self.path
        if target:
            with open(target, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return payload
