"""Result formatting: the tables/series the paper's evaluation prints.

Plain-text rendering used by the benchmark harness, the CLI, and the
examples — aligned columns, byte/time humanization, and a comparison
formatter for TrainingReport collections.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_time", "format_bytes",
           "format_fault_report", "scaling_table", "speedup_series"]

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence]) -> str:
    """Render an aligned plain-text table with a title rule."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
              for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title),
           " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for r in srows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_time(seconds: float) -> str:
    """Humanize a duration: '  3.21 s', ' 12.40 ms', '  8.13 us'."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds >= 1.0:
        return f"{seconds:8.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.2f} ms"
    return f"{seconds * 1e6:8.2f} us"


def format_bytes(n: int) -> str:
    """Humanize a byte count the OMB way: 16K, 8M, 1G."""
    if n < 0:
        raise ValueError("negative byte count")
    if n >= GiB and n % GiB == 0:
        return f"{n // GiB}G"
    if n >= MiB:
        return f"{n // MiB}M"
    if n >= KiB:
        return f"{n // KiB}K"
    return str(n)


def format_fault_report(fr) -> str:
    """Render a :class:`~repro.core.metrics.FaultReport` as plain text.

    Quiet sections collapse to one line; a faulted run prints the
    injection tally, runtime resilience counters, and the modeled
    checkpoint/recovery costs.
    """
    if fr is None:
        return "faults: (not tracked)"
    if fr.clean and fr.checkpoints == 0:
        return "faults: none injected, none observed"
    lines = ["faults:"]
    if fr.injected:
        tally = ", ".join(f"{k}x{v}" for k, v in sorted(fr.injected.items()))
        lines.append(f"  injected        {fr.total_injected:4d}  ({tally})")
    else:
        lines.append("  injected           0")
    if fr.crashed_ranks:
        ranks = ", ".join(str(r) for r in fr.crashed_ranks)
        lines.append(f"  crashed ranks         [{ranks}] "
                     f"({fr.detected_failures} detected)")
    lines.append(f"  transport       {fr.retries:4d} retries, "
                 f"{fr.timeouts} timeouts, {fr.messages_dropped} drops, "
                 f"{fr.link_down_hits} link-down hits")
    if (fr.corrupt_detected or fr.retransmits or fr.integrity_failures
            or fr.silent_corruptions):
        lines.append(f"  integrity       {fr.corrupt_detected:4d} corrupt "
                     f"detected, {fr.retransmits} retransmits, "
                     f"{fr.integrity_failures} integrity failures")
    if fr.silent_corruptions:
        lines.append(f"  SILENT CORRUPTION: {fr.silent_corruptions} "
                     f"corrupted deliveries passed verification")
    if fr.watchdog_timeouts or fr.watchdog_escalations:
        lines.append(f"  watchdog        {fr.watchdog_timeouts:4d} timeouts, "
                     f"{fr.watchdog_escalations} escalations")
    if fr.checkpoints or fr.restores or fr.checksum_failures:
        lines.append(f"  checkpoints     {fr.checkpoints:4d} saved "
                     f"({format_time(fr.checkpoint_time).strip()}), "
                     f"{fr.restores} restored "
                     f"({format_time(fr.restore_time).strip()}), "
                     f"{fr.checksum_failures} discarded corrupt")
    if fr.recoveries:
        lines.append(f"  recoveries      {fr.recoveries:4d} "
                     f"({format_time(fr.recovery_time).strip()} total)")
    return "\n".join(lines)


def scaling_table(title: str, reports_by_gpus: Mapping[int, Iterable],
                  labels: Sequence[str]) -> str:
    """A Fig. 8/9-style table: one row per GPU count, one column per
    framework/series; failed runs print their failure kind."""
    headers = ["GPUs"] + list(labels)
    rows = []
    for n, reports in sorted(reports_by_gpus.items()):
        cells = [n]
        for r in reports:
            cells.append(f"{r.total_time:9.2f}" if r.ok else r.failure)
        rows.append(cells)
    return format_table(title, headers, rows)


def speedup_series(reports_by_gpus: Mapping[int, object],
                   base_gpus: Optional[int] = None) -> List[tuple]:
    """(gpus, speedup-vs-base) pairs from a scaling sweep of reports."""
    counts = sorted(reports_by_gpus)
    base = reports_by_gpus[base_gpus if base_gpus is not None
                           else counts[0]]
    return [(n, base.total_time / reports_by_gpus[n].total_time)
            for n in counts if reports_by_gpus[n].ok]
