"""The MPI-vs-NCCL backend crossover study (``repro crossover``).

The follow-up question to the paper's runtime comparison: once a
framework can choose between a co-designed MPI runtime and the NCCL
backend of :mod:`repro.nccl`, *which one should it call, and when?*
This module sweeps message size x GPU density x process count over
every registered backend and reports, per (collective, cluster), where
the winner flips — the crossover point a framework's dispatch table
would encode.

Each backend is timed at its best: MPI profiles pick the faster of
their algorithm menu (ring vs reduce+bcast for allreduce, binomial vs
scatter-allgather for bcast), the NCCL backend the faster of its rings
and double binary trees.  The winning algorithm is recorded next to
the latency so the report can say "nccl/ring" rather than just "nccl".

The GPU-density axis is the paper's own testbed pair: Cluster-A packs
16 CUDA devices per node (deep intra-node chains, where the
topology-aware ring shines), Cluster-B has 2 per node (every hop
crosses the NIC, so algorithm choice is dominated by latency terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from .report import format_bytes, format_table, format_time

__all__ = ["SweepPoint", "Crossover", "DEFAULT_SIZES", "DEFAULT_PROCS",
           "DEFAULT_CLUSTERS", "COLLECTIVES", "backend_names",
           "time_backend", "sweep", "find_crossovers", "crossover_report"]

KiB = 1 << 10
MiB = 1 << 20

#: Swept by default: spans the latency-bound to bandwidth-bound regimes.
DEFAULT_SIZES = (4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB)
DEFAULT_PROCS = (8, 32)
DEFAULT_CLUSTERS = ("A", "B")
COLLECTIVES = ("allreduce", "bcast")


def backend_names() -> List[str]:
    """The swept backends — the profile registry, not a hardcoded list."""
    from ..mpi.profiles import profile_names
    return profile_names()


# -- timing one (backend, algorithm, point) -----------------------------------

def _menu(backend: str, collective: str,
          ) -> List[Tuple[str, Callable]]:
    """(algorithm name, program factory) menu for a backend.

    The factory returns an SPMD program timing one collective call;
    the program's return value is the rank's finish time.
    """
    from ..cuda import DeviceBuffer
    from ..mpi.collectives import (
        allreduce_reduce_bcast, allreduce_ring, bcast_binomial,
        bcast_scatter_allgather,
    )
    from ..nccl import (
        nccl_allreduce_ring, nccl_allreduce_tree, nccl_bcast_ring,
        nccl_bcast_tree,
    )

    def two_buf(algo):
        def factory(nbytes):
            def program(ctx):
                sendbuf = DeviceBuffer(ctx.gpu, nbytes)
                recvbuf = DeviceBuffer(ctx.gpu, nbytes)
                yield from algo(ctx, sendbuf, recvbuf)
                return ctx.sim.now
            return program
        return factory

    def one_buf(algo):
        def factory(nbytes):
            def program(ctx):
                buf = DeviceBuffer(ctx.gpu, nbytes)
                yield from algo(ctx, buf, 0)
                return ctx.sim.now
            return program
        return factory

    if backend == "nccl":
        if collective == "allreduce":
            return [("ring", two_buf(nccl_allreduce_ring)),
                    ("tree", two_buf(nccl_allreduce_tree))]
        return [("ring", one_buf(nccl_bcast_ring)),
                ("tree", one_buf(nccl_bcast_tree))]
    if collective == "allreduce":
        return [("ring", two_buf(allreduce_ring)),
                ("reduce_bcast", two_buf(allreduce_reduce_bcast))]
    return [("binomial", one_buf(bcast_binomial)),
            ("scatter_allgather", one_buf(bcast_scatter_allgather))]


def _run(cluster_kind: str, backend: str, factory, P: int,
         nbytes: int) -> float:
    from ..hardware import make_cluster
    from ..mpi import MPIRuntime
    from ..sim import Simulator

    cluster = make_cluster(Simulator(), cluster_kind)
    rt = MPIRuntime(cluster, backend)
    comm = rt.world(P)
    return max(rt.execute(comm, factory(nbytes)))


def time_backend(cluster_kind: str, backend: str, collective: str,
                 P: int, nbytes: int) -> Tuple[float, str]:
    """(best latency, winning algorithm) for one backend at one point."""
    best, algo = float("inf"), "?"
    for name, factory in _menu(backend, collective):
        t = _run(cluster_kind, backend, factory, P, nbytes)
        if t < best:
            best, algo = t, name
    return best, algo


# -- the sweep ----------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """All backends timed at one (collective, cluster, P, size) cell."""

    collective: str
    cluster: str
    P: int
    nbytes: int
    #: backend name -> best latency over its algorithm menu [seconds].
    latency: Dict[str, float]
    #: backend name -> the algorithm that achieved it.
    algorithm: Dict[str, str]

    @property
    def winner(self) -> str:
        return min(self.latency, key=lambda b: self.latency[b])

    def winner_label(self) -> str:
        w = self.winner
        return f"{w}/{self.algorithm[w]}"


def sweep(*, collectives: Sequence[str] = COLLECTIVES,
          clusters: Sequence[str] = DEFAULT_CLUSTERS,
          procs: Sequence[int] = DEFAULT_PROCS,
          sizes: Sequence[int] = DEFAULT_SIZES,
          backends: Sequence[str] = (),
          progress: Callable[[SweepPoint], None] = None,
          ) -> List[SweepPoint]:
    """Time every backend over the full cross product."""
    backends = tuple(backends) or tuple(backend_names())
    points = []
    for coll in collectives:
        for cl in clusters:
            for P in procs:
                for nbytes in sorted(sizes):
                    lat, alg = {}, {}
                    for b in backends:
                        lat[b], alg[b] = time_backend(cl, b, coll, P,
                                                      nbytes)
                    pt = SweepPoint(coll, cl, P, nbytes, lat, alg)
                    points.append(pt)
                    if progress is not None:
                        progress(pt)
    return points


# -- crossover extraction -----------------------------------------------------

@dataclass(frozen=True)
class Crossover:
    """Where the winning backend flips along the message-size axis for
    one (collective, cluster, P) series."""

    collective: str
    cluster: str
    P: int
    #: (size, winner) in ascending size order.
    winners: Tuple[Tuple[int, str], ...]

    def describe(self) -> str:
        head = (f"{self.collective} on Cluster-{self.cluster} "
                f"(P={self.P}): ")
        flips = [f"{w} wins from {format_bytes(s)}"
                 for i, (s, w) in enumerate(self.winners)
                 if i == 0 or w != self.winners[i - 1][1]]
        if len(flips) == 1:
            s, w = self.winners[0]
            return head + f"no crossover — {w} wins at every size"
        return head + "; ".join(flips)


def find_crossovers(points: Sequence[SweepPoint]) -> List[Crossover]:
    series: Dict[Tuple[str, str, int], List[SweepPoint]] = {}
    for pt in points:
        series.setdefault((pt.collective, pt.cluster, pt.P),
                          []).append(pt)
    out = []
    for (coll, cl, P), pts in series.items():
        pts.sort(key=lambda p: p.nbytes)
        out.append(Crossover(coll, cl, P, tuple(
            (p.nbytes, p.winner_label()) for p in pts)))
    return out


def crossover_report(points: Sequence[SweepPoint]) -> str:
    """Tables per (collective, cluster) plus the crossover lines."""
    backends = list(points[0].latency) if points else []
    groups: Dict[Tuple[str, str], List[SweepPoint]] = {}
    for pt in points:
        groups.setdefault((pt.collective, pt.cluster), []).append(pt)
    parts = []
    for (coll, cl), pts in groups.items():
        rows = [[p.P, format_bytes(p.nbytes)]
                + [format_time(p.latency[b]) for b in backends]
                + [p.winner_label()]
                for p in sorted(pts, key=lambda p: (p.P, p.nbytes))]
        density = "dense" if cl == "A" else "sparse"
        parts.append(format_table(
            f"{coll} on Cluster-{cl} ({density} GPUs)",
            ["P", "size"] + backends + ["winner"], rows))
    lines = [c.describe() for c in find_crossovers(points)]
    return "\n\n".join(parts) + "\n\ncrossovers:\n  " + "\n  ".join(lines)
