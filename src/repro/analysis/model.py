"""The Section-5 analytical performance model.

The paper motivates the hierarchical design with two closed-form costs::

    T(Bin) = log2(P) * t(b)                  ... (1)
    T(CC)  = (n + P - 2) * t(c),  c = b / n  ... (2)

where ``t(x)`` is the time to move-and-reduce a buffer of ``x`` bytes on
one hop.  The qualitative conclusions (verified by the simulation in
``benchmarks/bench_model_crossover.py``):

- small P, large b  ->  T(CC) << T(Bin)
- large P, small b  ->  T(CC) >> T(Bin)

so the tuned design is a hybrid that is both skew-tolerant (P) and
size-tolerant (b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["HopCost", "t_binomial", "t_chunked_chain", "optimal_chunks",
           "crossover_P", "hierarchical_estimate", "fit_hop_cost"]


@dataclass(frozen=True)
class HopCost:
    """Per-hop move-and-reduce cost: ``t(x) = alpha + x / beta``.

    ``alpha`` is the fixed per-message cost (latency + launch overheads);
    ``beta`` the effective hop bandwidth (transfer + reduction combined).
    """

    alpha: float
    beta: float

    def __post_init__(self):
        if self.alpha < 0 or self.beta <= 0:
            raise ValueError("need alpha >= 0 and beta > 0")

    def __call__(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.alpha + nbytes / self.beta


def t_binomial(P: int, nbytes: float, hop: HopCost) -> float:
    """Equation (1): T(Bin) = log2(P) * t(b)."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if P == 1:
        return 0.0
    return math.ceil(math.log2(P)) * hop(nbytes)


def t_chunked_chain(P: int, nbytes: float, n_chunks: int,
                    hop: HopCost) -> float:
    """Equation (2): T(CC) = (n + P - 2) * t(c), c = b/n."""
    if P < 1:
        raise ValueError("P must be >= 1")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    if P == 1:
        return 0.0
    return (n_chunks + P - 2) * hop(nbytes / n_chunks)


def optimal_chunks(P: int, nbytes: float, hop: HopCost) -> int:
    """Chunk count minimizing T(CC).

    d/dn [(n + P - 2)(alpha + b/(n beta))] = 0 gives
    n* = sqrt(b (P - 2) / (alpha beta)); clamped to >= 1.
    """
    if hop.alpha == 0:
        # With no per-message cost, more chunks always help; cap at a
        # byte-granularity-sane bound.
        return max(1, int(nbytes // 4096) or 1)
    n = math.sqrt(max(0.0, nbytes * (P - 2)) / (hop.alpha * hop.beta))
    # The integer minimum is at floor or ceil of the continuous optimum.
    lo = max(1, math.floor(n))
    hi = max(1, math.ceil(n))
    if lo == hi:
        return lo
    return min((lo, hi),
               key=lambda k: t_chunked_chain(max(P, 2), nbytes, k, hop))


def crossover_P(nbytes: float, hop: HopCost, *, max_P: int = 4096) -> Optional[int]:
    """Smallest P at which the (optimally chunked) chain stops beating
    the binomial tree for this buffer size, or None if it never does
    within ``max_P``."""
    for P in range(3, max_P + 1):
        n = optimal_chunks(P, nbytes, hop)
        if t_chunked_chain(P, nbytes, n, hop) > t_binomial(P, nbytes, hop):
            return P
    return None


def fit_hop_cost(samples) -> HopCost:
    """Least-squares fit of the affine hop model to measurements.

    ``samples`` is an iterable of ``(nbytes, seconds)`` pairs — e.g.
    two-rank OMB latencies (:func:`repro.mpi.omb.osu_latency` sweeps).
    Solves ``t ≈ alpha + nbytes / beta`` and clamps to a valid HopCost.
    This is how the Section-5 model is *calibrated from* the simulated
    system rather than assumed.
    """
    pts = [(float(n), float(t)) for n, t in samples]
    if len(pts) < 2:
        raise ValueError("need at least two (nbytes, seconds) samples")
    n_mean = sum(n for n, _ in pts) / len(pts)
    t_mean = sum(t for _, t in pts) / len(pts)
    var = sum((n - n_mean) ** 2 for n, _ in pts)
    if var == 0:
        raise ValueError("samples must span more than one message size")
    cov = sum((n - n_mean) * (t - t_mean) for n, t in pts)
    slope = cov / var
    if slope <= 0:
        raise ValueError("non-positive bandwidth slope; bad samples")
    alpha = max(0.0, t_mean - slope * n_mean)
    return HopCost(alpha=alpha, beta=1.0 / slope)


def hierarchical_estimate(P: int, nbytes: float, chain_size: int,
                          hop: HopCost, *, upper: str = "binomial",
                          n_chunks: Optional[int] = None) -> float:
    """Closed-form estimate for the two-level designs (CB-k / CC-k).

    Lower level: chunked chains of ``chain_size`` run concurrently.
    Upper level: the leaders' reduction over ceil(P / chain_size) ranks.
    """
    if chain_size < 2:
        raise ValueError("chain_size must be >= 2")
    k = min(chain_size, P)
    n = n_chunks or optimal_chunks(k, nbytes, hop)
    lower = t_chunked_chain(k, nbytes, n, hop)
    leaders = math.ceil(P / chain_size)
    if leaders <= 1:
        return lower
    if upper == "binomial":
        return lower + t_binomial(leaders, nbytes, hop)
    if upper == "chain":
        nu = n_chunks or optimal_chunks(leaders, nbytes, hop)
        return lower + t_chunked_chain(leaders, nbytes, nu, hop)
    raise ValueError(f"unknown upper algorithm {upper!r}")
