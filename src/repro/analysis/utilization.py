"""Cluster-utilization analysis.

Every contended facility in the hardware model (GPU SM arrays, PCIe
up/down lanes, NIC tx/rx ports, host engines) accumulates busy time and
byte counters during a simulation.  This module aggregates them into a
utilization view — the quantitative face of the co-design story: SC-OBR
keeps the SMs busy *while* the NICs move gradients, instead of
alternating between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hardware import Cluster
from .report import format_table

__all__ = ["CategoryUtilization", "cluster_utilization",
           "utilization_report"]


@dataclass(frozen=True)
class CategoryUtilization:
    """Aggregate over one facility category (e.g. all NIC tx ports)."""

    category: str
    count: int
    total_busy: float
    max_busy: float
    bytes_moved: int

    def mean_utilization(self, span: float) -> float:
        """Mean busy fraction across the category's facilities."""
        if span <= 0:
            raise ValueError("span must be positive")
        return self.total_busy / (self.count * span)

    def peak_utilization(self, span: float) -> float:
        if span <= 0:
            raise ValueError("span must be positive")
        return self.max_busy / span


def cluster_utilization(cluster: Cluster) -> Dict[str, CategoryUtilization]:
    """Collect per-category utilization from a cluster's counters."""
    cats: Dict[str, List] = {
        "gpu_compute": [], "pcie_up": [], "pcie_down": [],
        "nic_tx": [], "nic_rx": [], "host_memcpy": [], "cpu_reduce": [],
    }
    for gpu in cluster.gpus:
        cats["gpu_compute"].append((gpu.compute.busy_time, 0))
        cats["pcie_up"].append((gpu.pcie_up.busy_time,
                                gpu.pcie_up.bytes_moved))
        cats["pcie_down"].append((gpu.pcie_down.busy_time,
                                  gpu.pcie_down.bytes_moved))
    for node in cluster.nodes:
        for nic in node.nics:
            cats["nic_tx"].append((nic.tx.busy_time, nic.tx.bytes_moved))
            cats["nic_rx"].append((nic.rx.busy_time, nic.rx.bytes_moved))
        cats["host_memcpy"].append((node.host_memcpy.busy_time,
                                    node.host_memcpy.bytes_moved))
        cats["cpu_reduce"].append((node.cpu_reduce.busy_time,
                                   node.cpu_reduce.bytes_moved))
    out = {}
    for name, rows in cats.items():
        busies = [b for b, _ in rows]
        out[name] = CategoryUtilization(
            category=name, count=len(rows), total_busy=sum(busies),
            max_busy=max(busies) if busies else 0.0,
            bytes_moved=sum(n for _, n in rows))
    return out


def utilization_report(cluster: Cluster, span: float,
                       title: str = "Cluster utilization") -> str:
    """A printable utilization table over a simulated time span."""
    stats = cluster_utilization(cluster)
    rows = []
    for name, cat in stats.items():
        rows.append([
            name, cat.count,
            f"{cat.mean_utilization(span) * 100:6.2f}%",
            f"{cat.peak_utilization(span) * 100:6.2f}%",
            f"{cat.bytes_moved / (1 << 30):8.2f} GiB",
        ])
    return format_table(title, ["facility", "count", "mean util",
                                "peak util", "bytes moved"], rows)
