"""Analytical models, report formatting, and the backend crossover study."""

from .crossover import (
    Crossover, SweepPoint, backend_names, crossover_report,
    find_crossovers, sweep, time_backend,
)
from .model import (
    HopCost, crossover_P, fit_hop_cost, hierarchical_estimate,
    optimal_chunks, t_binomial, t_chunked_chain,
)
from .report import (
    format_bytes, format_fault_report, format_table, format_time,
    scaling_table, speedup_series,
)
from .utilization import (
    CategoryUtilization, cluster_utilization, utilization_report,
)

__all__ = [
    "Crossover", "SweepPoint", "backend_names", "crossover_report",
    "find_crossovers", "sweep", "time_backend",
    "HopCost", "crossover_P", "fit_hop_cost", "hierarchical_estimate",
    "optimal_chunks",
    "t_binomial", "t_chunked_chain",
    "format_bytes", "format_fault_report", "format_table", "format_time",
    "scaling_table",
    "speedup_series",
    "CategoryUtilization", "cluster_utilization", "utilization_report",
]
