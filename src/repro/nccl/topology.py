"""Topology construction for the simulated NCCL backend.

Two communication graphs, mirroring what real NCCL builds at init time:

Rings
-----
:func:`ring_order` arranges the communicator's ranks so that each
node's GPUs form one contiguous segment (the intra-node PCIe chain) and
the segments are concatenated in node order.  Consequently every node
has exactly one incoming and one outgoing *inter-node* edge per ring
direction — the property that makes the ring bandwidth-optimal on
dense-GPU nodes, where a naive rank-order ring could cross the NIC up
to ``gpus_per_node`` times.  :func:`build_rings` returns the two
directed rings (forward and reverse) NCCL would drive concurrently.

Double binary trees
-------------------
:func:`double_binary_trees` builds the Sanders/Speck/Träff two-tree
structure NCCL uses for the latency-bound regime: tree 0 is the
in-order balanced binary tree over ranks (rank 0 at the top), tree 1 is
its shift-by-one (odd P) or mirror image (even P).  Every non-root rank
is a leaf in one tree and an interior node in the other, the two edge
sets are disjoint, and both depths are at most ⌈log2 P⌉ + 1 — so the
two half-payloads flow through disjoint links at log-depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Ring", "Tree", "ring_order", "build_rings",
           "double_binary_trees", "inter_node_hops"]


# -- rings --------------------------------------------------------------------

@dataclass(frozen=True)
class Ring:
    """A directed ring: ``order[i]`` sends to ``order[(i + 1) % P]``."""

    order: Tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.order)

    def position(self, rank: int) -> int:
        return self.order.index(rank)

    def next_of(self, rank: int) -> int:
        return self.order[(self.position(rank) + 1) % self.size]

    def prev_of(self, rank: int) -> int:
        return self.order[(self.position(rank) - 1) % self.size]

    def reversed(self) -> "Ring":
        return Ring(tuple(reversed(self.order)))


def ring_order(node_of: Sequence[int]) -> List[int]:
    """Topology-aware ring order for ranks living on ``node_of[rank]``.

    Ranks are grouped by node (nodes in order of first appearance,
    ranks within a node keeping their communicator order — the chain
    the node's PCIe tree naturally serializes into).  The result is a
    permutation of ``range(len(node_of))`` in which each node occupies
    one contiguous segment.
    """
    groups: Dict[int, List[int]] = {}
    for rank, node in enumerate(node_of):
        groups.setdefault(node, []).append(rank)
    order: List[int] = []
    for node in groups:  # insertion order == first appearance
        order.extend(groups[node])
    return order


def build_rings(gpus) -> Tuple[Ring, Ring]:
    """The two directed rings over a communicator's GPUs (forward and
    reverse), node-contiguous per :func:`ring_order`."""
    fwd = Ring(tuple(ring_order([g.node_index for g in gpus])))
    return fwd, fwd.reversed()


def inter_node_hops(ring: Ring, node_of: Sequence[int]) -> int:
    """Number of ring edges that cross a node boundary."""
    P = ring.size
    return sum(1 for i in range(P)
               if node_of[ring.order[i]] != node_of[ring.order[(i + 1) % P]])


# -- double binary trees ------------------------------------------------------

@dataclass(frozen=True)
class Tree:
    """A rooted tree over ranks ``0..P-1``.

    ``parent[r]`` is ``-1`` for the root; ``children[r]`` lists child
    ranks in descending-subtree order (the order reductions arrive).
    """

    root: int
    parent: Tuple[int, ...]
    children: Tuple[Tuple[int, ...], ...]

    @property
    def size(self) -> int:
        return len(self.parent)

    def depth_of(self, rank: int) -> int:
        d = 0
        while self.parent[rank] != -1:
            rank = self.parent[rank]
            d += 1
        return d

    def depth(self) -> int:
        return max(self.depth_of(r) for r in range(self.size))

    def edges(self) -> set:
        """Directed edge set ``{(parent, child), ...}``.

        Directedness is the physically meaningful notion here: every
        simulated link is simplex (``pcie_up``/``pcie_down``, NIC
        tx/rx), so two trees sharing an undirected pair in *opposite*
        directions contend nowhere.
        """
        return {(p, r) for r, p in enumerate(self.parent) if p != -1}


def _btree(P: int, rank: int) -> Tuple[int, List[int]]:
    """(parent, children) of ``rank`` in the in-order balanced binary
    tree over ``0..P-1`` (rank 0 at the top) — NCCL's ``ncclGetBtree``.

    Node positions follow the bit pattern of the rank: the lowest set
    bit gives the height, parent/children differ from the rank by
    powers of two around it.
    """
    if rank == 0:
        # bit = smallest power of two >= P; the root's only child is
        # the in-order root of ranks 1..P-1.
        bit = 1
        while bit < P:
            bit <<= 1
        child = bit >> 1
        return -1, ([child] if P > 1 else [])
    bit = 1
    while not rank & bit:
        bit <<= 1
    up = (rank ^ bit) | (bit << 1)
    if up >= P:
        up = rank ^ bit
    lowbit = bit >> 1
    down0 = rank - lowbit if lowbit else -1
    while lowbit and rank + lowbit >= P:
        lowbit >>= 1
    down1 = rank + lowbit if lowbit else -1
    return up, [d for d in (down0, down1) if d != -1]


def _assemble(P: int, relabel) -> Tree:
    """Build a :class:`Tree` from ``_btree`` under a rank relabeling:
    tree rank ``v`` plays the role of actual rank ``relabel(v)``."""
    parent = [-1] * P
    children: List[Tuple[int, ...]] = [()] * P
    root = 0
    for v in range(P):
        up, down = _btree(P, v)
        r = relabel(v)
        parent[r] = relabel(up) if up != -1 else -1
        children[r] = tuple(relabel(d) for d in down)
        if up == -1:
            root = r
    return Tree(root, tuple(parent), tuple(children))


def double_binary_trees(P: int) -> Tuple[Tree, Tree]:
    """NCCL's complementary tree pair (``ncclGetDtree``).

    Tree 0 is the plain in-order btree.  Tree 1 relabels it: shifted by
    one position for odd P, mirrored for even P (and for P = 3, where
    the shift self-collides on the 0→2 edge).  Every non-root rank that
    is interior in one tree is a leaf in the other, the two *directed*
    edge sets are disjoint, and both depths are ≤ ⌈log2 P⌉ + 1.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    t0 = _assemble(P, lambda v: v)
    if P % 2 and P != 3:
        t1 = _assemble(P, lambda v: (v + 1) % P)
    else:
        t1 = _assemble(P, lambda v: P - 1 - v)
    return t0, t1
