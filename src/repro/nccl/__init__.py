"""Simulated NCCL backend: topology-aware rings + double binary trees.

The fourth runtime backend next to the three MPI profiles — the
framework-level contender of the "MPI or NCCL?" follow-up study.  It is
*not* a separate runtime: ``get_profile("nccl")`` returns a
:class:`~repro.mpi.profiles.NCCLProfile` that rides the same
:class:`~repro.mpi.runtime.MPIRuntime` / transport / scheduler
substrate, and the collectives here are SPMD generator programs over
the same :class:`~repro.mpi.communicator.RankContext` pt2pt API, so
fault plans, the watchdog, the causal profiler, and telemetry all work
unchanged.

Layout:

- :mod:`repro.nccl.topology` — ring construction (node-contiguous, one
  inter-node hop per direction) and the Sanders/Speck/Träff double
  binary trees;
- :mod:`repro.nccl.collectives` — chunk-pipelined ring
  allreduce/broadcast/reduce-scatter/allgather plus double-binary-tree
  broadcast/allreduce, with size-based ring↔tree selection.
"""

from ..mpi.profiles import NCCL, NCCLProfile
from .collectives import (
    nccl_allgather, nccl_allreduce, nccl_allreduce_ring,
    nccl_allreduce_tree, nccl_bcast, nccl_bcast_ring, nccl_bcast_tree,
    nccl_reduce_scatter, rings_of,
)
from .topology import (
    Ring, Tree, build_rings, double_binary_trees, inter_node_hops,
    ring_order,
)

__all__ = [
    "NCCL", "NCCLProfile",
    "Ring", "Tree", "build_rings", "double_binary_trees",
    "inter_node_hops", "ring_order", "rings_of",
    "nccl_allreduce", "nccl_allreduce_ring", "nccl_allreduce_tree",
    "nccl_bcast", "nccl_bcast_ring", "nccl_bcast_tree",
    "nccl_reduce_scatter", "nccl_allgather",
]
