"""NCCL-style collectives over the simulated MPI substrate.

Every algorithm here is built purely on the :class:`RankContext` pt2pt
API (``isend``/``irecv``/``recv``) plus the shared collective helpers
(:func:`coll_tags`, :func:`apply_reduction`), so the whole existing
substrate applies unchanged: the transport picks IPC/GDR/staged paths
per the profile, fault plans and the integrity layer see every hop, the
watchdog's progress probes cover stalls, spans carry ``op=nccl.*`` tags
for the causal profiler, and telemetry attributes bytes per collective
through the tag-block ledger.

Two algorithm families, selected by payload size (``tree_threshold`` on
:class:`~repro.mpi.profiles.NCCLProfile`, exposed as the
``nccl.tree_threshold`` cvar):

- *rings* (bandwidth-optimal): reduce-scatter/allgather rotations over
  the topology-aware ring of :func:`~repro.nccl.topology.build_rings`,
  every step cut into ``ring_chunk`` chunks whose receives are posted
  up front so the reduction of chunk k overlaps the transfer of k+1;
- *double binary trees* (latency-optimal): the two complementary trees
  of :func:`~repro.nccl.topology.double_binary_trees`, each carrying
  half the payload, chunk-interleaved so both halves are in flight at
  once.

Byte-exactness: reductions use the same :func:`apply_reduction` payload
arithmetic as the MPI collectives, and conformance payloads are
integer-valued, so any summation order reproduces the NumPy reference
bit-for-bit (see ``repro.check.reference``).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cuda import DeviceBuffer
from ..mpi.collectives.base import (
    apply_reduction, coll_tags, local_accumulate_copy, traced,
    validate_knob,
)
from ..mpi.collectives.gather_scatter import block_partition
from ..mpi.communicator import RankContext
from ..mpi.profiles import NCCL
from ..sim import Event
from .topology import Ring, Tree, build_rings, double_binary_trees

__all__ = ["nccl_allreduce", "nccl_allreduce_ring", "nccl_allreduce_tree",
           "nccl_bcast", "nccl_bcast_ring", "nccl_bcast_tree",
           "nccl_reduce_scatter", "nccl_allgather", "rings_of"]

#: Tree pairs are a pure function of P; cache across communicators.
_TREE_CACHE: Dict[int, Tuple[Tree, Tree]] = {}


def rings_of(comm) -> Tuple[Ring, Ring]:
    """The communicator's (forward, reverse) topology-aware rings,
    built once and cached on the communicator."""
    rings = getattr(comm, "_nccl_rings", None)
    if rings is None:
        rings = build_rings(comm.gpus)
        comm._nccl_rings = rings
    return rings


def trees_of(P: int) -> Tuple[Tree, Tree]:
    trees = _TREE_CACHE.get(P)
    if trees is None:
        trees = _TREE_CACHE[P] = double_binary_trees(P)
    return trees


def _ring_chunk(ctx: RankContext, chunk_bytes: Optional[int]) -> int:
    if chunk_bytes is None:
        chunk = getattr(ctx.profile, "ring_chunk", NCCL.ring_chunk)
        return max(4, chunk - chunk % 4)
    # An explicit knob must be usable as passed: 4-byte element
    # alignment is the hard floor (same bound as the nccl.ring_chunk
    # cvar), and a degenerate value raises instead of being clamped.
    validate_knob(chunk_bytes, "chunk_bytes", minimum=4)
    return chunk_bytes - chunk_bytes % 4


def _chunks(offset: int, nbytes: int, chunk: int) -> List[Tuple[int, int]]:
    """Cut a (offset, nbytes) byte range into chunk-sized pieces."""
    out = []
    while nbytes > 0:
        step = min(chunk, nbytes)
        out.append((offset, step))
        offset += step
        nbytes -= step
    return out


def _chunk_capacity(nbytes: int, P: int, chunk: int) -> int:
    """Max chunks any single partition block decomposes into (used to
    size tag reservations uniformly across ranks)."""
    longest = max((n for _, n in block_partition(nbytes, P)), default=0)
    return max(1, -(-longest // chunk))


def _meters(ctx: RankContext):
    """Registry-backed nccl counters (get-or-create; always-on like the
    transport metrics, read back as ``nccl.*`` PVARs)."""
    reg = ctx.sim.metrics
    hops = reg.counter(
        "nccl.ring.hops", "pt2pt hops performed by nccl ring collectives",
        "messages")
    path_bytes = reg.counter(
        "nccl.path.bytes",
        "payload bytes moved by the nccl backend per algorithm path",
        "bytes", labelnames=("path",))
    depth = reg.gauge(
        "nccl.tree.depth",
        "deepest double-binary tree driven by nccl tree collectives",
        "hops")
    return hops, path_bytes, depth


# -- ring family --------------------------------------------------------------

@traced("nccl.reduce_scatter.ring")
def nccl_reduce_scatter(ctx: RankContext, sendbuf: DeviceBuffer,
                        recvbuf: DeviceBuffer, *,
                        chunk_bytes: Optional[int] = None,
                        ) -> Generator[Event, Any, None]:
    """Ring reduce-scatter over the topology-aware ring.

    Blocks are indexed by *ring position*: after P-1 rotation steps the
    rank at position i holds the fully-reduced block ``(i + 1) % P`` of
    ``recvbuf`` (other blocks hold partial sums).  ``recvbuf`` must be
    full-size on every rank.
    """
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    C = _chunk_capacity(sendbuf.nbytes, P, chunk)
    tags = coll_tags(ctx, max(1, (P - 1) * C), "nccl.reduce_scatter")
    yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
    if P == 1:
        return
    yield from _ring_reduce_scatter(ctx, recvbuf, tags, 0, chunk, C)


@traced("nccl.allgather.ring")
def nccl_allgather(ctx: RankContext, buf: DeviceBuffer, *,
                   chunk_bytes: Optional[int] = None,
                   ) -> Generator[Event, Any, None]:
    """Ring allgather: rank r contributes block r of ``buf`` (rank
    indexing, as in :func:`allgather_ring`); circulation follows the
    topology-aware ring, so the traffic pattern — not the result —
    differs from the rank-order ring."""
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    C = _chunk_capacity(buf.nbytes, P, chunk)
    tags = coll_tags(ctx, max(1, (P - 1) * C), "nccl.allgather")
    if P == 1:
        return
    ring = rings_of(ctx.comm)[0]
    hops, path_bytes, _ = _meters(ctx)
    pos = ring.position(ctx.rank)
    right, left = ring.next_of(ctx.rank), ring.prev_of(ctx.rank)
    blocks = block_partition(buf.nbytes, P)
    for s in range(P - 1):
        # Blocks travel by owner rank; position i relays the block
        # contributed by the rank s positions behind it on the ring.
        soff, slen = blocks[ring.order[(pos - s) % P]]
        roff, rlen = blocks[ring.order[(pos - s - 1) % P]]
        sreqs = []
        for c, (off, n) in enumerate(_chunks(soff, slen, chunk)):
            sreqs.append(ctx.isend(right, buf, tag=tags.tag(s * C + c),
                                   offset=off, nbytes=n))
            hops.inc(1)
            path_bytes.inc(n, path="ring")
        rreqs = [ctx.irecv(left, buf, tag=tags.tag(s * C + c),
                           offset=off, nbytes=n)
                 for c, (off, n) in enumerate(_chunks(roff, rlen, chunk))]
        for req in rreqs:
            yield req.wait()
        for req in sreqs:
            yield req.wait()


def _ring_reduce_scatter(ctx: RankContext, recvbuf: DeviceBuffer, tags,
                         tag0: int, chunk: int, C: int,
                         ) -> Generator[Event, Any, None]:
    """Shared reduce-scatter rotation (position-indexed blocks); tags
    ``tag0 .. tag0 + (P-1)*C`` of ``tags``."""
    P = ctx.size
    ring = rings_of(ctx.comm)[0]
    hops, path_bytes, _ = _meters(ctx)
    pos = ring.position(ctx.rank)
    right, left = ring.next_of(ctx.rank), ring.prev_of(ctx.rank)
    blocks = block_partition(recvbuf.nbytes, P)
    scratch = ctx.scratch_like(recvbuf, "nccl.ring.rx")
    try:
        for s in range(P - 1):
            soff, slen = blocks[(pos - s) % P]
            roff, rlen = blocks[(pos - s - 1) % P]
            sreqs = []
            for c, (off, n) in enumerate(_chunks(soff, slen, chunk)):
                sreqs.append(ctx.isend(
                    right, recvbuf, tag=tags.tag(tag0 + s * C + c),
                    offset=off, nbytes=n))
                hops.inc(1)
                path_bytes.inc(n, path="ring")
            # Post every chunk receive up front: chunk k+1 is on the
            # wire while chunk k's reduction kernel runs.
            rchunks = _chunks(roff, rlen, chunk)
            rreqs = [ctx.irecv(left, scratch,
                               tag=tags.tag(tag0 + s * C + c),
                               offset=off, nbytes=n)
                     for c, (off, n) in enumerate(rchunks)]
            for req, (off, n) in zip(rreqs, rchunks):
                yield req.wait()
                yield from apply_reduction(ctx, recvbuf, scratch, n,
                                           offset=off)
            for req in sreqs:
                yield req.wait()
    finally:
        scratch.free()


@traced("nccl.allreduce.ring")
def nccl_allreduce_ring(ctx: RankContext, sendbuf: DeviceBuffer,
                        recvbuf: DeviceBuffer, *,
                        chunk_bytes: Optional[int] = None,
                        ) -> Generator[Event, Any, None]:
    """Ring allreduce: chunked reduce-scatter + allgather rotations
    around the topology-aware ring (2(P-1) steps, each moving 1/P of
    the payload — bandwidth-optimal)."""
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    C = _chunk_capacity(sendbuf.nbytes, P, chunk)
    tags = coll_tags(ctx, max(1, 2 * (P - 1) * C), "nccl.allreduce.ring")
    yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
    if P == 1:
        return
    yield from _ring_reduce_scatter(ctx, recvbuf, tags, 0, chunk, C)

    ring = rings_of(ctx.comm)[0]
    hops, path_bytes, _ = _meters(ctx)
    pos = ring.position(ctx.rank)
    right, left = ring.next_of(ctx.rank), ring.prev_of(ctx.rank)
    blocks = block_partition(recvbuf.nbytes, P)
    base = (P - 1) * C
    for s in range(P - 1):
        soff, slen = blocks[(pos + 1 - s) % P]
        roff, rlen = blocks[(pos - s) % P]
        sreqs = []
        for c, (off, n) in enumerate(_chunks(soff, slen, chunk)):
            sreqs.append(ctx.isend(
                right, recvbuf, tag=tags.tag(base + s * C + c),
                offset=off, nbytes=n))
            hops.inc(1)
            path_bytes.inc(n, path="ring")
        rreqs = [ctx.irecv(left, recvbuf,
                           tag=tags.tag(base + s * C + c),
                           offset=off, nbytes=n)
                 for c, (off, n) in enumerate(_chunks(roff, rlen, chunk))]
        for req in rreqs:
            yield req.wait()
        for req in sreqs:
            yield req.wait()


@traced("nccl.bcast.ring")
def nccl_bcast_ring(ctx: RankContext, buf: DeviceBuffer, root: int = 0, *,
                    chunk_bytes: Optional[int] = None,
                    ) -> Generator[Event, Any, None]:
    """Pipelined ring broadcast: the payload flows from the root around
    the topology-aware ring in ``ring_chunk`` chunks; every rank
    forwards chunk k while receiving chunk k+1 (NCCL's classic
    broadcast — latency P·α but full-bandwidth pipe once primed)."""
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    chunks = _chunks(0, buf.nbytes, chunk)
    tags = coll_tags(ctx, max(1, len(chunks)), "nccl.bcast.ring")
    if P == 1 or not chunks:
        return
    ring = rings_of(ctx.comm)[0]
    hops, path_bytes, _ = _meters(ctx)
    right, left = ring.next_of(ctx.rank), ring.prev_of(ctx.rank)
    sreqs = []
    if ctx.rank == root:
        for c, (off, n) in enumerate(chunks):
            sreqs.append(ctx.isend(right, buf, tag=tags.tag(c),
                                   offset=off, nbytes=n))
            hops.inc(1)
            path_bytes.inc(n, path="ring")
    else:
        rreqs = [ctx.irecv(left, buf, tag=tags.tag(c), offset=off, nbytes=n)
                 for c, (off, n) in enumerate(chunks)]
        for c, (req, (off, n)) in enumerate(zip(rreqs, chunks)):
            yield req.wait()
            if right != root:
                sreqs.append(ctx.isend(right, buf, tag=tags.tag(c),
                                       offset=off, nbytes=n))
                hops.inc(1)
                path_bytes.inc(n, path="ring")
    for req in sreqs:
        yield req.wait()


# -- double-binary-tree family ------------------------------------------------

def _tree_sources(trees: Tuple[Tree, Tree]) -> Tuple[int, int]:
    return trees[0].root, trees[1].root


@traced("nccl.bcast.tree")
def nccl_bcast_tree(ctx: RankContext, buf: DeviceBuffer, root: int = 0, *,
                    chunk_bytes: Optional[int] = None,
                    ) -> Generator[Event, Any, None]:
    """Double-binary-tree broadcast: each tree carries half the payload
    down log2-P levels; trees are built over virtual ranks rotated so
    the broadcast root is tree 0's root, and the root feeds half 1 to
    tree 1's root first (one extra hop)."""
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    halves = block_partition(buf.nbytes, 2)
    C = _chunk_capacity(buf.nbytes, 2, chunk)
    # Tag layout: tree edges use t*C + c; the root -> tree-1-root feed
    # uses 2*C + c.
    tags = coll_tags(ctx, max(1, 3 * C), "nccl.bcast.tree")
    if P == 1:
        return
    trees = trees_of(P)
    _, path_bytes, depth = _meters(ctx)
    depth.set_max(max(t.depth() for t in trees))
    vr = (ctx.rank - root) % P

    def actual(v: int) -> int:
        return (v + root) % P

    feed_src = _tree_sources(trees)[1]  # tree 1's root (virtual rank)
    half_chunks = [_chunks(off, n, chunk) for off, n in halves]

    # Feed half 1 from the broadcast root to tree 1's root.
    feed_reqs = []
    if feed_src != 0 and half_chunks[1]:
        if vr == 0:
            for c, (off, n) in enumerate(half_chunks[1]):
                feed_reqs.append(ctx.isend(actual(feed_src), buf,
                                           tag=tags.tag(2 * C + c),
                                           offset=off, nbytes=n))
                path_bytes.inc(n, path="tree")
        elif vr == feed_src:
            rreqs = [ctx.irecv(actual(0), buf, tag=tags.tag(2 * C + c),
                               offset=off, nbytes=n)
                     for c, (off, n) in enumerate(half_chunks[1])]
            for req in rreqs:
                yield req.wait()

    # Down each tree, chunk-interleaved so both halves are in flight.
    rx: List[List] = [[], []]
    for t, tree in enumerate(trees):
        source = 0 if t == 0 else feed_src
        if vr != source and tree.parent[vr] != -1 and half_chunks[t]:
            rx[t] = [ctx.irecv(actual(tree.parent[vr]), buf,
                               tag=tags.tag(t * C + c), offset=off,
                               nbytes=n)
                     for c, (off, n) in enumerate(half_chunks[t])]
    sreqs = []
    for c in range(C):
        for t, tree in enumerate(trees):
            if c >= len(half_chunks[t]):
                continue
            source = 0 if t == 0 else feed_src
            if vr != source:
                yield rx[t][c].wait()
            off, n = half_chunks[t][c]
            for child in tree.children[vr]:
                sreqs.append(ctx.isend(actual(child), buf,
                                       tag=tags.tag(t * C + c),
                                       offset=off, nbytes=n))
                path_bytes.inc(n, path="tree")
    for req in feed_reqs + sreqs:
        yield req.wait()


@traced("nccl.allreduce.tree")
def nccl_allreduce_tree(ctx: RankContext, sendbuf: DeviceBuffer,
                        recvbuf: DeviceBuffer, *,
                        chunk_bytes: Optional[int] = None,
                        ) -> Generator[Event, Any, None]:
    """Double-binary-tree allreduce: reduce each half up its tree, then
    broadcast the reduced halves back down — 2·log2 P latency with both
    halves on disjoint directed edges."""
    P = ctx.size
    chunk = _ring_chunk(ctx, chunk_bytes)
    halves = block_partition(sendbuf.nbytes, 2)
    C = _chunk_capacity(sendbuf.nbytes, 2, chunk)
    # Tag layout: (phase * 2 + tree) * C + chunk; phase 0 = reduce-up,
    # phase 1 = bcast-down.
    tags = coll_tags(ctx, max(1, 4 * C), "nccl.allreduce.tree")
    yield from local_accumulate_copy(ctx, recvbuf, sendbuf)
    if P == 1:
        return
    trees = trees_of(P)
    _, path_bytes, depth = _meters(ctx)
    depth.set_max(max(t.depth() for t in trees))
    me = ctx.rank
    half_chunks = [_chunks(off, n, chunk) for off, n in halves]

    def tag_of(phase: int, t: int, c: int) -> int:
        return tags.tag((phase * 2 + t) * C + c)

    # Reduce-up: children's chunks land in per-child scratches (posted
    # up front), get folded into recvbuf in child order, then forwarded.
    scratches = [ctx.scratch_like(recvbuf, f"nccl.tree.rx{i}")
                 for i in range(max((len(t.children[me]) for t in trees),
                                    default=0))]
    try:
        rx: Dict[Tuple[int, int], List] = {}
        for t, tree in enumerate(trees):
            for i, child in enumerate(tree.children[me]):
                rx[t, i] = [ctx.irecv(child, scratches[i],
                                      tag=tag_of(0, t, c), offset=off,
                                      nbytes=n)
                            for c, (off, n) in enumerate(half_chunks[t])]
        up: List = []
        for c in range(C):
            for t, tree in enumerate(trees):
                if c >= len(half_chunks[t]):
                    continue
                off, n = half_chunks[t][c]
                for i in range(len(tree.children[me])):
                    yield rx[t, i][c].wait()
                    yield from apply_reduction(ctx, recvbuf, scratches[i],
                                               n, offset=off)
                if tree.parent[me] != -1:
                    up.append(ctx.isend(tree.parent[me], recvbuf,
                                        tag=tag_of(0, t, c), offset=off,
                                        nbytes=n))
                    path_bytes.inc(n, path="tree")
        for req in up:
            yield req.wait()
    finally:
        for s in scratches:
            s.free()

    # Bcast-down: the tree roots now hold the fully-reduced halves.
    rx2: List[List] = [[], []]
    for t, tree in enumerate(trees):
        if tree.parent[me] != -1 and half_chunks[t]:
            rx2[t] = [ctx.irecv(tree.parent[me], recvbuf,
                                tag=tag_of(1, t, c), offset=off, nbytes=n)
                      for c, (off, n) in enumerate(half_chunks[t])]
    down: List = []
    for c in range(C):
        for t, tree in enumerate(trees):
            if c >= len(half_chunks[t]):
                continue
            if tree.parent[me] != -1:
                yield rx2[t][c].wait()
            off, n = half_chunks[t][c]
            for child in tree.children[me]:
                down.append(ctx.isend(child, recvbuf, tag=tag_of(1, t, c),
                                      offset=off, nbytes=n))
                path_bytes.inc(n, path="tree")
    for req in down:
        yield req.wait()


# -- size-based selection -----------------------------------------------------

def _tree_threshold(ctx: RankContext) -> int:
    return getattr(ctx.profile, "tree_threshold", NCCL.tree_threshold)


def _table_knobs(ctx: RankContext, collective: str,
                 nbytes: int) -> Optional[Dict[str, Any]]:
    """Committed tuning-table consult for the size-based dispatchers.

    Applies only to *stock* profiles: a hand-tuned profile (any CVAR
    write goes through ``derive`` and breaks registry equality) always
    wins over the offline table.  Imported lazily — ``repro.tune.tables``
    is dependency-light, so there is no cycle, but the common no-table
    case should not even pay the import at module load.
    """
    from ..mpi.profiles import is_stock_profile
    from ..tune import tables
    if not tables.enabled() or not is_stock_profile(ctx.profile):
        return None
    return tables.lookup(ctx.profile.name, collective,
                         tables.comm_topology(ctx.comm), ctx.size, nbytes)


def nccl_allreduce(ctx: RankContext, sendbuf: DeviceBuffer,
                   recvbuf: DeviceBuffer, *,
                   chunk_bytes: Optional[int] = None,
                   algorithm: Optional[str] = None,
                   ) -> Generator[Event, Any, None]:
    """NCCL allreduce with size-based ring/tree selection: payloads at
    or below ``tree_threshold`` take the latency-optimal trees, larger
    ones the bandwidth-optimal ring.

    When neither ``algorithm`` nor ``chunk_bytes`` is given and the
    profile is stock, a committed tuning table (``repro tune``) may
    override the threshold decision for this (topology, P, size) point.
    """
    if algorithm is None and chunk_bytes is None:
        knobs = _table_knobs(ctx, "allreduce", sendbuf.nbytes)
        if knobs is not None:
            algorithm = knobs.get("algorithm")
            chunk_bytes = knobs.get("chunk_bytes")
    if algorithm is None:
        algorithm = ("tree" if sendbuf.nbytes <= _tree_threshold(ctx)
                     else "ring")
    if algorithm == "ring":
        yield from nccl_allreduce_ring(ctx, sendbuf, recvbuf,
                                       chunk_bytes=chunk_bytes)
    elif algorithm == "tree":
        yield from nccl_allreduce_tree(ctx, sendbuf, recvbuf,
                                       chunk_bytes=chunk_bytes)
    else:
        raise KeyError(f"unknown nccl allreduce algorithm {algorithm!r}")


def nccl_bcast(ctx: RankContext, buf: DeviceBuffer, root: int = 0, *,
               chunk_bytes: Optional[int] = None,
               algorithm: Optional[str] = None,
               ) -> Generator[Event, Any, None]:
    """NCCL broadcast with size-based ring/tree selection (tuning-table
    aware, same contract as :func:`nccl_allreduce`)."""
    if algorithm is None and chunk_bytes is None:
        knobs = _table_knobs(ctx, "bcast", buf.nbytes)
        if knobs is not None:
            algorithm = knobs.get("algorithm")
            chunk_bytes = knobs.get("chunk_bytes")
    if algorithm is None:
        algorithm = ("tree" if buf.nbytes <= _tree_threshold(ctx)
                     else "ring")
    if algorithm == "ring":
        yield from nccl_bcast_ring(ctx, buf, root, chunk_bytes=chunk_bytes)
    elif algorithm == "tree":
        yield from nccl_bcast_tree(ctx, buf, root, chunk_bytes=chunk_bytes)
    else:
        raise KeyError(f"unknown nccl bcast algorithm {algorithm!r}")
