"""Committed MVAPICH-style tuning tables and their dispatch-time lookup.

The real MVAPICH2 ships per-system tables mapping (message size, process
count, topology) to the fastest collective configuration; the S-Caffe
paper's "HR (Tuned)" design *"builds on top of the tuning infrastructure
in MVAPICH2"* (Section 6.5).  This module is that infrastructure for the
simulated stack: JSON tables committed under
``src/repro/mpi/tuning_tables/``, produced by the closed-loop search in
:mod:`repro.tune.search` (``repro tune``), and consulted at dispatch
time by :func:`~repro.mpi.collectives.tuning.tuned_reduce` and the
:func:`~repro.nccl.collectives.nccl_allreduce` /
:func:`~repro.nccl.collectives.nccl_bcast` selectors.

Contract (see docs/TUNING.md):

- A table is keyed by ``(backend, collective)`` — one file each — and
  its entries by ``(topology, P, [min_nbytes, max_nbytes))``.  The
  topology key describes the communicator's GPU placement (GPUs per
  node in node order, e.g. ``"16+16"``), not just the cluster kind, so
  a table tuned for one placement never silently applies to another.
- An entry is committed only when the searched configuration beat the
  profile-default dispatch *strictly* at the swept point; everything
  not covered by an entry falls back to the profile defaults.
- Tables apply to *stock* profiles only.  The moment a knob is
  hand-tuned (a CVAR write, ``profile.derive``), the profile no longer
  compares equal to its registered original and dispatch ignores the
  table — an explicit MPI_T write always wins over offline tuning.
- Lookup is pure and deterministic: same-seed runs with tables are
  event-for-event identical, and the tables themselves regenerate
  byte-identically (``repro tune --quick --check`` gates this in CI).

This module deliberately imports nothing from ``repro.mpi`` /
``repro.nccl`` so the collective layers can import it without cycles.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TunedTable", "TABLE_VERSION", "tables_dir", "table_path",
           "table_filename", "load_table", "lookup", "topology_key",
           "comm_topology", "set_enabled", "enabled", "tables_disabled",
           "invalidate_cache"]

#: Bump when the on-disk entry schema changes; readers skip newer files.
TABLE_VERSION = 1

#: Committed table location (inside the installed package).
_DEFAULT_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "mpi", "tuning_tables")

_enabled = True
#: (backend, collective) -> TunedTable | None (None caches a miss).
_cache: Dict[Tuple[str, str], Optional["TunedTable"]] = {}


def tables_dir() -> str:
    """Directory holding the committed tables."""
    return _DEFAULT_DIR


def table_filename(backend: str, collective: str) -> str:
    return f"{backend}.{collective}.json"


def table_path(backend: str, collective: str,
               dirname: Optional[str] = None) -> str:
    return os.path.join(dirname or _DEFAULT_DIR,
                        table_filename(backend, collective))


# -- topology keys -------------------------------------------------------------

def topology_key(gpus: Iterable[Any]) -> str:
    """Placement signature of a GPU set: GPUs per node, node order of
    first appearance, joined with ``+`` (``"8"``, ``"16+16"``,
    ``"2+2+2+2"``)."""
    counts: List[int] = []
    index: Dict[int, int] = {}
    for gpu in gpus:
        node = gpu.node_index
        if node not in index:
            index[node] = len(counts)
            counts.append(0)
        counts[index[node]] += 1
    return "+".join(str(c) for c in counts)


def comm_topology(comm) -> str:
    """The communicator's topology key, computed once and cached on the
    communicator object (same idiom as the HR plan / NCCL ring caches)."""
    key = getattr(comm, "_tune_topology", None)
    if key is None:
        key = comm._tune_topology = topology_key(comm.gpus)
    return key


# -- the table -----------------------------------------------------------------

class TunedTable:
    """One committed table: every winning entry for one
    (backend, collective) pair across topologies and process counts."""

    def __init__(self, backend: str, collective: str, objective: str,
                 entries: Iterable[Dict[str, Any]]):
        self.backend = backend
        self.collective = collective
        self.objective = objective
        #: Entry dicts: topology, P, min_nbytes, max_nbytes (None = open
        #: upper end), knobs, latency, default_latency.
        self.entries: List[Dict[str, Any]] = sorted(
            entries, key=lambda e: (e["topology"], e["P"], e["min_nbytes"]))
        #: (topology, P) -> entries in ascending min_nbytes order.
        self._index: Dict[Tuple[str, int], List[Dict[str, Any]]] = {}
        for e in self.entries:
            self._index.setdefault((e["topology"], e["P"]), []).append(e)

    def lookup(self, topology: str, P: int,
               nbytes: int) -> Optional[Dict[str, Any]]:
        """Winning knobs for this point, or None (= use the profile
        defaults)."""
        for e in self._index.get((topology, P), ()):
            if e["min_nbytes"] <= nbytes and (
                    e["max_nbytes"] is None or nbytes < e["max_nbytes"]):
                return e["knobs"]
        return None

    # -- (de)serialization -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": TABLE_VERSION,
            "backend": self.backend,
            "collective": self.collective,
            "objective": self.objective,
            "entries": self.entries,
        }

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, fixed indent, trailing newline —
        the form the ``--check`` regeneration gate byte-compares."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TunedTable":
        if payload.get("version") != TABLE_VERSION:
            raise ValueError(
                f"tuning table version {payload.get('version')!r} != "
                f"supported {TABLE_VERSION}")
        return cls(payload["backend"], payload["collective"],
                   payload.get("objective", "latency"), payload["entries"])

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TunedTable {self.backend}.{self.collective} "
                f"{len(self.entries)} entries>")


# -- loading and dispatch-time lookup ------------------------------------------

def load_table(backend: str, collective: str,
               dirname: Optional[str] = None) -> Optional[TunedTable]:
    """Load a committed table; None when absent or unreadable (a corrupt
    or future-versioned file must not take the runtime down — dispatch
    falls back to profile defaults)."""
    path = table_path(backend, collective, dirname)
    try:
        with open(path) as fh:
            return TunedTable.from_payload(json.load(fh))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def lookup(backend: str, collective: str, topology: str, P: int,
           nbytes: int) -> Optional[Dict[str, Any]]:
    """Dispatch-time consult: winning knobs for the point, or None.

    Committed tables are parsed once per (backend, collective) and
    cached for the life of the process.
    """
    if not _enabled:
        return None
    key = (backend, collective)
    if key not in _cache:
        _cache[key] = load_table(backend, collective)
    table = _cache[key]
    if table is None:
        return None
    return table.lookup(topology, P, nbytes)


# -- enable/disable (benchmarks compare tuned vs default) ----------------------

def set_enabled(flag: bool) -> None:
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


@contextmanager
def tables_disabled():
    """Force profile-default dispatch inside the block
    (``bench_tuned_vs_default`` times the fallback this way)."""
    global _enabled
    prev, _enabled = _enabled, False
    try:
        yield
    finally:
        _enabled = prev


def invalidate_cache() -> None:
    """Drop parsed tables (tests rewrite table files in tmp dirs)."""
    _cache.clear()
