"""``repro.tune``: the closed-loop CVAR auto-tuner (ROADMAP item 1).

Two halves:

- :mod:`~repro.tune.tables` — committed MVAPICH-style tuning tables
  keyed by (message size, P, topology) and their dispatch-time lookup.
  Dependency-light, imported by the collective dispatchers.
- :mod:`~repro.tune.search` — the search driver (``repro tune``): grid
  + hill-climb over the validated CVAR space, pruned by the transport's
  closed-form estimates and the causal profiler's frozen-slack what-if
  projection, measuring survivors with full simulations.

Only ``tables`` is imported eagerly; ``search`` pulls in the whole
runtime stack and loads lazily at its call sites.
"""

from . import tables
from .tables import (
    TunedTable, comm_topology, load_table, lookup, tables_dir,
    tables_disabled, topology_key,
)

__all__ = [
    "TunedTable", "comm_topology", "load_table", "lookup", "tables",
    "tables_dir", "tables_disabled", "topology_key",
]
