"""Closed-loop auto-tuner over the validated CVAR space.

The search driver behind ``repro tune`` (ROADMAP item 1).  For each
(backend, collective, topology, P, message size) point it

1. measures the *profile-default* dispatch once with the causal
   profiler attached, and uses the frozen-slack what-if projection to
   lower-bound what any communication tuning could achieve — points
   whose default already sits on that floor are skipped outright;
2. builds a candidate grid over the live CVAR space (``coll.chain_size``
   / ``coll.flat_reduce_algorithm`` / ``coll.pipeline_window`` and the
   chain chunk for the MPI reduce designs; ``nccl.tree_threshold`` /
   ``nccl.ring_chunk`` for the NCCL dispatchers) and prunes it with the
   transport's closed-form uncontended estimates
   (:meth:`~repro.mpi.transport.DeviceTransport.estimate`) before
   paying for full simulations;
3. measures the surviving candidates by applying their knobs through
   *real MPI_T CVAR round-trips* (``TelemetrySession.cvar_set`` +
   read-back) on a freshly bound runtime — the same validated path a
   tool would use, so a degenerate candidate fails loudly instead of
   being silently coerced;
4. hill-climbs the winner's chunk knob (double/halve while it
   improves), and
5. records an entry only when the winner beats the default strictly
   (``MIN_GAIN``); everything else keeps the profile-default dispatch.

Everything is seeded and grid-driven, so regenerating the tables is
byte-identical (``repro tune --quick --check`` gates this in CI).

The *quick* plan deliberately tunes communicator shapes (P = 12 on
cluster A, 6 x 2 on cluster B) disjoint from every point the committed
regression baselines exercise (P in {16, 32} on cluster A), so the
smoke tables can never silently shift a gate number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .tables import TunedTable, tables_disabled, topology_key

__all__ = ["PlanPoint", "quick_plan", "full_plan", "run_plan",
           "render_tables", "check_tables", "write_tables",
           "MIN_GAIN", "OBJECTIVES"]

KiB = 1 << 10
MiB = 1 << 20

#: A candidate must beat the profile default by at least this relative
#: margin to earn a table entry (absorbs float jitter in intentional
#: recalibrations; the runs themselves are deterministic).
MIN_GAIN = 0.01

#: Candidates surviving the closed-form prune, per point.
PRUNE_KEEP = 3

#: Hill-climb step budget per direction.
CLIMB_STEPS = 3

OBJECTIVES = ("latency", "critical-path")

#: Search seed — every measurement runs on its own Simulator(seed=0)
#: cluster, so table regeneration is a pure function of the grids.
SEED = 0


@dataclass(frozen=True)
class PlanPoint:
    """One tuning target: a (backend, collective) pair on a concrete
    communicator shape, swept over ``sizes``."""

    backend: str
    collective: str       # "reduce" | "allreduce" | "bcast"
    cluster: str          # make_cluster kind
    P: int
    sizes: Tuple[int, ...]

    def label(self) -> str:
        return (f"{self.backend}.{self.collective} "
                f"Cluster-{self.cluster} P={self.P}")


QUICK_SIZES = (64 * KiB, 1 * MiB, 16 * MiB)
FULL_SIZES = (64 * KiB, 1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB)


def quick_plan() -> Tuple[PlanPoint, ...]:
    return (
        PlanPoint("mv2gdr", "reduce", "A", 12, QUICK_SIZES),
        PlanPoint("mv2gdr", "reduce", "B", 12, QUICK_SIZES),
        PlanPoint("nccl", "allreduce", "A", 12, QUICK_SIZES),
        PlanPoint("nccl", "bcast", "A", 12, QUICK_SIZES),
    )


def full_plan() -> Tuple[PlanPoint, ...]:
    return quick_plan() + (
        PlanPoint("mv2gdr", "reduce", "A", 24, FULL_SIZES),
        PlanPoint("mv2gdr", "reduce", "B", 24, FULL_SIZES),
        PlanPoint("nccl", "allreduce", "A", 24, FULL_SIZES),
        PlanPoint("nccl", "bcast", "B", 12, FULL_SIZES),
    )


# -- measurement harness -------------------------------------------------------

def _bound_runtime(cluster_kind: str, backend: str):
    """Fresh deterministic (sim, cluster, runtime, telemetry session)
    with the CVAR namespace bound — every measurement is an independent
    same-seed universe."""
    from ..hardware import make_cluster
    from ..mpi import MPIRuntime
    from ..sim import Simulator
    from ..telemetry import TelemetrySession, bind_runtime

    sim = Simulator(seed=SEED)
    cluster = make_cluster(sim, cluster_kind)
    rt = MPIRuntime(cluster, backend)
    session = TelemetrySession()
    session.attach(sim)
    bind_runtime(session, rt)
    return sim, cluster, rt, session


def _apply_cvars(session, assignments: Dict[str, Any]) -> None:
    """The closed loop: write each knob through the validated MPI_T
    layer and read it back.  A mis-typed, out-of-domain, or
    backend-mis-targeted candidate dies here with a typed error instead
    of silently measuring something else."""
    for name, value in assignments.items():
        session.cvar_set(name, value)
        got = session.cvar_get(name)
        if got != value:
            raise RuntimeError(
                f"cvar round-trip failed: {name}={value!r} read back "
                f"as {got!r}")


def _run(sim, rt, P: int, program, objective: str) -> float:
    from ..prof import SpanRecorder, build_profile

    recorder = SpanRecorder(sim) if objective == "critical-path" else None
    comm = rt.world(P)
    with tables_disabled():
        finishes = rt.execute(comm, program)
    if recorder is not None:
        return build_profile(recorder).cp_length
    return max(finishes)


def _reduce_program(nbytes: int, design: Optional[str],
                    chunk_bytes: Optional[int]):
    """``design`` None = the profile-default ``tuned_reduce`` dispatch;
    "binomial"/"chain" run through the flat ``reduce()`` dispatcher so
    the ``coll.flat_reduce_algorithm`` cvar is load-bearing; HR labels
    run :func:`hierarchical_reduce` directly."""
    from ..cuda import DeviceBuffer
    from ..mpi.collectives import (
        hierarchical_reduce, reduce, tuned_reduce,
    )

    def program(ctx):
        sendbuf = DeviceBuffer(ctx.gpu, nbytes)
        recvbuf = DeviceBuffer(ctx.gpu, nbytes) if ctx.rank == 0 else None
        if design is None:
            yield from tuned_reduce(ctx, sendbuf, recvbuf, 0)
        elif design == "chain" and chunk_bytes is not None:
            yield from reduce(ctx, sendbuf, recvbuf, 0,
                              chunk_bytes=chunk_bytes)
        elif design in ("binomial", "chain"):
            yield from reduce(ctx, sendbuf, recvbuf, 0)
        else:
            yield from hierarchical_reduce(ctx, sendbuf, recvbuf, 0,
                                           config=design,
                                           chunk_bytes=chunk_bytes)
        return ctx.sim.now

    return program


def _nccl_program(collective: str, nbytes: int):
    """Algorithm selection always flows through the size-based
    dispatcher — candidates steer it via the ``nccl.tree_threshold``
    cvar, so the dispatcher itself is what gets measured."""
    from ..cuda import DeviceBuffer
    from ..nccl import nccl_allreduce, nccl_bcast

    def program(ctx):
        if collective == "allreduce":
            sendbuf = DeviceBuffer(ctx.gpu, nbytes)
            recvbuf = DeviceBuffer(ctx.gpu, nbytes)
            yield from nccl_allreduce(ctx, sendbuf, recvbuf)
        else:
            buf = DeviceBuffer(ctx.gpu, nbytes)
            yield from nccl_bcast(ctx, buf, 0)
        return ctx.sim.now

    return program


@dataclass(frozen=True)
class Candidate:
    """One grid point: the CVAR assignments applied during measurement
    plus the call-level knobs the dispatcher will replay from the
    committed table."""

    label: str
    cvars: Tuple[Tuple[str, Any], ...]
    knobs: Tuple[Tuple[str, Any], ...]

    def knobs_dict(self) -> Dict[str, Any]:
        return dict(self.knobs)


def _measure(point: PlanPoint, nbytes: int, cand: Optional[Candidate],
             objective: str) -> float:
    sim, _cluster, rt, session = _bound_runtime(point.cluster,
                                                point.backend)
    design = chunk = None
    if cand is not None:
        _apply_cvars(session, dict(cand.cvars))
        kd = cand.knobs_dict()
        design = kd.get("design")
        chunk = kd.get("chunk_bytes")
    if point.collective == "reduce":
        program = _reduce_program(nbytes, design, chunk)
    else:
        program = _nccl_program(point.collective, nbytes)
    return _run(sim, rt, point.P, program, objective)


def _default_with_floor(point: PlanPoint, nbytes: int,
                        objective: str) -> Tuple[float, float]:
    """Measure the profile-default dispatch with the causal profiler
    attached; return (default, frozen-slack floor).  The floor is the
    projected makespan with every communication class infinitely fast —
    no knob setting can beat it, so it prunes whole points."""
    from ..prof import SpanRecorder, build_profile

    sim, _cluster, rt, _session = _bound_runtime(point.cluster,
                                                 point.backend)
    recorder = SpanRecorder(sim)
    if point.collective == "reduce":
        program = _reduce_program(nbytes, None, None)
    else:
        program = _nccl_program(point.collective, nbytes)
    comm = rt.world(point.P)
    with tables_disabled():
        finishes = rt.execute(comm, program)
    report = build_profile(recorder)
    default = (report.cp_length if objective == "critical-path"
               else max(finishes))
    big = 1e9
    floor = report.what_if({"pcie": big, "ib": big, "host": big})
    return default, floor


# -- candidate grids + closed-form pruning ------------------------------------

def _reduce_candidates(point: PlanPoint, nbytes: int) -> List[Candidate]:
    chunk_grid = [c for c in (512 * KiB, 1 * MiB, 4 * MiB)
                  if c <= max(512 * KiB, nbytes)]
    ks = [k for k in (4, 8) if k < point.P]
    cands = [Candidate("binomial",
                       (("coll.flat_reduce_algorithm", "binomial"),), ())]
    for cb in chunk_grid:
        cands.append(Candidate(
            f"chain/c{cb >> 10}K",
            (("coll.flat_reduce_algorithm", "chain"),),
            (("design", "chain"), ("chunk_bytes", cb))))
        for k in ks:
            for fam in ("CB", "CC"):
                cands.append(Candidate(
                    f"{fam}-{k}/c{cb >> 10}K",
                    (("coll.chain_size", k),),
                    (("design", f"{fam}-{k}"), ("chunk_bytes", cb))))
    return cands


def _nccl_candidates(point: PlanPoint, nbytes: int) -> List[Candidate]:
    # tree_threshold steers the dispatcher: 0 forces the ring for any
    # payload, a huge value forces the trees.
    force_tree = 1 << 40
    cands = [Candidate("tree", (("nccl.tree_threshold", force_tree),),
                       (("algorithm", "tree"),))]
    for rc in (64 * KiB, 256 * KiB, 1 * MiB):
        if rc > max(64 * KiB, nbytes):
            continue
        cands.append(Candidate(
            f"ring/c{rc >> 10}K",
            (("nccl.tree_threshold", 0), ("nccl.ring_chunk", rc)),
            (("algorithm", "ring"), ("chunk_bytes", rc))))
    return cands


def _estimator(point: PlanPoint):
    """Closed-form cost model over the transport's uncontended
    estimates, used to rank candidates before any full simulation."""
    _sim, cluster, rt, _session = _bound_runtime(point.cluster,
                                                 point.backend)
    gpus = cluster.gpus[:point.P]
    est = rt.transport.estimate
    P = point.P

    def t_near(n: int) -> float:
        return est(gpus[0], gpus[1], n)

    def t_span(hop: int, n: int) -> float:
        return est(gpus[0], gpus[min(max(hop, 1), P - 1)], n)

    def cost(cand: Candidate, nbytes: int) -> float:
        kd = cand.knobs_dict()
        if point.collective == "reduce":
            design = kd.get("design", "binomial") \
                if cand.knobs else "binomial"
            cb = kd.get("chunk_bytes") or rt.profile.reduce_segment
            n = max(1, -(-nbytes // cb))
            if design == "binomial":
                return math.ceil(math.log2(P)) * t_span(P - 1, nbytes)
            if design == "chain":
                return (n + P - 2) * t_near(cb)
            fam, k = design.split("-")
            k = int(k)
            leaders = -(-P // k)
            lower = (n + k - 2) * t_near(cb)
            if fam == "CB":
                return lower + (math.ceil(math.log2(max(2, leaders)))
                                * t_span(k, nbytes))
            return lower + (n + leaders - 2) * t_span(k, cb)
        # nccl: ring moves 2(P-1) blocks of ~nbytes/P around neighbour
        # hops; trees move two pipelined halves down log2 P levels.
        algo = kd.get("algorithm")
        if algo == "tree":
            half = -(-nbytes // 2)
            return 2 * math.ceil(math.log2(P)) * t_span(P // 2, half)
        rc = kd.get("chunk_bytes") or 256 * KiB
        block = max(1, -(-nbytes // P))
        per_block = -(-block // rc) * t_near(min(block, rc))
        return 2 * (P - 1) * per_block

    return cost


def _prune(cands: List[Candidate], cost: Callable[[Candidate, int], float],
           nbytes: int, keep: int) -> List[Candidate]:
    ranked = sorted(cands, key=lambda c: (cost(c, nbytes), c.label))
    return ranked[:keep]


# -- hill-climb ----------------------------------------------------------------

def _with_chunk(cand: Candidate, chunk: int) -> Candidate:
    cvars = tuple((k, chunk if k == "nccl.ring_chunk" else v)
                  for k, v in cand.cvars)
    knobs = tuple((k, chunk if k == "chunk_bytes" else v)
                  for k, v in cand.knobs)
    return Candidate(f"{cand.label.split('/c')[0]}/c{chunk >> 10}K",
                     cvars, knobs)


def _climb(point: PlanPoint, nbytes: int, cand: Candidate, latency: float,
           objective: str,
           log: Callable[[str], None]) -> Tuple[Candidate, float]:
    """Double/halve the winner's chunk knob while it strictly improves."""
    kd = cand.knobs_dict()
    chunk = kd.get("chunk_bytes")
    if chunk is None:
        return cand, latency
    lo = 4 * KiB if point.backend == "nccl" else 64 * KiB
    hi = max(lo, min(64 * MiB, 2 * nbytes))
    best, best_lat = cand, latency
    for step in (2.0, 0.5):
        cur, cur_lat = best, best_lat
        for _ in range(CLIMB_STEPS):
            nxt = int(cur.knobs_dict()["chunk_bytes"] * step)
            nxt -= nxt % 4
            if not lo <= nxt <= hi:
                break
            trial = _with_chunk(cur, nxt)
            lat = _measure(point, nbytes, trial, objective)
            log(f"    climb {trial.label}: {lat * 1e6:.1f} us")
            if lat >= cur_lat:
                break
            cur, cur_lat = trial, lat
        if cur_lat < best_lat:
            best, best_lat = cur, cur_lat
    return best, best_lat


# -- the driver ----------------------------------------------------------------

def _point_topology(point: PlanPoint) -> str:
    from ..hardware import make_cluster
    from ..sim import Simulator

    cluster = make_cluster(Simulator(seed=SEED), point.cluster)
    return topology_key(cluster.gpus[:point.P])


def tune_point(point: PlanPoint, objective: str,
               log: Callable[[str], None]) -> List[Dict[str, Any]]:
    """Search every size of one plan point; return its table entries."""
    topology = _point_topology(point)
    cost = _estimator(point)
    sizes = sorted(point.sizes)
    entries: List[Dict[str, Any]] = []
    for i, nbytes in enumerate(sizes):
        default, floor = _default_with_floor(point, nbytes, objective)
        log(f"  {point.label()} {_fmt_bytes(nbytes)}: "
            f"default {default * 1e6:.1f} us "
            f"(comm-free floor {floor * 1e6:.1f} us)")
        if floor > (1.0 - MIN_GAIN) * default:
            log("    skipped: default already at the frozen-slack floor")
            continue
        if point.collective == "reduce":
            cands = _reduce_candidates(point, nbytes)
        else:
            cands = _nccl_candidates(point, nbytes)
        survivors = _prune(cands, cost, nbytes, PRUNE_KEEP)
        log("    candidates after closed-form prune: "
            + ", ".join(c.label for c in survivors))
        best: Optional[Candidate] = None
        best_lat = default
        for cand in survivors:
            lat = _measure(point, nbytes, cand, objective)
            log(f"    {cand.label}: {lat * 1e6:.1f} us")
            if lat < best_lat:
                best, best_lat = cand, lat
        if best is not None:
            best, best_lat = _climb(point, nbytes, best, best_lat,
                                    objective, log)
        if best is None or best_lat >= (1.0 - MIN_GAIN) * default:
            log("    winner: profile default (no entry)")
            continue
        log(f"    winner: {best.label} "
            f"({default / best_lat:.2f}x vs default)")
        upper = sizes[i + 1] if i + 1 < len(sizes) else 4 * nbytes
        entries.append({
            "topology": topology,
            "P": point.P,
            "min_nbytes": nbytes,
            "max_nbytes": upper,
            "knobs": best.knobs_dict(),
            "latency": best_lat,
            "default_latency": default,
        })
    return _merge_bands(entries)


def _merge_bands(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Fuse adjacent size bands that agree on the winning knobs."""
    merged: List[Dict[str, Any]] = []
    for e in entries:
        if (merged
                and merged[-1]["topology"] == e["topology"]
                and merged[-1]["P"] == e["P"]
                and merged[-1]["knobs"] == e["knobs"]
                and merged[-1]["max_nbytes"] == e["min_nbytes"]):
            merged[-1]["max_nbytes"] = e["max_nbytes"]
            merged[-1]["latency"] = e["latency"]
            merged[-1]["default_latency"] = e["default_latency"]
        else:
            merged.append(dict(e))
    return merged


def run_plan(points, objective: str = "latency",
             log: Optional[Callable[[str], None]] = None,
             ) -> Dict[Tuple[str, str], TunedTable]:
    """Run the search over ``points``; returns the tables keyed by
    (backend, collective)."""
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; "
                         f"choose from {OBJECTIVES}")
    log = log or (lambda _msg: None)
    grouped: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for point in points:
        grouped.setdefault((point.backend, point.collective), [])
        for entry in tune_point(point, objective, log):
            grouped[point.backend, point.collective].append(entry)
    return {key: TunedTable(key[0], key[1], objective, entries)
            for key, entries in grouped.items()}


# -- table I/O for the CLI -----------------------------------------------------

def render_tables(tables: Dict[Tuple[str, str], TunedTable]
                  ) -> Dict[str, str]:
    """Canonical JSON text per table filename."""
    from .tables import table_filename

    return {table_filename(t.backend, t.collective): t.to_json()
            for t in tables.values()}


def write_tables(tables: Dict[Tuple[str, str], TunedTable],
                 dirname: str) -> List[str]:
    import os

    os.makedirs(dirname, exist_ok=True)
    written = []
    for fname, text in sorted(render_tables(tables).items()):
        path = os.path.join(dirname, fname)
        with open(path, "w") as fh:
            fh.write(text)
        written.append(path)
    return written


def check_tables(tables: Dict[Tuple[str, str], TunedTable],
                 dirname: str) -> List[str]:
    """Byte-compare freshly searched tables against the committed ones;
    returns human-readable problems (empty = byte-identical)."""
    import os

    problems = []
    for fname, text in sorted(render_tables(tables).items()):
        path = os.path.join(dirname, fname)
        try:
            with open(path) as fh:
                on_disk = fh.read()
        except OSError:
            problems.append(f"{fname}: missing from {dirname}")
            continue
        if on_disk != text:
            problems.append(
                f"{fname}: committed table differs from regeneration "
                f"(refresh with `repro tune --quick --out {dirname}`)")
    return problems


def _fmt_bytes(n: int) -> str:
    if n >= 1 * MiB:
        return f"{n >> 20}M"
    if n >= KiB:
        return f"{n >> 10}K"
    return str(n)
