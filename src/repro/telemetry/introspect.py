"""MPI_T-style runtime introspection: PVARs, CVARs, and the session.

The real MVAPICH2-GDR runtime the paper co-designs against exposes its
internals through the MPI Tool Information Interface (MPI_T):
*performance variables* (PVARs — read-only counters/watermarks the
runtime maintains) and *control variables* (CVARs — named tunables a
tool can get/set).  This module is the simulated equivalent:

- a :class:`PerfVar` is a named read-only view over the metrics
  registry or live runtime state (bytes by transfer path, bytes per
  collective algorithm, queue high-watermarks, tag-block occupancy,
  link busy time, device-memory peaks, ...);
- a :class:`CtrlVar` is a named, validated knob over the runtime
  profile (pipeline chunk, eager/GDR thresholds, chain size k, flat
  algorithm selection, pipeline window);
- a :class:`TelemetrySession` owns both namespaces, receives the
  instrumentation hook calls from the runtime, and samples the PVARs
  into a time-series on *simulated* time.

Zero-overhead discipline (same contract as ``sim.recorder`` and
``sim.checker``): a session is strictly passive — hooks never touch the
event heap, and sampling happens inside :meth:`Simulator.step` after an
event's callbacks, so an instrumented run is event-for-event identical
to a bare one, and ``sim.telemetry = None`` (the default) costs one
attribute load per hook site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["PerfVar", "CtrlVar", "CvarBackendError", "TelemetrySession"]


class CvarBackendError(TypeError):
    """A backend-specific CVAR was addressed on a runtime bound to a
    different backend (e.g. ``nccl.tree_threshold`` on ``mv2gdr``).

    Historically this either fell through as a generic "no cvar named"
    KeyError (indistinguishable from a typo) or — after a profile
    hot-swap — surfaced as a cryptic ``dataclasses.replace`` failure.
    The auto-tuner must fail loudly on a mis-targeted knob, so it gets
    a dedicated type.  Subclasses TypeError: writing a knob the bound
    backend cannot represent is a type-level mistake, and existing
    ``except (KeyError, TypeError, ValueError)`` cvar handling (the CLI,
    the tuner) keeps working unchanged.
    """

    def __init__(self, name: str, wanted_backend: str,
                 bound_backend: Optional[str] = None):
        self.cvar = name
        self.wanted_backend = wanted_backend
        self.bound_backend = bound_backend
        bound = (f"bound to {bound_backend!r}" if bound_backend
                 else "bound to a backend that does not register it")
        super().__init__(
            f"cvar {name!r} targets the {wanted_backend!r} backend, but "
            f"this runtime is {bound}")


@dataclass(frozen=True)
class PerfVar:
    """A read-only performance variable (MPI_T pvar equivalent).

    ``read()`` returns a number, or a ``{label: value}`` dict when
    ``labeled``.  ``timeseries`` marks the variable for inclusion in
    scrape rows (per-link hardware pvars opt out to keep the CSV
    narrow; they still appear in Prometheus/JSON exports).
    """

    name: str
    description: str
    unit: str
    read: Callable[[], Any]
    labeled: bool = False
    timeseries: bool = True


@dataclass(frozen=True)
class CtrlVar:
    """A settable control variable (MPI_T cvar equivalent)."""

    name: str
    description: str
    ctype: type
    get: Callable[[], Any]
    set: Callable[[Any], None]
    #: Allowed values for string cvars (None = unrestricted).
    choices: Optional[Tuple[str, ...]] = None
    #: Inclusive lower bound for numeric cvars (None = unbounded).
    minimum: Optional[int] = None


class TelemetrySession:
    """One introspection session over a simulated run.

    Lifecycle::

        session = TelemetrySession(scrape_interval=0.05)
        session.attach(sim)        # bind to the simulator's registry
        session.install()          # sim.telemetry = session
        ... run the workload ...
        session.uninstall()
        session.finalize(sim.now)  # final scrape row

    Instrumentation sites call the ``on_*`` hooks through
    ``sim.telemetry`` (duck-typed, no imports), so this module stays
    out of the runtime's dependency graph.
    """

    def __init__(self, scrape_interval: Optional[float] = None,
                 live: Optional[Callable[[dict], None]] = None):
        if scrape_interval is not None and scrape_interval <= 0:
            raise ValueError("scrape_interval must be > 0")
        self.scrape_interval = scrape_interval
        #: Per-iteration live-status callback (``repro train``).
        self.live = live
        self.sim = None
        self.registry = None
        self._pvars: Dict[str, PerfVar] = {}
        self._cvars: Dict[str, CtrlVar] = {}
        #: CVAR assignments queued before a runtime exists; applied by
        #: ``bind_runtime`` once the cvars are registered.
        self.pending_cvars: Dict[str, str] = {}
        #: Catalogue of *known* backend-specific cvar names -> owning
        #: backend, populated unconditionally by ``bind_runtime`` so a
        #: mis-targeted write raises :class:`CvarBackendError` instead
        #: of an unknown-name KeyError.
        self._backend_cvars: Dict[str, str] = {}
        #: Scrape rows: ``{"time": t, pvar: value, ...}`` in time order.
        self.samples: List[Dict[str, Any]] = []
        #: Simulated time of the next scheduled scrape (checked by
        #: ``Simulator.step``; ``inf`` disables sampling).
        self.next_scrape_at = float("inf")
        # -- attribution state -------------------------------------------
        #: comm.id -> {tag unit -> collective name} (mirrors the
        #: reservation ledger the invariant checker keeps).
        self._ledgers: Dict[int, Dict[int, str]] = {}
        #: (comm.id, seq) pairs already counted as invocations.
        self._seen_seqs: set = set()
        self._last_iter_end = 0.0
        self._t0 = 0.0

    # -- lifecycle -----------------------------------------------------------
    def attach(self, sim) -> None:
        """Bind to ``sim``'s metrics registry and create the core
        metric families + PVARs (idempotent per session)."""
        if self.sim is not None:
            raise RuntimeError("session already attached")
        self.sim = sim
        self.registry = reg = sim.metrics
        self._t0 = sim.now
        if self.scrape_interval is not None:
            self.next_scrape_at = self._grid_after(sim.now)

        # Metric families written by the hooks.  get-or-create: the
        # transport counters may already exist (TransportMetrics is
        # registry-backed whether or not a session is installed).
        self._coll_bytes = reg.counter(
            "mpi.coll.bytes", "payload bytes sent per collective "
            "algorithm", "bytes", labelnames=("coll",))
        self._coll_msgs = reg.counter(
            "mpi.coll.messages", "messages sent per collective algorithm",
            "messages", labelnames=("coll",))
        self._coll_invocations = reg.counter(
            "mpi.coll.invocations", "collective invocations per algorithm "
            "(counted once per communicator-wide call)", "calls",
            labelnames=("coll",))
        self._pt2pt_bytes = reg.counter(
            "mpi.pt2pt.bytes", "payload bytes sent with user (non-"
            "collective) tags", "bytes")
        self._pt2pt_msgs = reg.counter(
            "mpi.pt2pt.messages", "messages sent with user tags",
            "messages")
        self._queue_hwm = reg.gauge(
            "mpi.queue.hwm", "unexpected/posted receive queue depth "
            "high-watermark (any rank)", "messages", labelnames=("queue",))
        self._tag_units_hwm = reg.gauge(
            "mpi.tag_units.hwm", "tag-block units reserved on the "
            "busiest communicator (occupancy high-watermark)", "units")
        self._path_bytes = reg.counter(
            "transport.path.bytes", "bytes moved per transfer mechanism "
            "(retried attempts re-count: wire traffic, not goodput)",
            "bytes", labelnames=("path",))
        self._path_msgs = reg.counter(
            "transport.path.messages", "transfer attempts per mechanism",
            "messages", labelnames=("path",))
        self._cuda_bytes = reg.counter(
            "cuda.copy.bytes", "bytes through cudaMemcpy by kind",
            "bytes", labelnames=("kind",))
        self._cuda_ops = reg.counter(
            "cuda.copy.ops", "cudaMemcpy calls by kind", "calls",
            labelnames=("kind",))
        self._iters = reg.counter(
            "train.iterations", "training iterations completed (root "
            "solver)", "iterations")
        self._samples_c = reg.counter(
            "train.samples", "samples consumed across all solvers",
            "samples")
        self._loss = reg.gauge(
            "train.loss", "last training loss (payload-mode runs only)")
        self._iter_time = reg.histogram(
            "train.iteration_time", "per-iteration simulated wall-clock",
            "seconds")
        # nccl backend meters (written by repro.nccl.collectives on
        # first use; pre-created here so the PVARs read 0 on MPI-only
        # runs — labelnames must agree with the writer side).
        self._nccl_hops = reg.counter(
            "nccl.ring.hops",
            "pt2pt hops performed by nccl ring collectives", "messages")
        self._nccl_path_bytes = reg.counter(
            "nccl.path.bytes",
            "payload bytes moved by the nccl backend per algorithm path",
            "bytes", labelnames=("path",))
        self._nccl_tree_depth = reg.gauge(
            "nccl.tree.depth",
            "deepest double-binary tree driven by nccl tree collectives",
            "hops")

        for pv in self._core_pvars():
            self.register_pvar(pv)

    def install(self) -> None:
        """Activate the hook sites (``sim.telemetry = self``)."""
        if self.sim is None:
            raise RuntimeError("attach(sim) before install()")
        if self.sim.telemetry is not None:
            raise RuntimeError("simulator already has a telemetry session")
        self.sim.telemetry = self

    def uninstall(self) -> None:
        if self.sim is not None and self.sim.telemetry is self:
            self.sim.telemetry = None

    def finalize(self, now: float) -> None:
        """Record the end-of-run scrape row (idempotent per instant)."""
        if self.samples and self.samples[-1]["time"] == now:
            return
        self._record_row(now)

    # -- variable namespaces --------------------------------------------------
    def register_pvar(self, pv: PerfVar) -> None:
        if pv.name in self._pvars:
            raise ValueError(f"pvar {pv.name!r} already registered")
        self._pvars[pv.name] = pv

    def register_cvar(self, cv: CtrlVar) -> None:
        if cv.name in self._cvars:
            raise ValueError(f"cvar {cv.name!r} already registered")
        self._cvars[cv.name] = cv

    def pvar_names(self) -> List[str]:
        return list(self._pvars)

    def cvar_names(self) -> List[str]:
        return list(self._cvars)

    def pvar(self, name: str) -> PerfVar:
        try:
            return self._pvars[name]
        except KeyError:
            raise KeyError(f"no pvar named {name!r}") from None

    def pvar_read(self, name: str) -> Any:
        return self.pvar(name).read()

    def pvar_snapshot(self) -> Dict[str, Any]:
        """All PVAR values, labeled ones as nested dicts."""
        return {name: pv.read() for name, pv in self._pvars.items()}

    def note_backend_cvar(self, name: str, backend: str) -> None:
        """Record that ``name`` is a backend-specific cvar owned by
        ``backend`` (whether or not it is registered on this session)."""
        self._backend_cvars[name] = backend

    def _lookup_cvar(self, name: str) -> CtrlVar:
        try:
            return self._cvars[name]
        except KeyError:
            backend = self._backend_cvars.get(name)
            if backend is not None:
                raise CvarBackendError(name, backend) from None
            raise KeyError(f"no cvar named {name!r}") from None

    def cvar_get(self, name: str) -> Any:
        return self._lookup_cvar(name).get()

    def cvar_set(self, name: str, value: Any) -> None:
        """Validated set: KeyError on unknown names,
        :class:`CvarBackendError` on known-but-mis-targeted backend
        cvars, TypeError on ill-typed values, ValueError on
        out-of-domain ones."""
        cv = self._lookup_cvar(name)
        # bool passes isinstance(int) but is never a sensible knob value.
        if not isinstance(value, cv.ctype) or isinstance(value, bool):
            raise TypeError(
                f"cvar {name} expects {cv.ctype.__name__}, "
                f"got {type(value).__name__}")
        if cv.choices is not None and value not in cv.choices:
            raise ValueError(
                f"cvar {name}: {value!r} not in {sorted(cv.choices)}")
        if cv.minimum is not None and value < cv.minimum:
            raise ValueError(
                f"cvar {name}: {value!r} below minimum {cv.minimum}")
        cv.set(value)

    def cvar_set_str(self, name: str, text: str) -> None:
        """Parse-and-set from command-line text (type from the cvar)."""
        cv = self._lookup_cvar(name)
        if cv.ctype is int:
            try:
                value: Any = int(text, 0)
            except ValueError:
                raise TypeError(f"cvar {name} expects an integer, "
                                f"got {text!r}")
        elif cv.ctype is float:
            value = float(text)
        else:
            value = text
        self.cvar_set(name, value)

    def queue_cvar(self, name: str, text: str) -> None:
        """Remember a CVAR assignment to apply once a runtime is bound
        (``repro metrics --cvar name=value`` before the job builds its
        own MPIRuntime)."""
        self.pending_cvars[name] = text

    # -- instrumentation hooks (called via sim.telemetry) ---------------------
    def on_transfer_path(self, path: str, nbytes: int) -> None:
        self._path_bytes.inc(nbytes, path=path)
        self._path_msgs.inc(1, path=path)

    def on_cuda_copy(self, kind: str, nbytes: int) -> None:
        self._cuda_bytes.inc(nbytes, kind=kind)
        self._cuda_ops.inc(1, kind=kind)

    def on_coll_block(self, comm, rank: int, seq: int, block) -> None:
        """A collective reserved a tag block: extend the attribution
        ledger and the occupancy watermark (same unit arithmetic as the
        invariant checker's tag auditor)."""
        from ..mpi.collectives.base import COLL_TAG_BASE, TAG_BLOCK
        name = block.name or "unnamed"
        led = self._ledgers.setdefault(comm.id, {})
        units = -(-block.count // TAG_BLOCK)
        first = (block.base - COLL_TAG_BASE) // TAG_BLOCK
        for u in range(first, first + units):
            led[u] = name
        self._tag_units_hwm.set_max(first + units)
        if (comm.id, seq) not in self._seen_seqs:
            self._seen_seqs.add((comm.id, seq))
            self._coll_invocations.inc(1, coll=name)

    def on_send(self, comm, tag: int, nbytes: int) -> None:
        from ..mpi.collectives.base import COLL_TAG_BASE, TAG_BLOCK
        if tag >= COLL_TAG_BASE:
            led = self._ledgers.get(comm.id)
            name = "unknown"
            if led is not None:
                name = led.get((tag - COLL_TAG_BASE) // TAG_BLOCK,
                               "unknown")
            self._coll_bytes.inc(nbytes, coll=name)
            self._coll_msgs.inc(1, coll=name)
        else:
            self._pt2pt_bytes.inc(nbytes)
            self._pt2pt_msgs.inc(1)

    def on_queue_depth(self, queue: str, depth: int) -> None:
        self._queue_hwm.set_max(depth, queue=queue)

    def on_iteration(self, it: int, now: float, samples: int,
                     loss: Optional[float] = None) -> None:
        self._iters.inc(1)
        self._samples_c.inc(samples)
        self._iter_time.observe(now - self._last_iter_end)
        self._last_iter_end = now
        if loss is not None:
            self._loss.set(loss)
        if self.live is not None:
            elapsed = now - self._t0
            total = self._samples_c.value()
            self.live({
                "iteration": it,
                "time": now,
                "samples": total,
                "samples_per_second": total / elapsed if elapsed else 0.0,
                "loss": loss,
            })

    # -- sampling --------------------------------------------------------------
    def _grid_after(self, now: float) -> float:
        """Next scrape-grid instant strictly after ``now``."""
        step = self.scrape_interval
        return (int(now / step) + 1) * step

    def scrape(self, now: float) -> None:
        """Called by ``Simulator.step`` once the clock reaches
        :attr:`next_scrape_at`.  Records a row and re-arms."""
        self._record_row(now)
        if self.scrape_interval is not None:
            self.next_scrape_at = self._grid_after(now)

    def _record_row(self, now: float) -> None:
        row: Dict[str, Any] = {"time": now}
        for name, pv in self._pvars.items():
            if not pv.timeseries:
                continue
            v = pv.read()
            if pv.labeled:
                for key, val in v.items():
                    row[f"{name}{{{key}}}"] = val
            else:
                row[name] = v
        self.samples.append(row)

    # -- built-in PVARs --------------------------------------------------------
    def _labeled_reader(self, metric) -> Callable[[], Dict[str, Any]]:
        def read():
            return {"/".join(key): v for key, v in metric.samples()}
        return read

    def _core_pvars(self) -> List[PerfVar]:
        def scalar(metric):
            return lambda: metric.value()

        return [
            PerfVar("mpi.coll.bytes", self._coll_bytes.description,
                    "bytes", self._labeled_reader(self._coll_bytes),
                    labeled=True),
            PerfVar("mpi.coll.messages", self._coll_msgs.description,
                    "messages", self._labeled_reader(self._coll_msgs),
                    labeled=True),
            PerfVar("mpi.coll.invocations",
                    self._coll_invocations.description, "calls",
                    self._labeled_reader(self._coll_invocations),
                    labeled=True),
            PerfVar("mpi.pt2pt.bytes", self._pt2pt_bytes.description,
                    "bytes", scalar(self._pt2pt_bytes)),
            PerfVar("mpi.pt2pt.messages", self._pt2pt_msgs.description,
                    "messages", scalar(self._pt2pt_msgs)),
            PerfVar("mpi.unexpected_queue.hwm",
                    "unexpected-message queue depth high-watermark",
                    "messages",
                    lambda: self._queue_hwm.value(queue="unexpected")),
            PerfVar("mpi.posted_queue.hwm",
                    "posted-receive queue depth high-watermark",
                    "messages",
                    lambda: self._queue_hwm.value(queue="posted")),
            PerfVar("mpi.tag_units.hwm", self._tag_units_hwm.description,
                    "units", scalar(self._tag_units_hwm)),
            PerfVar("transport.path.bytes", self._path_bytes.description,
                    "bytes", self._labeled_reader(self._path_bytes),
                    labeled=True),
            PerfVar("transport.path.messages",
                    self._path_msgs.description, "messages",
                    self._labeled_reader(self._path_msgs), labeled=True),
            PerfVar("transport.retries",
                    "transfer attempts retried after transient faults",
                    "retries",
                    lambda: self.registry.counter(
                        "transport.retries").value()),
            PerfVar("transport.timeouts",
                    "transfers that exhausted their retry budget",
                    "timeouts",
                    lambda: self.registry.counter(
                        "transport.timeouts").value()),
            PerfVar("mpi.integrity.corrupt_detected",
                    "corrupted deliveries caught by the checksum verify",
                    "messages",
                    lambda: self.registry.counter(
                        "integrity.corrupt_detected").value()),
            PerfVar("mpi.integrity.retransmits",
                    "retransmissions triggered by checksum NACKs",
                    "messages",
                    lambda: self.registry.counter(
                        "integrity.retransmits").value()),
            PerfVar("mpi.integrity.failures",
                    "transfers that exhausted the retransmit budget "
                    "against a persistent corruptor", "failures",
                    lambda: self.registry.counter(
                        "integrity.failures").value()),
            PerfVar("mpi.integrity.silent_corruptions",
                    "corrupted deliveries that passed verification "
                    "(must stay 0: non-zero means the checksum layer "
                    "is broken)", "messages",
                    lambda: self.registry.counter(
                        "integrity.silent_corruptions").value()),
            PerfVar("transport.stagings.peak",
                    "concurrently live host staging buffers, peak",
                    "buffers",
                    lambda: self.registry.gauge(
                        "transport.stagings_peak").value()),
            PerfVar("cuda.copy.bytes", self._cuda_bytes.description,
                    "bytes", self._labeled_reader(self._cuda_bytes),
                    labeled=True),
            PerfVar("cuda.copy.ops", self._cuda_ops.description, "calls",
                    self._labeled_reader(self._cuda_ops), labeled=True),
            PerfVar("nccl.ring.hops", self._nccl_hops.description,
                    "messages", scalar(self._nccl_hops)),
            PerfVar("nccl.path.bytes", self._nccl_path_bytes.description,
                    "bytes", self._labeled_reader(self._nccl_path_bytes),
                    labeled=True),
            PerfVar("nccl.tree.depth", self._nccl_tree_depth.description,
                    "hops", scalar(self._nccl_tree_depth)),
            PerfVar("train.iterations", self._iters.description,
                    "iterations", scalar(self._iters)),
            PerfVar("train.samples", self._samples_c.description,
                    "samples", scalar(self._samples_c)),
            PerfVar("train.loss", self._loss.description, "",
                    scalar(self._loss)),
        ]
