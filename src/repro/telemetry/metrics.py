"""Metrics core: Counter / Gauge / Histogram with labels + a registry.

This is the single source of truth for every runtime counter in the
repo.  A :class:`MetricsRegistry` lives on each
:class:`~repro.sim.core.Simulator` (``sim.metrics``), so every layer
that can reach the simulator — transport, CUDA runtime, communicator,
trainer — increments the *same* metric objects, and higher-level views
(``TransportMetrics``, ``FaultReport``, the MPI_T session) read from
them instead of keeping private copies.

Design constraints (shared with ``repro.check`` / ``repro.prof``):

- **Passive**: metrics never touch the event heap; incrementing a
  counter cannot change simulated behaviour.
- **Deterministic**: values are plain ints/floats updated in event
  order; label children are kept in insertion order, so two runs of the
  same seeded program produce identical exports byte for byte.
- **Cheap**: an increment is a dict add; this module imports nothing
  from the rest of the repo so the simulator can depend on it without
  cycles.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Metric", "Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: Default histogram buckets: log-spaced durations from 100 us to 100 s
#: (simulated seconds), suitable for iteration/phase times.
DEFAULT_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 100.0)


def _label_key(labelnames: Tuple[str, ...], labels: Dict[str, str]
               ) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared "
            f"labelnames {sorted(labelnames)}")
    return tuple(str(labels[n]) for n in labelnames)


class Metric:
    """Base class: a named family of children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 labelnames: Sequence[str] = ()):
        if not name:
            raise ValueError("metric needs a name")
        self.name = name
        self.description = description
        self.unit = unit
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        #: label-values tuple -> child state (insertion-ordered).
        self._children: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if not self.labelnames:
            if labels:
                raise ValueError(f"metric {self.name} declares no labels")
            return ()
        return _label_key(self.labelnames, labels)

    @property
    def labelled(self) -> bool:
        return bool(self.labelnames)

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], float]]:
        """Yield ``(label_values, value)`` in insertion order."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Counter(Metric):
    """A monotonically increasing count (bytes moved, retries, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        key = self._key(labels)
        self._children[key] = self._children.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._children.get(self._key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over all label children (the family's headline number)."""
        return sum(self._children.values()) if self._children else 0

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], float]]:
        if not self.labelnames:
            yield (), self._children.get((), 0)
        else:
            for key, v in self._children.items():
                yield key, v


class Gauge(Metric):
    """A value that can go up and down (queue depth, live stagings)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._children[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._children[key] = self._children.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels) -> None:
        """High-watermark update: keep the max of current and ``value``."""
        key = self._key(labels)
        cur = self._children.get(key)
        if cur is None or value > cur:
            self._children[key] = value

    def value(self, **labels) -> float:
        return self._children.get(self._key(labels), 0)

    @property
    def max(self) -> float:
        return max(self._children.values()) if self._children else 0

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], float]]:
        if not self.labelnames:
            yield (), self._children.get((), 0)
        else:
            for key, v in self._children.items():
                yield key, v


class _HistState:
    __slots__ = ("counts", "count", "sum")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0


class Histogram(Metric):
    """A distribution with fixed upper-bound buckets (Prometheus style)."""

    kind = "histogram"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, description, unit, labelnames)
        bs = tuple(sorted(float(b) for b in buckets))
        if not bs:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bs

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        st = self._children.get(key)
        if st is None:
            st = self._children[key] = _HistState(len(self.buckets))
        st.count += 1
        st.sum += value
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                st.counts[i] += 1
                return
        st.counts[-1] += 1

    def state(self, **labels) -> Optional[_HistState]:
        return self._children.get(self._key(labels))

    def cumulative(self, st: _HistState) -> List[int]:
        """Cumulative bucket counts (le semantics), +Inf last."""
        out, acc = [], 0
        for c in st.counts:
            acc += c
            out.append(acc)
        return out

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], _HistState]]:
        if not self.labelnames:
            st = self._children.get(())
            yield (), (st if st is not None else _HistState(len(self.buckets)))
        else:
            for key, st in self._children.items():
                yield key, st


class MetricsRegistry:
    """Insertion-ordered collection of metrics, get-or-create by name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, description: str, unit: str,
                       labelnames: Sequence[str], **kwargs) -> Metric:
        m = self._metrics.get(name)
        if m is not None:
            if not isinstance(m, cls) or m.labelnames != tuple(labelnames):
                raise TypeError(
                    f"metric {name!r} already registered as {m.kind} "
                    f"with labels {m.labelnames}")
            return m
        m = cls(name, description, unit, labelnames, **kwargs)
        self._metrics[name] = m
        return m

    def counter(self, name: str, description: str = "", unit: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, description, unit,
                                   labelnames)

    def gauge(self, name: str, description: str = "", unit: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, description, unit,
                                   labelnames)

    def histogram(self, name: str, description: str = "", unit: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, description, unit,
                                   labelnames, buckets=buckets)

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics)
