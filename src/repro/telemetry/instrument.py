"""Binders that wire a session to live hardware and runtime objects.

The core PVARs (registered at :meth:`TelemetrySession.attach`) read the
metrics registry, which exists on every simulator.  The variables in
this module instead read *live object state* — link busy time, NIC
byte counts, device-memory peaks — or expose profile knobs, so they
can only be registered once a cluster / MPI runtime exists:

- :func:`bind_cluster` — hardware PVARs (per-link and aggregate busy
  time, NIC traffic, device-memory high-watermark);
- :func:`bind_runtime` — the CVAR namespace over the runtime profile
  (every set builds a derived profile via ``MPIRuntime.set_profile``,
  so new values apply to rank contexts created afterwards — exactly
  the MPI_T contract, where cvar writes affect subsequent operations);
- :func:`training_summary` — the one-line report footer data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from .introspect import (
    CtrlVar, CvarBackendError, PerfVar, TelemetrySession,
)

__all__ = ["bind_cluster", "bind_injector", "bind_runtime",
           "training_summary", "TelemetrySummary"]


def _all_links(cluster):
    """Every named bandwidth link in the cluster, in build order."""
    for node in cluster.nodes:
        for gpu in node.gpus:
            yield gpu.pcie_up
            yield gpu.pcie_down
        for nic in node.nics:
            yield nic.tx
            yield nic.rx
        yield node.host_memcpy
        yield node.cpu_reduce


def bind_cluster(session: TelemetrySession, cluster) -> None:
    """Register the hardware PVARs for ``cluster``."""

    def pcie_busy():
        return sum(g.pcie_up.busy_time + g.pcie_down.busy_time
                   for n in cluster.nodes for g in n.gpus)

    def nic_busy():
        return sum(p.tx.busy_time + p.rx.busy_time
                   for n in cluster.nodes for p in n.nics)

    def nic_bytes():
        return sum(p.tx.bytes_moved + p.rx.bytes_moved
                   for n in cluster.nodes for p in n.nics)

    def host_busy():
        return sum(n.host_memcpy.busy_time + n.cpu_reduce.busy_time
                   for n in cluster.nodes)

    def gpu_mem_peak():
        return max(g.peak_allocated for g in cluster.gpus)

    def link_busy():
        return {link.name: link.busy_time for link in _all_links(cluster)
                if link.busy_time > 0.0}

    def nic_port_busy():
        return {p.name: p.tx.busy_time + p.rx.busy_time
                for n in cluster.nodes for p in n.nics}

    for pv in (
        PerfVar("hw.pcie.busy_time",
                "cumulative busy time over all GPU PCIe links", "seconds",
                pcie_busy),
        PerfVar("hw.nic.busy_time",
                "cumulative busy time over all NIC ports", "seconds",
                nic_busy),
        PerfVar("hw.nic.bytes", "bytes through all NIC ports", "bytes",
                nic_bytes),
        PerfVar("hw.host.busy_time",
                "cumulative busy time of host memcpy + CPU-reduce "
                "engines", "seconds", host_busy),
        PerfVar("hw.gpu_mem.peak",
                "device-memory allocation high-watermark (worst GPU)",
                "bytes", gpu_mem_peak),
        # Per-object variables: Prometheus/JSON only (timeseries=False
        # keeps the CSV to scalar aggregates — Cluster-A has ~450 links).
        PerfVar("hw.nic.port_busy_time", "per-NIC-port busy time",
                "seconds", nic_port_busy, labeled=True, timeseries=False),
        PerfVar("hw.link.busy_time",
                "per-link busy time (links with traffic only)",
                "seconds", link_busy, labeled=True, timeseries=False),
    ):
        if pv.name not in session.pvar_names():
            session.register_pvar(pv)


def bind_runtime(session: TelemetrySession, runtime) -> None:
    """Register the CVAR namespace over ``runtime``'s profile and apply
    any assignments queued with :meth:`TelemetrySession.queue_cvar`."""

    def knob(field_name):
        def get():
            return getattr(runtime.profile, field_name)

        def set_(value):
            runtime.set_profile(runtime.profile.derive(
                **{field_name: value}))
        return get, set_

    for name, field_name, desc, kwargs in (
        ("mpi.pipeline_chunk", "pipeline_chunk",
         "chunk size for pipelined host-staged transfers [bytes]",
         {"ctype": int, "minimum": 1}),
        ("mpi.eager_threshold", "eager_threshold",
         "pt2pt eager/rendezvous switchover [bytes]",
         {"ctype": int, "minimum": 0}),
        ("mpi.gdr_threshold", "gdr_threshold",
         "largest message sent via GPUDirect RDMA [bytes]",
         {"ctype": int, "minimum": 0}),
        ("coll.flat_reduce_algorithm", "flat_reduce_algorithm",
         "flat reduce algorithm selection",
         {"ctype": str, "choices": ("binomial", "chain")}),
        ("coll.chain_size", "chain_size",
         "chain length k for the CB-k/CC-k/CCB-k hierarchical designs",
         {"ctype": int, "minimum": 1}),
        ("coll.pipeline_window", "pipeline_window",
         "pre-posted receives per chain hop (0 = unbounded)",
         {"ctype": int, "minimum": 0}),
    ):
        if name in session.cvar_names():
            continue
        get, set_ = knob(field_name)
        session.register_cvar(CtrlVar(name, desc, get=get, set=set_,
                                      **kwargs))

    # NCCL-backend knobs (duck-typed on the profile so this module
    # never imports the profile classes): registered only when the
    # bound runtime rides an NCCLProfile, but *catalogued* on the
    # session unconditionally, so addressing one on a runtime bound to
    # a different backend raises CvarBackendError instead of the
    # unknown-name KeyError a typo gets.
    nccl_knobs = (
        ("nccl.tree_threshold", "tree_threshold",
         "largest payload routed to the double-binary trees; "
         "bigger goes to the rings [bytes]"),
        ("nccl.ring_chunk", "ring_chunk",
         "pipelining chunk size for nccl ring collectives [bytes]"),
    )
    for name, _field, _desc in nccl_knobs:
        session.note_backend_cvar(name, "nccl")

    def nccl_knob(cvar_name, field_name):
        # Guarded accessors: set_profile can hot-swap the runtime onto
        # a non-NCCL profile after registration, at which point a write
        # would otherwise die inside dataclasses.replace with a cryptic
        # unexpected-keyword error.
        def get():
            prof = runtime.profile
            if not hasattr(prof, field_name):
                raise CvarBackendError(cvar_name, "nccl", prof.name)
            return getattr(prof, field_name)

        def set_(value):
            prof = runtime.profile
            if not hasattr(prof, field_name):
                raise CvarBackendError(cvar_name, "nccl", prof.name)
            runtime.set_profile(prof.derive(**{field_name: value}))
        return get, set_

    if hasattr(runtime.profile, "tree_threshold"):
        for name, field_name, desc in nccl_knobs:
            if name in session.cvar_names():
                continue
            get, set_ = nccl_knob(name, field_name)
            session.register_cvar(CtrlVar(
                name, desc, ctype=int, get=get, set=set_,
                minimum=0 if field_name == "tree_threshold" else 4))

    # Not a profile field: the failure detector's suspicion latency is
    # live mutable state, so the knob writes through directly (applies
    # to detections armed after the write — same MPI_T contract).
    if "mpi.detect_latency" not in session.cvar_names():
        fd = runtime.failure_detector

        def get_latency():
            return fd.detect_latency

        def set_latency(value):
            fd.detect_latency = value

        session.register_cvar(CtrlVar(
            "mpi.detect_latency",
            "failure-detector suspicion latency [seconds]",
            ctype=float, get=get_latency, set=set_latency, minimum=0))

    if session.pending_cvars:
        pending, session.pending_cvars = session.pending_cvars, {}
        for name, text in pending.items():
            session.cvar_set_str(name, text)


def bind_injector(session: TelemetrySession, injector) -> None:
    """Register fault-injection PVARs for an armed ``injector``."""

    def injected():
        return dict(injector.injected)

    def crashed():
        return len(injector.crashed_ranks)

    for pv in (
        PerfVar("faults.injected",
                "fault events applied by the injector, by event kind",
                "events", injected, labeled=True),
        PerfVar("faults.crashed_ranks",
                "world ranks crashed by the injector", "ranks", crashed),
    ):
        if pv.name not in session.pvar_names():
            session.register_pvar(pv)


@dataclass
class TelemetrySummary:
    """Condensed end-of-run telemetry for the training-report footer."""

    samples_per_second: float = 0.0
    #: Transfer mechanism -> bytes moved (d2d/ipc/gdr/staged_*).
    bytes_by_path: Dict[str, int] = field(default_factory=dict)
    #: Device-memory allocation high-watermark, worst GPU [bytes].
    peak_device_mem: int = 0
    #: Full PVAR snapshot at end of run.
    pvars: Dict[str, Any] = field(default_factory=dict)

    def footer(self) -> str:
        """The one-line ``TrainingReport.summary()`` telemetry footer."""
        paths = " ".join(
            f"{k}={_fmt_bytes(v)}"
            for k, v in sorted(self.bytes_by_path.items())) or "none"
        return (f"telemetry: {self.samples_per_second:.1f} samples/s | "
                f"bytes {paths} | "
                f"peak dev mem {_fmt_bytes(self.peak_device_mem)}")


def _fmt_bytes(n: float) -> str:
    n = int(n)
    if n >= 1 << 30:
        return f"{n / (1 << 30):.1f}GiB"
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KiB"
    return f"{n}B"


def training_summary(session: TelemetrySession,
                     samples_per_second: float = 0.0) -> TelemetrySummary:
    """Build the report footer from the session's end-of-run state."""
    snap = session.pvar_snapshot()
    bytes_by_path = {k: int(v)
                     for k, v in snap.get("transport.path.bytes", {}).items()}
    return TelemetrySummary(
        samples_per_second=samples_per_second,
        bytes_by_path=bytes_by_path,
        peak_device_mem=int(snap.get("hw.gpu_mem.peak", 0)),
        pvars=snap,
    )
