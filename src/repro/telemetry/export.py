"""Exporters: Prometheus text exposition, JSON snapshot, CSV time-series.

All three formats are deterministic functions of the metrics state:
values print as ``str(int)`` for integers and ``repr(float)`` for
floats (shortest round-trip form), metric families iterate in
registration order, labeled children in insertion order, and CSV
columns in sorted order — so two same-seed runs export byte-identical
artifacts (a property the regression gate and the tests rely on).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

from .metrics import Histogram, MetricsRegistry

__all__ = ["to_prometheus", "to_json_snapshot", "timeseries_to_csv"]

#: Prefix for Prometheus metric names (the exposition namespace).
PROM_PREFIX = "repro_"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return PROM_PREFIX + _NAME_BAD.sub("_", name)


def _prom_value(v: Any) -> str:
    if isinstance(v, bool):  # pragma: no cover - defensive
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labelnames, key, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (format version 0.0.4)."""
    lines: List[str] = []
    for m in registry:
        pname = _prom_name(m.name)
        help_text = m.description or m.name
        if m.unit:
            help_text += f" [{m.unit}]"
        lines.append(f"# HELP {pname} {help_text}")
        lines.append(f"# TYPE {pname} {m.kind}")
        if isinstance(m, Histogram):
            for key, st in m.samples():
                cum = m.cumulative(st)
                for upper, c in zip(m.buckets, cum[:-1]):
                    le = f'le="{_prom_value(float(upper))}"'
                    lines.append(
                        f"{pname}_bucket"
                        f"{_labels_text(m.labelnames, key, le)} {c}")
                inf = _labels_text(m.labelnames, key, 'le="+Inf"')
                lines.append(f"{pname}_bucket{inf} {cum[-1]}")
                base = _labels_text(m.labelnames, key)
                lines.append(f"{pname}_sum{base} {_prom_value(st.sum)}")
                lines.append(f"{pname}_count{base} {st.count}")
        else:
            for key, v in m.samples():
                lines.append(f"{pname}{_labels_text(m.labelnames, key)} "
                             f"{_prom_value(v)}")
    return "\n".join(lines) + "\n"


def to_json_snapshot(session, *, config: Dict[str, Any] = None
                     ) -> Dict[str, Any]:
    """JSON-able snapshot of one session: PVARs, CVARs, raw metrics.

    Serialize with ``json.dumps(snap, sort_keys=True)`` for a canonical
    byte representation.
    """
    metrics: Dict[str, Any] = {}
    for m in session.registry:
        if isinstance(m, Histogram):
            hist = {}
            for key, st in m.samples():
                hist["/".join(key) or "_"] = {
                    "count": st.count, "sum": st.sum,
                    "buckets": dict(zip((repr(float(b)) for b in m.buckets),
                                        m.cumulative(st)[:-1])),
                }
            metrics[m.name] = hist
        elif m.labelled:
            metrics[m.name] = {"/".join(key): v for key, v in m.samples()}
        else:
            metrics[m.name] = m.value()
    snap: Dict[str, Any] = {
        "time": session.sim.now if session.sim is not None else 0.0,
        "pvars": session.pvar_snapshot(),
        "cvars": {name: session.cvar_get(name)
                  for name in session.cvar_names()},
        "metrics": metrics,
    }
    if config:
        snap["config"] = dict(config)
    return snap


def _csv_value(v: Any) -> str:
    if v is None:
        return ""
    if isinstance(v, int):
        return str(v)
    return repr(float(v))


def timeseries_to_csv(samples: List[Dict[str, Any]]) -> str:
    """The scrape rows as CSV: ``time`` first, remaining columns sorted.

    Rows may have different key sets (label children appear when first
    incremented); missing cells are empty, so the column set is the
    union over all rows and the output is stable for a given run.
    """
    cols = sorted({k for row in samples for k in row} - {"time"})
    lines = ["time," + ",".join(cols)]
    for row in samples:
        cells = [_csv_value(row["time"])]
        cells.extend(_csv_value(row.get(c)) for c in cols)
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"
