"""``repro.telemetry``: metrics, MPI_T-style introspection, exporters.

Three layers:

- :mod:`~repro.telemetry.metrics` — Counter/Gauge/Histogram + registry
  (pure; every :class:`~repro.sim.core.Simulator` owns one as
  ``sim.metrics``);
- :mod:`~repro.telemetry.introspect` — PVARs/CVARs and the
  :class:`TelemetrySession` that samples them on simulated time;
- :mod:`~repro.telemetry.export` — Prometheus text exposition, JSON
  snapshot, CSV time-series.

``introspect``/``instrument`` are exposed lazily: they import runtime
modules (tag constants from ``repro.mpi``), and ``repro.sim.core``
imports ``repro.telemetry.metrics`` — eager imports here would close
that cycle during interpreter start-up.
"""

from .export import timeseries_to_csv, to_json_snapshot, to_prometheus
from .metrics import (
    Counter, Gauge, Histogram, Metric, MetricsRegistry,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry",
    "PerfVar", "CtrlVar", "CvarBackendError", "TelemetrySession",
    "TelemetrySummary",
    "bind_cluster", "bind_injector", "bind_runtime", "training_summary",
    "to_prometheus", "to_json_snapshot", "timeseries_to_csv",
]

_LAZY = {
    "PerfVar": "introspect", "CtrlVar": "introspect",
    "CvarBackendError": "introspect",
    "TelemetrySession": "introspect",
    "TelemetrySummary": "instrument", "bind_cluster": "instrument",
    "bind_injector": "instrument", "bind_runtime": "instrument",
    "training_summary": "instrument",
}


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(f".{mod}", __name__), name)
