"""Command-line interface.

Mirrors how the public S-Caffe release was driven (mpirun + command-line
options like ``-scal weak``), adapted to the simulated stack::

    repro train --framework scaffe --cluster A --gpus 64 \\
                --network googlenet --batch-size 1024 --scal strong
    repro osu --profile mv2gdr --design tuned --procs 160 --size 64M
    repro metrics --gpus 16 --network googlenet --out results/metrics
    repro autotune --procs 160 --sizes 1M,16M,128M
    repro table1
    repro networks
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _parse_size(text: str) -> int:
    """Parse '64M', '16K', '1G', or a plain byte count."""
    text = text.strip().upper()
    mult = 1
    if text and text[-1] in "KMG":
        mult = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[text[-1]]
        text = text[:-1]
    try:
        return int(float(text) * mult)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}")


def build_parser() -> argparse.ArgumentParser:
    # The backend list comes from the profile registry, so a profile
    # registered via register_profile shows up in every --profile flag.
    from .mpi.profiles import profile_names
    profiles = profile_names()

    p = argparse.ArgumentParser(
        prog="repro",
        description="S-Caffe reproduction on a simulated GPU cluster")
    sub = p.add_subparsers(dest="command", required=True)

    t = sub.add_parser("train", help="run a training experiment")
    t.add_argument("--framework", default="scaffe",
                   choices=["scaffe", "caffe", "nvcaffe", "cntk",
                            "inspur", "mpicaffe"])
    t.add_argument("--cluster", default="A", choices=["A", "B"])
    t.add_argument("--gpus", type=int, default=16)
    t.add_argument("--network", default="googlenet")
    t.add_argument("--dataset", default="imagenet")
    t.add_argument("--batch-size", type=int, default=1024)
    t.add_argument("--iterations", type=int, default=100)
    t.add_argument("--scal", default="strong",
                   choices=["strong", "weak"])
    t.add_argument("--variant", default="SC-OBR",
                   choices=["SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"])
    t.add_argument("--reduce-design", default="tuned")
    t.add_argument("--backend", default="lustre",
                   choices=["lustre", "lmdb"])
    t.add_argument("--profile", default="mv2gdr",
                   choices=profiles)
    t.add_argument("--net-prototxt", default=None, metavar="FILE",
                   help="train a network defined in a Caffe prototxt "
                        "file instead of a model-zoo name")
    t.add_argument("--no-live", action="store_true",
                   help="suppress the per-iteration live status line "
                        "(S-Caffe runs print one by default)")

    m = sub.add_parser(
        "metrics",
        help="MPI_T-style introspection of a training run: scrape the "
             "runtime PVARs on simulated time and export them")
    m.add_argument("--list", action="store_true", dest="list_vars",
                   help="print the PVAR/CVAR catalogue and exit")
    m.add_argument("--cluster", default="A", choices=["A", "B"])
    m.add_argument("--gpus", type=int, default=16)
    m.add_argument("--network", default="googlenet")
    m.add_argument("--dataset", default="imagenet")
    m.add_argument("--batch-size", type=int, default=1024)
    m.add_argument("--iterations", type=int, default=4)
    m.add_argument("--variant", default="SC-OB",
                   choices=["SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"])
    m.add_argument("--reduce-design", default="tuned")
    m.add_argument("--profile", default="mv2gdr",
                   choices=profiles)
    m.add_argument("--seed", type=int, default=1)
    m.add_argument("--scrape-interval", type=float, default=0.05,
                   metavar="SECONDS",
                   help="PVAR sampling period in simulated seconds")
    m.add_argument("--out", default=None, metavar="DIR",
                   help="write exports here (default: print Prometheus "
                        "text to stdout)")
    m.add_argument("--format", default="all",
                   choices=["prom", "json", "csv", "all"],
                   help="which export(s) to write with --out")
    m.add_argument("--cvar", action="append", default=[],
                   metavar="NAME=VALUE",
                   help="set an MPI_T control variable before the run "
                        "(repeatable), e.g. coll.chain_size=4")

    pr = sub.add_parser(
        "profile",
        help="causal profile of a training run (critical path, comm "
             "matrix, what-if projection)")
    pr.add_argument("--cluster", default="A", choices=["A", "B"])
    pr.add_argument("--gpus", type=int, default=8)
    pr.add_argument("--model", "--network", dest="network",
                    default="alexnet")
    pr.add_argument("--dataset", default="imagenet")
    pr.add_argument("--batch-size", type=int, default=256)
    pr.add_argument("--iterations", type=int, default=3)
    pr.add_argument("--variant", default="SC-OBR",
                    choices=["SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"])
    pr.add_argument("--reduce-design", default="tuned")
    pr.add_argument("--profile", default="mv2gdr",
                    choices=profiles)
    pr.add_argument("--seed", type=int, default=None)
    pr.add_argument("--trace", metavar="FILE", default=None,
                    help="write a Perfetto/Chrome trace-event JSON file")
    pr.add_argument("--what-if", metavar="SPEC", default=None,
                    help="comma-separated resource rescales, e.g. "
                         "'ib=2,compute=1.3' (factor >1 = faster); "
                         "classes: compute, pcie, ib, host, cpu, "
                         "gpu_mem, overhead, all")
    pr.add_argument("--top", type=int, default=10,
                    help="rows per critical-path breakdown table")
    pr.add_argument("--json", metavar="FILE", default=None, dest="json_out",
                    help="write a machine-readable run file (RunCard + "
                         "profile summary; '-' for stdout) for "
                         "'repro diff'")

    df = sub.add_parser(
        "diff",
        help="differential run profiling: attribute the makespan delta "
             "between two saved profile runs (write them with "
             "'repro profile --json')")
    df.add_argument("base", help="baseline run file (repro profile --json)")
    df.add_argument("cand", help="candidate run file")
    df.add_argument("--top", type=int, default=8,
                    help="rows per attribution table")
    df.add_argument("--trace", metavar="FILE", default=None,
                    help="write a two-process Perfetto trace comparing "
                         "the runs' critical paths")

    o = sub.add_parser("osu", help="MPI_Reduce micro-benchmark (OMB-style)")
    o.add_argument("--cluster", default="A", choices=["A", "B"])
    o.add_argument("--profile", default="mv2gdr",
                   choices=profiles)
    o.add_argument("--design", default="tuned",
                   help="tuned | flat | chain | CB-8 | CC-4 | CCB-8 | ...")
    o.add_argument("--procs", type=int, default=160)
    o.add_argument("--sizes", default="64K,1M,8M,64M",
                   help="comma-separated message sizes")

    a = sub.add_parser("autotune",
                       help="build a reduce tuning table by sweeping")
    a.add_argument("--cluster", default="A", choices=["A", "B"])
    a.add_argument("--procs", type=int, default=160)
    a.add_argument("--sizes", default="64K,1M,8M,64M")
    a.add_argument("--designs", default="flat,CB-8,CC-8")

    tu = sub.add_parser(
        "tune",
        help="closed-loop CVAR auto-tuner: search the validated knob "
             "space and emit the committed (size, P, topology) tuning "
             "tables the dispatchers consult")
    tu.add_argument("--quick", action="store_true",
                    help="the small CI plan (byte-identical regeneration "
                         "of the committed tables)")
    tu.add_argument("--objective", default="latency",
                    choices=["latency", "critical-path"],
                    help="minimize end-to-end latency or the causal "
                         "profiler's critical-path length")
    tu.add_argument("--out", default=None, metavar="DIR",
                    help="directory to write the tables to (default: the "
                         "committed src/repro/mpi/tuning_tables/)")
    tu.add_argument("--check", action="store_true",
                    help="regenerate and byte-compare against the "
                         "committed tables instead of writing (exit 1 on "
                         "drift)")

    x = sub.add_parser(
        "crossover",
        help="MPI-vs-NCCL backend crossover study: sweep message size x "
             "GPU density x procs over every backend and report where "
             "the winner flips")
    x.add_argument("--clusters", default="A,B",
                   help="comma-separated cluster kinds (A=dense 16 "
                        "GPUs/node, B=sparse 2 GPUs/node)")
    x.add_argument("--procs", default="8,32",
                   help="comma-separated process counts")
    x.add_argument("--sizes", default="4K,64K,1M,16M",
                   help="comma-separated message sizes")
    x.add_argument("--collectives", default="allreduce,bcast",
                   help="comma-separated: allreduce | bcast")
    x.add_argument("--backends", default=None,
                   help="comma-separated backend subset "
                        f"(default: all of {', '.join(profiles)})")
    x.add_argument("--progress", action="store_true",
                   help="print each point as it is timed")

    c = sub.add_parser(
        "chaos",
        help="run training under a named fault plan (chaos experiment)")
    c.add_argument("--plan", default="flaky",
                   help="named fault plan: quiet | flaky-nic | straggler "
                        "| flaky | rank-crash | chaos | corrupt | stall")
    c.add_argument("--list-plans", action="store_true",
                   help="print the named fault plans and exit")
    c.add_argument("--cluster", default="A", choices=["A", "B"])
    c.add_argument("--gpus", type=int, default=16)
    c.add_argument("--network", default="alexnet")
    c.add_argument("--batch-size", type=int, default=256)
    c.add_argument("--iterations", type=int, default=20)
    c.add_argument("--seed", type=int, default=1)
    c.add_argument("--checkpoint-interval", type=int, default=5,
                   help="solver-state snapshot every K iterations "
                        "(0 disables)")
    c.add_argument("--variant", default="SC-OBR",
                   choices=["SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"])
    c.add_argument("--profile", default="mv2gdr",
                   choices=profiles)
    c.add_argument("--describe", action="store_true",
                   help="print the fault schedule before running")
    c.add_argument("--flight", metavar="FILE", default=None,
                   help="record a flight-recorder ring and write its "
                        "post-mortem dump here when the run fails or "
                        "the watchdog escalates")

    k = sub.add_parser(
        "check",
        help="collective conformance harness (differential + invariants)")
    k.add_argument("--quick", action="store_true",
                   help="smaller randomized matrix (CI-friendly)")
    k.add_argument("--seed", type=int, default=0,
                   help="matrix generation seed")
    k.add_argument("--max-p", type=int, default=None,
                   help="drop matrix cases with more ranks than this")
    k.add_argument("--case", default=None, metavar="SPEC",
                   help="run one case from its spec string "
                        "(as printed by a failing run)")
    k.add_argument("--self-test", action="store_true",
                   help="run the mutation self-test instead of the matrix")
    k.add_argument("--list", action="store_true", dest="list_cases",
                   help="print the matrix without running it")
    k.add_argument("--failures-out", default=None, metavar="FILE",
                   help="write failing case specs + repro commands here")
    k.add_argument("--chaos", action="store_true",
                   help="run the chaos-conformance matrix instead: every "
                        "collective x profile x fault kind must end "
                        "exact, recovered, or typed-error — never "
                        "silent corruption, never a hang")
    k.add_argument("--chaos-case", default=None, metavar="SPEC",
                   help="run one chaos cell from its spec string "
                        "(as printed by a failing chaos sweep)")
    k.add_argument("--chaos-self-test", action="store_true",
                   help="prove the chaos gate has teeth (disable the "
                        "checksum verify / the watchdog; each must be "
                        "caught)")

    sub.add_parser("table1", help="print the Table-1 feature matrix")
    sub.add_parser("networks", help="list the model zoo")
    return p


def _cmd_train(args) -> int:
    from .core import TrainConfig, Workload, train

    workload = None
    network = args.network
    if args.net_prototxt:
        from .dnn.prototxt import network_from_prototxt
        with open(args.net_prototxt) as f:
            spec = network_from_prototxt(f.read())
        workload = Workload.from_spec(spec)
        network = spec.name

    cfg = TrainConfig(network=network, dataset=args.dataset,
                      batch_size=args.batch_size,
                      iterations=args.iterations, scal=args.scal,
                      variant=args.variant,
                      reduce_design=args.reduce_design,
                      data_backend=args.backend,
                      measure_iterations=min(4, args.iterations))
    telemetry = None
    if args.framework == "scaffe" and not args.no_live:
        from .telemetry import TelemetrySession

        def status(row: dict) -> None:
            loss = (f"  loss {row['loss']:.4f}"
                    if row["loss"] is not None else "")
            print(f"  iter {row['iteration'] + 1:4d}  "
                  f"t={row['time'] * 1e3:9.2f} ms  "
                  f"{row['samples_per_second']:9.1f} samples/s{loss}")

        telemetry = TelemetrySession(live=status)
    report = train(args.framework, n_gpus=args.gpus,
                   cluster=args.cluster, config=cfg,
                   profile=args.profile, workload=workload,
                   telemetry=telemetry)
    print(report.summary())
    if report.ok:
        print(f"  time/iteration: {report.time_per_iteration * 1e3:.2f} ms")
        for phase, t in sorted(report.phase_breakdown.items()):
            print(f"  {phase:12s} {t * 1e3:9.2f} ms/iter")
        return 0
    print(f"  note: {report.notes}")
    return 1


def _cmd_metrics(args) -> int:
    import json
    import os

    from .core import TrainConfig, run_scaffe
    from .hardware import make_cluster
    from .sim import Simulator
    from .telemetry import (
        TelemetrySession, timeseries_to_csv, to_json_snapshot,
        to_prometheus,
    )

    session = TelemetrySession(scrape_interval=args.scrape_interval)

    if args.list_vars:
        # Catalogue only: bind against the target cluster/runtime so
        # the hardware PVARs and profile CVARs appear, but don't run.
        from .mpi import MPIRuntime
        from .telemetry import bind_cluster, bind_runtime
        sim = Simulator(seed=args.seed)
        cluster = make_cluster(sim, args.cluster)
        session.attach(sim)
        bind_cluster(session, cluster)
        bind_runtime(session, MPIRuntime(cluster, args.profile))
        print("# performance variables (read-only)")
        for name in session.pvar_names():
            pv = session.pvar(name)
            unit = f" [{pv.unit}]" if pv.unit else ""
            print(f"{name:28s} {pv.description}{unit}")
        print("\n# control variables (get/set)")
        for name in session.cvar_names():
            cv = session._cvars[name]
            print(f"{name:28s} {cv.description} "
                  f"(= {session.cvar_get(name)!r})")
        return 0

    for spec in args.cvar:
        name, sep, value = spec.partition("=")
        if not sep:
            print(f"bad --cvar {spec!r} (want NAME=VALUE)",
                  file=sys.stderr)
            return 2
        session.queue_cvar(name.strip(), value.strip())

    cfg = TrainConfig(network=args.network, dataset=args.dataset,
                      batch_size=args.batch_size,
                      iterations=args.iterations,
                      variant=args.variant,
                      reduce_design=args.reduce_design,
                      measure_iterations=min(4, args.iterations))
    sim = Simulator(seed=args.seed)
    cluster = make_cluster(sim, args.cluster)
    try:
        report = run_scaffe(cluster, args.gpus, cfg, profile=args.profile,
                            telemetry=session)
    except (KeyError, TypeError, ValueError) as exc:
        # Bad --cvar assignments surface when the runtime binds them.
        print(f"cvar error: {exc}", file=sys.stderr)
        return 2
    if not report.ok:
        print(f"run failed: {report.failure} ({report.notes})")
        return 1

    config = {
        "cluster": args.cluster, "gpus": args.gpus,
        "network": args.network, "batch_size": args.batch_size,
        "iterations": args.iterations, "variant": args.variant,
        "reduce_design": args.reduce_design, "profile": args.profile,
        "seed": args.seed, "scrape_interval": args.scrape_interval,
    }
    prom = to_prometheus(session.registry)
    snap = json.dumps(to_json_snapshot(session, config=config),
                      sort_keys=True, indent=2) + "\n"
    csv = timeseries_to_csv(session.samples)

    if args.out is None:
        print({"prom": prom, "json": snap, "csv": csv}
              .get(args.format, prom), end="")
        return 0
    os.makedirs(args.out, exist_ok=True)
    wanted = (("prom", "metrics.prom", prom),
              ("json", "metrics.json", snap),
              ("csv", "timeseries.csv", csv))
    for fmt, fname, text in wanted:
        if args.format not in ("all", fmt):
            continue
        path = os.path.join(args.out, fname)
        with open(path, "w") as fh:
            fh.write(text)
        print(f"wrote {path}")
    print(report.summary())
    return 0


def _parse_what_if(spec: str) -> dict:
    """Parse 'ib=2,compute=1.3' into a {class: factor} dict."""
    scales = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise argparse.ArgumentTypeError(
                f"bad what-if term {part!r} (want name=factor)")
        name, _, val = part.partition("=")
        try:
            scales[name.strip()] = float(val)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad what-if factor {val!r} for {name.strip()!r}")
    return scales


def _cmd_profile(args) -> int:
    from .core import TrainConfig, run_scaffe
    from .hardware import make_cluster
    from .obs import StragglerDetector, make_runcard, run_payload, save_run
    from .prof import SpanRecorder, save_trace
    from .sim import Simulator

    scales = _parse_what_if(args.what_if) if args.what_if else None

    cfg = TrainConfig(network=args.network, dataset=args.dataset,
                      batch_size=args.batch_size,
                      iterations=args.iterations,
                      variant=args.variant,
                      reduce_design=args.reduce_design,
                      measure_iterations=min(4, args.iterations))
    sim = Simulator() if args.seed is None else Simulator(seed=args.seed)
    cluster = make_cluster(sim, args.cluster)
    recorder = SpanRecorder(sim)
    report = run_scaffe(cluster, args.gpus, cfg, profile=args.profile,
                        recorder=recorder)
    if not report.ok:
        print(f"run failed: {report.failure} ({report.notes})")
        return 1
    prof = report.profile
    straggler = StragglerDetector(recorder).report()
    card = make_runcard(report, cfg, cluster_kind=args.cluster,
                        n_gpus=args.gpus, profile=args.profile,
                        seed=args.seed, sim=sim)
    if args.json_out == "-":
        print(json.dumps(run_payload(card, prof, straggler),
                         indent=2, sort_keys=True))
        return 0
    print(f"# {cfg.network} x{args.gpus} on Cluster-{args.cluster}, "
          f"{cfg.variant}/{args.reduce_design}, {args.profile}")
    print(prof.render(top=args.top))
    print(straggler.render())
    if args.json_out:
        save_run(args.json_out, card, prof, straggler)
        print(f"\nrun file written to {args.json_out} "
              f"(compare with: repro diff BASE.json {args.json_out})")
    if scales:
        base = prof.makespan
        proj = prof.what_if(scales)
        terms = ", ".join(f"{k} {v:g}x" for k, v in scales.items())
        print(f"\nwhat-if ({terms}):")
        print(f"  projected makespan {proj * 1e3:12.3f} ms "
              f"({base / proj:.2f}x speedup, lower bound)")
    if args.trace:
        save_trace(args.trace, recorder.closed_spans())
        print(f"\ntrace written to {args.trace} "
              f"(load in ui.perfetto.dev or chrome://tracing)")
    return 0


def _cmd_diff(args) -> int:
    from .obs import diff_runs, diff_trace_events, load_run

    try:
        base = load_run(args.base)
        cand = load_run(args.cand)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load run file: {exc}", file=sys.stderr)
        return 2
    diff = diff_runs(base, cand)
    print(diff.render(top=args.top))
    if args.trace:
        with open(args.trace, "w") as fh:
            json.dump({"traceEvents": diff_trace_events(base, cand),
                       "displayTimeUnit": "ms"}, fh)
        print(f"\ncomparison trace written to {args.trace} "
              f"(load in ui.perfetto.dev)")
    return 0


def _cmd_chaos(args) -> int:
    from .analysis import format_fault_report
    from .core import TrainConfig, run_scaffe
    from .faults import PLAN_NAMES, named_plan
    from .hardware import make_cluster
    from .sim import Simulator

    if args.list_plans:
        for name in PLAN_NAMES:
            plan = named_plan(name, seed=args.seed, horizon=1.0,
                              n_ranks=args.gpus, n_nodes=2,
                              gpus_per_node=max(1, args.gpus // 2),
                              nics_per_node=1)
            kinds = sorted({type(ev).__name__ for ev in plan.events})
            print(f"{name:12s} {len(plan):3d} events  "
                  f"{', '.join(kinds) if kinds else '(quiet)'}")
        return 0

    if args.plan not in PLAN_NAMES:
        print(f"unknown plan {args.plan!r}; choose from "
              f"{', '.join(PLAN_NAMES)}", file=sys.stderr)
        return 2

    def mkcfg(ckpt: int) -> TrainConfig:
        return TrainConfig(network=args.network,
                           batch_size=args.batch_size,
                           iterations=args.iterations,
                           variant=args.variant,
                           measure_iterations=min(4, args.iterations),
                           checkpoint_interval=ckpt)

    # Quiet probe run: estimate the horizon so the plan's fault windows
    # land inside the run rather than after it finishes.
    probe_cluster = make_cluster(Simulator(), args.cluster)
    probe = run_scaffe(probe_cluster, args.gpus, mkcfg(0),
                       profile=args.profile)
    if not probe.ok:
        print(f"probe run failed: {probe.failure} ({probe.notes})")
        return 1
    # Schedule faults over the span that is actually simulated, not the
    # extrapolated total — events past the simulated window never fire.
    horizon = probe.simulated_time or probe.total_time

    cluster = make_cluster(Simulator(), args.cluster)
    plan = named_plan(args.plan, seed=args.seed, horizon=horizon,
                      n_ranks=args.gpus,
                      n_nodes=len(cluster.nodes),
                      gpus_per_node=cluster.gpus_per_node,
                      nics_per_node=len(cluster.nodes[0].nics))
    if args.describe:
        print(plan.describe())
        print()
    recorder = flight = None
    if args.flight:
        from .obs import FlightRecorder
        from .prof import SpanRecorder
        recorder = SpanRecorder(cluster.sim)
        flight = FlightRecorder(recorder, path=args.flight)
    report = run_scaffe(cluster, args.gpus, mkcfg(args.checkpoint_interval),
                        profile=args.profile, fault_plan=plan,
                        recorder=recorder)
    if flight is not None and not report.ok and flight.dumps == 0:
        flight.dump(f"{report.failure}: {report.notes}")
    if flight is not None and flight.dumps:
        print(f"flight-recorder post-mortem written to {args.flight} "
              f"({len(flight.events)} events, {flight.dumps} dump(s))")
    print(f"plan {plan.name!r} ({len(plan)} events), "
          f"quiet baseline {probe.total_time:.2f}s")
    print(report.summary())
    if report.ok:
        overhead = report.total_time / probe.total_time - 1.0
        print(f"  overhead vs quiet: {overhead * 100:+.1f}%")
    print(format_fault_report(report.faults))
    fr = report.faults
    print("integrity digest: "
          f"mpi.integrity.corrupt_detected={fr.corrupt_detected} "
          f"mpi.integrity.retransmits={fr.retransmits} "
          f"mpi.integrity.failures={fr.integrity_failures} "
          f"mpi.integrity.silent_corruptions={fr.silent_corruptions}")
    if fr.silent_corruptions:
        # The one outcome the contract forbids outright: corrupted
        # bytes survived verification.  Louder exit than a plain fail.
        print("SILENT CORRUPTION: corrupted deliveries passed checksum "
              "verification", file=sys.stderr)
        return 2
    return 0 if report.ok else 1


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n >> 20}M"
    if n >= 1 << 10:
        return f"{n >> 10}K"
    return str(n)


def _osu_point(cluster_kind, profile, design, nbytes, procs) -> float:
    from .cuda import DeviceBuffer
    from .hardware import make_cluster
    from .mpi import MPIRuntime
    from .mpi.collectives import (
        hierarchical_reduce, reduce_binomial, reduce_chain, tuned_reduce,
    )
    from .sim import Simulator

    cluster = make_cluster(Simulator(), cluster_kind)
    rt = MPIRuntime(cluster, profile)
    comm = rt.world(procs)

    def program(ctx):
        sendbuf = DeviceBuffer(ctx.gpu, nbytes)
        recvbuf = DeviceBuffer(ctx.gpu, nbytes) if ctx.rank == 0 else None
        if design == "tuned":
            yield from tuned_reduce(ctx, sendbuf, recvbuf, 0)
        elif design == "flat":
            yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
        elif design == "chain":
            yield from reduce_chain(ctx, sendbuf, recvbuf, 0)
        else:
            yield from hierarchical_reduce(ctx, sendbuf, recvbuf, 0,
                                           config=design)
        return ctx.sim.now

    return max(rt.execute(comm, program))


def _cmd_osu(args) -> int:
    sizes = [_parse_size(s) for s in args.sizes.split(",") if s.strip()]
    print(f"# MPI_Reduce, {args.procs} procs, profile={args.profile}, "
          f"design={args.design}, Cluster-{args.cluster}")
    print(f"{'size':>8}  {'latency':>14}")
    for nbytes in sizes:
        t = _osu_point(args.cluster, args.profile, args.design, nbytes,
                       args.procs)
        print(f"{_fmt_bytes(nbytes):>8}  {t * 1e6:12.1f} us")
    return 0


def _cmd_autotune(args) -> int:
    from .hardware import make_cluster
    from .mpi.collectives import autotune
    from .sim import Simulator

    sizes = [_parse_size(s) for s in args.sizes.split(",") if s.strip()]
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    table = autotune(lambda: make_cluster(Simulator(), args.cluster),
                     args.procs, sizes, designs)
    print(f"# tuned selection for {args.procs} procs on "
          f"Cluster-{args.cluster}")
    for bound, design in table.entries:
        rng = f"< {_fmt_bytes(bound)}" if bound else "otherwise"
        print(f"{rng:>12} -> {design}")
    return 0


def _cmd_tune(args) -> int:
    from .tune import tables
    from .tune.search import (
        check_tables, full_plan, quick_plan, run_plan, write_tables,
    )

    plan = quick_plan() if args.quick else full_plan()
    print(f"# repro tune: {'quick' if args.quick else 'full'} plan, "
          f"{len(plan)} points, objective={args.objective}")
    tuned = run_plan(plan, args.objective, log=print)
    out_dir = args.out or tables.tables_dir()
    if args.check:
        problems = check_tables(tuned, out_dir)
        if problems:
            for p in problems:
                print(f"DRIFT: {p}")
            return 1
        n = sum(len(t.entries) for t in tuned.values())
        print(f"tables OK: {len(tuned)} tables ({n} entries) "
              f"byte-identical to {out_dir}")
        return 0
    written = write_tables(tuned, out_dir)
    tables.invalidate_cache()
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_crossover(args) -> int:
    from .analysis import crossover_report, sweep
    from .analysis.report import format_bytes, format_time

    def csv(text):
        return [s.strip() for s in text.split(",") if s.strip()]

    progress = None
    if args.progress:
        def progress(pt):
            print(f"  {pt.collective} Cluster-{pt.cluster} P={pt.P} "
                  f"{format_bytes(pt.nbytes)}: {pt.winner_label()} "
                  f"({format_time(pt.latency[pt.winner])})")

    points = sweep(
        collectives=csv(args.collectives),
        clusters=csv(args.clusters),
        procs=[int(s) for s in csv(args.procs)],
        sizes=[_parse_size(s) for s in csv(args.sizes)],
        backends=csv(args.backends) if args.backends else (),
        progress=progress)
    print(crossover_report(points))
    return 0


def _cmd_chaos_check(args) -> int:
    from .check import (
        chaos_outcome_tally, generate_chaos_matrix, parse_chaos_case,
        run_chaos, run_chaos_case, run_chaos_selftest,
    )

    if args.chaos_self_test:
        outcomes = run_chaos_selftest()
        for o in outcomes:
            print(o.describe())
        ok = all(o.detected and o.clean_ok for o in outcomes)
        print(f"chaos self-test: {sum(o.detected for o in outcomes)}/"
              f"{len(outcomes)} sabotaged protections caught")
        return 0 if ok else 1

    if args.chaos_case is not None:
        result = run_chaos_case(parse_chaos_case(args.chaos_case))
        print(result.describe())
        for k, v in sorted(result.counters.items()):
            print(f"    {k}={v}")
        print(f"    sim_time={result.sim_time:.6f}s")
        return 0 if result.ok else 1

    cases = generate_chaos_matrix(args.seed, quick=args.quick)
    if args.list_cases:
        for c in cases:
            print(c.spec())
        return 0

    results = run_chaos(cases, progress=lambda r: print(r.describe()))
    tally = chaos_outcome_tally(results)
    failures = [r for r in results if not r.ok]
    print(f"\nchaos conformance: {len(results) - len(failures)}/"
          f"{len(results)} cells pass (seed {args.seed})  "
          + "  ".join(f"{k}={v}" for k, v in tally.items()))
    if failures and args.failures_out:
        with open(args.failures_out, "w") as fh:
            for r in failures:
                fh.write(r.describe() + "\n")
        print(f"failing-cell repro commands written to {args.failures_out}")
    return 1 if failures else 0


def _cmd_check(args) -> int:
    from .check import (
        generate_matrix, parse_case, run_case, run_matrix,
        run_mutation_selftest,
    )

    if args.chaos or args.chaos_case is not None or args.chaos_self_test:
        return _cmd_chaos_check(args)

    if args.self_test:
        outcomes = run_mutation_selftest()
        for o in outcomes:
            print(o.describe())
        ok = all(o.detected and o.clean_ok for o in outcomes)
        print(f"self-test: {sum(o.detected for o in outcomes)}/"
              f"{len(outcomes)} mutations detected")
        return 0 if ok else 1

    if args.case is not None:
        result = run_case(parse_case(args.case))
        print(result.describe())
        print(f"sim_time={result.sim_time:.6f}s events={result.n_events}")
        return 0 if result.ok else 1

    cases = generate_matrix(args.seed, quick=args.quick, max_p=args.max_p)
    if args.list_cases:
        for c in cases:
            print(c.spec())
        return 0

    results = run_matrix(cases, progress=lambda r: print(r.describe()))
    failures = [r for r in results if not r.ok]
    print(f"\nconformance: {len(results) - len(failures)}/{len(results)} "
          f"cases pass (seed {args.seed})")
    if failures and args.failures_out:
        with open(args.failures_out, "w") as fh:
            for r in failures:
                fh.write(r.describe() + "\n")
        print(f"failing-case repro commands written to {args.failures_out}")
    return 1 if failures else 0


def _cmd_table1(_args) -> int:
    from .core import table1_rows

    rows = table1_rows()
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(r[c]) for r in rows)) for c in cols}
    print(" | ".join(c.ljust(widths[c]) for c in cols))
    print("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        print(" | ".join(r[c].ljust(widths[c]) for c in cols))
    return 0


def _cmd_networks(_args) -> int:
    from .dnn import NETWORK_BUILDERS, get_network

    print(f"{'network':16} {'params':>10} {'bytes':>10} "
          f"{'GFLOP/sample':>13} {'layers':>7} {'weighted':>9}")
    for name in sorted(NETWORK_BUILDERS):
        net = get_network(name)
        print(f"{name:16} {net.param_count / 1e6:9.2f}M "
              f"{net.param_bytes / (1 << 20):8.1f}Mi "
              f"{net.fwd_flops_per_sample / 1e9:13.3f} "
              f"{len(net.layers):7d} "
              f"{len(net.parametrized_layers()):9d}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "metrics": _cmd_metrics,
        "profile": _cmd_profile,
        "diff": _cmd_diff,
        "chaos": _cmd_chaos,
        "osu": _cmd_osu,
        "autotune": _cmd_autotune,
        "tune": _cmd_tune,
        "crossover": _cmd_crossover,
        "check": _cmd_check,
        "table1": _cmd_table1,
        "networks": _cmd_networks,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
