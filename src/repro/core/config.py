"""Run configuration for distributed training experiments."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TrainConfig"]


@dataclass(frozen=True)
class TrainConfig:
    """Configuration of one training run (one data point of a figure).

    Mirrors the paper's experimental knobs: network, dataset, global
    batch size, iteration count, strong/weak scaling (the ``-scal``
    command-line option of the public S-Caffe), the data backend
    (LMDB vs. ImageDataLayer-on-Lustre), the S-Caffe co-design variant,
    and the reduction design.
    """

    network: str = "googlenet"
    dataset: str = "imagenet"
    #: Global batch size (strong scaling divides this by the GPU count).
    batch_size: int = 1024
    iterations: int = 100
    #: "strong": global batch fixed, divided across solvers.
    #: "weak":   per-solver batch fixed at ``batch_size``.
    scal: str = "strong"
    #: "lustre" (ImageDataLayer) or "lmdb".
    data_backend: str = "lustre"
    #: S-Caffe co-design level: "SC-B" | "SC-OB" | "SC-OB-naive" | "SC-OBR".
    variant: str = "SC-OBR"
    #: Gradient-reduction design: "flat" (profile default binomial),
    #: "tuned" (HR tuned selection), or an explicit HR label ("CB-8", ...).
    reduce_design: str = "tuned"
    #: Iterations actually simulated; total time extrapolates linearly to
    #: ``iterations`` (discrete-event runs are deterministic, so a short
    #: measured window is exact after the one-iteration warmup).
    measure_iterations: int = 4
    #: Random seed for synthetic workload generation.
    seed: int = 0
    #: Run Caffe's Testing phase on the root solver every N training
    #: iterations (0 disables testing).  Section 6.2: "Caffe reports
    #: accuracy during the Testing phase only."
    test_interval: int = 0
    #: Samples per Testing pass.
    test_batch: int = 64
    #: Snapshot solver state every K iterations (0 disables, like
    #: Caffe's ``snapshot`` solver parameter).  Required for restart
    #: after a rank crash; without it recovery recomputes from scratch.
    checkpoint_interval: int = 0

    def __post_init__(self):
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.scal not in ("strong", "weak"):
            raise ValueError(f"scal must be strong|weak, got {self.scal!r}")
        if self.data_backend not in ("lustre", "lmdb", "imagedata"):
            raise ValueError(f"bad data_backend {self.data_backend!r}")
        if self.variant not in ("SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"):
            raise ValueError(f"bad variant {self.variant!r}")
        if not 1 <= self.measure_iterations <= self.iterations:
            raise ValueError("need 1 <= measure_iterations <= iterations")
        if self.test_interval < 0 or self.test_batch < 1:
            raise ValueError("bad testing configuration")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")

    def local_batch(self, n_gpus: int) -> int:
        """Per-solver batch size under the configured scaling mode.

        Strong scaling: batch/P (e.g. batch 1,024 on 32 GPUs -> 32 per
        solver, Section 6.2).  Weak scaling: the full batch per solver.
        """
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        if self.scal == "weak":
            return self.batch_size
        if self.batch_size < n_gpus:
            raise ValueError(
                f"strong scaling needs batch_size >= n_gpus "
                f"({self.batch_size} < {n_gpus})")
        return self.batch_size // n_gpus

    def global_batch(self, n_gpus: int) -> int:
        return (self.batch_size * n_gpus if self.scal == "weak"
                else self.local_batch(n_gpus) * n_gpus)

    def derive(self, **kwargs) -> "TrainConfig":
        return replace(self, **kwargs)
