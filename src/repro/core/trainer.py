"""Top-level training API: one entry point for all frameworks.

This is the public "run an experiment" surface used by the examples and
benchmarks::

    from repro import train
    report = train("scaffe", cluster="A", n_gpus=64,
                   config=TrainConfig(network="googlenet"))
"""

from __future__ import annotations

from typing import Optional, Union

from ..hardware import Cluster, make_cluster
from ..mpi import MPIProfile, MV2GDR
from ..sim import Simulator, Tracer
from .caffe import run_caffe
from .cntk import run_cntk
from .config import TrainConfig
from .metrics import TrainingReport
from .mpi_caffe import run_mpi_caffe
from .param_server import run_param_server
from .scaffe import run_scaffe
from .workload import RealCompute, Workload

__all__ = ["train", "FRAMEWORK_NAMES"]

FRAMEWORK_NAMES = ("scaffe", "caffe", "nvcaffe", "cntk", "inspur",
                   "mpicaffe")


def train(framework: str, *, n_gpus: int,
          cluster: Union[Cluster, str] = "A",
          config: Optional[TrainConfig] = None,
          profile: MPIProfile | str = MV2GDR,
          workload: Optional[Workload] = None,
          adapter: Optional[RealCompute] = None,
          tracer: Optional[Tracer] = None,
          recorder=None,
          telemetry=None) -> TrainingReport:
    """Train ``config.network`` with the named framework.

    Parameters
    ----------
    framework:
        ``"scaffe"`` (variant chosen by ``config.variant``), ``"caffe"``
        (BVLC baseline), ``"nvcaffe"`` (NVIDIA fork), ``"cntk"``, or
        ``"inspur"`` (parameter server).
    cluster:
        A built :class:`~repro.hardware.Cluster`, or ``"A"``/``"B"`` to
        build the paper's testbed on a fresh simulator.
    profile:
        MPI runtime profile (S-Caffe only; comparators pin their own).
    adapter:
        Optional :class:`RealCompute` for payload-carrying runs
        (S-Caffe only).
    recorder:
        Optional :class:`~repro.prof.SpanRecorder` for causal profiling
        (S-Caffe only); must be built on the cluster's simulator.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySession` for MPI_T
        introspection and metrics export (S-Caffe only).
    """
    cfg = config or TrainConfig()
    if isinstance(cluster, str):
        cluster = make_cluster(Simulator(), cluster)

    key = framework.lower().replace("-", "").replace("_", "")
    if key in ("scaffe", "s"):
        return run_scaffe(cluster, n_gpus, cfg, profile=profile,
                          workload=workload, adapter=adapter,
                          tracer=tracer, recorder=recorder,
                          telemetry=telemetry)
    if key == "caffe":
        return run_caffe(cluster, n_gpus, cfg, workload=workload,
                         tracer=tracer)
    if key in ("nvcaffe", "nvidiacaffe"):
        return run_caffe(cluster, n_gpus, cfg, optimized=True,
                         workload=workload, tracer=tracer)
    if key == "cntk":
        return run_cntk(cluster, n_gpus, cfg, workload=workload,
                        tracer=tracer)
    if key in ("inspur", "inspurcaffe", "paramserver", "ps"):
        return run_param_server(cluster, n_gpus, cfg, workload=workload,
                                tracer=tracer)
    if key in ("mpicaffe", "modelparallel", "mp"):
        return run_mpi_caffe(cluster, n_gpus, cfg, workload=workload,
                             tracer=tracer)
    raise KeyError(
        f"unknown framework {framework!r}; choose from {FRAMEWORK_NAMES}")
