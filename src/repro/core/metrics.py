"""Training-run metrics and reports.

The paper reports two headline metrics: *training time for a fixed
number of iterations* (Figs. 8, 9, 13; Table 2) and *samples per second*
(Fig. 10).  A :class:`TrainingReport` carries both plus the per-phase
breakdown the co-design analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..prof import ProfileReport
    from ..telemetry import TelemetrySummary

__all__ = ["FaultReport", "TrainingReport", "speedup"]


@dataclass
class FaultReport:
    """Fault/robustness outcome of one training run.

    ``injected`` counts scheduled fault events that actually fired
    (by event-class name); the remaining counters come from the runtime
    (transport metrics, failure detector, checkpoint store).
    """

    #: Fault-event class name -> times applied by the injector.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Rank deaths observed by the failure detector.
    detected_failures: int = 0
    #: World ranks that crashed.
    crashed_ranks: list = field(default_factory=list)
    #: pt2pt transfer attempts retried after a transient link fault.
    retries: int = 0
    #: Transfers that exhausted their retry budget.
    timeouts: int = 0
    #: Forced message drops observed by the transport.
    messages_dropped: int = 0
    #: Transfers that hit a down link.
    link_down_hits: int = 0
    #: Successful shrink-and-resume recoveries (counted once per
    #: recovery episode, on the root rank).
    recoveries: int = 0
    #: Simulated wall-clock spent in recovery (revocation -> resumed
    #: training), root rank.
    recovery_time: float = 0.0
    #: Checkpoint saves / restores and their total simulated cost.
    checkpoints: int = 0
    checkpoint_time: float = 0.0
    restores: int = 0
    restore_time: float = 0.0
    #: Integrity layer: corrupted deliveries caught by the checksum
    #: verify, retransmissions they triggered, and transfers that
    #: exhausted the retransmit budget against a persistent corruptor.
    corrupt_detected: int = 0
    retransmits: int = 0
    integrity_failures: int = 0
    #: Corrupted deliveries that *survived* verification.  Must stay 0;
    #: non-zero means the checksum layer is broken (the chaos gate and
    #: the mutation self-test key off this).
    silent_corruptions: int = 0
    #: Checkpoint restores that found (and discarded) a rotten snapshot.
    checksum_failures: int = 0
    #: Watchdog deadline windows that fired / escalation actions taken.
    watchdog_timeouts: int = 0
    watchdog_escalations: int = 0

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def clean(self) -> bool:
        """True when nothing was injected and nothing failed."""
        return (self.total_injected == 0 and self.detected_failures == 0
                and self.retries == 0 and self.timeouts == 0
                and self.corrupt_detected == 0
                and self.silent_corruptions == 0
                and self.watchdog_timeouts == 0)


@dataclass
class TrainingReport:
    """Outcome of one training run."""

    framework: str
    network: str
    n_gpus: int
    iterations: int
    #: Simulated wall-clock for ``iterations`` iterations, seconds.
    total_time: float
    #: Samples consumed per iteration across all solvers.
    global_batch: int
    #: Wall-clock actually simulated (the measurement window
    #: ``total_time`` extrapolates from); 0.0 when not tracked.  Fault
    #: plans should be scheduled over THIS horizon, not ``total_time``.
    simulated_time: float = 0.0
    #: Phase name -> per-iteration time on the critical path (root rank).
    phase_breakdown: Dict[str, float] = field(default_factory=dict)
    #: Run refused/failed: "oom", "unsupported", "hang", or None.
    failure: Optional[str] = None
    #: Mean per-solver I/O stall per iteration.
    io_stall_per_iteration: float = 0.0
    #: Testing-phase outcomes [(iteration, TestResult-or-None), ...]
    #: when the run was configured with a test_interval.
    test_results: list = field(default_factory=list)
    #: Robustness outcome (present when the run was fault-injected or
    #: checkpointed; None for plain quiet runs).
    faults: Optional[FaultReport] = None
    #: Causal profile (present when the run had a SpanRecorder attached;
    #: None for unprofiled runs).
    profile: Optional["ProfileReport"] = None
    #: End-of-run telemetry digest (present when the run had a
    #: TelemetrySession attached; None otherwise).
    telemetry: Optional["TelemetrySummary"] = None
    notes: str = ""

    @property
    def final_test_accuracy(self) -> Optional[float]:
        """Accuracy of the last real-math Testing pass, if any."""
        for _, result in reversed(self.test_results):
            if result is not None:
                return result.accuracy
        return None

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def time_per_iteration(self) -> float:
        if not self.ok:
            raise RuntimeError(f"run failed: {self.failure}")
        return self.total_time / self.iterations

    @property
    def samples_per_second(self) -> float:
        """The Fig. 10 metric (higher is better)."""
        if not self.ok:
            raise RuntimeError(f"run failed: {self.failure}")
        return self.global_batch * self.iterations / self.total_time

    def phase(self, name: str) -> float:
        return self.phase_breakdown.get(name, 0.0)

    def summary(self) -> str:
        if not self.ok:
            return (f"{self.framework:12s} {self.network:14s} "
                    f"{self.n_gpus:4d} GPUs  FAILED ({self.failure})")
        line = (f"{self.framework:12s} {self.network:14s} "
                f"{self.n_gpus:4d} GPUs  {self.total_time:9.2f}s "
                f"({self.samples_per_second:9.1f} samples/s)")
        if self.telemetry is not None:
            line += "\n  " + self.telemetry.footer()
        return line


def speedup(baseline: TrainingReport, improved: TrainingReport) -> float:
    """Speedup of ``improved`` over ``baseline`` (>1 means faster)."""
    return baseline.total_time / improved.total_time
