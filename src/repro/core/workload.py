"""Workload preparation: layer groups, device buffers, compute adapters.

The distributed frameworks communicate at the granularity of
*parametrized layers* (multi-stage designs post one collective per
weighted layer).  A :class:`LayerGroup` is a parametrized layer with the
compute cost of its trailing parameter-free layers (ReLU/pool/LRN/...)
folded in — those layers never communicate, so folding preserves both
the schedule and the total compute while keeping the event count sane
at 160 ranks.

Two workload sources:

- :meth:`Workload.from_spec` — the cost-model zoo (cluster-scale runs).
- :meth:`Workload.from_net` — a real NumPy :class:`~repro.dnn.net.Net`;
  buffers then carry real payloads, and a :class:`RealCompute` adapter
  performs actual forward/backward/update math so end-to-end training
  can be checked for numerical equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cuda import DeviceBuffer
from ..dnn.net import Net
from ..dnn.solver import SGDSolver, SolverConfig
from ..dnn.specs import NetworkSpec
from ..hardware.gpu import GPUDevice

__all__ = ["LayerGroup", "Workload", "SolverBuffers", "RealCompute"]


@dataclass(frozen=True)
class LayerGroup:
    """One parametrized layer + folded-in neighbour compute."""

    name: str
    param_bytes: int
    fwd_flops_per_sample: float
    bwd_flops_per_sample: float
    #: Output activation size per sample at this group's downstream cut
    #: (what a model-parallel split must communicate).
    out_activation_bytes: int = 0

    def __post_init__(self):
        if self.param_bytes < 0:
            raise ValueError("param_bytes must be >= 0")
        if self.out_activation_bytes < 0:
            raise ValueError("out_activation_bytes must be >= 0")


class Workload:
    """What a solver trains: communication groups + memory model."""

    def __init__(self, name: str, groups: List[LayerGroup],
                 input_bytes_per_sample: int,
                 activation_bytes_per_sample: int,
                 net: Optional[Net] = None):
        if not groups:
            raise ValueError("workload needs at least one layer group")
        self.name = name
        self.groups = groups
        self.input_bytes_per_sample = input_bytes_per_sample
        self.activation_bytes_per_sample = activation_bytes_per_sample
        #: Real-math net template (None for cost-model workloads).
        self.net = net

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: NetworkSpec) -> "Workload":
        groups: List[LayerGroup] = []
        pending_fwd = 0.0
        pending_bwd = 0.0
        for layer in spec.layers:
            if layer.has_params:
                groups.append(LayerGroup(
                    layer.name, layer.param_bytes,
                    layer.fwd_flops_per_sample + pending_fwd,
                    layer.bwd_flops_per_sample + pending_bwd,
                    layer.activation_bytes_per_sample))
                pending_fwd = pending_bwd = 0.0
            else:
                pending_fwd += layer.fwd_flops_per_sample
                pending_bwd += layer.bwd_flops_per_sample
                # The cut after the folded tail carries the tail's
                # (smaller) activation.
                if groups:
                    last = groups[-1]
                    groups[-1] = LayerGroup(
                        last.name, last.param_bytes,
                        last.fwd_flops_per_sample,
                        last.bwd_flops_per_sample,
                        layer.activation_bytes_per_sample)
        if not groups:
            groups.append(LayerGroup(spec.name, 0, pending_fwd,
                                     pending_bwd, 4))
            pending_fwd = pending_bwd = 0.0
        elif pending_fwd or pending_bwd:
            # Trailing parameter-free layers fold into the last group.
            last = groups[-1]
            groups[-1] = LayerGroup(
                last.name, last.param_bytes,
                last.fwd_flops_per_sample + pending_fwd,
                last.bwd_flops_per_sample + pending_bwd,
                last.out_activation_bytes)
        return cls(spec.name, groups, spec.input_bytes_per_sample,
                   spec.activation_bytes_per_sample())

    @classmethod
    def from_net(cls, net: Net, *, flops_per_param: float = 4.0
                 ) -> "Workload":
        """A real-math workload: one group per parametrized real layer.

        Nominal compute cost is proportional to parameter count — only
        the *schedule*, not absolute timing, matters for equivalence
        tests.
        """
        groups = []
        for layer in net.layers:
            if layer.param_count:
                nbytes = layer.param_count * 4  # communicated as float32
                groups.append(LayerGroup(
                    layer.name, nbytes,
                    flops_per_param * layer.param_count,
                    2 * flops_per_param * layer.param_count))
        if not groups:
            raise ValueError("real net has no parameters")
        return cls(net.name, groups, 64, 256, net=net)

    # -- aggregates --------------------------------------------------------------
    @property
    def param_bytes(self) -> int:
        return sum(g.param_bytes for g in self.groups)

    @property
    def fwd_flops_per_sample(self) -> float:
        return sum(g.fwd_flops_per_sample for g in self.groups)

    @property
    def bwd_flops_per_sample(self) -> float:
        return sum(g.bwd_flops_per_sample for g in self.groups)

    def memory_per_solver(self, batch_per_gpu: int) -> int:
        """Weights + gradients + packed staging + activations."""
        if batch_per_gpu < 1:
            raise ValueError("batch_per_gpu must be >= 1")
        return (3 * self.param_bytes
                + batch_per_gpu * (self.activation_bytes_per_sample
                                   + self.input_bytes_per_sample))

    def group_offsets(self) -> List[Tuple[int, int]]:
        """(offset, nbytes) of each group in the packed flat buffer."""
        out = []
        off = 0
        for g in self.groups:
            out.append((off, g.param_bytes))
            off += g.param_bytes
        return out


class SolverBuffers:
    """Per-rank device buffers for one solver.

    Packed mode (one buffer spanning all groups — Caffe's
    packed_comm_buffer / packed_reduction_buffer) and per-group mode
    (one buffer per parametrized layer — the multi-stage designs) are
    chosen *per direction*: SC-B packs both; SC-OB splits only the
    parameter side (its gradient reduce stays a single packed
    operation); SC-OBR splits both.  With a real-math workload the
    buffers carry float32 payloads.
    """

    def __init__(self, workload: Workload, gpu: GPUDevice, *,
                 per_group_params: bool, per_group_grads: bool,
                 with_payload: bool):
        self.workload = workload
        self.gpu = gpu
        self.per_group_params = per_group_params
        self.per_group_grads = per_group_grads
        self._all: List[DeviceBuffer] = []

        def alloc(nbytes: int, tag: str) -> DeviceBuffer:
            if with_payload:
                buf = DeviceBuffer.zeros(gpu, nbytes // 4, dtype=np.float32,
                                         name=tag)
            else:
                buf = DeviceBuffer(gpu, nbytes, name=tag)
            self._all.append(buf)
            return buf

        if per_group_params:
            self.param_bufs = [alloc(g.param_bytes, f"param.{g.name}")
                               for g in workload.groups]
            self.packed_params = None
        else:
            self.packed_params = alloc(workload.param_bytes, "packed_comm")
            self.param_bufs = [self.packed_params]
        if per_group_grads:
            self.grad_bufs = [alloc(g.param_bytes, f"grad.{g.name}")
                              for g in workload.groups]
            self.packed_grads = None
        else:
            self.packed_grads = alloc(workload.param_bytes,
                                      "packed_reduction")
            self.grad_bufs = [self.packed_grads]

    def free(self) -> None:
        for buf in self._all:
            if not buf.freed:
                buf.free()

    # -- payload bridges (real-math mode) ----------------------------------------
    @staticmethod
    def _scatter(bufs: List[DeviceBuffer], flat: np.ndarray) -> None:
        off = 0
        for buf in bufs:
            n = buf.nbytes // 4
            buf.data[...] = flat[off:off + n]
            off += n

    @staticmethod
    def _gather(bufs: List[DeviceBuffer]) -> np.ndarray:
        if len(bufs) == 1:
            return bufs[0].data.copy()
        return np.concatenate([b.data for b in bufs])

    def write_grads(self, flat: np.ndarray) -> None:
        """Scatter a packed float32 gradient vector into the buffers."""
        self._scatter(self.grad_bufs, flat.astype(np.float32, copy=False))

    def read_grads(self) -> np.ndarray:
        return self._gather(self.grad_bufs)

    def write_params(self, flat: np.ndarray) -> None:
        self._scatter(self.param_bufs, flat.astype(np.float32, copy=False))

    def read_params(self) -> np.ndarray:
        return self._gather(self.param_bufs)


class RealCompute:
    """Real-math adapter: per-rank net replicas over a shared dataset.

    Deterministic sharding: at global iteration *i*, rank *r* of *P*
    trains rows ``batch[i] [r*local : (r+1)*local]`` — identical to the
    single-solver reference batch order, so trajectories are comparable
    bit-for-bit (up to float32 reduction associativity).
    """

    def __init__(self, master: Net, x: np.ndarray, labels: np.ndarray,
                 *, global_batch: int, n_ranks: int,
                 solver_config: Optional[SolverConfig] = None,
                 test_x: Optional[np.ndarray] = None,
                 test_labels: Optional[np.ndarray] = None):
        if global_batch % n_ranks:
            raise ValueError("global_batch must divide evenly across ranks")
        if x.shape[0] < global_batch:
            raise ValueError("dataset smaller than one global batch")
        self.master = master
        self.x = x
        self.labels = labels
        self.global_batch = global_batch
        self.n_ranks = n_ranks
        self.local = global_batch // n_ranks
        self.solver_config = solver_config or SolverConfig()
        self.test_x = test_x
        self.test_labels = test_labels
        self.solvers: Dict[int, SGDSolver] = {
            r: SGDSolver(master.clone(), self.solver_config)
            for r in range(n_ranks)}

    def batch_rows(self, iteration: int, rank: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
        n = self.x.shape[0]
        start = (iteration * self.global_batch) % n
        lo = (start + rank * self.local) % n
        idx = [(lo + i) % n for i in range(self.local)]
        return self.x[idx], self.labels[idx]

    def compute_gradients(self, rank: int, iteration: int) -> float:
        xb, yb = self.batch_rows(iteration, rank)
        return self.solvers[rank].compute_gradients(
            xb, yb, global_batch=self.global_batch)

    def local_grads(self, rank: int) -> np.ndarray:
        return self.solvers[rank].net.get_grads()

    def apply_update(self, rank: int, summed_grads: np.ndarray) -> None:
        s = self.solvers[rank]
        s.net.set_grads(summed_grads.astype(np.float64))
        s.apply_update()

    def set_params(self, rank: int, flat: np.ndarray) -> None:
        self.solvers[rank].net.set_params(flat.astype(np.float64))

    def get_params(self, rank: int) -> np.ndarray:
        return self.solvers[rank].net.get_params()

    def evaluate(self, rank: int):
        """Testing-phase pass on the held-out set (None if no test set
        was provided)."""
        if self.test_x is None:
            return None
        return self.solvers[rank].test(self.test_x, self.test_labels)
