"""S-Caffe: the co-designed distributed training framework (Section 4).

One SPMD solver process per GPU; the co-design *variants* are schedule
transformations of the same iteration loop:

``SC-B`` (Section 4.1)
    Basic CUDA-Aware MPI: blocking MPI_Bcast of the packed parameter
    buffer, forward, backward, blocking MPI_Reduce of the packed
    gradient buffer.  Clearly marked sequential phases.

``SC-OB`` (Section 4.2, Fig. 5)
    Multi-stage data propagation: all per-layer MPI_Ibcast operations
    posted up front; the Wait for layer *i* is placed immediately before
    layer *i*'s forward pass, hiding propagation under compute.
    ``SC-OB-naive`` (Fig. 4) posts the Ibcast of layer *i+1* only at the
    start of layer *i*'s compute — the design the paper rejects.

``SC-OBR`` (Section 4.3, Fig. 6)
    Adds helper-thread gradient aggregation: a helper thread drives the
    per-layer backward kernels and signals the main thread (condition
    flag -> here a sim channel), which invokes the layer's reduction —
    overlapping the reduce of layer *n* with the compute of layer *n-1*.
    Combined with the runtime-level Hierarchical Reduce (HR).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..cuda import DeviceBuffer
from ..faults import CrashRank, FaultInjector, FaultPlan, StallLink
from ..hardware import Cluster
from ..io import CheckpointStore, DataLayer, DataReader, get_dataset, \
    make_backend
from ..mpi import (
    CollectiveTimeout, CommRevoked, MPIRuntime, MPIProfile, MV2GDR,
    RankContext, RankFailure, RequestTimeout, TransportTimeout,
)
from ..mpi.collectives import (
    bcast_binomial, hierarchical_reduce, ibcast, reduce_binomial,
    tuned_reduce,
)
from ..sim import Channel, Event, Interrupt, Tracer
from .config import TrainConfig
from .metrics import FaultReport, TrainingReport
from .workload import RealCompute, SolverBuffers, Workload

__all__ = ["SCaffeJob", "run_scaffe"]

#: Failures a surviving rank recovers from by shrinking + restarting.
_RECOVERABLE = (RankFailure, CommRevoked, TransportTimeout, RequestTimeout)


class SCaffeJob:
    """One S-Caffe training run on a cluster slice."""

    def __init__(self, cluster: Cluster, n_gpus: int, workload: Workload,
                 cfg: TrainConfig, *,
                 profile: MPIProfile | str = MV2GDR,
                 adapter: Optional[RealCompute] = None,
                 tracer: Optional[Tracer] = None,
                 recorder=None,
                 fault_plan: Optional[FaultPlan] = None,
                 telemetry=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal
        if recorder is not None and recorder.sim is not self.sim:
            raise ValueError("recorder belongs to a different simulator")
        self.recorder = recorder
        self.n_gpus = n_gpus
        self.workload = workload
        self.cfg = cfg
        self.runtime = MPIRuntime(cluster, profile)
        self.telemetry = telemetry
        if telemetry is not None:
            from ..telemetry import bind_cluster, bind_runtime
            if telemetry.sim is None:
                telemetry.attach(self.sim)
            elif telemetry.sim is not self.sim:
                raise ValueError(
                    "telemetry session belongs to a different simulator")
            bind_cluster(telemetry, cluster)
            bind_runtime(telemetry, self.runtime)
        self.straggler = None
        if telemetry is not None and recorder is not None:
            # Skew detection needs span timings, so the obs.straggler.*
            # namespace exists only on profiled runs (the PVARs are
            # snapshot-only; unprofiled telemetry output is unchanged).
            from ..obs import StragglerDetector, bind_straggler_pvars
            self.straggler = StragglerDetector(recorder)
            bind_straggler_pvars(telemetry, self.straggler)
        self.adapter = adapter
        self.tracer = tracer or Tracer(self.sim, enabled=True)
        self.local_batch = cfg.local_batch(n_gpus)
        self.sim_iterations = min(cfg.iterations, cfg.measure_iterations + 1)
        self.injector = (FaultInjector(cluster, fault_plan)
                         if fault_plan is not None else None)
        if telemetry is not None and self.injector is not None:
            from ..telemetry import bind_injector
            bind_injector(telemetry, self.injector)
        self.checkpoint = CheckpointStore(self.sim, self.cal)
        # Survivor agreement at loop end is only needed when a crash can
        # strand finished ranks; gating it on the plan keeps quiet-plan
        # runs event-for-event identical to uninjected ones.
        self._crash_possible = fault_plan is not None and any(
            isinstance(ev, CrashRank) for ev in fault_plan.events)
        # The watchdog is armed only for plans that can actually stall;
        # every other plan keeps the exact event schedule of PR 6.
        self._stall_possible = fault_plan is not None and any(
            isinstance(ev, StallLink) for ev in fault_plan.events)
        self._root_gpu = None
        self._last_loss: Optional[float] = None
        self._recoveries = 0
        self._recovery_time = 0.0
        self._iter_ends: List[float] = []
        self._io_stalls: List[float] = []
        self._test_results: List = []

    # -- orchestration ------------------------------------------------------
    def run(self) -> TrainingReport:
        cfg = self.cfg
        wl = self.workload
        name = f"S-Caffe ({cfg.variant})"
        report = TrainingReport(
            framework=name, network=wl.name, n_gpus=self.n_gpus,
            iterations=cfg.iterations,
            total_time=0.0, global_batch=cfg.global_batch(self.n_gpus))

        # Fig. 8: "Missing data points are for the cases where solvers
        # ran out of memory" — a too-large effective batch per solver.
        need = wl.memory_per_solver(self.local_batch)
        capacity = self.cluster.gpus[0].spec.memory_bytes
        if need > capacity:
            report.failure = "oom"
            report.notes = (f"needs {need >> 20} MiB/GPU, "
                            f"capacity {capacity >> 20} MiB")
            if self.injector is not None or cfg.checkpoint_interval:
                report.faults = self._fault_report()
            return report

        comm = self.runtime.world(self.n_gpus)
        self._root_gpu = comm.gpus[0]
        dataset = get_dataset(cfg.dataset)
        backend = make_backend(
            "lustre" if cfg.data_backend in ("lustre", "imagedata")
            else "lmdb", self.sim, dataset, self.cal)

        tel = self.telemetry
        if tel is not None:
            tel.install()
        try:
            procs = self.runtime.spawn(comm, self._rank_program, backend)
            if self.injector is not None:
                if self._stall_possible:
                    # A stall can park a collective forever with no
                    # failing attempt for the retry loop to convert;
                    # the watchdog turns it into a typed outcome.
                    wd = self.runtime.ensure_watchdog()
                    if self.recorder is not None:
                        wd.flight = self.recorder.flight
                    wd.arm(procs, comm.gpus,
                           nbytes=self.workload.param_bytes)
                self.injector.arm(runtime=self.runtime, procs=procs,
                                  gpus=comm.gpus,
                                  checkpoint=self.checkpoint)
            try:
                self.sim.run()
            except Exception as exc:
                # Under fault injection a failed rank is an *outcome*,
                # not a harness bug: report it as a typed failure so
                # callers (the chaos gate, the CLI) see the outcome
                # trichotomy, never a hang or an unexplained traceback.
                if self.injector is None:  # pragma: no cover - defensive
                    raise
                report.failure = type(exc).__name__
                report.notes = str(exc)
                report.simulated_time = self.sim.now
                report.faults = self._fault_report()
                fl = (self.recorder.flight
                      if self.recorder is not None else None)
                if fl is not None:
                    # Ship the last-N-events timeline with the typed
                    # failure (the watchdog may have dumped already;
                    # this refreshes the post-mortem with the final
                    # state of the ring).
                    fl.dump(f"{type(exc).__name__}: {exc}")
                return report
        finally:
            if tel is not None:
                tel.uninstall()
        for p in procs:
            if not p.ok:  # pragma: no cover - defensive
                raise p.value

        report.total_time = self._extrapolated_total()
        report.simulated_time = self._iter_ends[-1]
        report.phase_breakdown = self._per_iteration_phases()
        report.test_results = list(self._test_results)
        if self._io_stalls:
            report.io_stall_per_iteration = (
                sum(self._io_stalls) / len(self._io_stalls)
                / self.sim_iterations)
        if self.injector is not None or cfg.checkpoint_interval:
            report.faults = self._fault_report()
        if self.recorder is not None:
            from ..prof import build_profile
            report.profile = build_profile(self.recorder)
        if tel is not None:
            from ..telemetry import training_summary
            tel.finalize(self.sim.now)
            span = report.simulated_time
            samples = cfg.global_batch(self.n_gpus) * self.sim_iterations
            report.telemetry = training_summary(
                tel, samples_per_second=samples / span if span else 0.0)
        return report

    def _fault_report(self) -> FaultReport:
        fr = FaultReport()
        tm = self.runtime.transport.metrics
        fr.retries = tm.retries
        fr.timeouts = tm.timeouts
        fr.messages_dropped = tm.drops_detected
        fr.link_down_hits = tm.link_down_detected
        fr.detected_failures = self.runtime.failure_detector.detections
        if self.injector is not None:
            fr.injected = dict(self.injector.injected)
            fr.crashed_ranks = list(self.injector.crashed_ranks)
        fr.recoveries = self._recoveries
        fr.recovery_time = self._recovery_time
        fr.checkpoints = self.checkpoint.saves
        fr.checkpoint_time = self.checkpoint.save_time
        fr.restores = self.checkpoint.restores
        fr.restore_time = self.checkpoint.restore_time
        fr.corrupt_detected = tm.corrupt_detected
        fr.retransmits = tm.retransmits
        fr.integrity_failures = tm.integrity_failures
        fr.silent_corruptions = tm.silent_corruptions
        fr.checksum_failures = self.checkpoint.checksum_failures
        wd = self.runtime.watchdog
        if wd is not None:
            fr.watchdog_timeouts = wd.timeouts
            fr.watchdog_escalations = wd.escalations
        return fr

    def _extrapolated_total(self) -> float:
        """Total time for cfg.iterations from the simulated window.

        The first iteration carries warmup (cold readers, first bcast);
        steady state is the mean of the remaining simulated iterations.
        """
        ends = self._iter_ends
        assert len(ends) == self.sim_iterations
        if self.cfg.iterations == len(ends):
            return ends[-1]
        first = ends[0]
        steady = ((ends[-1] - ends[0]) / (len(ends) - 1)
                  if len(ends) > 1 else first)
        return first + steady * (self.cfg.iterations - 1)

    def _per_iteration_phases(self) -> Dict[str, float]:
        """Root-rank per-iteration phase times."""
        out = {}
        for phase in ("propagation", "fwd", "bwd", "aggregation",
                      "update", "test"):
            t = self.tracer.total(phase, "r0") \
                + self.tracer.total(phase, "r0.helper")
            out[phase] = t / self.sim_iterations
        return out

    # -- the SPMD solver ----------------------------------------------------------
    def _rank_program(self, ctx: RankContext, backend
                      ) -> Generator[Event, Any, None]:
        cfg = self.cfg
        wl = self.workload
        me = ctx.rank
        actor = f"r{me}"
        # SC-OB/SC-OBR split parameters per layer (multi-stage Ibcast);
        # only SC-OBR also splits gradients (per-layer reduces driven by
        # the helper thread).  SC-B packs both directions.
        per_group_params = cfg.variant != "SC-B"
        per_group_grads = cfg.variant == "SC-OBR"
        with_payload = self.adapter is not None

        buffers = SolverBuffers(wl, ctx.gpu,
                                per_group_params=per_group_params,
                                per_group_grads=per_group_grads,
                                with_payload=with_payload)
        # Activation + input memory accounting for the local batch.
        extra = self.local_batch * (wl.activation_bytes_per_sample
                                    + wl.input_bytes_per_sample)
        ctx.gpu.reserve(extra)

        # Parallel reader design (Fig. 3): one reader + queue per solver.
        reader = DataReader(self.sim, backend,
                            batch_samples=max(1, self.local_batch),
                            decode_bw=self.cal.decode_bw,
                            name=f"{actor}.reader")
        layer = DataLayer(reader)

        if with_payload and me == 0:
            buffers.write_params(self.adapter.get_params(0))

        pending_exc: Optional[BaseException] = None
        try:
            while True:
                try:
                    if pending_exc is not None:
                        exc, pending_exc = pending_exc, None
                        ctx = yield from self._recover(ctx, exc)
                        actor = f"r{ctx.rank}"
                    # Alignment barrier: start of timing on the first
                    # pass, restart agreement after a recovery.
                    yield from ctx.barrier()
                    yield from self._solve_loop(ctx, actor, buffers, layer)
                    if self._crash_possible:
                        # Completion agreement: nobody returns while a
                        # late death is pulling others into recovery —
                        # revocation breaks this barrier.
                        yield from ctx.barrier()
                    break
                except Interrupt as exc:
                    if isinstance(exc.cause, CrashRank):
                        # Dead: drop half-open phases (a survivor may
                        # inherit this rank number after the shrink).
                        self.tracer.abandon(actor)
                        return  # cleanup below
                    if isinstance(exc.cause, CollectiveTimeout):
                        # Watchdog hard-interrupt: surface the typed
                        # timeout (run() turns it into a failed report).
                        self.tracer.abandon(actor)
                        raise exc.cause from None
                    raise
                except _RECOVERABLE as exc:
                    # The fault unwound us mid-iteration: drop any
                    # half-open trace phases before the replay re-opens
                    # them.
                    self.tracer.abandon(actor)
                    pending_exc = exc
        finally:
            reader.stop()
            self._io_stalls.append(layer.stall_time)
            buffers.free()
            ctx.gpu.unreserve(extra)

    def _solve_loop(self, ctx: RankContext, actor: str,
                    buffers: SolverBuffers, layer: DataLayer
                    ) -> Generator[Event, Any, None]:
        """The iteration loop, resuming after the last persisted state."""
        cfg = self.cfg
        start = self.checkpoint.completed_iterations
        for it in range(start, self.sim_iterations):
            yield from self._iteration(ctx, actor, buffers, layer, it)
            if ctx.gpu is self._root_gpu:
                self._record_iter_end(it)
                if (cfg.checkpoint_interval
                        and (it + 1) % cfg.checkpoint_interval == 0):
                    yield from self._save_checkpoint(ctx, it + 1)

    def _record_iter_end(self, it: int) -> None:
        # Index-assigned so iterations replayed after a rollback
        # overwrite their pre-crash timestamps.
        ends = self._iter_ends
        if it < len(ends):
            ends[it] = self.sim.now
        else:
            ends.append(self.sim.now)
        tel = self.sim.telemetry
        if tel is not None:
            tel.on_iteration(it, self.sim.now,
                             self.cfg.global_batch(self.n_gpus),
                             loss=self._last_loss)

    def _save_checkpoint(self, ctx: RankContext, completed: int
                         ) -> Generator[Event, Any, None]:
        """Root-solver snapshot: parameters + momentum (Caffe's
        ``.solverstate``), D2H + parallel-FS write cost."""
        payload = (self.adapter.get_params(0)
                   if self.adapter is not None else None)
        yield from self.checkpoint.save(
            ctx.gpu, 2 * self.workload.param_bytes, completed,
            payload=payload)

    def _recover(self, ctx: RankContext, exc: BaseException
                 ) -> Generator[Event, Any, RankContext]:
        """Shrink-and-restart after a detected rank failure (survivors).

        The root solver restores the last snapshot (parameters propagate
        to the other survivors through the next iteration's bcast, whose
        modeled cost is identical); every survivor rolls its iteration
        counter back to the persisted count via ``_solve_loop``.
        """
        t0 = self.sim.now
        members = tuple(id(g) for g in ctx.comm.gpus)
        live = ctx.comm.shrink()
        if not any(g is self._root_gpu for g in live.gpus):
            # The root solver owns the checkpoint store and the reduced
            # model; no survivor can take over its state, so its death
            # is job death — a typed failure, never a quiet completion
            # with orphaned bookkeeping.
            raise RuntimeError(
                f"unrecoverable failure on {ctx.comm.name}: root solver "
                f"died ({exc})") from exc
        if tuple(id(g) for g in live.gpus) == members:
            # Nothing died — a bare transport timeout is not survivable
            # by shrinking, and retrying the same membership forever
            # would hang: fail the job loudly instead.
            raise RuntimeError(
                f"unrecoverable failure on {ctx.comm.name}: {exc}") from exc
        new_ctx = ctx.sub_context(live)
        if new_ctx is None:  # pragma: no cover - crashes exit via Interrupt
            raise RuntimeError("dead rank cannot recover") from exc
        if new_ctx.gpu is self._root_gpu:
            snap = yield from self.checkpoint.restore(new_ctx.gpu)
            if (snap is not None and snap.payload is not None
                    and self.adapter is not None):
                self.adapter.set_params(0, snap.payload)
            self._recoveries += 1
            self._recovery_time += self.sim.now - t0
        return new_ctx

    def _iteration(self, ctx: RankContext, actor: str,
                   buffers: SolverBuffers, layer: DataLayer, it: int
                   ) -> Generator[Event, Any, None]:
        cfg = self.cfg
        wl = self.workload
        me = ctx.rank
        groups = wl.groups
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer

        # ---- data propagation -------------------------------------------------
        bcast_reqs = None
        if cfg.variant == "SC-B":
            tr.begin(actor, "propagation")
            yield from bcast_binomial(ctx, buffers.packed_params, 0)
            tr.end(actor, "propagation")
        elif cfg.variant in ("SC-OB", "SC-OBR"):
            # Multi-stage: start ALL Ibcasts at the beginning (Fig. 5).
            bcast_reqs = [ibcast(ctx, buf, 0) for buf in buffers.param_bufs]
        elif cfg.variant == "SC-OB-naive":
            bcast_reqs = [None] * len(groups)
            bcast_reqs[0] = ibcast(ctx, buffers.param_bufs[0], 0)

        # ---- input batch (reader queue + H2D upload) ----------------------------
        yield from layer.next_batch()
        yield self.sim.timeout(self.cal.cuda_copy_overhead)
        yield from ctx.gpu.pcie_down.transfer(
            lb * wl.input_bytes_per_sample)

        # ---- forward pass ----------------------------------------------------------
        for g, group in enumerate(groups):
            if bcast_reqs is not None:
                if cfg.variant == "SC-OB-naive" and bcast_reqs[g] is None:
                    bcast_reqs[g] = ibcast(ctx, buffers.param_bufs[g], 0)
                tr.begin(actor, "propagation")
                yield bcast_reqs[g].wait()
                tr.end(actor, "propagation")
                if (cfg.variant == "SC-OB-naive"
                        and g + 1 < len(groups)):
                    # Naive design (Fig. 4): layer g+1's Ibcast only
                    # starts alongside layer g's compute.
                    bcast_reqs[g + 1] = ibcast(
                        ctx, buffers.param_bufs[g + 1], 0)
            tr.begin(actor, "fwd")
            yield self.sim.timeout(self.cal.layer_dispatch_overhead)
            yield from ctx.cuda.launch(
                ctx.gpu, flops=group.fwd_flops_per_sample * lb / eff)
            tr.end(actor, "fwd")

        # ---- real math (payload mode): params in, gradients out ------------------
        if self.adapter is not None:
            if me != 0:
                self.adapter.set_params(me, buffers.read_params())
            loss = self.adapter.compute_gradients(me, it)
            if me == 0:
                self._last_loss = loss
            buffers.write_grads(self.adapter.local_grads(me))

        # ---- backward + gradient aggregation ------------------------------------
        if cfg.variant == "SC-OBR":
            yield from self._backward_overlapped(ctx, actor, buffers)
        else:
            tr.begin(actor, "bwd")
            yield from ctx.cuda.launch(
                ctx.gpu, flops=wl.bwd_flops_per_sample * lb / eff)
            tr.end(actor, "bwd")
            tr.begin(actor, "aggregation")
            for buf in buffers.grad_bufs:
                yield from self._reduce(ctx, buf)
            tr.end(actor, "aggregation")

        # ---- ApplyUpdate on the root solver -----------------------------------------
        if me == 0:
            tr.begin(actor, "update")
            yield self.sim.timeout(self.cal.solver_iteration_overhead)
            # Momentum SGD touches each parameter a handful of times.
            yield from ctx.cuda.launch(ctx.gpu, flops=wl.param_bytes)
            tr.end(actor, "update")
            if self.adapter is not None:
                self.adapter.apply_update(0, buffers.read_grads())
                buffers.write_params(self.adapter.get_params(0))
            # ---- Testing phase (root solver only, Section 6.2) ----------
            if cfg.test_interval and (it + 1) % cfg.test_interval == 0:
                tr.begin(actor, "test")
                eff_t = self.cal.batch_efficiency(cfg.test_batch)
                yield from ctx.cuda.launch(
                    ctx.gpu,
                    flops=wl.fwd_flops_per_sample * cfg.test_batch
                    / eff_t)
                tr.end(actor, "test")
                result = (self.adapter.evaluate(0)
                          if self.adapter is not None else None)
                self._test_results.append((it + 1, result))

    def _backward_overlapped(self, ctx: RankContext, actor: str,
                             buffers: SolverBuffers
                             ) -> Generator[Event, Any, None]:
        """SC-OBR: helper thread drives per-layer backward kernels; the
        main thread reduces layer n while the helper computes layer n-1
        (Section 4.3, Fig. 6)."""
        wl = self.workload
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        done_ch = Channel(self.sim)
        helper_actor = f"{actor}.helper"

        def helper():
            try:
                for g in reversed(range(len(wl.groups))):
                    tr.begin(helper_actor, "bwd")
                    yield self.sim.timeout(self.cal.layer_dispatch_overhead)
                    yield from ctx.cuda.launch(
                        ctx.gpu,
                        flops=wl.groups[g].bwd_flops_per_sample * lb / eff)
                    tr.end(helper_actor, "bwd")
                    yield done_ch.put(g)
            except Interrupt:
                return  # main thread died or entered recovery

        # Eager: the helper runs inline to its first dispatch timeout;
        # the main thread only blocks on done_ch afterwards, so spawn
        # order effects cannot reach the compute resource.
        helper_proc = self.sim.process(helper(), name=helper_actor,
                                       eager=True)
        try:
            for _ in range(len(wl.groups)):
                g = yield done_ch.get()
                tr.begin(actor, "aggregation")
                yield from self._reduce(ctx, buffers.grad_bufs[g])
                tr.end(actor, "aggregation")
            yield helper_proc
        except BaseException:
            # Don't leave an orphan helper computing into a dead/recovering
            # iteration (its done_ch puts would never be drained).
            if helper_proc.is_alive:
                helper_proc.interrupt()
            raise

    def _reduce(self, ctx: RankContext, buf: DeviceBuffer
                ) -> Generator[Event, Any, None]:
        """Gradient reduction to the root solver per the configured
        design; the root reduces in place (its contribution included)."""
        recv = buf if ctx.rank == 0 else None
        design = self.cfg.reduce_design
        if design == "flat":
            yield from reduce_binomial(ctx, buf, recv, 0)
        elif design == "tuned":
            yield from tuned_reduce(ctx, buf, recv, 0)
        else:
            yield from hierarchical_reduce(ctx, buf, recv, 0, config=design)


def run_scaffe(cluster: Cluster, n_gpus: int, cfg: TrainConfig, *,
               profile: MPIProfile | str = MV2GDR,
               workload: Optional[Workload] = None,
               adapter: Optional[RealCompute] = None,
               tracer: Optional[Tracer] = None,
               recorder=None,
               fault_plan: Optional[FaultPlan] = None,
               telemetry=None) -> TrainingReport:
    """Convenience wrapper: build the workload from the config and run."""
    if workload is None:
        from ..dnn import get_network
        workload = Workload.from_spec(get_network(cfg.network))
    job = SCaffeJob(cluster, n_gpus, workload, cfg, profile=profile,
                    adapter=adapter, tracer=tracer, recorder=recorder,
                    fault_plan=fault_plan, telemetry=telemetry)
    return job.run()
