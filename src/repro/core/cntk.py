"""CNTK-like comparator: MPI data-parallel workers with allreduce.

Microsoft CNTK's 32-bit SGD design (Section 6.4) synchronizes workers
with MPI-based gradient exchange and applies the update on every worker
— no root solver, no broadcast.  Per Table 1 it does *not* use
CUDA-aware MPI, so gradients stage through host memory; the ring
allreduce's bandwidth-optimality is what keeps it competitive with
S-Caffe in Fig. 10 despite that.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..hardware import Cluster
from ..io import DataLayer, DataReader, get_dataset, make_backend
from ..mpi import MPIRuntime, MPIProfile, MV2, RankContext
from ..mpi.collectives import allreduce_ring
from ..sim import Event, Tracer
from .config import TrainConfig
from .metrics import TrainingReport
from .workload import SolverBuffers, Workload

__all__ = ["CNTKJob", "run_cntk"]

#: CNTK ships gradients through pageable host staging (no CUDA-aware
#: MPI, Table 1): host-staged pipelining, CPU-side reduction arithmetic.
CNTK_PROFILE = MV2.derive(name="cntk-mpi", gdr=False, ipc=False)


class CNTKJob:
    """Allreduce-everywhere data-parallel training."""

    def __init__(self, cluster: Cluster, n_gpus: int, workload: Workload,
                 cfg: TrainConfig, *,
                 profile: MPIProfile = CNTK_PROFILE,
                 quantization_bits: int = 32,
                 tracer: Optional[Tracer] = None):
        if quantization_bits not in (1, 32):
            raise ValueError("CNTK supports 1-bit or 32-bit SGD")
        self.quantization_bits = quantization_bits
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal
        self.n_gpus = n_gpus
        self.workload = workload
        self.cfg = cfg
        self.runtime = MPIRuntime(cluster, profile)
        self.tracer = tracer or Tracer(self.sim)
        self.local_batch = cfg.local_batch(n_gpus)
        self.sim_iterations = min(cfg.iterations, cfg.measure_iterations + 1)
        self._iter_ends: List[float] = []

    def run(self) -> TrainingReport:
        cfg = self.cfg
        wl = self.workload
        name = ("CNTK" if self.quantization_bits == 32
                else "CNTK (1-bit SGD)")
        report = TrainingReport(
            framework=name, network=wl.name, n_gpus=self.n_gpus,
            iterations=cfg.iterations, total_time=0.0,
            global_batch=cfg.global_batch(self.n_gpus))
        if wl.memory_per_solver(self.local_batch) > \
                self.cluster.gpus[0].spec.memory_bytes:
            report.failure = "oom"
            return report

        comm = self.runtime.world(self.n_gpus)
        dataset = get_dataset(cfg.dataset)
        backend = make_backend("lustre", self.sim, dataset, self.cal)
        procs = self.runtime.spawn(comm, self._rank_program, backend)
        self.sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value

        ends = self._iter_ends
        first = ends[0]
        steady = ((ends[-1] - ends[0]) / (len(ends) - 1)
                  if len(ends) > 1 else first)
        report.total_time = (first + steady * (cfg.iterations - 1)
                             if cfg.iterations != len(ends) else ends[-1])
        report.phase_breakdown = {
            p: self.tracer.total(p, "r0") / self.sim_iterations
            for p in ("fwd", "bwd", "aggregation", "update")}
        return report

    def _rank_program(self, ctx: RankContext, backend
                      ) -> Generator[Event, Any, None]:
        wl = self.workload
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        actor = f"r{ctx.rank}"

        buffers = SolverBuffers(wl, ctx.gpu, per_group_params=False, per_group_grads=False,
                                with_payload=False)
        result = ctx.scratch_like(buffers.packed_grads, "cntk.sum")
        # 1-bit SGD: the allreduce moves packed sign bits (+levels), not
        # float32 gradients; quantize/dequantize kernels bracket it.
        from ..cuda import DeviceBuffer
        from ..dnn.quantization import quantized_nbytes
        wire = None
        wire_sum = None
        if self.quantization_bits == 1:
            qbytes = quantized_nbytes(wl.param_bytes // 4, bits=1)
            wire = DeviceBuffer(ctx.gpu, qbytes, name="cntk.q")
            wire_sum = DeviceBuffer(ctx.gpu, qbytes, name="cntk.qsum")
        extra = lb * (wl.activation_bytes_per_sample
                      + wl.input_bytes_per_sample)
        ctx.gpu.reserve(extra)
        reader = DataReader(self.sim, backend, batch_samples=max(1, lb),
                            decode_bw=self.cal.decode_bw,
                            name=f"{actor}.reader")
        layer = DataLayer(reader)
        yield from ctx.barrier()

        try:
            for it in range(self.sim_iterations):
                yield from layer.next_batch()
                yield self.sim.timeout(self.cal.cuda_copy_overhead)
                yield from ctx.gpu.pcie_down.transfer(
                    lb * wl.input_bytes_per_sample)

                tr.begin(actor, "fwd")
                yield from ctx.cuda.launch(
                    ctx.gpu, flops=wl.fwd_flops_per_sample * lb / eff)
                tr.end(actor, "fwd")
                tr.begin(actor, "bwd")
                yield from ctx.cuda.launch(
                    ctx.gpu, flops=wl.bwd_flops_per_sample * lb / eff)
                tr.end(actor, "bwd")

                tr.begin(actor, "aggregation")
                if wire is not None:
                    # Quantize (elementwise pass over the gradients),
                    # exchange the 1-bit payload, dequantize.
                    yield from ctx.cuda.launch(
                        ctx.gpu, duration=ctx.gpu.spec.reduce_time(
                            wl.param_bytes))
                    yield from allreduce_ring(ctx, wire, wire_sum)
                    yield from ctx.cuda.launch(
                        ctx.gpu, duration=ctx.gpu.spec.reduce_time(
                            wl.param_bytes))
                else:
                    yield from allreduce_ring(ctx, buffers.packed_grads,
                                              result)
                tr.end(actor, "aggregation")

                # Every worker applies the update locally.
                tr.begin(actor, "update")
                yield self.sim.timeout(self.cal.solver_iteration_overhead)
                yield from ctx.cuda.launch(ctx.gpu, flops=wl.param_bytes)
                tr.end(actor, "update")
                if ctx.rank == 0:
                    self._iter_ends.append(self.sim.now)
        finally:
            reader.stop()
            buffers.free()
            result.free()
            if wire is not None:
                wire.free()
                wire_sum.free()
            ctx.gpu.unreserve(extra)


def run_cntk(cluster: Cluster, n_gpus: int, cfg: TrainConfig, *,
             workload: Optional[Workload] = None,
             quantization_bits: int = 32,
             tracer: Optional[Tracer] = None) -> TrainingReport:
    if workload is None:
        from ..dnn import get_network
        workload = Workload.from_spec(get_network(cfg.network))
    return CNTKJob(cluster, n_gpus, workload, cfg, tracer=tracer,
                   quantization_bits=quantization_bits).run()
