"""The DL-framework design/feature space — Table 1 of the paper.

Each entry records the design axes the paper compares: distributed
(MPI) support, CUDA-awareness, overlapped (NBC) designs, MPI co-design,
single/multi-GPU shared-address-space support, parallelization strategy
(model vs. data parallel), and implementation style (parameter server
vs. reduction tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["FrameworkFeatures", "FRAMEWORKS", "table1_rows"]


@dataclass(frozen=True)
class FrameworkFeatures:
    """One row of Table 1."""

    name: str
    basic_mpi: Optional[bool]          # None == "Unknown" in the paper
    cuda_aware_mpi: Optional[bool]
    overlapped_nbc: Optional[bool]
    codesigned_with_mpi: Optional[bool]
    single_gpu: bool
    multi_gpu: bool
    parallelism: str                   # "DP" | "MP" | "MP/DP"
    implementation: str                # "RT" | "PS" | "N/A"
    #: Which framework in this repo implements/represents it (if any).
    repro_module: str = ""


FRAMEWORKS: Dict[str, FrameworkFeatures] = {
    f.name: f for f in [
        FrameworkFeatures("Caffe", False, False, False, False, True, True,
                          "DP", "RT", "repro.core.caffe"),
        FrameworkFeatures("FireCaffe", True, None, False, None, True, True,
                          "DP", "RT"),
        FrameworkFeatures("MPI-Caffe", True, False, False, False, True,
                          True, "MP", "N/A", "repro.core.mpi_caffe"),
        FrameworkFeatures("CNTK", True, False, False, False, True, True,
                          "MP/DP", "PS", "repro.core.cntk"),
        FrameworkFeatures("Inspur-Caffe", True, True, False, False, True,
                          True, "DP", "PS", "repro.core.param_server"),
        FrameworkFeatures("S-Caffe", True, True, True, True, True, True,
                          "DP", "RT", "repro.core.scaffe"),
    ]
}


def _mark(v: Optional[bool]) -> str:
    if v is None:
        return "Unknown"
    return "yes" if v else "no"


def table1_rows() -> List[Dict[str, str]]:
    """Table 1 as printable rows (S-Caffe last, as in the paper)."""
    order = ["Caffe", "FireCaffe", "MPI-Caffe", "CNTK", "Inspur-Caffe",
             "S-Caffe"]
    rows = []
    for name in order:
        f = FRAMEWORKS[name]
        rows.append({
            "framework": f.name,
            "basic_mpi": _mark(f.basic_mpi),
            "cuda_aware_mpi": _mark(f.cuda_aware_mpi),
            "overlapped_nbc": _mark(f.overlapped_nbc),
            "codesigned": _mark(f.codesigned_with_mpi),
            "single_gpu": _mark(f.single_gpu),
            "multi_gpu": _mark(f.multi_gpu),
            "parallelism": f.parallelism,
            "implementation": f.implementation,
        })
    return rows
