"""S-Caffe core: the co-designed framework and its comparators."""

from .caffe import CaffeJob, run_caffe
from .cntk import CNTKJob, run_cntk
from .config import TrainConfig
from .frameworks import FRAMEWORKS, FrameworkFeatures, table1_rows
from .metrics import FaultReport, TrainingReport, speedup
from .mpi_caffe import MPICaffeJob, run_mpi_caffe
from .param_server import ParameterServerJob, run_param_server
from .scaffe import SCaffeJob, run_scaffe
from .trainer import FRAMEWORK_NAMES, train
from .workload import LayerGroup, RealCompute, SolverBuffers, Workload

__all__ = [
    "CaffeJob", "run_caffe",
    "CNTKJob", "run_cntk",
    "TrainConfig",
    "FRAMEWORKS", "FrameworkFeatures", "table1_rows",
    "FaultReport", "TrainingReport", "speedup",
    "MPICaffeJob", "run_mpi_caffe",
    "ParameterServerJob", "run_param_server",
    "SCaffeJob", "run_scaffe",
    "FRAMEWORK_NAMES", "train",
    "LayerGroup", "RealCompute", "SolverBuffers", "Workload",
]
