"""MPI-Caffe comparator: model-parallel training (Table 1's MP row).

MPI-Caffe (Lee et al. 2015) distributes the *network*, not the data:
layers are partitioned across ranks, activations flow forward through
the pipeline cuts and activation-gradients flow back — so weights never
travel between iterations (each rank updates its own slice locally).
Per Table 1 it uses basic MPI without CUDA-awareness, so every cut
tensor stages through pageable host memory.

The design's weakness, and the reason Section 3.1 chooses data
parallelism: without micro-batch pipelining the stages execute strictly
one after another — P GPUs deliver at most one GPU's throughput plus
communication, regardless of scale.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..hardware import Cluster
from ..io import DataLayer, DataReader, get_dataset, make_backend
from ..mpi import MPIRuntime, MPIProfile, MV2, RankContext
from ..sim import Event, Tracer
from .config import TrainConfig
from .metrics import TrainingReport
from .workload import Workload

__all__ = ["MPICaffeJob", "run_mpi_caffe", "partition_groups"]

#: Basic MPI, no CUDA-awareness (Table 1): pageable host staging.
MPI_CAFFE_PROFILE = MV2.derive(name="mpi-caffe", gdr=False, ipc=False,
                               pinned_staging=False)


def partition_groups(n_groups: int, n_stages: int) -> List[range]:
    """Contiguous, load-balanced partition of group indices into stages.

    Every stage gets at least one group; ``n_stages`` may not exceed
    ``n_groups``.
    """
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    if n_stages > n_groups:
        raise ValueError(
            f"cannot split {n_groups} weighted layers over {n_stages} "
            "ranks (model parallelism is bounded by network depth)")
    base = n_groups // n_stages
    extra = n_groups % n_stages
    out = []
    start = 0
    for s in range(n_stages):
        size = base + (1 if s < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


class MPICaffeJob:
    """Layer-partitioned (model-parallel) training."""

    def __init__(self, cluster: Cluster, n_gpus: int, workload: Workload,
                 cfg: TrainConfig, *,
                 profile: MPIProfile = MPI_CAFFE_PROFILE,
                 tracer: Optional[Tracer] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal
        self.n_gpus = n_gpus
        self.workload = workload
        self.cfg = cfg
        self.runtime = MPIRuntime(cluster, profile)
        self.tracer = tracer or Tracer(self.sim)
        # Model parallel: the whole batch flows through every stage.
        self.local_batch = cfg.global_batch(1)
        self.sim_iterations = min(cfg.iterations, cfg.measure_iterations + 1)
        self._iter_ends: List[float] = []

    def run(self) -> TrainingReport:
        cfg = self.cfg
        wl = self.workload
        report = TrainingReport(
            framework="MPI-Caffe", network=wl.name, n_gpus=self.n_gpus,
            iterations=cfg.iterations, total_time=0.0,
            global_batch=self.local_batch)
        try:
            stages = partition_groups(len(wl.groups), self.n_gpus)
        except ValueError as exc:
            report.failure = "unsupported"
            report.notes = str(exc)
            return report
        # Memory: each stage holds its slice of weights + the batch's
        # activations for its layers (approximated as its share).
        per_stage = (3 * wl.param_bytes // self.n_gpus
                     + self.local_batch
                     * (wl.activation_bytes_per_sample // self.n_gpus
                        + wl.input_bytes_per_sample))
        if per_stage > self.cluster.gpus[0].spec.memory_bytes:
            report.failure = "oom"
            return report

        comm = self.runtime.world(self.n_gpus)
        dataset = get_dataset(cfg.dataset)
        backend = make_backend("lmdb", self.sim, dataset, self.cal)
        procs = self.runtime.spawn(comm, self._rank_program, backend,
                                   stages)
        self.sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value

        ends = self._iter_ends
        first = ends[0]
        steady = ((ends[-1] - ends[0]) / (len(ends) - 1)
                  if len(ends) > 1 else first)
        report.total_time = (first + steady * (cfg.iterations - 1)
                             if cfg.iterations != len(ends) else ends[-1])
        report.phase_breakdown = {
            p: self.tracer.total(p, "r0") / self.sim_iterations
            for p in ("fwd", "bwd", "activation_comm", "update")}
        return report

    def _rank_program(self, ctx: RankContext, backend, stages
                      ) -> Generator[Event, Any, None]:
        wl = self.workload
        me = ctx.rank
        P = ctx.size
        mine = stages[me]
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        actor = f"r{me}"
        groups = wl.groups

        # This stage's weights (updated locally; never communicated).
        my_param_bytes = sum(groups[g].param_bytes for g in mine)
        from ..cuda import DeviceBuffer
        weights = DeviceBuffer(ctx.gpu, 3 * my_param_bytes, name="stage.w")
        # Activation staging buffers sized for the largest cut.
        cut_in = (groups[mine[0] - 1].out_activation_bytes * lb
                  if me > 0 else 0)
        cut_out = (groups[mine[-1]].out_activation_bytes * lb
                   if me < P - 1 else 0)
        act_in = DeviceBuffer(ctx.gpu, max(4, cut_in), name="act.in")
        act_out = DeviceBuffer(ctx.gpu, max(4, cut_out), name="act.out")

        reader = None
        layer = None
        if me == 0:
            reader = DataReader(self.sim, backend,
                                batch_samples=max(1, lb),
                                decode_bw=self.cal.decode_bw,
                                name="mpicaffe.reader")
            layer = DataLayer(reader)
        yield from ctx.barrier()

        fwd_flops = sum(groups[g].fwd_flops_per_sample for g in mine)
        bwd_flops = sum(groups[g].bwd_flops_per_sample for g in mine)
        try:
            for it in range(self.sim_iterations):
                tag = 50 + (it % 50) * 4
                # ---- forward sweep -------------------------------------
                if me == 0:
                    yield from layer.next_batch()
                    yield self.sim.timeout(self.cal.cuda_copy_overhead)
                    yield from ctx.gpu.pcie_down.transfer(
                        lb * wl.input_bytes_per_sample)
                else:
                    tr.begin(actor, "activation_comm")
                    yield from ctx.recv(me - 1, act_in, tag=tag)
                    tr.end(actor, "activation_comm")
                tr.begin(actor, "fwd")
                yield from ctx.cuda.launch(ctx.gpu,
                                           flops=fwd_flops * lb / eff)
                tr.end(actor, "fwd")
                if me < P - 1:
                    tr.begin(actor, "activation_comm")
                    yield from ctx.send(me + 1, act_out, tag=tag,
                                        nbytes=cut_out)
                    tr.end(actor, "activation_comm")

                # ---- backward sweep ----------------------------------------
                if me < P - 1:
                    tr.begin(actor, "activation_comm")
                    yield from ctx.recv(me + 1, act_out, tag=tag + 1)
                    tr.end(actor, "activation_comm")
                tr.begin(actor, "bwd")
                yield from ctx.cuda.launch(ctx.gpu,
                                           flops=bwd_flops * lb / eff)
                tr.end(actor, "bwd")
                if me > 0:
                    tr.begin(actor, "activation_comm")
                    yield from ctx.send(me - 1, act_in, tag=tag + 1,
                                        nbytes=cut_in)
                    tr.end(actor, "activation_comm")

                # ---- local weight update (no gradient exchange) ------------
                tr.begin(actor, "update")
                yield self.sim.timeout(self.cal.solver_iteration_overhead)
                yield from ctx.cuda.launch(ctx.gpu, flops=my_param_bytes)
                tr.end(actor, "update")
                if me == 0:
                    self._iter_ends.append(self.sim.now)
        finally:
            if reader is not None:
                reader.stop()
            weights.free()
            act_in.free()
            act_out.free()


def run_mpi_caffe(cluster: Cluster, n_gpus: int, cfg: TrainConfig, *,
                  workload: Optional[Workload] = None,
                  tracer: Optional[Tracer] = None) -> TrainingReport:
    if workload is None:
        from ..dnn import get_network
        workload = Workload.from_spec(get_network(cfg.network))
    return MPICaffeJob(cluster, n_gpus, workload, cfg,
                       tracer=tracer).run()
