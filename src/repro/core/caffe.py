"""Baseline Caffe: single-process, multi-threaded, multi-GPU (≤ 1 node).

The original BVLC Caffe (and NVIDIA's fork) run one *process* with one
thread per GPU; solvers form a reduction tree over CUDA peer-to-peer
copies, and a single Data Reader thread feeds all solvers through one
shared queue (Sections 2.2, 3.1–3.2).  By construction this design
cannot leave the node — runs asking for more GPUs than one node holds
fail with ``"unsupported"``, the Fig. 8/9 ceiling at 16 GPUs.

``optimized=True`` models NVIDIA's fork (tuned kernels), the comparator
for the abstract's single-node claim — same sequential phase structure,
slightly faster compute.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..cuda import CudaRuntime, DeviceBuffer
from ..hardware import Cluster
from ..io import DataLayer, DataReader, get_dataset, make_backend
from ..sim import Barrier, Event, Tracer
from .config import TrainConfig
from .metrics import TrainingReport
from .workload import Workload

__all__ = ["CaffeJob", "run_caffe"]

#: NVIDIA-fork kernel speedup over BVLC (cuDNN autotuning era).
NV_COMPUTE_SCALE = 0.93


class CaffeJob:
    """Single-node multi-GPU Caffe training (threads, not MPI)."""

    def __init__(self, cluster: Cluster, n_gpus: int, workload: Workload,
                 cfg: TrainConfig, *, optimized: bool = False,
                 tracer: Optional[Tracer] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal
        self.n_gpus = n_gpus
        self.workload = workload
        self.cfg = cfg
        self.optimized = optimized
        self.cuda = CudaRuntime(cluster)
        self.tracer = tracer or Tracer(self.sim)
        self.local_batch = cfg.local_batch(n_gpus)
        self.sim_iterations = min(cfg.iterations, cfg.measure_iterations + 1)
        self._iter_ends: List[float] = []
        self._compute_scale = NV_COMPUTE_SCALE if optimized else 1.0

    @property
    def name(self) -> str:
        return "NV-Caffe" if self.optimized else "Caffe"

    def run(self) -> TrainingReport:
        cfg = self.cfg
        wl = self.workload
        report = TrainingReport(
            framework=self.name, network=wl.name, n_gpus=self.n_gpus,
            iterations=cfg.iterations, total_time=0.0,
            global_batch=cfg.global_batch(self.n_gpus))

        # Shared-address-space design: one node only (Section 3.2).
        if self.n_gpus > self.cluster.gpus_per_node:
            report.failure = "unsupported"
            report.notes = ("single-process design limited to "
                            f"{self.cluster.gpus_per_node} GPUs/node")
            return report
        need = wl.memory_per_solver(self.local_batch)
        if need > self.cluster.gpus[0].spec.memory_bytes:
            report.failure = "oom"
            return report

        gpus = self.cluster.nodes[0].gpus[:self.n_gpus]
        dataset = get_dataset(cfg.dataset)
        # Single reader, shared queue: reads the whole global batch.
        backend = make_backend("lmdb", self.sim, dataset, self.cal)
        reader = DataReader(
            self.sim, backend,
            batch_samples=max(1, self.local_batch * self.n_gpus),
            decode_bw=self.cal.decode_bw, name="caffe.reader")
        shared_layer = DataLayer(reader)

        params = [DeviceBuffer(g, wl.param_bytes, name="params")
                  for g in gpus]
        grads = [DeviceBuffer(g, wl.param_bytes, name="grads")
                 for g in gpus]
        barrier = Barrier(self.sim, self.n_gpus)
        phase_bar = Barrier(self.sim, self.n_gpus)

        procs = [self.sim.process(
            self._solver_thread(t, gpus, params, grads, shared_layer,
                                barrier, phase_bar),
            name=f"caffe.t{t}") for t in range(self.n_gpus)]
        self.sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value
        reader.stop()
        self.sim.run()

        ends = self._iter_ends
        first = ends[0]
        steady = ((ends[-1] - ends[0]) / (len(ends) - 1)
                  if len(ends) > 1 else first)
        report.total_time = (first + steady * (cfg.iterations - 1)
                             if cfg.iterations != len(ends) else ends[-1])
        report.phase_breakdown = {
            p: (self.tracer.total(p, "t0") / self.sim_iterations)
            for p in ("propagation", "fwd", "bwd", "aggregation", "update")}
        return report

    # -- P2P tree helpers -----------------------------------------------------
    def _tree_bcast(self, t: int, bufs: List[DeviceBuffer]
                    ) -> Generator[Event, Any, None]:
        """Binomial broadcast over CUDA P2P copies, root thread 0.

        Threads coordinate through shared memory in real Caffe; here the
        schedule is expressed per thread: at round ``mask`` a holder
        copies to its partner.
        """
        P = self.n_gpus
        mask = 1
        while mask < P:
            mask <<= 1
        mask >>= 1
        rounds = []
        while mask:
            rounds.append(mask)
            mask >>= 1
        for mask in rounds:
            if t % mask == 0 and t % (mask << 1) == 0 and t + mask < P:
                yield from self.cuda.memcpy_p2p(bufs[t], bufs[t + mask])
            yield self._round_bar.arrive()

    def _tree_reduce(self, t: int, bufs: List[DeviceBuffer]
                     ) -> Generator[Event, Any, None]:
        """Binomial reduction tree over P2P copies to thread 0."""
        P = self.n_gpus
        mask = 1
        while mask < P:
            partner = t ^ mask
            if t % (mask << 1) == 0 and partner < P:
                scratch = DeviceBuffer(bufs[t].device, bufs[t].nbytes,
                                       name="tree.rx")
                try:
                    yield from self.cuda.memcpy_p2p(bufs[partner], scratch)
                    yield from self.cuda.reduce_kernel(bufs[t], scratch)
                finally:
                    scratch.free()
            yield self._round_bar.arrive()
            mask <<= 1

    def _solver_thread(self, t: int, gpus, params, grads, shared_layer,
                       barrier: Barrier, phase_bar: Barrier
                       ) -> Generator[Event, Any, None]:
        wl = self.workload
        gpu = gpus[t]
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        actor = f"t{t}"
        self._round_bar = phase_bar
        yield barrier.arrive()

        for it in range(self.sim_iterations):
            # Parent->child parameter propagation (tree of P2P copies).
            tr.begin(actor, "propagation")
            yield from self._tree_bcast(t, params)
            tr.end(actor, "propagation")

            # Shared queue: thread 0 pops for everyone (single reader).
            if t == 0:
                yield from shared_layer.next_batch()
            yield barrier.arrive()
            yield self.sim.timeout(self.cal.cuda_copy_overhead)
            yield from gpu.pcie_down.transfer(
                lb * wl.input_bytes_per_sample)

            tr.begin(actor, "fwd")
            yield from self.cuda.launch(
                gpu, flops=wl.fwd_flops_per_sample * lb
                * self._compute_scale / eff)
            tr.end(actor, "fwd")
            tr.begin(actor, "bwd")
            yield from self.cuda.launch(
                gpu, flops=wl.bwd_flops_per_sample * lb
                * self._compute_scale / eff)
            tr.end(actor, "bwd")

            tr.begin(actor, "aggregation")
            yield from self._tree_reduce(t, grads)
            tr.end(actor, "aggregation")

            if t == 0:
                tr.begin(actor, "update")
                yield self.sim.timeout(self.cal.solver_iteration_overhead)
                yield from self.cuda.launch(gpu, flops=wl.param_bytes)
                tr.end(actor, "update")
                self._iter_ends.append(self.sim.now)
            yield barrier.arrive()


def run_caffe(cluster: Cluster, n_gpus: int, cfg: TrainConfig, *,
              optimized: bool = False,
              workload: Optional[Workload] = None,
              tracer: Optional[Tracer] = None) -> TrainingReport:
    if workload is None:
        from ..dnn import get_network
        workload = Workload.from_spec(get_network(cfg.network))
    return CaffeJob(cluster, n_gpus, workload, cfg, optimized=optimized,
                    tracer=tracer).run()
