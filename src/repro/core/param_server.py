"""Parameter-server baseline (the Inspur-Caffe design, Sections 3.1, 7).

A classical master-worker data-parallel design: every worker trains a
shard, ships its full gradient buffer to the server (GPU 0), which
aggregates serially as contributions arrive, applies the update, and
ships fresh parameters back to every worker.  The single aggregation
point is the scalability bottleneck the paper argues against.

Fidelity notes, per Section 6.4: Inspur-Caffe "didn't run for less than
2 GPUs", and "the execution hangs after completing a few iterations"
for counts other than 2 and 4; it never ran past 16 processes.  Those
observed behaviours are modeled as capability outcomes so Fig. 10 shows
the same missing bars.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..hardware import Cluster
from ..io import DataLayer, DataReader, get_dataset, make_backend
from ..mpi import MPIRuntime, MPIProfile, MV2, RankContext
from ..sim import Event, Tracer
from .config import TrainConfig
from .metrics import TrainingReport
from .workload import SolverBuffers, Workload

__all__ = ["ParameterServerJob", "run_param_server"]

#: GPU counts the real comparator ran at (Fig. 10).
WORKING_COUNTS = {2, 4}
#: Counts where the real comparator hung after a few iterations.
HANGING_COUNTS = {8, 16}


class ParameterServerJob:
    """Parameter-server training (Inspur-Caffe-like).

    ``mode="sync"`` is the synchronous master-worker pattern of
    Section 3.1; ``mode="async"`` models Inspur-Caffe's actual design
    per Section 7 — "an MPI-based Caffe fork that exploits [the]
    parameter-server approach with *stale asynchronous gradient
    updates*": rank 0 becomes a dedicated server that applies each
    worker's gradient the moment it arrives (no barrier), so workers
    train on parameters that may be several updates stale.
    """

    def __init__(self, cluster: Cluster, n_gpus: int, workload: Workload,
                 cfg: TrainConfig, *, profile: MPIProfile | str = MV2,
                 tracer: Optional[Tracer] = None,
                 emulate_limits: bool = True, mode: str = "sync"):
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be sync|async, got {mode!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.cal = cluster.cal
        self.n_gpus = n_gpus
        self.workload = workload
        self.cfg = cfg
        self.runtime = MPIRuntime(cluster, profile)
        self.tracer = tracer or Tracer(self.sim)
        self.emulate_limits = emulate_limits
        self.mode = mode
        self.local_batch = cfg.local_batch(n_gpus)
        self.sim_iterations = min(cfg.iterations, cfg.measure_iterations + 1)
        self._iter_ends: List[float] = []

    @property
    def framework_name(self) -> str:
        return ("Inspur-Caffe" if self.mode == "sync"
                else "Inspur-Caffe (async)")

    def run(self) -> TrainingReport:
        cfg = self.cfg
        wl = self.workload
        report = TrainingReport(
            framework=self.framework_name, network=wl.name,
            n_gpus=self.n_gpus,
            iterations=cfg.iterations, total_time=0.0,
            global_batch=cfg.global_batch(self.n_gpus))

        if self.emulate_limits:
            if self.n_gpus in HANGING_COUNTS:
                report.failure = "hang"
                report.notes = ("execution hangs after a few iterations "
                                "(Section 6.4)")
                return report
            if self.n_gpus not in WORKING_COUNTS:
                report.failure = "unsupported"
                report.notes = "comparator only ran at 2 and 4 GPUs"
                return report
        if wl.memory_per_solver(self.local_batch) > \
                self.cluster.gpus[0].spec.memory_bytes:
            report.failure = "oom"
            return report

        comm = self.runtime.world(self.n_gpus)
        dataset = get_dataset(cfg.dataset)
        backend = make_backend("lmdb", self.sim, dataset, self.cal)
        program = (self._rank_program if self.mode == "sync"
                   else self._rank_program_async)
        procs = self.runtime.spawn(comm, program, backend)
        self.sim.run()
        for p in procs:
            if not p.ok:  # pragma: no cover
                raise p.value

        ends = self._iter_ends
        first = ends[0]
        steady = ((ends[-1] - ends[0]) / (len(ends) - 1)
                  if len(ends) > 1 else first)
        report.total_time = (first + steady * (cfg.iterations - 1)
                             if cfg.iterations != len(ends) else ends[-1])
        report.phase_breakdown = {
            p: self.tracer.total(p, "r0") / self.sim_iterations
            for p in ("fwd", "bwd", "aggregation", "update",
                      "propagation")}
        if self.mode == "async":
            # Rank 0 is a dedicated server: only P-1 GPUs train.
            report.global_batch = self.local_batch * (self.n_gpus - 1)
            report.notes = "dedicated server on rank 0; stale updates"
        return report

    def _rank_program(self, ctx: RankContext, backend
                      ) -> Generator[Event, Any, None]:
        """Rank 0 doubles as the server (a GPU 'taken away' from
        training is exactly the design critique of Section 3.1 — here
        the server also trains, matching Inspur's synchronous mode, but
        every gradient funnels through its NIC/PCIe)."""
        wl = self.workload
        me = ctx.rank
        P = ctx.size
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        actor = f"r{me}"

        buffers = SolverBuffers(wl, ctx.gpu, per_group_params=False, per_group_grads=False,
                                with_payload=False)
        scratch = (ctx.scratch_like(buffers.packed_grads, "ps.rx")
                   if me == 0 else None)
        extra = lb * (wl.activation_bytes_per_sample
                      + wl.input_bytes_per_sample)
        ctx.gpu.reserve(extra)
        reader = DataReader(self.sim, backend, batch_samples=max(1, lb),
                            decode_bw=self.cal.decode_bw,
                            name=f"{actor}.reader")
        layer = DataLayer(reader)
        yield from ctx.barrier()

        try:
            for it in range(self.sim_iterations):
                yield from layer.next_batch()
                yield self.sim.timeout(self.cal.cuda_copy_overhead)
                yield from ctx.gpu.pcie_down.transfer(
                    lb * wl.input_bytes_per_sample)

                tr.begin(actor, "fwd")
                yield from ctx.cuda.launch(
                    ctx.gpu, flops=wl.fwd_flops_per_sample * lb / eff)
                tr.end(actor, "fwd")
                tr.begin(actor, "bwd")
                yield from ctx.cuda.launch(
                    ctx.gpu, flops=wl.bwd_flops_per_sample * lb / eff)
                tr.end(actor, "bwd")

                tag = 100 + it % 100
                if me == 0:
                    tr.begin(actor, "aggregation")
                    # Serial aggregation: the master bottleneck.
                    for src in range(1, P):
                        yield from ctx.recv(src, scratch, tag=tag)
                        yield from ctx.cuda.reduce_kernel(
                            buffers.packed_grads, scratch)
                    tr.end(actor, "aggregation")
                    tr.begin(actor, "update")
                    yield self.sim.timeout(
                        self.cal.solver_iteration_overhead)
                    yield from ctx.cuda.launch(ctx.gpu,
                                               flops=wl.param_bytes)
                    tr.end(actor, "update")
                    tr.begin(actor, "propagation")
                    reqs = [ctx.isend(dst, buffers.packed_params,
                                      tag=tag + 1000)
                            for dst in range(1, P)]
                    for r in reqs:
                        yield r.wait()
                    tr.end(actor, "propagation")
                    self._iter_ends.append(self.sim.now)
                else:
                    yield from ctx.send(0, buffers.packed_grads, tag=tag)
                    yield from ctx.recv(0, buffers.packed_params,
                                        tag=tag + 1000)
        finally:
            reader.stop()
            buffers.free()
            if scratch is not None:
                scratch.free()
            ctx.gpu.unreserve(extra)


    def _rank_program_async(self, ctx: RankContext, backend
                            ) -> Generator[Event, Any, None]:
        """Asynchronous mode: rank 0 is a *dedicated* server (one GPU
        taken away from training — the Section 3.1 critique); workers
        never wait for each other, and each gradient is applied on
        arrival (stale updates)."""
        from ..mpi.request import ANY_SOURCE
        wl = self.workload
        me = ctx.rank
        P = ctx.size
        if P < 2:
            raise ValueError("async parameter server needs >= 2 ranks")
        lb = self.local_batch
        eff = self.cal.batch_efficiency(max(1, lb))
        tr = self.tracer
        actor = f"r{me}"
        GRAD_TAG, PARAM_TAG = 11, 13

        buffers = SolverBuffers(wl, ctx.gpu, per_group_params=False,
                                per_group_grads=False, with_payload=False)
        try:
            if me == 0:
                scratch = ctx.scratch_like(buffers.packed_grads, "ps.rx")
                try:
                    total_updates = (P - 1) * self.sim_iterations
                    replies = []
                    for _ in range(total_updates):
                        st = yield from ctx.recv(ANY_SOURCE, scratch,
                                                 tag=GRAD_TAG)
                        tr.begin(actor, "aggregation")
                        yield from ctx.cuda.reduce_kernel(
                            buffers.packed_grads, scratch)
                        tr.end(actor, "aggregation")
                        tr.begin(actor, "update")
                        yield from ctx.cuda.launch(ctx.gpu,
                                                   flops=wl.param_bytes)
                        tr.end(actor, "update")
                        replies.append(ctx.isend(
                            st.source, buffers.packed_params,
                            tag=PARAM_TAG))
                    for r in replies:
                        yield r.wait()
                finally:
                    scratch.free()
            else:
                reader = DataReader(self.sim, backend,
                                    batch_samples=max(1, lb),
                                    decode_bw=self.cal.decode_bw,
                                    name=f"{actor}.reader")
                layer = DataLayer(reader)
                try:
                    for it in range(self.sim_iterations):
                        yield from layer.next_batch()
                        yield self.sim.timeout(self.cal.cuda_copy_overhead)
                        yield from ctx.gpu.pcie_down.transfer(
                            lb * wl.input_bytes_per_sample)
                        tr.begin(actor, "fwd")
                        yield from ctx.cuda.launch(
                            ctx.gpu,
                            flops=wl.fwd_flops_per_sample * lb / eff)
                        tr.end(actor, "fwd")
                        tr.begin(actor, "bwd")
                        yield from ctx.cuda.launch(
                            ctx.gpu,
                            flops=wl.bwd_flops_per_sample * lb / eff)
                        tr.end(actor, "bwd")
                        yield from ctx.send(0, buffers.packed_grads,
                                            tag=GRAD_TAG)
                        yield from ctx.recv(0, buffers.packed_params,
                                            tag=PARAM_TAG)
                        if me == 1:
                            self._iter_ends.append(self.sim.now)
                finally:
                    reader.stop()
        finally:
            buffers.free()


def run_param_server(cluster: Cluster, n_gpus: int, cfg: TrainConfig, *,
                     workload: Optional[Workload] = None,
                     emulate_limits: bool = True, mode: str = "sync",
                     tracer: Optional[Tracer] = None) -> TrainingReport:
    if workload is None:
        from ..dnn import get_network
        workload = Workload.from_spec(get_network(cfg.network))
    return ParameterServerJob(cluster, n_gpus, workload, cfg,
                              tracer=tracer, mode=mode,
                              emulate_limits=emulate_limits).run()
