"""Human-facing profile summary attached to training reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .graph import ActivityGraph, COMM_CLASSES, COMPUTE_CLASSES
from .recorder import SpanRecorder

__all__ = ["ProfileReport", "build_profile"]


@dataclass
class ProfileReport:
    """Digest of one profiled run (``TrainingReport.profile``)."""

    #: End of the last recorded span (simulated seconds).
    makespan: float
    #: Critical-path length; equals ``makespan`` on a complete recording.
    cp_length: float
    n_spans: int
    #: Critical-path seconds by phase (with op/kind fallback buckets).
    by_phase: Dict[str, float] = field(default_factory=dict)
    #: Critical-path seconds by resource class.
    by_class: Dict[str, float] = field(default_factory=dict)
    #: Critical-path seconds by rank/actor.
    by_actor: Dict[str, float] = field(default_factory=dict)
    #: (src gpu index, dst gpu index) -> [messages, bytes].
    comm: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: gpu index -> (device name, node index).
    devices: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    #: Resource name -> busy fraction of the makespan.
    utilization: Dict[str, float] = field(default_factory=dict)
    #: The underlying graph (for what-if queries); not part of equality.
    graph: ActivityGraph = field(default=None, repr=False, compare=False)

    # -- derived -----------------------------------------------------------
    @property
    def comm_share(self) -> float:
        """Fraction of the critical path on communication resources."""
        if self.cp_length <= 0:
            return 0.0
        return sum(v for k, v in self.by_class.items()
                   if k in COMM_CLASSES) / self.cp_length

    @property
    def compute_share(self) -> float:
        """Fraction of the critical path on compute resources."""
        if self.cp_length <= 0:
            return 0.0
        return sum(v for k, v in self.by_class.items()
                   if k in COMPUTE_CLASSES) / self.cp_length

    def what_if(self, scales: Dict[str, float]) -> float:
        """Projected makespan under rescaled resources (see
        :meth:`ActivityGraph.project`)."""
        return self.graph.project(scales)

    # -- machine-readable export -------------------------------------------
    def to_json_dict(self) -> dict:
        """JSON-safe summary (the ``profile`` half of a saved run file).

        Carries everything ``repro diff`` needs offline: the headline
        numbers, the marginal breakdowns, the (phase, class, rank)
        critical-path cells the diff engine aligns on, the forward
        critical-path timeline for trace export, and the comm matrix.
        """
        out = {
            "makespan": self.makespan,
            "cp_length": self.cp_length,
            "n_spans": self.n_spans,
            "comm_share": self.comm_share,
            "compute_share": self.compute_share,
            "by_phase": dict(self.by_phase),
            "by_class": dict(self.by_class),
            "by_actor": dict(self.by_actor),
            "utilization": dict(self.utilization),
            "comm": [[s, d, cnt, nbytes] for (s, d), (cnt, nbytes)
                     in sorted(self.comm.items())],
            "devices": {str(g): [name, node]
                        for g, (name, node) in sorted(self.devices.items())},
        }
        if self.graph is not None:
            out["cp_cells"] = [
                {"phase": phase, "class": cls, "actor": actor,
                 "seconds": seconds}
                for (phase, cls, actor), seconds
                in sorted(self.graph.cp_cells().items())]
            out["cp_timeline"] = self.graph.cp_timeline()
        else:  # pragma: no cover - reports always carry their graph
            out["cp_cells"] = []
            out["cp_timeline"] = []
        return out

    # -- rendering ---------------------------------------------------------
    def _table(self, title: str, rows: Dict[str, float],
               top: int) -> List[str]:
        total = self.cp_length or 1.0
        out = [f"  {title}"]
        ordered = sorted(rows.items(), key=lambda kv: -kv[1])
        shown = ordered[:top]
        for name, t in shown:
            out.append(f"    {name:20s} {t * 1e3:10.3f} ms "
                       f"{100.0 * t / total:5.1f}%")
        rest = sum(t for _, t in ordered[top:])
        if rest > 0:
            out.append(f"    {'(other)':20s} {rest * 1e3:10.3f} ms "
                       f"{100.0 * rest / total:5.1f}%")
        return out

    def comm_matrix_text(self, max_endpoints: int = 16) -> str:
        """Per-(src,dst) traffic matrix in MiB.

        Endpoints are GPUs; when more than ``max_endpoints`` GPUs
        communicated, traffic is aggregated per node instead.  Should
        even the node count exceed the cap, only the busiest
        ``max_endpoints`` endpoints are shown — with a footer saying
        how many were dropped and what share of the bytes their cells
        carried (caps are never silent).
        """
        if not self.comm:
            return "  (no pt2pt traffic recorded)"
        gpus = sorted(self.devices)
        by_node = len(gpus) > max_endpoints
        if by_node:
            labels = sorted({node for _, node in self.devices.values()})
            name = {n: f"n{n}" for n in labels}
            cells: Dict[Tuple[int, int], float] = {}
            for (s, d), (_cnt, nbytes) in self.comm.items():
                key = (self.devices[s][1], self.devices[d][1])
                cells[key] = cells.get(key, 0.0) + nbytes
        else:
            labels = gpus
            name = {g: f"g{g}" for g in gpus}
            cells = {k: float(v[1]) for k, v in self.comm.items()}
        footer = None
        if len(labels) > max_endpoints:
            traffic = {x: 0.0 for x in labels}
            for (s, d), nbytes in cells.items():
                traffic[s] += nbytes
                traffic[d] += nbytes
            keep = set(sorted(labels,
                              key=lambda x: (-traffic[x], x))[:max_endpoints])
            total = sum(cells.values())
            shown = sum(v for (s, d), v in cells.items()
                        if s in keep and d in keep)
            hidden = total - shown
            share = (100.0 * hidden / total) if total else 0.0
            footer = (f"  ({len(labels) - len(keep)} endpoints hidden; "
                      f"their cells carried {hidden / (1 << 20):.1f} MiB "
                      f"= {share:.1f}% of the traffic)")
            labels = [x for x in labels if x in keep]
        width = max(6, max(len(name[x]) for x in labels) + 1)
        head = " " * (width + 2) + "".join(
            f"{name[x]:>{width}}" for x in labels)
        lines = [f"  comm matrix ({'nodes' if by_node else 'GPUs'}, MiB "
                 f"src -> dst)", head]
        for s in labels:
            row = [f"  {name[s]:>{width}}"]
            for d in labels:
                v = cells.get((s, d), 0.0) / (1 << 20)
                row.append(f"{v:{width}.1f}" if v else " " * (width - 1) + ".")
            lines.append("".join(row))
        if footer is not None:
            lines.append(footer)
        return "\n".join(lines)

    def render(self, top: int = 10) -> str:
        """Multi-line summary: critical path + comm matrix."""
        lines = [
            f"critical path: {self.cp_length * 1e3:.3f} ms over "
            f"{self.n_spans} spans "
            f"(comm {self.comm_share * 100:.1f}% / "
            f"compute {self.compute_share * 100:.1f}%)",
        ]
        lines += self._table("by phase:", self.by_phase, top)
        lines += self._table("by resource class:", self.by_class, top)
        lines += self._table("by rank:", self.by_actor, top)
        busiest = sorted(self.utilization.items(), key=lambda kv: -kv[1])
        if busiest:
            lines.append("  busiest resources:")
            for r, u in busiest[:min(top, 5)]:
                lines.append(f"    {r:24s} {u * 100:5.1f}% busy")
        lines.append(self.comm_matrix_text())
        return "\n".join(lines)


def build_profile(recorder: SpanRecorder) -> ProfileReport:
    """Analyse a recorder's spans into a :class:`ProfileReport`."""
    graph = ActivityGraph.from_recorder(recorder)
    util = graph.utilization()
    return ProfileReport(
        makespan=graph.makespan,
        cp_length=graph.cp_length,
        n_spans=len(graph.spans),
        by_phase=graph.cp_breakdown("phase"),
        by_class=graph.cp_breakdown("class"),
        by_actor=graph.cp_breakdown("actor"),
        comm=dict(recorder.comm),
        devices=dict(recorder.devices),
        utilization=util,
        graph=graph,
    )
