"""Causal span recording for the simulator.

A *span* is an interval of simulated time during which a unit of work
held a resource (a kernel on an SM array, a message on a link, a chunk
on the host-memcpy engine) or simply elapsed (a barrier wait, a fixed
software overhead).  Each span carries *causal predecessors* — the spans
whose completion allowed it to start:

- **program order**: the previous span recorded by the same sim process;
- **resource order**: the last span that held each resource the new span
  occupies (FIFO queues make this the true grant predecessor);
- **wake-up edges**: when an event triggered by process A resumes
  process B, A's latest span is noted and attached to B's next span
  (this is how a helper thread's backward kernel becomes a predecessor
  of the main thread's reduce, and how a mover's wire transfer becomes
  a predecessor of the waiter's next step).

Recording is strictly passive: it never creates simulator events, so a
run with a recorder installed is event-for-event (and bit-for-bit)
identical to a run without one.

The recorder is installed by constructing it on a simulator
(``SpanRecorder(sim)`` sets ``sim.recorder``); every instrumentation
site in ``repro.sim``/``repro.cuda``/``repro.mpi`` checks
``sim.recorder is None`` first, so the disabled path costs one attribute
load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.core import Process, Simulator

__all__ = ["Span", "SpanRecorder"]


class Span:
    """One closed (or still-open) interval of attributed simulated work."""

    __slots__ = ("sid", "kind", "resources", "nbytes", "label", "actor",
                 "phase", "op", "start", "end", "deps")

    def __init__(self, sid: int, kind: str, resources: Tuple[str, ...],
                 nbytes: int, label: str, actor: str, phase: str, op: str,
                 start: float, deps: Tuple[int, ...]):
        self.sid = sid
        self.kind = kind
        self.resources = resources
        self.nbytes = nbytes
        self.label = label
        self.actor = actor
        self.phase = phase
        self.op = op
        self.start = start
        self.end: Optional[float] = None   # None while the span is open
        self.deps = deps

    @property
    def resource(self) -> str:
        """Primary resource name ('' for resource-less spans)."""
        return self.resources[0] if self.resources else ""

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.sid} is still open")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.end:.6f}" if self.end is not None else "open"
        return (f"<Span {self.sid} {self.kind} {self.actor} "
                f"[{self.start:.6f}, {state}]>")


class SpanRecorder:
    """Captures spans + causal edges from an instrumented simulation.

    Constructing a recorder installs it on the simulator.  All public
    mutators are O(1); nothing here schedules simulator events.
    """

    #: Wake-up notes kept per process between spans (bounds memory for
    #: processes that resume many times without recording work).
    MAX_WAKE_NOTES = 8

    def __init__(self, sim: Simulator, install: bool = True):
        self.sim = sim
        self.spans: List[Span] = []
        #: (src_gpu_index, dst_gpu_index) -> [messages, bytes]
        self.comm: Dict[Tuple[int, int], List[int]] = {}
        #: gpu_index -> (device name, node index)
        self.devices: Dict[int, Tuple[str, int]] = {}
        self._last_by_proc: Dict[Process, int] = {}
        self._last_by_res: Dict[str, int] = {}
        self._wake: Dict[Process, List[int]] = {}
        self._phase: Dict[Optional[Process], List[str]] = {}
        self._op: Dict[Optional[Process], List[str]] = {}
        self._owner: Dict[Process, str] = {}
        #: Optional :class:`~repro.obs.FlightRecorder` ring fed from
        #: :meth:`open`/:meth:`close` (one attribute check when unset).
        self.flight = None
        if install:
            sim.recorder = self

    def uninstall(self) -> None:
        if self.sim.recorder is self:
            self.sim.recorder = None

    # -- span lifecycle ----------------------------------------------------
    def open(self, kind: str, *, resource: str = "",
             resources: Tuple[str, ...] = (), nbytes: int = 0,
             label: str = "") -> int:
        """Open a span at the current simulated time; returns its id.

        Dependencies are collected here: program-order predecessor,
        pending wake-up notes, and the last holder of each resource.
        Only *closed* predecessors are linked, which keeps every edge
        consistent (``dep.end <= span.start``) even for capacity>1
        resources with overlapping holds.
        """
        sim = self.sim
        spans = self.spans
        p = sim._active_process
        sid = len(spans)
        deps: List[int] = []
        if p is not None:
            prev = self._last_by_proc.get(p)
            if prev is not None:
                deps.append(prev)
            wakes = self._wake.pop(p, None)
            if wakes:
                for w in wakes:
                    if w not in deps and spans[w].end is not None:
                        deps.append(w)
        keys = resources if resources else (
            (resource,) if resource else ())
        for r in keys:
            lr = self._last_by_res.get(r)
            if lr is not None and lr not in deps and spans[lr].end is not None:
                deps.append(lr)
        if p is not None:
            actor = self._owner.get(p) or p.name
            st = self._phase.get(p)
            phase = st[-1] if st else ""
            so = self._op.get(p)
            op = so[-1] if so else ""
        else:
            actor, phase, op = "(global)", "", ""
        spans.append(Span(sid, kind, tuple(keys), nbytes, label, actor,
                          phase, op, sim._now, tuple(deps)))
        if p is not None:
            self._last_by_proc[p] = sid
        for r in keys:
            self._last_by_res[r] = sid
        if self.flight is not None:
            self.flight.on_open(spans[sid])
        return sid

    def close(self, sid: int) -> None:
        span = self.spans[sid]
        span.end = self.sim._now
        if self.flight is not None:
            self.flight.on_close(span)

    # -- kernel hooks (called from repro.sim.core) --------------------------
    def note_wakeup(self, proc: Process, sid: int) -> None:
        """A triggered event carrying span context resumed ``proc``."""
        lst = self._wake.get(proc)
        if lst is None:
            self._wake[proc] = [sid]
            return
        if not lst or lst[-1] != sid:
            lst.append(sid)
            if len(lst) > self.MAX_WAKE_NOTES:
                del lst[0]

    def last_span_of(self, proc: Process) -> Optional[int]:
        return self._last_by_proc.get(proc)

    def on_spawn(self, child: Process, parent: Optional[Process]) -> None:
        """Inherit attribution context from the spawning process.

        Mover/chunk/helper processes spawned mid-phase should attribute
        their spans to the rank (and phase/op) that spawned them.
        """
        if parent is not None:
            owner = self._owner.get(parent)
            if owner:
                self._owner[child] = owner
            elif parent.name:
                self._owner[child] = parent.name
            ph = self._phase.get(parent)
            if ph:
                self._phase[child] = [ph[-1]]
            op = self._op.get(parent)
            if op:
                self._op[child] = [op[-1]]
        if child.name and child not in self._owner:
            self._owner[child] = child.name

    def on_exit(self, proc: Process) -> None:
        """Drop per-process state once a process terminates."""
        self._last_by_proc.pop(proc, None)
        self._wake.pop(proc, None)
        self._phase.pop(proc, None)
        self._op.pop(proc, None)
        self._owner.pop(proc, None)

    # -- attribution scopes -------------------------------------------------
    def phase_push(self, phase: str) -> None:
        p = self.sim._active_process
        self._phase.setdefault(p, []).append(phase)

    def phase_pop(self, phase: str) -> None:
        st = self._phase.get(self.sim._active_process)
        if st and st[-1] == phase:
            st.pop()

    def phase_clear(self) -> None:
        """Drop the active process's phase stack (fault unwind path)."""
        self._phase.pop(self.sim._active_process, None)

    def op_push(self, op: str) -> Optional[Process]:
        """Tag subsequent spans of the active process with ``op``;
        returns the process key to pass back to :meth:`op_pop`."""
        p = self.sim._active_process
        self._op.setdefault(p, []).append(op)
        return p

    def op_pop(self, proc: Optional[Process]) -> None:
        st = self._op.get(proc)
        if st:
            st.pop()

    # -- communication matrix ----------------------------------------------
    def message(self, src_device, dst_device, nbytes: int) -> None:
        """Count one logical pt2pt message between two GPUs."""
        si, di = src_device.global_index, dst_device.global_index
        ent = self.comm.get((si, di))
        if ent is None:
            self.comm[(si, di)] = [1, nbytes]
        else:
            ent[0] += 1
            ent[1] += nbytes
        if si not in self.devices:
            self.devices[si] = (src_device.name, src_device.node_index)
        if di not in self.devices:
            self.devices[di] = (dst_device.name, dst_device.node_index)

    # -- convenience -------------------------------------------------------
    @property
    def n_spans(self) -> int:
        return len(self.spans)

    def closed_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]
