"""Program-activity-graph analysis over recorded spans.

The span list plus its causal edges *is* the program activity graph of
the simulated run (in the PAG sense of classic critical-path profilers):
vertices are spans, edges are "could not start before".  Because a
dependency is only linked once the predecessor span has closed, every
edge satisfies ``dep.end <= span.start``, and span ids are a valid
topological order — both analyses below are single linear passes.

Critical path
-------------
Walked backwards from the last span to finish: at each step the
predecessor with the latest end time is followed; any gap between that
predecessor's end and the current span's start is attributed to an
explicit ``(wait)`` segment (un-modeled cause: the process simply was
not runnable, e.g. blocked on a queue with no recorded holder).  The
segments tile ``[0, makespan]`` exactly, so the reported critical-path
length equals the simulated makespan by construction.

What-if projection
------------------
``project({"ib": 2.0})`` replays the graph with every span's duration
divided by its matched factor, keeping each span's *slack* (start minus
latest predecessor end) frozen.  This recomputes an *estimated* makespan
without re-simulating: it is exact for scale 1.0 and a good first-order
projection otherwise, but frozen slack means queueing reshuffles are not
re-resolved — see docs/PROFILING.md for caveats.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .recorder import Span, SpanRecorder

__all__ = ["ActivityGraph", "CPSegment", "span_class", "RESOURCE_CLASSES"]

#: Classes a span's primary resource maps to (what-if selectors).
RESOURCE_CLASSES = ("compute", "pcie", "ib", "host", "cpu", "gpu_mem",
                    "overhead", "sync", "other")

_KIND_CLASS = {
    "kernel": "compute",
    "reduce": "compute",
    "d2d": "gpu_mem",
    "overhead": "overhead",
    "barrier": "sync",
}


def span_class(span: Span) -> str:
    """Map a span to a coarse resource class (``ib``, ``compute``, ...)."""
    r = span.resource
    if r:
        if r.endswith(".sm"):
            return "compute"
        if ".pcie_" in r:
            return "pcie"
        if r.endswith(".tx") or r.endswith(".rx"):
            return "ib"
        if r.endswith(".hostmem"):
            return "host"
        if r.endswith(".cpured"):
            return "cpu"
    return _KIND_CLASS.get(span.kind, "other")


#: Classes counted as communication when splitting the critical path into
#: communication-bound vs compute-bound shares.
COMM_CLASSES = frozenset({"pcie", "ib", "host"})
COMPUTE_CLASSES = frozenset({"compute", "gpu_mem", "cpu"})


class CPSegment:
    """One segment of the critical path (``sid < 0`` marks a wait gap)."""

    __slots__ = ("sid", "start", "end")

    def __init__(self, sid: int, start: float, end: float):
        self.sid = sid
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_wait(self) -> bool:
        return self.sid < 0


class ActivityGraph:
    """Critical-path / utilization / what-if queries over a span list."""

    def __init__(self, spans: Sequence[Span]):
        self.spans = list(spans)
        self._closed = [s for s in self.spans if s.end is not None]
        self._cp: Optional[List[CPSegment]] = None

    @classmethod
    def from_recorder(cls, recorder: SpanRecorder) -> "ActivityGraph":
        return cls(recorder.spans)

    # -- basic quantities ---------------------------------------------------
    @property
    def makespan(self) -> float:
        """End of the last closed span (== simulated completion time of
        the recorded activity)."""
        return max((s.end for s in self._closed), default=0.0)

    @property
    def total_work(self) -> float:
        """Sum of all span durations (the serialization upper bound)."""
        return sum(s.end - s.start for s in self._closed)

    # -- critical path ------------------------------------------------------
    def critical_path(self) -> List[CPSegment]:
        """Forward-ordered segments tiling ``[0, makespan]``."""
        if self._cp is not None:
            return self._cp
        spans = self.spans
        if not self._closed:
            self._cp = []
            return self._cp
        cur = max(self._closed, key=lambda s: (s.end, s.sid))
        segs: List[CPSegment] = []
        while True:
            segs.append(CPSegment(cur.sid, cur.start, cur.end))
            pred: Optional[Span] = None
            for d in cur.deps:
                sp = spans[d]
                if sp.end is None or sp.end > cur.start:
                    continue
                if pred is None or (sp.end, sp.sid) > (pred.end, pred.sid):
                    pred = sp
            floor = pred.end if pred is not None else 0.0
            if cur.start > floor:
                segs.append(CPSegment(-1, floor, cur.start))
            if pred is None:
                break
            cur = pred  # pred.sid < cur.sid: the walk terminates
        segs.reverse()
        self._cp = segs
        return segs

    @property
    def cp_length(self) -> float:
        """Length of the critical path.  Since the segments tile the
        timeline this equals :attr:`makespan` exactly on a complete
        recording."""
        cp = self.critical_path()
        if not cp:
            return 0.0
        return cp[-1].end - cp[0].start

    def _segment_key(self, seg: CPSegment, by: str) -> str:
        if seg.is_wait:
            return "(wait)"
        s = self.spans[seg.sid]
        if by == "phase":
            # Fall back through op and kind so un-phased activity (e.g.
            # background Ibcast movers) still lands in a named bucket.
            if s.phase:
                return s.phase
            return f"[{s.op}]" if s.op else f"[{s.kind}]"
        if by == "kind":
            return s.kind
        if by == "op":
            return s.op or "(none)"
        if by == "actor":
            return s.actor
        if by == "resource":
            return s.resource or "(none)"
        if by == "class":
            return span_class(s)
        raise ValueError(f"unknown breakdown key {by!r}")

    def cp_breakdown(self, by: str = "phase") -> Dict[str, float]:
        """Critical-path time attributed by ``phase`` (default),
        ``kind``, ``op``, ``actor``, ``resource``, or ``class``."""
        out: Dict[str, float] = {}
        for seg in self.critical_path():
            k = self._segment_key(seg, by)
            out[k] = out.get(k, 0.0) + seg.duration
        return out

    def cp_cells(self) -> Dict[Tuple[str, str, str], float]:
        """Critical-path seconds per (phase, resource class, actor) cell.

        The finest-granularity attribution the diff engine aligns on:
        phases use the same op/kind fallback as :meth:`cp_breakdown`,
        wait gaps land in the ``("(wait)", "wait", "-")`` cell.  The
        cell values are the segment durations re-bucketed, so their
        ``math.fsum`` equals :attr:`cp_length` up to float rounding.
        """
        out: Dict[Tuple[str, str, str], float] = {}
        for seg in self.critical_path():
            if seg.is_wait:
                key = ("(wait)", "wait", "-")
            else:
                s = self.spans[seg.sid]
                key = (self._segment_key(seg, "phase"), span_class(s),
                       s.actor)
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def cp_timeline(self) -> List[Dict[str, object]]:
        """Forward-ordered critical-path segments as plain dicts
        (JSON-safe; consumed by the ``repro diff --trace`` export)."""
        out: List[Dict[str, object]] = []
        for seg in self.critical_path():
            if seg.is_wait:
                out.append({"start": seg.start, "end": seg.end, "sid": -1,
                            "phase": "(wait)", "class": "wait",
                            "actor": "-", "label": "(wait)"})
                continue
            s = self.spans[seg.sid]
            out.append({"start": seg.start, "end": seg.end, "sid": s.sid,
                        "phase": self._segment_key(seg, "phase"),
                        "class": span_class(s), "actor": s.actor,
                        "label": s.label or s.kind})
        return out

    def cp_shares(self) -> Tuple[float, float, float]:
        """(communication, compute, other+wait) shares of the critical
        path, each in [0, 1]."""
        total = self.cp_length
        if total <= 0:
            return (0.0, 0.0, 0.0)
        comm = compute = 0.0
        for seg in self.critical_path():
            if seg.is_wait:
                continue
            cls = span_class(self.spans[seg.sid])
            if cls in COMM_CLASSES:
                comm += seg.duration
            elif cls in COMPUTE_CLASSES:
                compute += seg.duration
        return (comm / total, compute / total,
                max(0.0, 1.0 - (comm + compute) / total))

    # -- utilization --------------------------------------------------------
    def resource_busy(self) -> Dict[str, float]:
        """Resource name -> total busy seconds (multi-link spans count
        once per link they held)."""
        busy: Dict[str, float] = {}
        for s in self._closed:
            d = s.end - s.start
            for r in s.resources:
                busy[r] = busy.get(r, 0.0) + d
        return busy

    def utilization(self) -> Dict[str, float]:
        """Resource name -> busy fraction of the makespan."""
        horizon = self.makespan
        if horizon <= 0:
            return {}
        return {r: b / horizon for r, b in self.resource_busy().items()}

    # -- what-if projection -------------------------------------------------
    def _factor(self, span: Span, scales: Dict[str, float]) -> float:
        for r in span.resources:
            if r in scales:
                return scales[r]
        if span.kind in scales:
            return scales[span.kind]
        cls = span_class(span)
        if cls in scales:
            return scales[cls]
        return scales.get("all", 1.0)

    def project(self, scales: Dict[str, float]) -> float:
        """Projected makespan with every matched span's duration divided
        by its speed-up factor.

        Selectors match (in precedence order) an exact resource name, a
        span kind, a resource class from :data:`RESOURCE_CLASSES`, or
        the catch-all ``"all"``.  Factors > 1 mean faster.  The identity
        projection (all factors 1.0) returns :attr:`makespan` exactly.
        """
        for k, v in scales.items():
            if v <= 0:
                raise ValueError(f"what-if factor {k}={v} must be > 0")
        if not scales or all(v == 1.0 for v in scales.values()):
            return self.makespan
        spans = self.spans
        end_p = [0.0] * len(spans)
        best = 0.0
        for s in spans:  # sid order == topological order
            if s.end is None:
                continue
            dep_end = 0.0
            dep_end_p = 0.0
            for d in s.deps:
                sp = spans[d]
                if sp.end is None:
                    continue
                if sp.end > dep_end:
                    dep_end = sp.end
                if end_p[d] > dep_end_p:
                    dep_end_p = end_p[d]
            slack = s.start - dep_end
            if slack < 0.0:  # defensive; edges are built closed-only
                slack = 0.0
            dur = (s.end - s.start) / self._factor(s, scales)
            e = dep_end_p + slack + dur
            end_p[s.sid] = e
            if e > best:
                best = e
        return best
