"""repro.prof — causal profiling for the simulator.

Opt-in observability layer: a :class:`SpanRecorder` installed on a
simulator captures every unit of simulated work as a causally-linked
span; :class:`ActivityGraph` answers critical-path, utilization, and
what-if questions over the recording; :func:`save_trace` exports a
Perfetto-loadable timeline with flow events.

Typical use::

    sim = Simulator()
    cluster = make_cluster(sim, "A")
    rec = SpanRecorder(sim)                 # installs itself
    report = run_scaffe(cluster, 8, cfg, recorder=rec)
    print(report.profile.render())
    print(report.profile.what_if({"ib": 2.0}))
    save_trace("run.json", rec.spans)

With no recorder installed (the default) every instrumentation site is
a single ``is None`` check and simulated times are bit-identical to an
un-instrumented build.
"""

from .graph import ActivityGraph, CPSegment, RESOURCE_CLASSES, span_class
from .export import save_trace, trace_events
from .recorder import Span, SpanRecorder
from .report import ProfileReport, build_profile

__all__ = [
    "ActivityGraph",
    "CPSegment",
    "ProfileReport",
    "RESOURCE_CLASSES",
    "Span",
    "SpanRecorder",
    "build_profile",
    "save_trace",
    "span_class",
    "trace_events",
]
