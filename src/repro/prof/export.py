"""Chrome/Perfetto trace export for recorded spans.

Spans become complete ("X") events on one track per (actor, resource
class); cross-track causal edges become flow ("s"/"f") event pairs, so
Perfetto draws arrows from a helper thread's backward kernel to the main
thread's reduce, or from a wire transfer to the waiter's next step.
Metadata ("M") events give tracks human-readable names and a stable
sort order.  Timestamps are microseconds, per the trace-event spec.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from ..sim.trace import natural_sort_key
from .graph import span_class
from .recorder import Span

__all__ = ["trace_events", "save_trace"]

#: Track-name order within one actor (compute above the wires).
_CLASS_ORDER = {c: i for i, c in enumerate(
    ("compute", "gpu_mem", "pcie", "ib", "host", "cpu", "overhead",
     "sync", "other"))}


def trace_events(spans: Sequence[Span], *, flows: bool = True,
                 max_flows: int = 20000) -> List[dict]:
    """Trace-event dicts for ``spans`` (open spans are dropped).

    ``max_flows`` caps the number of emitted flow pairs (huge runs have
    one causal edge per message; Perfetto degrades past a few tens of
    thousands of arrows).
    """
    closed = [s for s in spans if s.end is not None]
    tracks = sorted(
        {(s.actor, span_class(s)) for s in closed},
        key=lambda t: (natural_sort_key(t[0]), _CLASS_ORDER.get(t[1], 99)))
    tid = {t: i + 1 for i, t in enumerate(tracks)}

    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": "repro.sim"},
    }]
    for t in tracks:
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid[t], "args": {"name": f"{t[0]} [{t[1]}]"}})
        events.append({"name": "thread_sort_index", "ph": "M", "pid": 0,
                       "tid": tid[t], "args": {"sort_index": tid[t]}})

    for s in closed:
        args = {"sid": s.sid}
        if s.phase:
            args["phase"] = s.phase
        if s.op:
            args["op"] = s.op
        if s.resource:
            args["resource"] = s.resource
        if s.nbytes:
            args["nbytes"] = s.nbytes
        events.append({
            "name": s.label or s.kind,
            "cat": s.kind,
            "ph": "X",
            "pid": 0,
            "tid": tid[(s.actor, span_class(s))],
            "ts": s.start * 1e6,
            "dur": (s.end - s.start) * 1e6,
            "args": args,
        })

    if flows:
        spans_list = list(spans)
        flow_id = 0
        for s in closed:
            dst_track = (s.actor, span_class(s))
            for d in s.deps:
                sp = spans_list[d]
                if sp.end is None:
                    continue
                src_track = (sp.actor, span_class(sp))
                if src_track == dst_track:
                    continue  # same-track order is visually obvious
                flow_id += 1
                if flow_id > max_flows:
                    return events
                events.append({"name": "dep", "cat": "dep", "ph": "s",
                               "pid": 0, "tid": tid[src_track],
                               "ts": sp.end * 1e6, "id": flow_id})
                # bp="e" binds the arrow head to the enclosing slice.
                events.append({"name": "dep", "cat": "dep", "ph": "f",
                               "bp": "e", "pid": 0, "tid": tid[dst_track],
                               "ts": s.start * 1e6, "id": flow_id})
    return events


def save_trace(path: str, spans: Sequence[Span], *,
               flows: bool = True) -> None:
    """Write a Perfetto/chrome://tracing-loadable JSON file."""
    with open(path, "w") as f:
        json.dump({"traceEvents": trace_events(spans, flows=flows),
                   "displayTimeUnit": "ms"}, f)
