"""Benchmark suite configuration.

The benchmarks live outside the package; make the sibling ``common``
module importable regardless of rootdir.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
