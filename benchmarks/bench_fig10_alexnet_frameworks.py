"""Figure 10: AlexNet samples/second on Cluster-B (up to 16 GPUs).

Comparators: S-Caffe, Microsoft-CNTK-like (MPI ring allreduce, host
staging), Inspur-Caffe-like (parameter server).  Paper observations:
S-Caffe reaches ~1395 samples/s and is *comparable to CNTK*; Inspur
only produced numbers at 2 and 4 GPUs ("didn't run for less than 2
GPUs"; "execution hangs after completing a few iterations" otherwise).
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

GPU_COUNTS = (1, 2, 4, 8, 16)

CFG = TrainConfig(network="alexnet", dataset="imagenet", batch_size=1024,
                  iterations=100, variant="SC-OBR", reduce_design="tuned",
                  measure_iterations=3)


def run_fig10():
    results = {}
    for fw in ("scaffe", "cntk", "inspur"):
        results[fw] = {n: train(fw, n_gpus=n, cluster="B", config=CFG)
                       for n in GPU_COUNTS}
    return results


def test_fig10_framework_comparison(benchmark):
    results = run_once(benchmark, run_fig10)

    def cell(r):
        return f"{r.samples_per_second:8.0f}" if r.ok else r.failure

    rows = [[n] + [cell(results[fw][n])
                   for fw in ("scaffe", "cntk", "inspur")]
            for n in GPU_COUNTS]
    emit("fig10_alexnet_sps", fmt_table(
        "Figure 10: AlexNet samples/second (higher is better), "
        "batch 1024, Cluster-B",
        ["GPUs", "S-Caffe", "CNTK", "Inspur-Caffe"], rows))

    sc, cntk, inspur = results["scaffe"], results["cntk"], results["inspur"]

    # Inspur-Caffe: numbers only at 2 and 4 GPUs (Section 6.4).
    assert inspur[1].failure == "unsupported"
    assert inspur[2].ok and inspur[4].ok
    assert inspur[8].failure == "hang"
    assert inspur[16].failure == "hang"

    # S-Caffe and CNTK both scale to 16 GPUs, S-Caffe comparable-or-
    # better ("achieves up to 1395 samples/s ... comparable to CNTK").
    for n in GPU_COUNTS:
        assert sc[n].ok and cntk[n].ok
        ratio = sc[n].samples_per_second / cntk[n].samples_per_second
        assert 0.9 <= ratio <= 1.6, f"ratio {ratio:.2f} at {n} GPUs"

    # Headline magnitude at 16 GPUs: same order as the paper's 1395.
    peak = sc[16].samples_per_second
    print(f"S-Caffe @16 GPUs: {peak:.0f} samples/s (paper: ~1395)")
    assert 700 <= peak <= 2800

    # Where Inspur does run, the reduction tree still wins or ties.
    for n in (2, 4):
        assert (sc[n].samples_per_second
                >= 0.95 * inspur[n].samples_per_second)
