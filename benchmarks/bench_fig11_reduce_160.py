"""Figure 11: MPI_Reduce designs at 160 processes (GPUs) on Cluster-A.

OMB-style latency across message sizes for: existing MVAPICH2 reduce
(MV2), chain-binomial (CB-k), chain-chain (CC-k), and HR (Tuned) — the
design that "builds on top of the tuning infrastructure in MVAPICH2 and
efficiently uses the fastest combination for the desired message size
and process count range" (Section 6.5).  The tuned column here is built
by the same mechanism: an offline autotuning sweep on this system
(:func:`repro.mpi.collectives.autotune`).

Reproduction note: on the paper's hardware, two-level chains stopped
scaling past 64 processes (OS noise / skew), so their 160-process table
selects chain-binomial at large sizes.  Our fabric is skew-free, so the
sweep keeps chain-chain competitive at 160 — same tuning procedure,
system-dependent table (recorded in EXPERIMENTS.md).
"""

from common import (
    KiB, MiB, emit, fmt_bytes, fmt_table, fmt_time, fresh_cluster,
    osu_reduce, run_once,
)

from repro.mpi import MV2, MV2GDR
from repro.mpi.collectives import autotune

P = 160
SIZES = (16 * KiB, 256 * KiB, 2 * MiB, 8 * MiB, 32 * MiB, 128 * MiB)
FIXED = ("MV2", "CB-4", "CB-8", "CC-4", "CC-8")
HR_CANDIDATES = ("flat", "CB-4", "CB-8", "CC-4", "CC-8")


def one_point(design: str, nbytes: int) -> float:
    if design == "MV2":
        return osu_reduce("A", MV2, nbytes, P, design="flat")
    if design == "flat":
        return osu_reduce("A", MV2GDR, nbytes, P, design="flat")
    return osu_reduce("A", MV2GDR, nbytes, P, design=design)


def run_fig11():
    table = {d: {s: one_point(d, s) for s in SIZES} for d in FIXED}
    tuning = autotune(lambda: fresh_cluster("A"), P, SIZES, HR_CANDIDATES)
    table["HR (Tuned)"] = {
        s: one_point(tuning.select(s), s) for s in SIZES}
    return table, tuning


def test_fig11_reduce_designs(benchmark):
    table, tuning = run_once(benchmark, run_fig11)
    designs = FIXED + ("HR (Tuned)",)

    rows = [[fmt_bytes(s)] + [fmt_time(table[d][s]) for d in designs]
            for s in SIZES]
    text = fmt_table(
        f"Figure 11: MPI_Reduce latency at {P} processes, Cluster-A",
        ["Size"] + list(designs), rows)
    text += "\n\nAutotuned selection: " + ", ".join(
        f"<{fmt_bytes(b)}: {d}" if b else f"else: {d}"
        for b, d in tuning.entries)
    emit("fig11_reduce_160", text)

    hr = table["HR (Tuned)"]
    # The tuned design matches the per-point best of its candidates
    # (plus the MV2-kernel difference on flat): never meaningfully worse
    # than ANY fixed design.
    for d in FIXED:
        for s in SIZES:
            assert hr[s] <= table[d][s] * 1.05, (d, fmt_bytes(s))

    # Section 5's headline: for buffers > 8 MB every chain-based
    # hierarchical design beats the flat MV2 reduce.
    for s in (32 * MiB, 128 * MiB):
        for d in ("CB-4", "CB-8", "CC-4", "CC-8"):
            assert table[d][s] < table["MV2"][s]

    # Small messages are latency-bound: long chains lose there.
    s = 16 * KiB
    assert hr[s] < table["CC-8"][s]
    assert hr[s] < table["CC-4"][s]

    # Tuned latency is monotone in message size.
    vals = [hr[s] for s in SIZES]
    assert all(b >= a for a, b in zip(vals, vals[1:]))

    # The autotuner switches designs across the size range (it is a
    # genuine hybrid, not a single algorithm).
    assert len({d for _, d in tuning.entries}) >= 2
