"""Table 1: Design and Features Space for Modern DL Frameworks."""

from common import emit, fmt_table, run_once

from repro.core import table1_rows


def build_table1():
    rows = table1_rows()
    headers = ["Framework", "MPI", "CUDA-Aware", "NBC Overlap",
               "Co-Designed", "1-GPU", "Multi-GPU", "MP/DP", "PS/RT"]
    body = [[r["framework"], r["basic_mpi"], r["cuda_aware_mpi"],
             r["overlapped_nbc"], r["codesigned"], r["single_gpu"],
             r["multi_gpu"], r["parallelism"], r["implementation"]]
            for r in rows]
    return rows, fmt_table("Table 1: DL framework design/feature space",
                           headers, body)


def test_table1(benchmark):
    rows, text = run_once(benchmark, build_table1)
    emit("table1_features", text)

    by_name = {r["framework"]: r for r in rows}
    # S-Caffe is the only framework with the full feature column.
    s = by_name["S-Caffe"]
    assert (s["basic_mpi"], s["cuda_aware_mpi"], s["overlapped_nbc"],
            s["codesigned"]) == ("yes",) * 4
    assert s["parallelism"] == "DP" and s["implementation"] == "RT"
    # The paper's distinguishing contrasts.
    assert by_name["Caffe"]["basic_mpi"] == "no"
    assert by_name["Inspur-Caffe"]["implementation"] == "PS"
    assert by_name["CNTK"]["cuda_aware_mpi"] == "no"
    assert all(r["overlapped_nbc"] != "yes" for n, r in by_name.items()
               if n != "S-Caffe")
