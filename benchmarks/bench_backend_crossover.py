"""The MPI-vs-NCCL backend crossover study.

The follow-up question to the paper's runtime comparison (Section 6.5):
given a co-designed MPI runtime *and* an NCCL-style backend on the same
hardware, which should a framework call, and when?  This regenerates
the dispatch-table answer: sweep message size x GPU density x process
count over all four backends (three MPI profiles + nccl), print the
per-cell winner, and assert the qualitative shape:

- large-message allreduce on dense-GPU nodes at scale: the NCCL
  topology-aware ring wins (one NIC crossing per node per direction,
  2(P-1)/P bytes per rank);
- small-message broadcast at large P: an MPI profile (or the NCCL
  double-binary trees) wins — the ring's (P-1)-hop latency chain
  loses to log2(P) rounds;
- a crossover point exists along the size axis for every
  (collective, density) the sweep covers.
"""

from common import KiB, MiB, emit, run_once

from repro.analysis import crossover_report, find_crossovers, sweep

SIZES = (4 * KiB, 64 * KiB, 1 * MiB, 16 * MiB)
PROCS = (8, 32)
CLUSTERS = ("A", "B")


def run_crossover():
    return sweep(clusters=CLUSTERS, procs=PROCS, sizes=SIZES)


def test_backend_crossover(benchmark):
    points = run_once(benchmark, run_crossover)
    emit("backend_crossover", crossover_report(points))

    def point(coll, cluster, P, nbytes):
        return next(p for p in points
                    if (p.collective, p.cluster, p.P, p.nbytes)
                    == (coll, cluster, P, nbytes))

    # Large-message allreduce, dense GPUs, at scale: NCCL's ring wins.
    big = point("allreduce", "A", 32, 16 * MiB)
    assert big.winner == "nccl" and big.algorithm["nccl"] == "ring", \
        big.winner_label()

    # Small-message large-P broadcast: an MPI profile or the NCCL tree
    # path wins — never the (P-1)-hop ring.
    small = point("bcast", "A", 32, 4 * KiB)
    assert small.winner != "nccl" or small.algorithm["nccl"] == "tree", \
        small.winner_label()
    assert small.latency[small.winner] < small.latency["nccl"] or \
        small.algorithm["nccl"] == "tree"

    # The winner flips somewhere along the size axis for every
    # (collective, density) series at P=32.
    for c in find_crossovers(points):
        if c.P != 32:
            continue
        winners = {w for _, w in c.winners}
        assert len(winners) > 1, \
            f"no crossover for {c.collective}/Cluster-{c.cluster}"

    # The NCCL backend is never pathological: within 4x of the best
    # backend at every swept point (the "don't fall off a cliff"
    # property a dispatch table relies on).
    for p in points:
        assert p.latency["nccl"] <= 4.0 * p.latency[p.winner], \
            (p.collective, p.cluster, p.P, p.nbytes)
