"""Single-node comparison: S-Caffe vs NVIDIA-optimized Caffe.

From the abstract: "even for single node training, S-Caffe shows an
improvement of 14% and 9% over Nvidia's optimized Caffe for 8 and 16
GPUs, respectively."  NV-Caffe has faster kernels but keeps the
sequential phase structure; S-Caffe wins on overlap + HR even within
one node.
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

CFG = TrainConfig(network="alexnet", dataset="imagenet", batch_size=1024,
                  iterations=100, measure_iterations=3, variant="SC-OBR",
                  reduce_design="tuned")


def run_single_node():
    out = {}
    for n in (8, 16):
        nv = train("nvcaffe", n_gpus=n, cluster="A", config=CFG)
        bvlc = train("caffe", n_gpus=n, cluster="A", config=CFG)
        sc = train("scaffe", n_gpus=n, cluster="A", config=CFG)
        out[n] = (bvlc, nv, sc)
    return out


def test_single_node_vs_nvcaffe(benchmark):
    results = run_once(benchmark, run_single_node)

    rows = []
    for n, (bvlc, nv, sc) in results.items():
        imp = (nv.total_time - sc.total_time) / nv.total_time * 100
        rows.append([n, f"{bvlc.total_time:7.2f}", f"{nv.total_time:7.2f}",
                     f"{sc.total_time:7.2f}", f"{imp:5.1f}%"])
    emit("single_node_nvcaffe", fmt_table(
        "Single-node AlexNet training time [s], 100 iters, batch 1024, "
        "Cluster-A (paper: S-Caffe 14%/9% over NV-Caffe at 8/16 GPUs)",
        ["GPUs", "Caffe", "NV-Caffe", "S-Caffe", "S-Caffe vs NV-Caffe"],
        rows))

    for n, (bvlc, nv, sc) in results.items():
        # NV's kernels beat stock Caffe; S-Caffe beats both via overlap.
        assert nv.total_time < bvlc.total_time
        imp = (nv.total_time - sc.total_time) / nv.total_time
        assert 0.03 <= imp <= 0.25, (n, imp)
