"""Section 5 analytical model: T(Bin) vs T(CC), validated by simulation.

Regenerates the analysis behind the HR design:

    T(Bin) = log2(P) * t(b)                   (1)
    T(CC)  = (n + P - 2) * t(c),  c = b/n     (2)

and checks the paper's qualitative conclusions against both the
closed-form model and the event-driven simulation:

- small P, large b:  T(CC) << T(Bin)
- large P, small b:  T(CC) >> T(Bin)
- buffers > 8 MB: chain designs beat the binomial "regardless of the
  number of chunks";
- the chain's benefit tapers as its length grows (the motivation for
  chain-size 8 + a second level).
"""

from common import (
    KiB, MiB, emit, fmt_bytes, fmt_table, fmt_time, osu_reduce, run_once,
)

from repro.analysis import (
    HopCost, crossover_P, optimal_chunks, t_binomial, t_chunked_chain,
)
from repro.hardware import DEFAULT_CALIBRATION
from repro.mpi import MV2GDR

# Hop cost from the same calibration the simulator uses: per-message
# fixed cost ~ copy overhead + latency; bandwidth ~ GDR path.
CAL = DEFAULT_CALIBRATION
HOP = HopCost(alpha=CAL.cuda_copy_overhead + CAL.ib_latency
              + CAL.kernel_launch_overhead,
              beta=CAL.gdr_read_bw)

SIZES = (64 * KiB, 1 * MiB, 8 * MiB, 64 * MiB, 256 * MiB)
PROCS = (4, 8, 16, 64, 160)


def run_model():
    analytic = {}
    for b in SIZES:
        for P in PROCS:
            n = optimal_chunks(P, b, HOP)
            analytic[(P, b)] = (t_binomial(P, b, HOP),
                                t_chunked_chain(P, b, n, HOP), n)
    # Simulated validation points (within one chain's scaling range).
    simulated = {}
    for P, b in ((8, 64 * MiB), (8, 64 * KiB), (16, 64 * MiB)):
        simulated[(P, b)] = (
            osu_reduce("A", MV2GDR, b, P, design="flat"),
            osu_reduce("A", MV2GDR, b, P, design="chain"))
    return analytic, simulated


def test_model_crossover(benchmark):
    analytic, simulated = run_once(benchmark, run_model)

    rows = [[P, fmt_bytes(b), fmt_time(tb), fmt_time(tc), n,
             "CC" if tc < tb else "Bin"]
            for (P, b), (tb, tc, n) in analytic.items()]
    text = fmt_table(
        "Section 5 model: T(Bin) = log2(P) t(b) vs "
        "T(CC) = (n+P-2) t(b/n)",
        ["P", "b", "T(Bin)", "T(CC)", "n*", "winner"], rows)
    sim_rows = [[P, fmt_bytes(b), fmt_time(tb), fmt_time(tc)]
                for (P, b), (tb, tc) in simulated.items()]
    text += "\n\n" + fmt_table(
        "Simulated validation (event-driven MPI_Reduce)",
        ["P", "b", "Binomial (sim)", "Chain (sim)"], sim_rows)
    emit("model_crossover", text)

    # Small P, large b -> chain dominates (model and simulation agree).
    tb, tc, _ = analytic[(8, 256 * MiB)]
    assert tc < 0.5 * tb
    stb, stc = simulated[(8, 64 * MiB)]
    assert stc < stb

    # Large P, small b -> binomial dominates.
    tb, tc, _ = analytic[(160, 64 * KiB)]
    assert tc > 2.0 * tb
    stb, stc = simulated[(8, 64 * KiB)]
    assert stb < stc

    # "For buffer sizes greater than 8M ... CC performs much better than
    # the binomial tree" within one chain's range (P <= 8-16).
    for b in (8 * MiB, 64 * MiB, 256 * MiB):
        for P in (4, 8, 16):
            tb, tc, _ = analytic[(P, b)]
            assert tc < tb, (P, fmt_bytes(b))

    # The crossover P grows with buffer size (size-tolerance axis).
    c_small = crossover_P(256 * KiB, HOP)
    c_large = crossover_P(64 * MiB, HOP)
    assert c_small is not None
    assert c_large is None or c_large > c_small

    # Skew/latency axis: in the latency-bound regime the chain's linear
    # (P-1)-hop cost overtakes the binomial's log2(P) rounds, and its
    # relative standing only worsens with P — the analytic face of
    # "T(CC) >> T(Bin) for large P and small b".
    b = 64 * KiB
    gains = []
    for P in (4, 8, 16, 64):
        tb, tc, _ = analytic[(P, b)]
        gains.append(tb / tc)
    assert all(a >= b_ for a, b_ in zip(gains, gains[1:]))
