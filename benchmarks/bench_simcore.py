#!/usr/bin/env python
"""Simulator-core throughput benchmark: events/sec and wall-clock.

Unlike every other bench in this directory, this one measures *host*
wall-clock, not simulated time: it exists to keep the discrete-event
kernel fast enough that large-P sweeps (NCCL crossovers, CVAR tuning,
1024-GPU weak scaling) are gated by simulated fidelity, not by Python.

Workloads
---------
- ``kernel_chain``   — pure DES microbenchmark (processes, timeouts,
  resource contention, channel hand-offs); isolates raw dispatch rate.
- ``fig13_scob_*``   — the SC-OB GoogLeNet training point behind
  ``bench_fig13_overlap.py`` (no observers attached).
- ``weak_scaling_*`` — the SC-OBR weak-scaling point behind
  ``bench_weak_scaling.py``.

Metrics
-------
For each workload we report wall seconds (best of ``--repeat`` runs),
the simulated ``event_count``, and ``events_per_sec``.  Because kernel
optimisations may legitimately *remove* protocol events, the headline
throughput number is ``ref_events_per_sec``: the workload's *frozen
pre-optimisation* event count (``baselines/simcore_prechange.json``)
divided by today's wall time.  That makes the number a pure wall-clock
speedup at fixed workload — removing events cannot inflate it.

CI runs ``--quick --check`` (the ``sim-bench`` job) and fails if any
quick workload drops below 75% of the committed rolling baseline
(``baselines/simcore.json``); ``regression_gate.py`` applies the same
floor.  Refresh after an intentional change with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from common import emit, emit_json, fmt_table  # noqa: E402

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")
ROLLING_BASELINE = os.path.join(BASELINE_DIR, "simcore.json")
PRECHANGE_BASELINE = os.path.join(BASELINE_DIR, "simcore_prechange.json")

#: Wall-clock floor: fail if events/sec drops below this fraction of the
#: rolling baseline.  Generous because host wall-clock (unlike simulated
#: time) is noisy on shared CI runners.
FLOOR = 0.75


# -- workloads --------------------------------------------------------------

def _kernel_chain() -> tuple[int, float]:
    """Pure sim-kernel churn: contended resources + channel hand-offs."""
    from repro.sim import Channel, Simulator
    from repro.sim.resources import Resource

    sim = Simulator()
    res = Resource(sim, capacity=4)
    ch = Channel(sim)
    n_procs, iters = 64, 120

    def producer(i):
        for k in range(iters):
            yield from res.use(1e-6)
            yield ch.put((i, k))
            yield sim.timeout(1e-7 * (i % 7))

    def consumer():
        for _ in range(n_procs * iters):
            yield ch.get()

    for i in range(n_procs):
        sim.process(producer(i))
    sim.process(consumer())
    sim.run()
    return sim.event_count, sim.now


def _train_point(variant: str, n_gpus: int, *, batch: int,
                 scal: str = "strong") -> tuple[int, float]:
    from repro import TrainConfig, train
    from repro.hardware import make_cluster
    from repro.sim import Simulator

    cfg = TrainConfig(network="googlenet", dataset="imagenet",
                      batch_size=batch, scal=scal, iterations=100,
                      variant=variant, reduce_design="tuned",
                      measure_iterations=3)
    sim = Simulator()
    cluster = make_cluster(sim, "A", n_nodes=max(1, (n_gpus + 15) // 16))
    report = train("scaffe", n_gpus=n_gpus, cluster=cluster, config=cfg)
    assert report.ok, report.failure
    return sim.event_count, sim.now


#: name -> (callable, in_quick_set)
WORKLOADS = {
    "kernel_chain": (lambda: _kernel_chain(), True),
    "fig13_scob_16gpu": (
        lambda: _train_point("SC-OB", 16, batch=1024), True),
    "weak_scaling_16gpu": (
        lambda: _train_point("SC-OBR", 16, batch=64, scal="weak"), True),
    "fig13_scob_32gpu": (
        lambda: _train_point("SC-OB", 32, batch=1024), False),
    "weak_scaling_32gpu": (
        lambda: _train_point("SC-OBR", 32, batch=64, scal="weak"), False),
}


def measure(name: str, repeat: int) -> dict:
    fn, _ = WORKLOADS[name]
    best_wall, events, sim_time = None, 0, 0.0
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        events, sim_time = fn()
        wall = time.perf_counter() - t0
        best_wall = wall if best_wall is None else min(best_wall, wall)
    return {
        "wall_s": round(best_wall, 4),
        "events": events,
        "sim_time": sim_time,
        "events_per_sec": round(events / best_wall, 1),
    }


def run_workloads(names, repeat: int = 2,
                  progress: bool = True) -> dict:
    prechange = _load(PRECHANGE_BASELINE)
    out = {}
    for name in names:
        r = measure(name, repeat)
        pre = (prechange or {}).get("workloads", {}).get(name)
        if pre:
            # Frozen-workload throughput: pre-change event count over
            # today's wall time (see module docstring).
            r["ref_events_per_sec"] = round(pre["events"] / r["wall_s"], 1)
            r["speedup_vs_prechange"] = round(pre["wall_s"] / r["wall_s"], 2)
        else:
            r["ref_events_per_sec"] = r["events_per_sec"]
        out[name] = r
        if progress:
            print(f"{name}: {r['wall_s']:.3f}s wall, {r['events']} events, "
                  f"{r['ref_events_per_sec']:.0f} ref-events/s"
                  + (f", {r['speedup_vs_prechange']:.2f}x vs pre-change"
                     if "speedup_vs_prechange" in r else ""))
    return out


def check_floor(results: dict, baseline: dict) -> list:
    """Events/sec floor vs the rolling baseline (shared with the gate)."""
    problems = []
    for name, base in sorted(baseline.get("workloads", {}).items()):
        got = results.get(name)
        if got is None:
            continue
        floor = base["ref_events_per_sec"] * FLOOR
        if got["ref_events_per_sec"] < floor:
            problems.append(
                f"{name}: {got['ref_events_per_sec']:.0f} events/s below "
                f"floor {floor:.0f} (baseline "
                f"{base['ref_events_per_sec']:.0f}, tolerance "
                f"{(1 - FLOOR) * 100:.0f}%)")
    return problems


def _load(path: str):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="run only the quick subset (CI sim-bench job)")
    ap.add_argument("--repeat", type=int, default=2,
                    help="wall-clock repeats per workload (best-of)")
    ap.add_argument("--check", action="store_true",
                    help="fail if below the events/sec floor vs baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the rolling baseline from this run")
    ap.add_argument("--write-prechange", action="store_true",
                    help="freeze this run as the pre-change reference "
                         "(only meaningful before a kernel optimisation)")
    args = ap.parse_args(argv)

    names = [n for n, (_, quick) in WORKLOADS.items()
             if quick or not args.quick]
    results = run_workloads(names, repeat=args.repeat)

    rows = [[n, f"{r['wall_s']:8.3f}", f"{r['events']:>9}",
             f"{r['ref_events_per_sec']:>12.0f}",
             (f"{r['speedup_vs_prechange']:5.2f}x"
              if "speedup_vs_prechange" in r else "    -")]
            for n, r in results.items()]
    emit("simcore", fmt_table(
        "Simulator-core throughput (host wall-clock)",
        ["workload", "wall [s]", "events", "ref-events/s", "speedup"],
        rows))
    payload = {"floor": FLOOR, "quick": args.quick, "workloads": results}
    path = emit_json("simcore", payload)
    print(f"wrote {path}")

    if args.write_prechange:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        with open(PRECHANGE_BASELINE, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"pre-change reference frozen: {PRECHANGE_BASELINE}")
    if args.write_baseline:
        os.makedirs(BASELINE_DIR, exist_ok=True)
        with open(ROLLING_BASELINE, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {ROLLING_BASELINE}")
        return 0

    if args.check:
        baseline = _load(ROLLING_BASELINE)
        if baseline is None:
            print(f"no baseline at {ROLLING_BASELINE}; run with "
                  "--write-baseline", file=sys.stderr)
            return 2
        problems = check_floor(results, baseline)
        if problems:
            print("\nSIM-BENCH FLOOR FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"sim-bench floor: {len(results)} workloads within "
              f"{(1 - FLOOR) * 100:.0f}% of baseline events/sec")
    return 0


if __name__ == "__main__":
    sys.exit(main())
