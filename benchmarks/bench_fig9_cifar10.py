"""Figure 9: CIFAR10 quick solver scaling on Cluster-A (up to 64 GPUs).

Batch 8,192, 1,000 iterations; Caffe runs within one node (<= 16 GPUs),
S-Caffe scales to 64 GPUs across 4 nodes.  Paper targets: ~32x speedup
over 1 GPU at 64 GPUs; "S-Caffe and Caffe perform very similar up to 16
GPUs" (compute-intensive model, tiny communication).
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64)

CFG = TrainConfig(network="cifar10_quick", dataset="cifar10",
                  batch_size=8192, iterations=1000, variant="SC-OBR",
                  reduce_design="tuned", measure_iterations=3)


def run_fig9():
    results = {}
    for n in GPU_COUNTS:
        caffe = train("caffe", n_gpus=n, cluster="A", config=CFG)
        sc = train("scaffe", n_gpus=n, cluster="A", config=CFG)
        results[n] = (caffe, sc)
    return results


def test_fig9_cifar10_scaling(benchmark):
    results = run_once(benchmark, run_fig9)

    base = results[1][1].total_time
    rows = []
    for n, (caffe, sc) in results.items():
        rows.append([
            n,
            f"{caffe.total_time:8.2f}" if caffe.ok else caffe.failure,
            f"{sc.total_time:8.2f}",
            f"{base / sc.total_time:6.1f}x",
        ])
    emit("fig9_cifar10", fmt_table(
        "Figure 9: CIFAR10 quick solver training time [s], 1000 iters, "
        "batch 8192, Cluster-A",
        ["GPUs", "Caffe", "S-Caffe", "S-Caffe speedup vs 1 GPU"], rows))

    # Caffe: one node only.
    assert all(results[n][0].ok for n in (1, 2, 4, 8, 16))
    assert all(results[n][0].failure == "unsupported" for n in (32, 64))

    # "S-Caffe does not suffer any overhead" vs Caffe up to 16 GPUs.
    for n in (1, 2, 4, 8, 16):
        caffe, sc = results[n]
        assert sc.total_time <= caffe.total_time * 1.05

    # Monotone scaling to 64 GPUs; overall speedup near the paper's 32x.
    times = [results[n][1].total_time for n in GPU_COUNTS]
    assert all(b < a for a, b in zip(times, times[1:]))
    overall = base / results[64][1].total_time
    print(f"S-Caffe speedup @64 GPUs vs 1: {overall:.1f}x (paper: ~32x)")
    assert 20.0 <= overall <= 55.0
