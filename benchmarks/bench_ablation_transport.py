"""Ablation: which runtime mechanism buys what (Fig. 12 decomposition).

Strips the proposed runtime's mechanisms one at a time and measures a
160-process reduce at two message sizes:

- 64 KB — the latency regime, where GPUDirect RDMA earns its keep
  (below the GPUDIRECT_LIMIT threshold);
- 64 MB — the DL regime, where GPU reduce kernels, CUDA IPC, and
  segment pipelining dominate (large messages use pipelined pinned
  staging even under MVAPICH2-GDR, because Haswell-era chipsets cap GDR
  read bandwidth).
"""

from common import KiB, MiB, emit, fmt_table, fmt_time, osu_reduce, run_once

from repro.mpi import MV2GDR

P = 160
SMALL = 64 * KiB
LARGE = 64 * MiB

VARIANTS = [
    ("full (mv2gdr)", {}),
    ("- GPUDirect RDMA", {"gdr": False}),
    ("- GPU reduce kernels", {"gpu_reduce": False}),
    ("- CUDA IPC", {"ipc": False}),
    ("- pipelining", {"segment_pipelining": False}),
    ("- all of the above", {"gdr": False, "gpu_reduce": False,
                            "ipc": False, "segment_pipelining": False}),
]


def run_ablation():
    out = {}
    for label, overrides in VARIANTS:
        profile = MV2GDR.derive(name=f"ablate:{label}", **overrides)
        out[label] = (osu_reduce("A", profile, SMALL, P, design="tuned"),
                      osu_reduce("A", profile, LARGE, P, design="tuned"))
    return out


def test_transport_ablation(benchmark):
    results = run_once(benchmark, run_ablation)

    full_s, full_l = results["full (mv2gdr)"]
    rows = [[label, fmt_time(s), f"{s / full_s:5.2f}x",
             fmt_time(l), f"{l / full_l:5.2f}x"]
            for label, (s, l) in results.items()]
    emit("ablation_transport", fmt_table(
        f"Mechanism ablation: MPI_Reduce, {P} procs, Cluster-A",
        ["configuration", "64 KB", "vs full", "64 MB", "vs full"], rows))

    # GDR matters in the latency regime.
    assert results["- GPUDirect RDMA"][0] > full_s * 1.2
    # Kernels, IPC and pipelining matter in the bandwidth regime.
    for label in ("- GPU reduce kernels", "- CUDA IPC", "- pipelining"):
        assert results[label][1] > full_l * 1.05, label
    # Removing everything is the worst large-message configuration and
    # accounts for the dominant share of the Fig. 12 gap.
    worst_l = results["- all of the above"][1]
    for label, (_, l) in results.items():
        if label != "- all of the above":
            assert worst_l >= l, label
    assert worst_l / full_l > 3.0
