"""Ablation: broadcast algorithms for the data-propagation phase.

S-Caffe's on_start() broadcasts the packed parameter buffer (Section
4.1).  The runtime offers three algorithms; this sweep shows the classic
small/large-message crossover between the binomial tree and the
van de Geijn scatter+allgather (what real MVAPICH2's selection logic
exploits), plus the linear "flat" pattern a parameter server master is
stuck with.
"""

from common import (
    KiB, MiB, emit, fmt_bytes, fmt_table, fmt_time, fresh_cluster, run_once,
)

from repro.cuda import DeviceBuffer
from repro.mpi import MPIRuntime, MV2GDR
from repro.mpi.collectives import (
    bcast_binomial, bcast_flat, bcast_scatter_allgather,
)

P = 64
SIZES = (16 * KiB, 1 * MiB, 16 * MiB, 128 * MiB)
ALGOS = {"binomial": bcast_binomial, "flat": bcast_flat,
         "scatter_allgather": bcast_scatter_allgather}


def one_point(algo_name: str, nbytes: int) -> float:
    cluster = fresh_cluster("A")
    rt = MPIRuntime(cluster, MV2GDR)
    comm = rt.world(P)
    algo = ALGOS[algo_name]

    def program(ctx):
        buf = DeviceBuffer(ctx.gpu, nbytes)
        yield from algo(ctx, buf, 0)
        return ctx.sim.now

    return max(rt.execute(comm, program))


def run_ablation():
    return {a: {s: one_point(a, s) for s in SIZES} for a in ALGOS}


def test_bcast_ablation(benchmark):
    table = run_once(benchmark, run_ablation)

    rows = [[fmt_bytes(s)] + [fmt_time(table[a][s]) for a in ALGOS]
            for s in SIZES]
    emit("ablation_bcast", fmt_table(
        f"Broadcast algorithms at {P} procs, Cluster-A",
        ["Size"] + list(ALGOS), rows))

    # Small messages: the binomial tree's log2(P) latency wins.
    s = 16 * KiB
    assert table["binomial"][s] < table["scatter_allgather"][s]
    # Large messages: scatter+allgather's ~2B/rank traffic wins.
    for s in (16 * MiB, 128 * MiB):
        assert table["scatter_allgather"][s] < table["binomial"][s]
    # The parameter-server pattern (root sends P-1 copies) is the worst
    # large-message broadcast by a wide margin.
    assert table["flat"][128 * MiB] > 3 * table["binomial"][128 * MiB]
