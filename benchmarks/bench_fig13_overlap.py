"""Figure 13: SC-B vs SC-OB — overlapped data propagation (Section 6.6).

Compares the time spent in data propagation and the Forward/Backward
compute passes per iteration for the basic CUDA-aware design (SC-B)
against the multi-stage Ibcast co-design (SC-OB).  Paper: "SC-OB
co-design provides an excellent overlap of the communication and hides
the large latency behind the compute intensive Forward pass ... up to
15% improvement".  (Reduce time excluded, as in the paper's figure.)

The SC-OB runs carry a :class:`~repro.prof.SpanRecorder`, so the table
also reports how the *critical path* splits between communication and
compute resources: after the co-design hides propagation, the run should
be compute-bound at every scale (comm share a small fraction).  They
also carry a :class:`~repro.telemetry.TelemetrySession`; the headline
numbers plus a PVAR digest land in ``BENCH_fig13.json`` for the CI
regression gate.
"""

from common import emit, emit_json, fmt_table, run_once

from repro import TrainConfig, train
from repro.hardware import make_cluster
from repro.prof import SpanRecorder
from repro.sim import Simulator
from repro.telemetry import TelemetrySession

GPU_COUNTS = (16, 32, 64, 96, 160)

BASE = TrainConfig(network="googlenet", dataset="imagenet",
                   batch_size=1024, iterations=100, measure_iterations=3,
                   reduce_design="tuned")


def run_fig13():
    out = {}
    for n in GPU_COUNTS:
        scb = train("scaffe", n_gpus=n, cluster="A",
                    config=BASE.derive(variant="SC-B"))
        sim = Simulator()
        cluster = make_cluster(sim, "A")
        scob = train("scaffe", n_gpus=n, cluster=cluster,
                     config=BASE.derive(variant="SC-OB"),
                     recorder=SpanRecorder(sim),
                     telemetry=TelemetrySession())
        out[n] = (scb, scob)
    return out


def _pvar_digest(report) -> dict:
    """The regression-relevant slice of the run's PVAR snapshot."""
    tel = report.telemetry
    return {
        "bytes_by_path": {k: int(v)
                          for k, v in tel.bytes_by_path.items()},
        "coll_bytes": {k: int(v)
                       for k, v in tel.pvars["mpi.coll.bytes"].items()},
        "peak_device_mem": int(tel.peak_device_mem),
        "iterations": int(tel.pvars["train.iterations"]),
    }


def test_fig13_scob_overlap(benchmark):
    results = run_once(benchmark, run_fig13)

    rows = []
    for n, (scb, scob) in results.items():
        prop_b = scb.phase("propagation") * 1e3
        fb_b = (scb.phase("fwd") + scb.phase("bwd")) * 1e3
        prop_o = scob.phase("propagation") * 1e3
        fb_o = (scob.phase("fwd") + scob.phase("bwd")) * 1e3
        imp = (scb.total_time - scob.total_time) / scb.total_time * 100
        prof = scob.profile
        cp = (f"{prof.comm_share * 100:4.1f}%/"
              f"{prof.compute_share * 100:4.1f}%")
        rows.append([n, f"{prop_b:7.2f}", f"{fb_b:7.2f}",
                     f"{prop_o:7.2f}", f"{fb_o:7.2f}", f"{imp:5.1f}%", cp])
    emit("fig13_scob_overlap", fmt_table(
        "Figure 13: SC-B vs SC-OB per-iteration phases [ms], GoogLeNet, "
        "Cluster-A",
        ["GPUs", "SC-B prop", "SC-B F/B", "SC-OB prop (wait)",
         "SC-OB F/B", "improvement", "SC-OB CP comm/comp"], rows))
    emit_json("fig13", {
        "config": {"network": BASE.network, "batch_size": BASE.batch_size,
                   "iterations": BASE.iterations,
                   "measure_iterations": BASE.measure_iterations,
                   "reduce_design": BASE.reduce_design, "cluster": "A",
                   "gpu_counts": list(GPU_COUNTS)},
        "headline": {
            str(n): {"scb_total_time": scb.total_time,
                     "scob_total_time": scob.total_time,
                     "scob_prop_ms": scob.phase("propagation") * 1e3}
            for n, (scb, scob) in results.items()},
        "pvars": {str(n): _pvar_digest(scob)
                  for n, (_scb, scob) in results.items()},
    })

    for n, (scb, scob) in results.items():
        # SC-OB hides propagation behind the forward pass: the visible
        # wait shrinks versus SC-B's blocking broadcast.
        assert scob.phase("propagation") < 0.7 * scb.phase("propagation")
        # And never loses end-to-end.
        assert scob.total_time <= scb.total_time * 1.01
    # At small scale the hide is essentially total.
    scb16, scob16 = results[16]
    assert scob16.phase("propagation") < 0.2 * scb16.phase("propagation")

    # The benefit grows with scale, reaching the paper's "up to 15%"
    # neighbourhood at 160 GPUs.
    imps = [(scb.total_time - scob.total_time) / scb.total_time
            for scb, scob in results.values()]
    assert imps[-1] == max(imps)
    print(f"SC-OB improvement at 160 GPUs: {imps[-1]*100:.1f}% "
          "(paper: up to 15%)")
    assert 0.08 <= imps[-1] <= 0.30

    # With propagation hidden, SC-OB's critical path stays compute-bound
    # at every scale (the whole point of the overlap co-design).
    for n, (_scb, scob) in results.items():
        prof = scob.profile
        assert prof.compute_share > prof.comm_share, n
        assert prof.comm_share < 0.35, n
