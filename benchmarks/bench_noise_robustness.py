"""Robustness: the headline comparisons under a realistic noise floor.

Every other benchmark runs on a perfectly quiet fabric.  Real clusters
jitter (OS noise, DVFS, congestion) and have persistently slower
devices.  This benchmark re-runs the Fig. 12 comparison and the SC-B vs
SC-OBR co-design comparison with a 10% per-message jitter and 20%
straggler spread across several seeds, asserting the paper's *orderings
and factor bands* are not artifacts of determinism.
"""

import statistics

from common import MiB, emit, fmt_table, fmt_time, run_once

from repro import TrainConfig
from repro.core import run_scaffe
from repro.cuda import DeviceBuffer
from repro.faults import named_plan
from repro.hardware import Calibration, cluster_a
from repro.mpi import MPIRuntime, MV2, MV2GDR, OPENMPI
from repro.mpi.collectives import reduce_binomial, tuned_reduce
from repro.sim import Simulator

NOISY = Calibration(network_jitter=0.10, compute_jitter=0.10,
                    straggler_spread=0.20)
SEEDS = (11, 22, 33)
NBYTES = 64 * MiB
P = 160


def reduce_point(profile, seed):
    sim = Simulator(seed=seed)
    cluster = cluster_a(sim, cal=NOISY)
    rt = MPIRuntime(cluster, profile)
    comm = rt.world(P)

    def program(ctx):
        s = DeviceBuffer(ctx.gpu, NBYTES)
        r = DeviceBuffer(ctx.gpu, NBYTES) if ctx.rank == 0 else None
        if profile is MV2GDR:
            yield from tuned_reduce(ctx, s, r, 0)
        else:
            yield from reduce_binomial(ctx, s, r, 0)
        return ctx.sim.now

    return max(rt.execute(comm, program))


def _train_cfg(variant):
    return TrainConfig(network="caffenet", dataset="imagenet",
                       batch_size=1024, iterations=20,
                       measure_iterations=3, variant=variant,
                       reduce_design="tuned")


def train_point(variant, seed):
    sim = Simulator(seed=seed)
    cluster = cluster_a(sim, cal=NOISY)
    return run_scaffe(cluster, 16, _train_cfg(variant))


def train_point_faulted(variant, seed, horizon):
    """Same run under the 'flaky' fault plan (flaky NIC/PCIe window +
    one straggler GPU), scheduled over the quiet run's simulated span."""
    sim = Simulator(seed=seed)
    cluster = cluster_a(sim, cal=NOISY)
    plan = named_plan("flaky", seed=seed, horizon=horizon, n_ranks=16,
                      n_nodes=len(cluster.nodes),
                      gpus_per_node=cluster.gpus_per_node)
    return run_scaffe(cluster, 16, _train_cfg(variant),
                      fault_plan=plan).total_time


def run_noise():
    reduce_stats = {
        prof.name: [reduce_point(prof, s) for s in SEEDS]
        for prof in (MV2GDR, MV2, OPENMPI)}
    quiet = {variant: [train_point(variant, s) for s in SEEDS]
             for variant in ("SC-B", "SC-OBR")}
    train_stats = {v: [r.total_time for r in rs] for v, rs in quiet.items()}
    fault_stats = {
        variant: [train_point_faulted(variant, s,
                                      quiet[variant][i].simulated_time)
                  for i, s in enumerate(SEEDS)]
        for variant in ("SC-B", "SC-OBR")}
    return reduce_stats, train_stats, fault_stats


def test_noise_robustness(benchmark):
    reduce_stats, train_stats, fault_stats = run_once(benchmark, run_noise)

    rows = [[name, fmt_time(min(ts)), fmt_time(statistics.mean(ts)),
             fmt_time(max(ts))]
            for name, ts in reduce_stats.items()]
    text = fmt_table(
        f"MPI_Reduce under noise (jitter 10%, stragglers 20%), {P} "
        f"procs, 64 MB, {len(SEEDS)} seeds",
        ["runtime", "min", "mean", "max"], rows)
    rows2 = [[v, fmt_time(min(ts)), fmt_time(statistics.mean(ts)),
              fmt_time(max(ts)),
              fmt_time(statistics.mean(fault_stats[v])),
              f"{statistics.mean(fault_stats[v]) / statistics.mean(ts):5.2f}x"]
             for v, ts in train_stats.items()]
    text += "\n\n" + fmt_table(
        "CaffeNet training under noise, 16 GPUs, 20 iterations "
        "(faulted = 'flaky' plan: flaky link + 1 straggler GPU)",
        ["variant", "min", "mean", "max", "faulted mean", "slowdown"],
        rows2)
    emit("noise_robustness", text)

    # Fig. 12 ordering holds for EVERY seed, not just on average.
    for i in range(len(SEEDS)):
        assert (reduce_stats["mv2gdr"][i] < reduce_stats["mv2"][i]
                < reduce_stats["openmpi"][i])
    # Factor bands stay in the paper's neighbourhood.
    mean = {k: statistics.mean(v) for k, v in reduce_stats.items()}
    assert 2.0 <= mean["mv2"] / mean["mv2gdr"] <= 6.0
    assert mean["openmpi"] / mean["mv2gdr"] >= 20.0

    # The co-design wins under noise too, for every seed.
    for i in range(len(SEEDS)):
        assert train_stats["SC-OBR"][i] < train_stats["SC-B"][i]

    # Noise produces genuine spread (the knobs are live).
    assert len(set(reduce_stats["mv2gdr"])) == len(SEEDS)

    # Faults cost time but never break the run, and the co-design's win
    # survives fault injection on average.  (Per-seed ordering is not
    # guaranteed: each variant's plan is scheduled over its own quiet
    # horizon, so the fault windows land at different phases.)
    for v in ("SC-B", "SC-OBR"):
        for i in range(len(SEEDS)):
            assert fault_stats[v][i] > train_stats[v][i]
    assert (statistics.mean(fault_stats["SC-OBR"])
            < statistics.mean(fault_stats["SC-B"]))
