"""Weak scaling (Section 6.2's ``-scal weak`` option).

"For weak scaling, the batch-size of 1,024 remains constant for each of
the GPUs. These results are not presented but can be obtained using the
public version of S-Caffe by specifying -scal weak."  We present them:
per-GPU batch fixed, so ideal weak scaling keeps iteration time flat
while aggregate throughput grows linearly.
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64)

CFG = TrainConfig(network="googlenet", dataset="imagenet",
                  batch_size=64,          # per-GPU batch under weak scaling
                  scal="weak", iterations=100, variant="SC-OBR",
                  reduce_design="tuned", measure_iterations=3)


def run_weak():
    return {n: train("scaffe", n_gpus=n, cluster="A", config=CFG)
            for n in GPU_COUNTS}


def test_weak_scaling(benchmark):
    results = run_once(benchmark, run_weak)

    base_t = results[1].time_per_iteration
    base_sps = results[1].samples_per_second
    rows = [[n, f"{r.time_per_iteration * 1e3:9.2f}",
             f"{r.samples_per_second:10.0f}",
             f"{r.samples_per_second / (base_sps * n) * 100:5.1f}%"]
            for n, r in results.items()]
    emit("weak_scaling", fmt_table(
        "Weak scaling: GoogLeNet, 64 samples/GPU, Cluster-A",
        ["GPUs", "time/iter [ms]", "samples/s", "efficiency"], rows))

    for n, r in results.items():
        assert r.ok
        assert r.global_batch == 64 * n
        # Iteration time stays within 2x of single-GPU (communication
        # grows only logarithmically/linearly in small terms).
        assert r.time_per_iteration < 2.0 * base_t
    # Aggregate throughput grows monotonically with GPU count.
    sps = [results[n].samples_per_second for n in GPU_COUNTS]
    assert all(b > a for a, b in zip(sps, sps[1:]))
    # Weak-scaling efficiency at 64 GPUs stays above 50%.
    eff = results[64].samples_per_second / (base_sps * 64)
    print(f"weak-scaling efficiency @64 GPUs: {eff * 100:.1f}%")
    assert eff > 0.5
