"""Figure 12: Proposed HR vs MVAPICH2 vs OpenMPI at 160 GPUs (log scale).

The paper's headline runtime result (also in the abstract): the
proposed hierarchical reduction is "almost 3X faster than MVAPICH2 and
up to 133X faster than OpenMPI" for DL-scale message sizes at 160
processes.  The gap comes from the mechanisms encoded in the runtime
profiles: GDR + GPU-kernel pipelined reductions (proposed) vs. pinned
host-staged pipelining + CPU sums (MVAPICH2 2.2RC1) vs. pageable
small-block synchronous staging (OpenMPI v1.10.2).
"""


from common import (
    KiB, MiB, emit, fmt_bytes, fmt_table, fmt_time, osu_reduce, run_once,
)

from repro.mpi import MV2, MV2GDR, OPENMPI

P = 160
SIZES = (64 * KiB, 1 * MiB, 8 * MiB, 64 * MiB, 256 * MiB)


def run_fig12():
    out = {}
    for s in SIZES:
        hr = osu_reduce("A", MV2GDR, s, P, design="tuned")
        mv2 = osu_reduce("A", MV2, s, P, design="flat")
        ompi = osu_reduce("A", OPENMPI, s, P, design="flat")
        out[s] = (hr, mv2, ompi)
    return out


def test_fig12_runtime_comparison(benchmark):
    results = run_once(benchmark, run_fig12)

    rows = []
    for s, (hr, mv2, ompi) in results.items():
        rows.append([fmt_bytes(s), fmt_time(hr), fmt_time(mv2),
                     fmt_time(ompi),
                     f"{mv2 / hr:5.2f}x", f"{ompi / hr:6.1f}x"])
    emit("fig12_hr_vs_mpi", fmt_table(
        f"Figure 12: MPI_Reduce at {P} GPUs — Proposed HR vs MVAPICH2 "
        "vs OpenMPI (Cluster-A)",
        ["Size", "Proposed HR", "MVAPICH2", "OpenMPI",
         "MV2/HR", "OMPI/HR"], rows))

    # Ordering holds at every size: HR < MVAPICH2 < OpenMPI.
    for s, (hr, mv2, ompi) in results.items():
        assert hr < mv2 < ompi, fmt_bytes(s)

    # Factor shapes at DL-scale sizes (paper: ~3x and up to 133x).
    large = [s for s in SIZES if s >= 8 * MiB]
    mv2_ratios = [results[s][1] / results[s][0] for s in large]
    ompi_ratios = [results[s][2] / results[s][0] for s in large]
    print(f"MV2/HR at large sizes:  {[f'{r:.2f}' for r in mv2_ratios]} "
          "(paper: ~2.6-3x)")
    print(f"OMPI/HR at large sizes: {[f'{r:.1f}' for r in ompi_ratios]} "
          "(paper: up to 133x)")
    assert all(2.0 <= r <= 6.0 for r in mv2_ratios)
    assert max(ompi_ratios) >= 30.0
    # The OpenMPI gap grows with message size (the "up to" trend).
    assert ompi_ratios[-1] >= ompi_ratios[0]
