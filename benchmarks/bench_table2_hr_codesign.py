"""Table 2 + Section 6.6: SC-B vs SC-B(+HR), and the SC-OBR co-design.

Table 2 compares the basic CUDA-aware design's gradient aggregation
against the hierarchical reduction co-design under different
algorithm/communicator configurations (CC-8, CB-4, CB-8), reporting
aggregation time, total time, and both speedups.  Paper row shape:
aggregation 40.6 s -> 17.6 s (2.3x) and total 113.6 s -> 90.6 s (1.25x)
at the best configuration.

Section 6.6 also reports the helper-thread co-design (SC-OBR): "20%
improvement over SC-B for CaffeNet on 8 GPUs and 12% ... for 16 GPUs".
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

P = 64  # large enough that the two-level communicator structure matters

BASE = TrainConfig(network="caffenet", dataset="imagenet",
                   batch_size=1024, iterations=100, measure_iterations=3,
                   variant="SC-B")

HR_CONFIGS = ("CC-8", "CB-4", "CB-8")


def run_table2():
    baseline = train("scaffe", n_gpus=P, cluster="A",
                     config=BASE.derive(reduce_design="flat"))
    hr = {label: train("scaffe", n_gpus=P, cluster="A",
                       config=BASE.derive(reduce_design=label))
          for label in HR_CONFIGS}
    obr = {n: (train("scaffe", n_gpus=n, cluster="A",
                     config=BASE.derive(reduce_design="tuned")),
               train("scaffe", n_gpus=n, cluster="A",
                     config=BASE.derive(variant="SC-OBR",
                                        reduce_design="tuned")))
           for n in (8, 16)}
    return baseline, hr, obr


def agg_seconds(report):
    """Aggregation time over the whole run (paper reports run totals)."""
    return report.phase("aggregation") * report.iterations


def test_table2_hr_codesign(benchmark):
    baseline, hr, obr = run_once(benchmark, run_table2)

    agg_b = agg_seconds(baseline)
    tot_b = baseline.total_time
    rows = [["N/A", "SC-B", f"{agg_b:7.2f}", f"{tot_b:7.2f}",
             "1.00", "1.00"]]
    for label, r in hr.items():
        agg = agg_seconds(r)
        rows.append([label, "SC-B (+HR)", f"{agg:7.2f}",
                     f"{r.total_time:7.2f}", f"{agg_b / agg:4.2f}",
                     f"{tot_b / r.total_time:4.2f}"])
    text = fmt_table(
        f"Table 2: SC-B vs SC-B(+HR), CaffeNet, {P} GPUs, Cluster-A "
        "(100 iterations)",
        ["Algorithm/Comm", "Design", "Aggregation [s]", "Total [s]",
         "Agg speedup", "Overall speedup"], rows)

    obr_lines = ["", "Section 6.6 — SC-OBR helper-thread co-design "
                     "(paper: 20% @8 GPUs, 12% @16 GPUs):"]
    for n, (scb, scobr) in obr.items():
        imp = (scb.total_time - scobr.total_time) / scb.total_time * 100
        obr_lines.append(
            f"  {n:2d} GPUs: SC-B {scb.total_time:7.2f} s -> "
            f"SC-OBR {scobr.total_time:7.2f} s  ({imp:4.1f}% improvement)")
    emit("table2_hr_codesign", text + "\n" + "\n".join(obr_lines))

    # Every HR configuration accelerates aggregation and the total.
    for label, r in hr.items():
        assert agg_seconds(r) < agg_b, label
        assert r.total_time <= tot_b, label

    # Best configuration lands in the paper's speedup neighbourhood:
    # aggregation ~2.3x, overall ~1.25x.
    best_agg = max(agg_b / agg_seconds(r) for r in hr.values())
    best_tot = max(tot_b / r.total_time for r in hr.values())
    print(f"best aggregation speedup: {best_agg:.2f}x (paper: 2.3x)")
    print(f"best overall speedup:     {best_tot:.2f}x (paper: 1.25x)")
    assert 1.3 <= best_agg <= 3.2
    assert 1.10 <= best_tot <= 1.45

    # SC-OBR beats SC-B at both 8 and 16 GPUs by a Section-6.6-like
    # margin (paper: 20% and 12%).
    for n, (scb, scobr) in obr.items():
        imp = (scb.total_time - scobr.total_time) / scb.total_time
        assert 0.03 <= imp <= 0.30, (n, imp)
