"""Parallel-reader scalability: LMDB vs ImageDataLayer-on-Lustre.

The design rationale of Sections 3.2 / 4.1 / 6.3: "LMDB does not scale
for more than 64 parallel readers. On the other hand, ImageDataLayer
allows reading image files directly from Lustre storage and can scale
to any number of processes."  Sweeps the reader count and reports
aggregate ingest throughput (samples/second).
"""

from common import emit, fmt_table, run_once

from repro.hardware import DEFAULT_CALIBRATION
from repro.io import DataLayer, DataReader, IMAGENET, SimLMDB, SimLustre
from repro.sim import Simulator

READERS = (1, 8, 32, 64, 96, 128, 160)
BATCH = 8
WINDOW = 2.0  # simulated seconds of steady-state ingest


def aggregate_rate(backend_cls, n_readers: int) -> float:
    sim = Simulator()
    cal = DEFAULT_CALIBRATION
    backend = backend_cls(sim, IMAGENET, cal)
    layers = []
    consumed = [0]

    def consumer(layer):
        while True:
            got = yield from layer.next_batch()
            consumed[0] += got

    for i in range(n_readers):
        reader = DataReader(sim, backend, batch_samples=BATCH,
                            decode_bw=cal.decode_bw, name=f"r{i}")
        layer = DataLayer(reader)
        layers.append(layer)
        sim.process(consumer(layer), name=f"c{i}")
    sim.run(until=WINDOW)
    return consumed[0] / WINDOW


def run_io_sweep():
    return {n: (aggregate_rate(SimLMDB, n), aggregate_rate(SimLustre, n))
            for n in READERS}


def test_io_reader_scalability(benchmark):
    results = run_once(benchmark, run_io_sweep)

    rows = [[n, f"{lmdb:10.0f}", f"{lustre:10.0f}"]
            for n, (lmdb, lustre) in results.items()]
    emit("io_readers", fmt_table(
        "Parallel reader ingest throughput [samples/s], ImageNet records",
        ["Readers", "LMDB", "Lustre (ImageDataLayer)"], rows))

    lmdb = {n: v[0] for n, v in results.items()}
    lustre = {n: v[1] for n, v in results.items()}

    # Both scale through 64 readers.
    assert lmdb[64] > 5 * lmdb[1]
    assert lustre[64] > 5 * lustre[1]
    # LMDB collapses past its limit ...
    assert lmdb[128] < 0.5 * lmdb[64]
    assert lmdb[160] < 0.5 * lmdb[64]
    # ... while Lustre keeps (or gains) throughput to 160 readers.
    assert lustre[160] >= 0.95 * lustre[64]
    assert lustre[160] > 3 * lmdb[160]
