"""Section 6.3 "Discussion": K80 vs K20x GPU generations.

The paper positions its 160-GPU scaling against FireCaffe's 128 K20x
GPUs: "the results presented above are on the fastest Tesla GPUs
available i.e. Kepler K-80, which provides at least 3X faster
performance than the K-20x cards. Thus, the scaling we present here is
different and not directly comparable."  This benchmark makes the
comparison concrete: the same S-Caffe software on a K20x-generation
cluster (FireCaffe's hardware) vs. the K80 testbed.
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig
from repro.core import run_scaffe
from repro.hardware import (
    Cluster, DEFAULT_CALIBRATION, K20X, K80, NICSpec, NodeSpec,
)
from repro.sim import Simulator

CFG = TrainConfig(network="googlenet", dataset="imagenet",
                  batch_size=1024, iterations=100, variant="SC-OBR",
                  reduce_design="tuned", measure_iterations=3)


def k_cluster(gpu_builder):
    cal = DEFAULT_CALIBRATION
    spec = NodeSpec(
        gpus_per_node=16, gpu_spec=gpu_builder(cal),
        nics=(NICSpec("ib0", cal.ib_fdr_port_bw, cal.ib_latency),
              NICSpec("ib1", cal.ib_fdr_port_bw, cal.ib_latency)))
    return Cluster(Simulator(), spec, 12, cal=cal,
                   name=f"CS-Storm-{spec.gpu_spec.model}")


def run_discussion():
    out = {}
    for label, builder in (("K80", K80), ("K20x", K20X)):
        out[label] = {n: run_scaffe(k_cluster(builder), n, CFG)
                      for n in (32, 128)}
    return out


def test_discussion_k20x(benchmark):
    results = run_once(benchmark, run_discussion)

    rows = []
    for label, by_n in results.items():
        for n, r in by_n.items():
            cell = f"{r.total_time:8.2f}" if r.ok else r.failure
            rows.append([label, n, cell])
    emit("discussion_k20x", fmt_table(
        "Section 6.3 discussion: GoogLeNet training time [s] by GPU "
        "generation (same S-Caffe software)",
        ["GPU", "count", "total time"], rows))

    # K80 is at least ~2.5x faster than K20x at equal GPU counts in the
    # compute-bound regime (paper: "at least 3X faster" cards; strong
    # scaling shifts some weight to communication, which is identical).
    r80, r20 = results["K80"][32], results["K20x"][32]
    assert r80.ok and r20.ok
    ratio = r20.total_time / r80.total_time
    print(f"K20x/K80 time ratio at 32 GPUs: {ratio:.2f}x "
          "(cards are ~3x apart in compute)")
    assert ratio > 2.0

    # The comparison is "not directly comparable": 128 K20x GPUs are
    # still slower than far fewer K80s.
    assert (results["K20x"][128].total_time
            > results["K80"][32].total_time * 0.5)
