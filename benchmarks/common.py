"""Shared harness for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it runs
the simulated experiment once (discrete-event runs are deterministic),
prints the rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the paper's qualitative shape
(who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict

from repro.analysis import format_bytes, format_table, format_time
from repro.cuda import DeviceBuffer
from repro.hardware import Cluster, make_cluster
from repro.mpi import MPIProfile, MPIRuntime
from repro.mpi.collectives import (
    hierarchical_reduce, reduce_binomial, reduce_chain, tuned_reduce,
)
from repro.sim import Simulator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

KiB = 1 << 10
MiB = 1 << 20

# Shared formatters re-exported under the harness's short names.
fmt_table = format_table
fmt_time = format_time
fmt_bytes = format_bytes


def fresh_cluster(kind: str, **kwargs) -> Cluster:
    """A cluster on its own simulator (every data point independent)."""
    return make_cluster(Simulator(), kind, **kwargs)


def emit(name: str, text: str) -> None:
    """Print the reproduced table/figure and persist it."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


def emit_json(name: str, payload: Dict[str, Any]) -> str:
    """Persist a machine-readable benchmark artifact.

    Written canonically (sorted keys, fixed indent, trailing newline) so
    same-seed runs produce byte-identical files — the property the CI
    regression gate diffs against its committed baseline.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def osu_reduce(cluster_kind: str, profile: MPIProfile | str, nbytes: int,
               P: int, *, design: str = "tuned") -> float:
    """OMB-style MPI_Reduce latency micro-benchmark (Section 6.5).

    ``design``: "tuned" (HR Tuned), "flat" (profile's binomial), an HR
    label ("CB-8", "CC-4", ...), or "chain".
    """
    cluster = fresh_cluster(cluster_kind)
    rt = MPIRuntime(cluster, profile)
    comm = rt.world(P)

    def program(ctx):
        sendbuf = DeviceBuffer(ctx.gpu, nbytes)
        recvbuf = DeviceBuffer(ctx.gpu, nbytes) if ctx.rank == 0 else None
        if design == "tuned":
            yield from tuned_reduce(ctx, sendbuf, recvbuf, 0)
        elif design == "flat":
            yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
        elif design == "chain":
            yield from reduce_chain(ctx, sendbuf, recvbuf, 0)
        else:
            yield from hierarchical_reduce(ctx, sendbuf, recvbuf, 0,
                                           config=design)
        return ctx.sim.now

    return max(rt.execute(comm, program))


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The simulation is deterministic; repeated rounds would only re-time
    identical work.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
