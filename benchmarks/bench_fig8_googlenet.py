"""Figure 8: GoogLeNet strong scaling on Cluster-A (up to 160 GPUs).

Series: Caffe (single-node, LMDB, <= 16 GPUs), S-Caffe-L (LMDB, scales
until the 64-reader LMDB limit), S-Caffe (ImageDataLayer on Lustre, up
to 160 GPUs).  Batch 1,024 strong-scaled, 100 iterations.

Paper targets: 3.3x speedup at 128 vs 16 GPUs; 2.5x at 160 vs 32;
Caffe ~ S-Caffe at <= 16; S-Caffe-L degrades past 64 readers.
"""

from common import emit, fmt_table, run_once

from repro import TrainConfig, train

GPU_COUNTS = (2, 4, 8, 16, 32, 64, 128, 160)

CFG = TrainConfig(network="googlenet", dataset="imagenet",
                  batch_size=1024, iterations=100, variant="SC-OBR",
                  reduce_design="tuned", measure_iterations=3)


def run_fig8():
    results = {}
    for n in GPU_COUNTS:
        caffe = train("caffe", n_gpus=n, cluster="A", config=CFG)
        scl = train("scaffe", n_gpus=n, cluster="A",
                    config=CFG.derive(data_backend="lmdb"))
        sc = train("scaffe", n_gpus=n, cluster="A", config=CFG)
        results[n] = (caffe, scl, sc)
    return results


def test_fig8_googlenet_scaling(benchmark):
    results = run_once(benchmark, run_fig8)

    def cell(r):
        return f"{r.total_time:8.2f}" if r.ok else r.failure

    rows = [[n, cell(c), cell(l), cell(s)]
            for n, (c, l, s) in results.items()]
    emit("fig8_googlenet", fmt_table(
        "Figure 8: GoogLeNet (ImageNet) training time [s], 100 iters, "
        "batch 1024, Cluster-A",
        ["GPUs", "Caffe", "S-Caffe-L (LMDB)", "S-Caffe (ImageData)"],
        rows))

    sc = {n: s for n, (_, _, s) in results.items()}
    scl = {n: l for n, (_, l, _) in results.items()}
    caffe = {n: c for n, (c, _, _) in results.items()}

    # Caffe is single-node only: runs to 16 GPUs, fails beyond.
    assert all(caffe[n].ok for n in (2, 4, 8, 16))
    assert all(caffe[n].failure == "unsupported" for n in (32, 64, 128,
                                                           160))
    # S-Caffe matches/beats Caffe where both run.
    for n in (2, 4, 8, 16):
        assert sc[n].total_time <= caffe[n].total_time * 1.05

    # Strong-scaling speedups land near the paper's factors.
    s128_16 = sc[16].total_time / sc[128].total_time
    s160_32 = sc[32].total_time / sc[160].total_time
    print(f"speedup 128 vs 16 GPUs: {s128_16:.2f}x (paper: 3.3x)")
    print(f"speedup 160 vs 32 GPUs: {s160_32:.2f}x (paper: 2.5x)")
    assert 2.5 <= s128_16 <= 7.0
    assert 1.8 <= s160_32 <= 3.8

    # LMDB parity through 64 readers, degradation past the limit.
    for n in (2, 4, 8, 16, 32, 64):
        assert scl[n].total_time <= sc[n].total_time * 1.1
    for n in (128, 160):
        assert scl[n].total_time > sc[n].total_time * 1.3
