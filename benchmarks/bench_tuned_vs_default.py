#!/usr/bin/env python
"""Tuned-table dispatch vs profile defaults (ISSUE 9 acceptance).

For every point the committed tuning tables cover — plus control points
they deliberately do not — this benchmark times the *same* collective
dispatch twice: once consulting the committed tables (the stock-profile
production path) and once inside ``tables_disabled()`` (the profile-
default fallback).  The auto-tuner's contract:

- tuned is never slower than the default on any swept point (uncovered
  points fall back to the identical default dispatch, so they tie);
- tuned is strictly faster on every point a table entry covers — the
  search only commits strict wins.

Run:  PYTHONPATH=src python benchmarks/bench_tuned_vs_default.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from common import KiB, MiB, emit, emit_json, fmt_bytes, fmt_table  # noqa: E402

from repro.cuda import DeviceBuffer  # noqa: E402
from repro.hardware import make_cluster  # noqa: E402
from repro.mpi import MPIRuntime  # noqa: E402
from repro.mpi.collectives import tuned_reduce  # noqa: E402
from repro.nccl import nccl_allreduce, nccl_bcast  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.tune import tables  # noqa: E402

#: (backend, collective, cluster, P, nbytes).  The 12-process points at
#: 1M/16M are covered by committed entries; the 64K points are controls
#: outside every table band and must tie exactly.
POINTS = (
    ("mv2gdr", "reduce", "A", 12, 64 * KiB),
    ("mv2gdr", "reduce", "A", 12, 1 * MiB),
    ("mv2gdr", "reduce", "A", 12, 16 * MiB),
    ("mv2gdr", "reduce", "B", 12, 1 * MiB),
    ("mv2gdr", "reduce", "B", 12, 16 * MiB),
    ("nccl", "allreduce", "A", 12, 64 * KiB),
    ("nccl", "allreduce", "A", 12, 16 * MiB),
    ("nccl", "bcast", "A", 12, 16 * MiB),
)


def time_point(backend, collective, cluster_kind, P, nbytes, *,
               tuned: bool) -> float:
    sim = Simulator(seed=0)
    cluster = make_cluster(sim, cluster_kind)
    rt = MPIRuntime(cluster, backend)
    comm = rt.world(P)

    def program(ctx):
        if collective == "reduce":
            sendbuf = DeviceBuffer(ctx.gpu, nbytes)
            recvbuf = (DeviceBuffer(ctx.gpu, nbytes)
                       if ctx.rank == 0 else None)
            yield from tuned_reduce(ctx, sendbuf, recvbuf, 0)
        elif collective == "allreduce":
            sendbuf = DeviceBuffer(ctx.gpu, nbytes)
            recvbuf = DeviceBuffer(ctx.gpu, nbytes)
            yield from nccl_allreduce(ctx, sendbuf, recvbuf)
        else:
            buf = DeviceBuffer(ctx.gpu, nbytes)
            yield from nccl_bcast(ctx, buf, 0)
        return ctx.sim.now

    if tuned:
        return max(rt.execute(comm, program))
    with tables.tables_disabled():
        return max(rt.execute(comm, program))


def covered(backend, collective, cluster_kind, P, nbytes) -> bool:
    sim = Simulator(seed=0)
    cluster = make_cluster(sim, cluster_kind)
    topo = tables.topology_key(cluster.gpus[:P])
    return tables.lookup(backend, collective, topo, P, nbytes) is not None


def main() -> int:
    rows = []
    results = {}
    strict_wins = 0
    failures = []
    for backend, collective, cluster_kind, P, nbytes in POINTS:
        default = time_point(backend, collective, cluster_kind, P, nbytes,
                             tuned=False)
        tuned = time_point(backend, collective, cluster_kind, P, nbytes,
                           tuned=True)
        has_entry = covered(backend, collective, cluster_kind, P, nbytes)
        label = (f"{backend}.{collective} {cluster_kind} {P}p "
                 f"{fmt_bytes(nbytes)}")
        speedup = default / tuned if tuned else float("inf")
        rows.append((label, f"{default * 1e6:10.1f}", f"{tuned * 1e6:10.1f}",
                     f"{speedup:7.2f}x",
                     "table" if has_entry else "fallback"))
        results[label] = {"default": default, "tuned": tuned,
                          "covered": has_entry}
        if tuned > default:
            failures.append(f"{label}: tuned {tuned * 1e6:.1f}us slower "
                            f"than default {default * 1e6:.1f}us")
        if has_entry:
            if tuned < default:
                strict_wins += 1
            else:
                failures.append(f"{label}: table entry did not win "
                                f"strictly")
        elif tuned != default:
            failures.append(f"{label}: uncovered point did not tie "
                            f"(tuned {tuned!r} vs default {default!r})")

    text = fmt_table(
        "Tuned-table dispatch vs profile defaults",
        ["point", "default us", "tuned us", "speedup", "dispatch"], rows)
    emit("tuned_vs_default", text)
    emit_json("tuned_vs_default", {"points": results,
                                   "strict_wins": strict_wins})

    if strict_wins < 2:
        failures.append(f"only {strict_wins} strict win(s); need >= 2 "
                        "headline points")
    if failures:
        print("TUNED-VS-DEFAULT GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"tuned >= default on all {len(POINTS)} points, strictly "
          f"faster on {strict_wins} covered points")
    return 0


if __name__ == "__main__":
    sys.exit(main())
