#!/usr/bin/env python
"""Bench-regression gate: quick headline numbers vs a committed baseline.

The simulation is a pure function of the seed, so the headline numbers
of a small benchmark subset are exactly reproducible; any drift is a
real behaviour change.  CI runs this script, which

1. runs the quick subset (two OSU reduce points + a 16-GPU GoogLeNet
   training run with telemetry attached),
2. writes ``results/BENCH_regression.json`` and the full telemetry
   artifacts (``results/metrics.prom``, ``results/metrics.json``,
   ``results/timeseries.csv``),
3. compares every headline number against ``baselines/regression.json``
   with a relative tolerance and exits non-zero on any regression,
4. regenerates the committed tuning tables from the quick ``repro
   tune`` plan and fails on any byte drift (the tune-smoke gate),
5. runs the quick chaos-conformance matrix and fails on any cell that
   ends in silent corruption or a hang (the outcome-trichotomy gate),
6. re-runs the quick ``bench_simcore`` workloads and fails if host
   wall-clock throughput (ref-events/sec) drops below the floor in
   ``baselines/simcore.json`` — the same check the ``sim-bench`` CI job
   applies, so a kernel slow-down cannot land through either door.

Refresh the baselines after an intentional change with::

    PYTHONPATH=src python benchmarks/regression_gate.py --update-baseline
    PYTHONPATH=src python benchmarks/bench_simcore.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from common import RESULTS_DIR, emit_json, osu_reduce  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "baselines",
                        "regression.json")

#: Relative tolerance for headline comparisons.  The runs are
#: deterministic, so this only absorbs intentional small calibration
#: tweaks; structural changes should refresh the baseline explicitly.
REL_TOL = 0.03

MiB = 1 << 20

#: (label, cluster, profile, design, nbytes, procs) OSU points.
OSU_POINTS = (
    ("osu_reduce_tuned_32p_1M", "A", "mv2gdr", "tuned", 1 * MiB, 32),
    ("osu_reduce_tuned_32p_16M", "A", "mv2gdr", "tuned", 16 * MiB, 32),
)

KiB = 1 << 10

#: (label, cluster, backend, collective, procs, nbytes) points from the
#: backend crossover study — one cell each side of the MPI/NCCL flip.
CROSSOVER_POINTS = (
    ("crossover_allreduce_A_32p_16M_nccl", "A", "nccl", "allreduce",
     32, 16 * MiB),
    ("crossover_allreduce_A_32p_16M_mv2gdr", "A", "mv2gdr", "allreduce",
     32, 16 * MiB),
    ("crossover_bcast_A_32p_4K_nccl", "A", "nccl", "bcast", 32, 4 * KiB),
    ("crossover_bcast_A_32p_4K_mv2gdr", "A", "mv2gdr", "bcast",
     32, 4 * KiB),
)

TRAIN_SEED = 1


def _train_point() -> dict:
    """16-GPU GoogLeNet, 3 iterations, telemetry attached."""
    from repro.core import TrainConfig, run_scaffe
    from repro.hardware import make_cluster
    from repro.sim import Simulator
    from repro.telemetry import (
        TelemetrySession, timeseries_to_csv, to_json_snapshot,
        to_prometheus,
    )

    cfg = TrainConfig(network="googlenet", batch_size=1024, iterations=3,
                      variant="SC-OB", reduce_design="tuned",
                      measure_iterations=3)
    sim = Simulator(seed=TRAIN_SEED)
    cluster = make_cluster(sim, "A")
    session = TelemetrySession(scrape_interval=0.05)
    report = run_scaffe(cluster, 16, cfg, telemetry=session)
    assert report.ok, report.failure

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "metrics.prom"), "w") as f:
        f.write(to_prometheus(session.registry))
    with open(os.path.join(RESULTS_DIR, "metrics.json"), "w") as f:
        json.dump(to_json_snapshot(session), f, indent=2, sort_keys=True)
        f.write("\n")
    with open(os.path.join(RESULTS_DIR, "timeseries.csv"), "w") as f:
        f.write(timeseries_to_csv(session.samples))

    tel = report.telemetry
    return {
        "train_googlenet_16gpu_total_time": report.total_time,
        "train_googlenet_16gpu_samples_per_s": report.samples_per_second,
        "train_googlenet_16gpu_coll_bytes": float(
            sum(tel.pvars["mpi.coll.bytes"].values())),
        "train_googlenet_16gpu_peak_dev_mem": float(tel.peak_device_mem),
    }


def run_subset() -> dict:
    headline = {}
    for label, cluster, profile, design, nbytes, procs in OSU_POINTS:
        headline[label] = osu_reduce(cluster, profile, nbytes, procs,
                                     design=design)
        print(f"{label}: {headline[label] * 1e6:.1f} us")
    from repro.analysis import time_backend
    for label, cluster, backend, coll, procs, nbytes in CROSSOVER_POINTS:
        headline[label], algo = time_backend(cluster, backend, coll,
                                             procs, nbytes)
        print(f"{label}: {headline[label] * 1e6:.1f} us ({algo})")
    for k, v in _train_point().items():
        headline[k] = v
        print(f"{k}: {v:.6g}")
    return headline


def compare(headline: dict, baseline: dict) -> list:
    problems = []
    for key, base in sorted(baseline["headline"].items()):
        got = headline.get(key)
        if got is None:
            problems.append(f"missing headline {key!r}")
            continue
        if base == 0:
            if got != 0:
                problems.append(f"{key}: baseline 0, got {got:.6g}")
            continue
        rel = (got - base) / base
        if abs(rel) > REL_TOL:
            problems.append(
                f"{key}: {got:.6g} vs baseline {base:.6g} "
                f"({rel * 100:+.2f}%, tolerance {REL_TOL * 100:.0f}%)")
    for key in sorted(set(headline) - set(baseline["headline"])):
        problems.append(f"new headline {key!r} not in baseline "
                        f"(refresh with --update-baseline)")
    return problems


def check_simcore_floor() -> list:
    """Host wall-clock floor on the quick simulator-core workloads.

    Simulated numbers above are exact; this one is noisy host time, so
    the floor (75% of the rolling baseline) is deliberately generous —
    it exists to catch a kernel that got structurally slower, not a
    busy CI runner.
    """
    from bench_simcore import ROLLING_BASELINE as SIMCORE_BASELINE
    from bench_simcore import WORKLOADS, _load, check_floor, run_workloads

    baseline = _load(SIMCORE_BASELINE)
    if baseline is None:
        print(f"no simcore baseline at {SIMCORE_BASELINE}; skipping "
              "wall-clock floor (write one with bench_simcore.py "
              "--write-baseline)")
        return []
    quick = [n for n, (_, q) in WORKLOADS.items() if q]
    results = run_workloads(quick, repeat=2, progress=True)
    return check_floor(results, baseline)


def check_tuning_tables() -> list:
    """Tune-smoke: the committed tuning tables must regenerate
    byte-identically (the ``repro tune --quick --check`` contract), and
    every committed entry must still be a strict win over the
    profile-default dispatch it replaces."""
    from repro.tune import tables
    from repro.tune.search import check_tables, quick_plan, run_plan

    problems = []
    tuned = run_plan(quick_plan(), "latency")
    for p in check_tables(tuned, tables.tables_dir()):
        problems.append(f"tuning table drift: {p}")
    for t in tuned.values():
        for e in t.entries:
            if e["latency"] >= e["default_latency"]:
                problems.append(
                    f"tuning table {t.backend}.{t.collective} entry at "
                    f"{e['min_nbytes']} no longer beats the default")
    n = sum(len(t.entries) for t in tuned.values())
    if not problems:
        print(f"tune smoke: {len(tuned)} tables ({n} entries) regenerate "
              "byte-identically and win strictly")
    return problems


def check_chaos_gate() -> list:
    """Quick chaos-conformance sweep: the outcome trichotomy must hold.

    Deterministic like the headline numbers — every cell of the quick
    chaos matrix must end exact / recovered / typed-error.  A single
    ``silent`` (corruption past the checksums) or ``hang`` (drained
    schedule with parked ranks) cell fails the gate.
    """
    from repro.check import (
        chaos_outcome_tally, generate_chaos_matrix, run_chaos,
    )

    results = run_chaos(generate_chaos_matrix(0, quick=True))
    tally = chaos_outcome_tally(results)
    print("chaos gate: " + "  ".join(f"{k}={v}" for k, v in tally.items()))
    problems = []
    for r in results:
        if not r.ok:
            problems.append(f"chaos [{r.outcome}] {r.case.spec()} -- "
                            f"{'; '.join(r.failures)}")
            problems.append(f"  repro: {r.case.repro_command()}")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the committed baseline from this run")
    ap.add_argument("--no-wallclock", action="store_true",
                    help="skip the simulator-core events/sec floor "
                         "(exact headline comparisons only)")
    ap.add_argument("--no-chaos", action="store_true",
                    help="skip the quick chaos-conformance sweep")
    ap.add_argument("--no-tune", action="store_true",
                    help="skip the tuning-table regeneration smoke")
    args = ap.parse_args(argv)

    headline = run_subset()
    payload = {
        "seed": TRAIN_SEED,
        "rel_tol": REL_TOL,
        "headline": headline,
    }
    path = emit_json("regression", payload)
    print(f"wrote {path}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        shutil.copyfile(path, BASELINE)
        print(f"baseline updated: {BASELINE}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"no baseline at {BASELINE}; run with --update-baseline",
              file=sys.stderr)
        return 2
    with open(BASELINE) as f:
        baseline = json.load(f)
    problems = compare(headline, baseline)
    if not args.no_tune:
        problems += check_tuning_tables()
    if not args.no_chaos:
        problems += check_chaos_gate()
    if not args.no_wallclock:
        problems += check_simcore_floor()
    if problems:
        print("\nREGRESSION GATE FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(f"regression gate: {len(baseline['headline'])} headline "
          f"numbers within {REL_TOL * 100:.0f}% of baseline; "
          f"tuning tables regenerate byte-identically; "
          f"chaos trichotomy holds; simulator-core wall-clock above floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
