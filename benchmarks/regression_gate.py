#!/usr/bin/env python
"""Bench-regression gate: quick headline numbers vs a committed baseline.

The simulation is a pure function of the seed, so the headline numbers
of a small benchmark subset are exactly reproducible; any drift is a
real behaviour change.  CI runs this script, which

1. runs the quick subset (two OSU reduce points + a 16-GPU GoogLeNet
   training run with telemetry attached),
2. writes ``results/BENCH_regression.json`` and the full telemetry
   artifacts (``results/metrics.prom``, ``results/metrics.json``,
   ``results/timeseries.csv``),
3. compares every headline number against ``baselines/regression.json``
   with a relative tolerance and exits non-zero on any regression,
   printing a per-metric drill-down (percent delta + the exact repro
   command) for every failing headline,
4. on a failed *training* headline, re-runs the train point under the
   causal profiler and diffs it against the committed baseline run
   file (``baselines/profile_train.json``) with the ``repro diff``
   engine — the attribution table names the phase/resource/rank that
   ate the delta and is written to ``results/regression_diff.txt``,
5. regenerates the committed tuning tables from the quick ``repro
   tune`` plan and fails on any byte drift (the tune-smoke gate),
6. runs the quick chaos-conformance matrix and fails on any cell that
   ends in silent corruption or a hang (the outcome-trichotomy gate);
   failing cells dump their flight-recorder timelines to
   ``results/flight_postmortem.json``,
7. re-runs the quick ``bench_simcore`` workloads and fails if host
   wall-clock throughput (ref-events/sec) drops below the floor in
   ``baselines/simcore.json`` — the same check the ``sim-bench`` CI job
   applies, so a kernel slow-down cannot land through either door.

Each gate has a distinct exit code (the first failing gate wins):
``2`` missing baseline, ``3`` headline comparison, ``4`` tuning
tables, ``5`` chaos trichotomy, ``6`` wall-clock floor.

Refresh the baselines after an intentional change with::

    PYTHONPATH=src python benchmarks/regression_gate.py --update-baseline
    PYTHONPATH=src python benchmarks/bench_simcore.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from common import RESULTS_DIR, emit_json, osu_reduce  # noqa: E402

BASELINE = os.path.join(os.path.dirname(__file__), "baselines",
                        "regression.json")
#: Committed baseline *run file* (RunCard + profile summary) of the
#: train point; candidates diff against this on a failed train headline.
BASELINE_RUN = os.path.join(os.path.dirname(__file__), "baselines",
                            "profile_train.json")

#: Distinct exit code per failing gate (first failing gate wins).
EXIT_MISSING_BASELINE = 2
EXIT_HEADLINE = 3
EXIT_TUNE = 4
EXIT_CHAOS = 5
EXIT_WALLCLOCK = 6

#: Relative tolerance for headline comparisons.  The runs are
#: deterministic, so this only absorbs intentional small calibration
#: tweaks; structural changes should refresh the baseline explicitly.
REL_TOL = 0.03

MiB = 1 << 20

#: (label, cluster, profile, design, nbytes, procs) OSU points.
OSU_POINTS = (
    ("osu_reduce_tuned_32p_1M", "A", "mv2gdr", "tuned", 1 * MiB, 32),
    ("osu_reduce_tuned_32p_16M", "A", "mv2gdr", "tuned", 16 * MiB, 32),
)

KiB = 1 << 10

#: (label, cluster, backend, collective, procs, nbytes) points from the
#: backend crossover study — one cell each side of the MPI/NCCL flip.
CROSSOVER_POINTS = (
    ("crossover_allreduce_A_32p_16M_nccl", "A", "nccl", "allreduce",
     32, 16 * MiB),
    ("crossover_allreduce_A_32p_16M_mv2gdr", "A", "mv2gdr", "allreduce",
     32, 16 * MiB),
    ("crossover_bcast_A_32p_4K_nccl", "A", "nccl", "bcast", 32, 4 * KiB),
    ("crossover_bcast_A_32p_4K_mv2gdr", "A", "mv2gdr", "bcast",
     32, 4 * KiB),
)

TRAIN_SEED = 1


def _train_point() -> dict:
    """16-GPU GoogLeNet, 3 iterations, telemetry attached."""
    from repro.core import TrainConfig, run_scaffe
    from repro.hardware import make_cluster
    from repro.sim import Simulator
    from repro.telemetry import (
        TelemetrySession, timeseries_to_csv, to_json_snapshot,
        to_prometheus,
    )

    cfg = TrainConfig(network="googlenet", batch_size=1024, iterations=3,
                      variant="SC-OB", reduce_design="tuned",
                      measure_iterations=3)
    sim = Simulator(seed=TRAIN_SEED)
    cluster = make_cluster(sim, "A")
    session = TelemetrySession(scrape_interval=0.05)
    report = run_scaffe(cluster, 16, cfg, telemetry=session)
    assert report.ok, report.failure

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "metrics.prom"), "w") as f:
        f.write(to_prometheus(session.registry))
    with open(os.path.join(RESULTS_DIR, "metrics.json"), "w") as f:
        json.dump(to_json_snapshot(session), f, indent=2, sort_keys=True)
        f.write("\n")
    with open(os.path.join(RESULTS_DIR, "timeseries.csv"), "w") as f:
        f.write(timeseries_to_csv(session.samples))

    tel = report.telemetry
    return {
        "train_googlenet_16gpu_total_time": report.total_time,
        "train_googlenet_16gpu_samples_per_s": report.samples_per_second,
        "train_googlenet_16gpu_coll_bytes": float(
            sum(tel.pvars["mpi.coll.bytes"].values())),
        "train_googlenet_16gpu_peak_dev_mem": float(tel.peak_device_mem),
    }


def _profiled_train_run() -> dict:
    """The train point re-run under the causal profiler.

    Recording is passive, so the simulated numbers are bit-identical
    to :func:`_train_point`; this run additionally captures the span
    graph the diff engine attributes from.  Returns a saved-run
    payload (RunCard + profile summary).
    """
    from repro.core import TrainConfig, run_scaffe
    from repro.hardware import make_cluster
    from repro.obs import StragglerDetector, make_runcard, run_payload
    from repro.prof import SpanRecorder
    from repro.sim import Simulator

    cfg = TrainConfig(network="googlenet", batch_size=1024, iterations=3,
                      variant="SC-OB", reduce_design="tuned",
                      measure_iterations=3)
    sim = Simulator(seed=TRAIN_SEED)
    cluster = make_cluster(sim, "A")
    recorder = SpanRecorder(sim)
    report = run_scaffe(cluster, 16, cfg, recorder=recorder)
    assert report.ok, report.failure
    card = make_runcard(report, cfg, cluster_kind="A", n_gpus=16,
                        profile="mv2gdr", seed=TRAIN_SEED, sim=sim)
    return run_payload(card, report.profile,
                       StragglerDetector(recorder).report())


def _write_canonical(path: str, payload: dict) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")


def attribute_train_regression(run_fn=_profiled_train_run,
                               baseline_run=BASELINE_RUN) -> str:
    """Causal attribution of a failed train headline.

    Re-runs the train point under the profiler, diffs it against the
    committed baseline run file, and returns the ``repro diff``
    attribution table (also written to ``results/regression_diff.txt``
    for the CI artifact upload).  Returns "" when no baseline run file
    exists.
    """
    from repro.obs import diff_runs

    if not os.path.exists(baseline_run):
        print(f"no baseline run file at {baseline_run}; cannot attribute "
              "(write one with --update-baseline)", file=sys.stderr)
        return ""
    cand = run_fn()
    _write_canonical(os.path.join(RESULTS_DIR, "profile_train.json"), cand)
    with open(baseline_run) as f:
        base = json.load(f)
    diff = diff_runs(base, cand, base_label="committed baseline",
                     cand_label="this run")
    text = diff.render()
    out = os.path.join(RESULTS_DIR, "regression_diff.txt")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(out, "w") as f:
        f.write(text + "\n")
    return text


def run_subset() -> dict:
    headline = {}
    for label, cluster, profile, design, nbytes, procs in OSU_POINTS:
        headline[label] = osu_reduce(cluster, profile, nbytes, procs,
                                     design=design)
        print(f"{label}: {headline[label] * 1e6:.1f} us")
    from repro.analysis import time_backend
    for label, cluster, backend, coll, procs, nbytes in CROSSOVER_POINTS:
        headline[label], algo = time_backend(cluster, backend, coll,
                                             procs, nbytes)
        print(f"{label}: {headline[label] * 1e6:.1f} us ({algo})")
    for k, v in _train_point().items():
        headline[k] = v
        print(f"{k}: {v:.6g}")
    return headline


def _fmt_size(nbytes: int) -> str:
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}M"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}K"
    return str(nbytes)


def repro_command(label: str) -> str:
    """The exact CLI command reproducing one headline number."""
    for lbl, cluster, profile, design, nbytes, procs in OSU_POINTS:
        if lbl == label:
            return ("PYTHONPATH=src python -m repro.cli osu "
                    f"--cluster {cluster} --profile {profile} "
                    f"--design {design} --procs {procs} "
                    f"--sizes {_fmt_size(nbytes)}")
    for lbl, cluster, backend, coll, procs, nbytes in CROSSOVER_POINTS:
        if lbl == label:
            return ("PYTHONPATH=src python -m repro.cli crossover "
                    f"--clusters {cluster} --procs {procs} "
                    f"--sizes {_fmt_size(nbytes)} --collectives {coll} "
                    f"--backends {backend}")
    if label.startswith("train_"):
        return ("PYTHONPATH=src python -m repro.cli profile "
                "--model googlenet --gpus 16 --batch-size 1024 "
                "--iterations 3 --variant SC-OB --seed 1 "
                "--json results/profile_train.json")
    return "PYTHONPATH=src python benchmarks/regression_gate.py"


def compare(headline: dict, baseline: dict) -> list:
    """Problems for every out-of-tolerance headline, each with its
    percent delta and the exact repro command (no silent pass/fail)."""
    problems = []
    for key, base in sorted(baseline["headline"].items()):
        got = headline.get(key)
        if got is None:
            problems.append(f"missing headline {key!r}")
            continue
        if base == 0:
            if got != 0:
                problems.append(f"{key}: baseline 0, got {got:.6g}")
                problems.append(f"  repro: {repro_command(key)}")
            continue
        rel = (got - base) / base
        if abs(rel) > REL_TOL:
            problems.append(
                f"{key}: {got:.6g} vs baseline {base:.6g} "
                f"({rel * 100:+.2f}%, tolerance {REL_TOL * 100:.0f}%)")
            problems.append(f"  repro: {repro_command(key)}")
    for key in sorted(set(headline) - set(baseline["headline"])):
        problems.append(f"new headline {key!r} not in baseline "
                        f"(refresh with --update-baseline)")
    return problems


def drilldown(headline: dict, baseline: dict) -> str:
    """Per-metric table (value, baseline, percent delta, verdict) for
    the failure report — not just the out-of-tolerance rows."""
    lines = [f"{'metric':42s} {'current':>14s} {'baseline':>14s} "
             f"{'delta':>9s}"]
    for key, base in sorted(baseline["headline"].items()):
        got = headline.get(key)
        if got is None:
            lines.append(f"{key:42s} {'(missing)':>14s} {base:14.6g}")
            continue
        rel = (got - base) / base if base else 0.0
        flag = "  <-- FAIL" if abs(rel) > REL_TOL else ""
        lines.append(f"{key:42s} {got:14.6g} {base:14.6g} "
                     f"{rel * 100:+8.2f}%{flag}")
    return "\n".join(lines)


def check_simcore_floor() -> list:
    """Host wall-clock floor on the quick simulator-core workloads.

    Simulated numbers above are exact; this one is noisy host time, so
    the floor (75% of the rolling baseline) is deliberately generous —
    it exists to catch a kernel that got structurally slower, not a
    busy CI runner.
    """
    from bench_simcore import ROLLING_BASELINE as SIMCORE_BASELINE
    from bench_simcore import WORKLOADS, _load, check_floor, run_workloads

    baseline = _load(SIMCORE_BASELINE)
    if baseline is None:
        print(f"no simcore baseline at {SIMCORE_BASELINE}; skipping "
              "wall-clock floor (write one with bench_simcore.py "
              "--write-baseline)")
        return []
    quick = [n for n, (_, q) in WORKLOADS.items() if q]
    results = run_workloads(quick, repeat=2, progress=True)
    return check_floor(results, baseline)


def check_tuning_tables() -> list:
    """Tune-smoke: the committed tuning tables must regenerate
    byte-identically (the ``repro tune --quick --check`` contract), and
    every committed entry must still be a strict win over the
    profile-default dispatch it replaces."""
    from repro.tune import tables
    from repro.tune.search import check_tables, quick_plan, run_plan

    problems = []
    tuned = run_plan(quick_plan(), "latency")
    for p in check_tables(tuned, tables.tables_dir()):
        problems.append(f"tuning table drift: {p}")
    for t in tuned.values():
        for e in t.entries:
            if e["latency"] >= e["default_latency"]:
                problems.append(
                    f"tuning table {t.backend}.{t.collective} entry at "
                    f"{e['min_nbytes']} no longer beats the default")
    n = sum(len(t.entries) for t in tuned.values())
    if not problems:
        print(f"tune smoke: {len(tuned)} tables ({n} entries) regenerate "
              "byte-identically and win strictly")
    return problems


def check_chaos_gate() -> list:
    """Quick chaos-conformance sweep: the outcome trichotomy must hold.

    Deterministic like the headline numbers — every cell of the quick
    chaos matrix must end exact / recovered / typed-error.  A single
    ``silent`` (corruption past the checksums) or ``hang`` (drained
    schedule with parked ranks) cell fails the gate.
    """
    from repro.check import (
        chaos_outcome_tally, generate_chaos_matrix, run_chaos,
    )

    results = run_chaos(generate_chaos_matrix(0, quick=True))
    tally = chaos_outcome_tally(results)
    print("chaos gate: " + "  ".join(f"{k}={v}" for k, v in tally.items()))
    problems = []
    failing = [r for r in results if not r.ok]
    for r in failing:
        problems.append(f"chaos [{r.outcome}] {r.case.spec()} -- "
                        f"{'; '.join(r.failures)}")
        problems.append(f"  repro: {r.case.repro_command()}")
    if failing:
        # Every failing cell carries its flight-recorder ring; collect
        # the timelines into one post-mortem file for the CI artifact.
        dump = {
            "format": "repro.obs.flight-collection/1",
            "cells": {r.case.spec(): {"outcome": r.outcome,
                                      "failures": r.failures,
                                      "events": r.flight}
                      for r in failing},
        }
        path = os.path.join(RESULTS_DIR, "flight_postmortem.json")
        _write_canonical(path, dump)
        problems.append(f"  flight-recorder timelines written to {path}")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the committed baseline from this run")
    ap.add_argument("--no-wallclock", action="store_true",
                    help="skip the simulator-core events/sec floor "
                         "(exact headline comparisons only)")
    ap.add_argument("--no-chaos", action="store_true",
                    help="skip the quick chaos-conformance sweep")
    ap.add_argument("--no-tune", action="store_true",
                    help="skip the tuning-table regeneration smoke")
    args = ap.parse_args(argv)

    headline = run_subset()
    payload = {
        "seed": TRAIN_SEED,
        "rel_tol": REL_TOL,
        "headline": headline,
    }
    path = emit_json("regression", payload)
    print(f"wrote {path}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        shutil.copyfile(path, BASELINE)
        print(f"baseline updated: {BASELINE}")
        _write_canonical(BASELINE_RUN, _profiled_train_run())
        print(f"baseline run file updated: {BASELINE_RUN}")
        return 0

    if not os.path.exists(BASELINE):
        print(f"no baseline at {BASELINE}; run with --update-baseline",
              file=sys.stderr)
        return EXIT_MISSING_BASELINE
    with open(BASELINE) as f:
        baseline = json.load(f)

    # (gate name, problem list, exit code); the first failing gate
    # determines the exit code, every problem is printed regardless.
    gates = [("headline", compare(headline, baseline), EXIT_HEADLINE)]
    if gates[0][1]:
        print("\nheadline drill-down:", file=sys.stderr)
        print(drilldown(headline, baseline), file=sys.stderr)
        if any(p.startswith("train_") for p in gates[0][1]):
            # A moved training headline gets causal attribution: the
            # profiled re-run vs the committed baseline run file.
            text = attribute_train_regression()
            if text:
                print("\ncausal attribution (repro diff baseline -> "
                      "candidate):", file=sys.stderr)
                print(text, file=sys.stderr)
    if not args.no_tune:
        gates.append(("tune", check_tuning_tables(), EXIT_TUNE))
    if not args.no_chaos:
        gates.append(("chaos", check_chaos_gate(), EXIT_CHAOS))
    if not args.no_wallclock:
        gates.append(("wallclock", check_simcore_floor(), EXIT_WALLCLOCK))

    failing = [(name, probs, code) for name, probs, code in gates if probs]
    if failing:
        print("\nREGRESSION GATE FAILED "
              f"({', '.join(name for name, _, _ in failing)}):",
              file=sys.stderr)
        for name, probs, _ in failing:
            for p in probs:
                print(f"  [{name}] {p}", file=sys.stderr)
        return failing[0][2]
    print(f"regression gate: {len(baseline['headline'])} headline "
          f"numbers within {REL_TOL * 100:.0f}% of baseline; "
          f"tuning tables regenerate byte-identically; "
          f"chaos trichotomy holds; simulator-core wall-clock above floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
