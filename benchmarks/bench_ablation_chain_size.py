"""Ablation: the chain-size runtime parameter (Section 5).

The paper: "chain-size is a runtime parameter that can be dynamically
tuned for different systems"; "Experimental evaluation for our platform
also suggests that eight is the ideal P for [the] CC approach. The
benefits start to decrease beyond P > 8."

Two sweeps: (a) CB-k at fixed scale as the chain-size k varies;
(b) a single chain's advantage over the binomial as its length grows.
"""

from common import MiB, emit, fmt_table, fmt_time, osu_reduce, run_once

from repro.mpi import MV2GDR

NBYTES = 64 * MiB
P = 64
CHAIN_SIZES = (2, 4, 8, 16, 32)
CHAIN_LENGTHS = (2, 4, 8, 16, 32)


def run_ablation():
    cb = {k: osu_reduce("A", MV2GDR, NBYTES, P, design=f"CB-{k}")
          for k in CHAIN_SIZES}
    pure = {}
    for L in CHAIN_LENGTHS:
        pure[L] = (osu_reduce("A", MV2GDR, NBYTES, L, design="chain"),
                   osu_reduce("A", MV2GDR, NBYTES, L, design="flat"))
    return cb, pure


def test_chain_size_ablation(benchmark):
    cb, pure = run_once(benchmark, run_ablation)

    rows = [[f"CB-{k}", fmt_time(t)] for k, t in cb.items()]
    text = fmt_table(
        f"Chain-size ablation: CB-k at {P} procs, 64 MB, Cluster-A",
        ["design", "latency"], rows)
    rows2 = [[L, fmt_time(tc), fmt_time(tb), f"{tb / tc:4.2f}x"]
             for L, (tc, tb) in pure.items()]
    text += "\n\n" + fmt_table(
        "Single chain vs binomial as the chain grows (64 MB)",
        ["P", "chain", "binomial", "chain advantage"], rows2)
    emit("ablation_chain_size", text)

    # A bounded chain size beats both extremes: the sweet spot sits in
    # the paper's neighbourhood (4..16), and tiny chains (CB-2) lose.
    best_k = min(cb, key=cb.get)
    assert 4 <= best_k <= 16
    assert cb[2] > cb[best_k]

    # The chain's advantage over the binomial shrinks beyond ~8 ranks
    # ("benefits start to decrease beyond P > 8").
    adv = {L: tb / tc for L, (tc, tb) in pure.items()}
    assert adv[8] > 1.5
    assert adv[32] < adv[8]
    # And the chain always beats binomial at this (large) buffer size.
    for L in CHAIN_LENGTHS[1:]:
        assert adv[L] > 1.0
