"""Legacy shim so editable installs work without the `wheel` package.

Mirrors the pyproject metadata that legacy ``setup.py develop`` cannot
read (console scripts).
"""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
