#!/usr/bin/env python
"""Quickstart: train GoogLeNet on a simulated 32-GPU cluster.

The five-line story of the public API:

1. Build one of the paper's testbeds (Cluster-A: Cray CS-Storm,
   16 K80 CUDA devices per node).
2. Configure a training run (network, dataset, batch, co-design level).
3. ``train(...)`` runs the full co-designed stack — parallel readers,
   multi-stage Ibcast propagation, helper-thread gradient aggregation,
   hierarchical reduce — on the discrete-event simulator.

Run:  python examples/quickstart.py
"""

from repro import TrainConfig, train

config = TrainConfig(
    network="googlenet",      # alexnet | caffenet | googlenet | vgg16 | ...
    dataset="imagenet",
    batch_size=1024,          # global batch; strong scaling divides by GPUs
    iterations=100,
    variant="SC-OBR",         # SC-B | SC-OB | SC-OBR (co-design level)
    reduce_design="tuned",    # flat | tuned | "CB-8" | "CC-4" | ...
)

report = train("scaffe", n_gpus=32, cluster="A", config=config)

print(report.summary())
print(f"\n  time / iteration : {report.time_per_iteration * 1e3:8.1f} ms")
print(f"  samples / second : {report.samples_per_second:8.1f}")
print(f"  I/O stall / iter : {report.io_stall_per_iteration * 1e3:8.3f} ms")
print("\n  per-iteration phase breakdown (root solver):")
for phase, t in sorted(report.phase_breakdown.items()):
    print(f"    {phase:12s} {t * 1e3:8.2f} ms")

# The same call drives the comparator frameworks:
for fw in ("caffe", "cntk", "inspur"):
    r = train(fw, n_gpus=32, cluster="A", config=config)
    print("\n" + r.summary())
