#!/usr/bin/env python
"""Anatomy of the co-designs: where each S-Caffe variant spends time.

Trains GoogLeNet at 64 GPUs under each co-design level and prints the
per-iteration phase breakdown, making the two overlap mechanisms
visible:

- SC-B      : blocking phases — propagation and aggregation fully
              exposed on the critical path.
- SC-OB     : multi-stage Ibcast — the propagation *wait* collapses to
              near zero (hidden under the forward pass).
- SC-OB-naive : the rejected Fig. 4 posting order, for contrast.
- SC-OBR    : helper-thread per-layer reduces — aggregation's wall time
              overlaps the backward pass instead of following it.

Run:  python examples/overlap_anatomy.py
"""

from repro import TrainConfig, train

BASE = TrainConfig(network="googlenet", dataset="imagenet",
                   batch_size=1024, iterations=100, measure_iterations=3,
                   reduce_design="tuned")
PHASES = ("propagation", "fwd", "bwd", "aggregation", "update")

print(f"{'variant':>12} | " + " | ".join(f"{p:>12}" for p in PHASES)
      + f" | {'total/iter':>11}")
print("-" * 100)

baseline = None
for variant in ("SC-B", "SC-OB", "SC-OB-naive", "SC-OBR"):
    r = train("scaffe", n_gpus=64, cluster="A",
              config=BASE.derive(variant=variant))
    cells = [f"{r.phase(p) * 1e3:9.2f} ms" for p in PHASES]
    total = r.time_per_iteration
    if baseline is None:
        baseline = total
    print(f"{variant:>12} | " + " | ".join(cells)
          + f" | {total * 1e3:8.2f} ms  ({(1 - total / baseline) * 100:+.1f}%)")

print("""
Notes
-----
* SC-OB's 'propagation' is the residual Ibcast *wait* time: the actual
  broadcast progresses underneath the forward kernels.
* SC-OBR's 'aggregation' looks large because it is measured as time the
  main thread spends inside per-layer reduces — but that time runs
  concurrently with the helper thread's backward kernels ('bwd'), so it
  mostly vanishes from the critical path.  Its net win over SC-OB shows
  up in the aggregation-bound regime (parameter-heavy models such as
  AlexNet/CaffeNet, or slower reduction designs); on GoogLeNet the
  per-layer splitting overhead roughly cancels the extra overlap.
""")
