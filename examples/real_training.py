#!/usr/bin/env python
"""Real distributed training through the simulated cluster.

Everything in this repo can carry *real* NumPy payloads: here a real
MLP classifier is trained by 8 distributed solvers whose gradients
travel through the simulated CUDA-aware MPI stack (per-layer Ibcast
propagation, helper-thread overlapped hierarchical reductions), and the
result is checked for numerical equivalence against plain single-solver
large-batch SGD — the paper's "no difference in accuracy" validation,
made exact.

Run:  python examples/real_training.py
"""

import numpy as np

from repro import TrainConfig
from repro.core import SCaffeJob, Workload
from repro.core.workload import RealCompute
from repro.dnn import SGDSolver, SolverConfig, build_mlp
from repro.hardware import cluster_a
from repro.sim import Simulator

N_RANKS = 8
GLOBAL_BATCH = 64
ITERATIONS = 20

# ---- a synthetic two-class problem ---------------------------------------
rng = np.random.default_rng(7)
x = rng.standard_normal((512, 16))
labels = (x[:, :4].sum(axis=1) > 0).astype(int)

master = build_mlp([16, 32, 2], rng=np.random.default_rng(1))
solver_cfg = SolverConfig(base_lr=0.2, momentum=0.9)

# ---- distributed run on the simulated cluster ------------------------------
adapter = RealCompute(master, x, labels, global_batch=GLOBAL_BATCH,
                      n_ranks=N_RANKS, solver_config=solver_cfg)
loss_before = adapter.compute_gradients(0, 0)

cluster = cluster_a(Simulator(), n_nodes=1)
cfg = TrainConfig(network="mlp", dataset="mnist",
                  batch_size=GLOBAL_BATCH, iterations=ITERATIONS,
                  measure_iterations=ITERATIONS - 1, variant="SC-OBR",
                  reduce_design="CB-4")
job = SCaffeJob(cluster, N_RANKS, Workload.from_net(master), cfg,
                adapter=adapter)
report = job.run()
print(report.summary())

# ---- sequential reference: one solver, full batches --------------------------
reference = SGDSolver(master.clone(), solver_cfg)
for it in range(ITERATIONS):
    start = (it * GLOBAL_BATCH) % x.shape[0]
    idx = [(start + i) % x.shape[0] for i in range(GLOBAL_BATCH)]
    reference.compute_gradients(x[idx], labels[idx])
    reference.apply_update()

# ---- compare ------------------------------------------------------------------
dist_params = adapter.get_params(0)
seq_params = reference.net.get_params()
max_dev = float(np.max(np.abs(dist_params - seq_params)))
loss_after = adapter.solvers[0].compute_gradients(
    *adapter.batch_rows(0, 0), global_batch=GLOBAL_BATCH)

print(f"\n  loss: {loss_before:.4f} -> {loss_after:.4f} "
      f"over {ITERATIONS} distributed iterations")
print(f"  max |distributed - sequential| parameter deviation: "
      f"{max_dev:.2e}  (float32 reduction noise)")
assert max_dev < 1e-4, "distributed training diverged from SGD!"
print("  distributed trajectory matches single-solver SGD.")
