#!/usr/bin/env python
"""The Section-3.1 design space, head to head.

The paper's first design decision: *how* to parallelize.  This example
trains AlexNet at 8 GPUs under every strategy the paper discusses:

- **model parallel**       (MPI-Caffe-like): layers split across GPUs,
  activations cross the cuts, no weight traffic — but stages serialize.
- **parameter server, sync**  (Inspur-like): workers funnel gradients
  through one master.
- **parameter server, async** (Inspur's actual mode): stale updates,
  a dedicated server GPU.
- **allreduce workers**    (CNTK-like): symmetric, bandwidth-optimal
  ring, CPU-staged.
- **reduction tree / S-Caffe**: the co-designed data-parallel SPMD
  approach the paper argues for.

Run:  python examples/parallelization_strategies.py
"""

from repro import TrainConfig, train
from repro.core import run_param_server
from repro.hardware import cluster_a
from repro.sim import Simulator

CFG = TrainConfig(network="alexnet", dataset="imagenet", batch_size=512,
                  iterations=50, measure_iterations=3, variant="SC-OBR",
                  reduce_design="tuned")
N = 8

rows = []

r = train("mpicaffe", n_gpus=N, cluster="A", config=CFG)
rows.append(("model parallel (MPI-Caffe)", r))

r = run_param_server(cluster_a(Simulator()), N, CFG, mode="sync",
                     emulate_limits=False)
rows.append(("parameter server, sync", r))

r = run_param_server(cluster_a(Simulator()), N, CFG, mode="async",
                     emulate_limits=False)
rows.append(("parameter server, async", r))

r = train("cntk", n_gpus=N, cluster="A", config=CFG)
rows.append(("allreduce workers (CNTK)", r))

r = train("scaffe", n_gpus=N, cluster="A", config=CFG)
rows.append(("reduction tree (S-Caffe)", r))

print(f"AlexNet, {N} GPUs, batch {CFG.batch_size}, Cluster-A\n")
print(f"{'strategy':>28} | {'samples/s':>10} | {'ms/iter':>8} | notes")
print("-" * 78)
for label, rep in rows:
    sps = f"{rep.samples_per_second:10.0f}" if rep.ok else "   failed "
    ms = (f"{rep.time_per_iteration * 1e3:8.1f}" if rep.ok
          else "       -")
    print(f"{label:>28} | {sps} | {ms} | {rep.notes}")

print("""
What to look for:
 * Model parallelism is capped near one GPU's throughput: stages run
   strictly one after another, and AlexNet's 8 weighted layers also cap
   how many GPUs can even participate.
 * Both parameter-server modes funnel every gradient byte through one
   GPU's links; async trades staleness for iteration rate and gives up
   a whole GPU to the server.
 * The symmetric designs (allreduce, reduction tree) win — and S-Caffe's
   co-designed overlap + hierarchical reduce stays ahead of the
   host-staged ring.
""")
