#!/usr/bin/env python
"""Hierarchical-reduce design space + autotuning (the Section 5 story).

Benchmarks MPI_Reduce designs at 160 simulated GPUs across message
sizes — flat binomial, chunked chain, chain-binomial (CB-k) and
chain-chain (CC-k) hierarchies — then runs the autotuner to build the
HR (Tuned) selection table the way the MVAPICH2 tuning infrastructure
does: by offline sweeps on the target system.

Run:  python examples/reduce_tuning.py
"""

from repro.cuda import DeviceBuffer
from repro.hardware import cluster_a
from repro.mpi import MPIRuntime, MV2GDR
from repro.mpi.collectives import (
    autotune, hierarchical_reduce, reduce_binomial, reduce_chain,
)
from repro.sim import Simulator

P = 160
KiB, MiB = 1 << 10, 1 << 20
SIZES = (64 * KiB, 2 * MiB, 16 * MiB, 128 * MiB)
DESIGNS = ("flat", "chain", "CB-8", "CC-8")


def measure(design: str, nbytes: int) -> float:
    cluster = cluster_a(Simulator())
    rt = MPIRuntime(cluster, MV2GDR)
    comm = rt.world(P)

    def program(ctx):
        sendbuf = DeviceBuffer(ctx.gpu, nbytes)
        recvbuf = DeviceBuffer(ctx.gpu, nbytes) if ctx.rank == 0 else None
        if design == "flat":
            yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
        elif design == "chain":
            yield from reduce_chain(ctx, sendbuf, recvbuf, 0)
        else:
            yield from hierarchical_reduce(ctx, sendbuf, recvbuf, 0,
                                           config=design)
        return ctx.sim.now

    return max(rt.execute(comm, program))


def fmt(nbytes):
    return f"{nbytes // MiB}M" if nbytes >= MiB else f"{nbytes // KiB}K"


print(f"MPI_Reduce latency at {P} GPUs (Cluster-A)\n")
print(f"{'size':>6} | " + " | ".join(f"{d:>10}" for d in DESIGNS))
print("-" * (9 + 13 * len(DESIGNS)))
for s in SIZES:
    cells = []
    for d in DESIGNS:
        t = measure(d, s)
        cells.append(f"{t * 1e3:8.2f}ms")
    print(f"{fmt(s):>6} | " + " | ".join(f"{c:>10}" for c in cells))

print("\nAutotuning (offline sweep -> selection table):")
table = autotune(lambda: cluster_a(Simulator()), P, SIZES, DESIGNS)
for bound, design in table.entries:
    rng = f"< {fmt(bound)}" if bound else "otherwise"
    print(f"  {rng:>10} -> {design}")

print("""
The flat binomial wins small (latency-bound) messages; pipelined chain
hierarchies win the DL-scale (multi-MB) reductions — the trade-off that
equations (1) and (2) of the paper formalize, and that the tuned design
exploits per message-size range.
""")
