#!/usr/bin/env python
"""Scaling study: reproduce the shape of the paper's Figure 8 in one page.

Sweeps GPU counts on Cluster-A for GoogLeNet/ImageNet and compares:

- Caffe           — single-node multi-threaded baseline (<= 16 GPUs);
- S-Caffe-L       — distributed, but reading through LMDB (collapses
                    past ~64 parallel readers);
- S-Caffe         — distributed with parallel ImageDataLayer readers on
                    Lustre (scales to 160 GPUs).

Run:  python examples/scaling_study.py
"""

from repro import TrainConfig, train

CFG = TrainConfig(network="googlenet", dataset="imagenet",
                  batch_size=1024, iterations=100, variant="SC-OBR",
                  reduce_design="tuned", measure_iterations=3)

print(f"{'GPUs':>5} | {'Caffe':>12} | {'S-Caffe-L':>12} | "
      f"{'S-Caffe':>12} | {'speedup vs 2':>12}")
print("-" * 65)

base = None
for n in (2, 4, 8, 16, 32, 64, 128, 160):
    caffe = train("caffe", n_gpus=n, cluster="A", config=CFG)
    lmdb = train("scaffe", n_gpus=n, cluster="A",
                 config=CFG.derive(data_backend="lmdb"))
    sc = train("scaffe", n_gpus=n, cluster="A", config=CFG)
    if base is None:
        base = sc.total_time

    def cell(r):
        return f"{r.total_time:9.2f} s " if r.ok else f"{r.failure:>12}"

    print(f"{n:5d} | {cell(caffe)} | {cell(lmdb)} | {cell(sc)} | "
          f"{base / sc.total_time:10.2f}x")

print("""
Things to notice (the paper's Figure 8 story):
 * Caffe stops at one node (16 GPUs) — its shared-address-space design
   cannot scale out.
 * S-Caffe-L tracks S-Caffe until 64 GPUs, then falls behind: LMDB's
   reader table and page cache collapse past 64 parallel readers.
 * S-Caffe keeps scaling to 160 GPUs (strong scaling, so per-GPU batch
   shrinks and communication gradually dominates).
""")
