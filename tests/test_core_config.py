"""Tests for TrainConfig, metrics, workload, and the Table-1 registry."""

import numpy as np
import pytest

from repro.core import (
    FRAMEWORKS, TrainConfig, TrainingReport, Workload, speedup, table1_rows,
)
from repro.core.workload import LayerGroup, RealCompute, SolverBuffers
from repro.dnn import build_mlp, get_network
from repro.hardware import cluster_a
from repro.sim import Simulator


class TestTrainConfig:
    def test_strong_scaling_divides_batch(self):
        cfg = TrainConfig(batch_size=1024, scal="strong")
        # "if we specify a batch-size of 1,024 for 32 GPUs, the effective
        # batch-size for a single GPU becomes 32" (Section 6.2).
        assert cfg.local_batch(32) == 32
        assert cfg.global_batch(32) == 1024

    def test_weak_scaling_keeps_batch(self):
        cfg = TrainConfig(batch_size=1024, scal="weak")
        assert cfg.local_batch(32) == 1024
        assert cfg.global_batch(32) == 32768

    def test_strong_scaling_needs_enough_batch(self):
        cfg = TrainConfig(batch_size=16)
        with pytest.raises(ValueError):
            cfg.local_batch(32)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainConfig(iterations=0)
        with pytest.raises(ValueError):
            TrainConfig(scal="diagonal")
        with pytest.raises(ValueError):
            TrainConfig(variant="SC-X")
        with pytest.raises(ValueError):
            TrainConfig(data_backend="hdf5")
        with pytest.raises(ValueError):
            TrainConfig(iterations=2, measure_iterations=5)

    def test_derive(self):
        cfg = TrainConfig(batch_size=64)
        assert cfg.derive(batch_size=128).batch_size == 128
        assert cfg.batch_size == 64


class TestTrainingReport:
    def test_samples_per_second(self):
        r = TrainingReport("f", "net", 4, iterations=100, total_time=10.0,
                           global_batch=128)
        assert r.samples_per_second == pytest.approx(1280.0)
        assert r.time_per_iteration == pytest.approx(0.1)

    def test_failed_report_raises_on_metrics(self):
        r = TrainingReport("f", "net", 4, iterations=10, total_time=0.0,
                           global_batch=1, failure="oom")
        assert not r.ok
        with pytest.raises(RuntimeError):
            _ = r.samples_per_second
        assert "FAILED" in r.summary()

    def test_speedup(self):
        a = TrainingReport("a", "n", 1, 10, total_time=20.0, global_batch=1)
        b = TrainingReport("b", "n", 1, 10, total_time=10.0, global_batch=1)
        assert speedup(a, b) == pytest.approx(2.0)


class TestTable1:
    def test_rows_cover_all_frameworks(self):
        rows = table1_rows()
        assert [r["framework"] for r in rows] == [
            "Caffe", "FireCaffe", "MPI-Caffe", "CNTK", "Inspur-Caffe",
            "S-Caffe"]

    def test_scaffe_is_the_only_codesigned_framework(self):
        rows = {r["framework"]: r for r in table1_rows()}
        assert rows["S-Caffe"]["codesigned"] == "yes"
        assert rows["S-Caffe"]["overlapped_nbc"] == "yes"
        for name, row in rows.items():
            if name != "S-Caffe":
                assert row["codesigned"] != "yes"

    def test_unknowns_preserved(self):
        rows = {r["framework"]: r for r in table1_rows()}
        assert rows["FireCaffe"]["cuda_aware_mpi"] == "Unknown"

    def test_strategy_axes(self):
        assert FRAMEWORKS["S-Caffe"].implementation == "RT"
        assert FRAMEWORKS["Inspur-Caffe"].implementation == "PS"
        assert FRAMEWORKS["MPI-Caffe"].parallelism == "MP"


class TestWorkload:
    def test_from_spec_groups_fold_paramfree_layers(self):
        net = get_network("alexnet")
        wl = Workload.from_spec(net)
        # Same total compute and communication after folding.
        assert wl.param_bytes == net.param_bytes
        assert wl.fwd_flops_per_sample == pytest.approx(
            net.fwd_flops_per_sample)
        assert wl.bwd_flops_per_sample == pytest.approx(
            net.bwd_flops_per_sample)
        assert len(wl.groups) == len(net.parametrized_layers())

    def test_group_offsets_are_contiguous(self):
        wl = Workload.from_spec(get_network("lenet"))
        offs = wl.group_offsets()
        pos = 0
        for (off, n), g in zip(offs, wl.groups):
            assert off == pos
            assert n == g.param_bytes
            pos += n
        assert pos == wl.param_bytes

    def test_from_net_groups_match_real_layers(self):
        net = build_mlp([8, 6, 4])
        wl = Workload.from_net(net)
        assert wl.param_bytes == net.param_count * 4
        assert len(wl.groups) == 2  # two Dense layers

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("w", [], 1, 1)
        with pytest.raises(ValueError):
            LayerGroup("g", -1, 0, 0)
        wl = Workload.from_spec(get_network("lenet"))
        with pytest.raises(ValueError):
            wl.memory_per_solver(0)


class TestSolverBuffers:
    def test_packed_mode(self):
        sim = Simulator()
        gpu = cluster_a(sim, n_nodes=1).gpu(0)
        wl = Workload.from_spec(get_network("lenet"))
        bufs = SolverBuffers(wl, gpu, per_group_params=False, per_group_grads=False, with_payload=False)
        assert bufs.packed_params.nbytes == wl.param_bytes
        assert len(bufs.param_bufs) == 1
        bufs.free()
        assert gpu.allocated_bytes == 0

    def test_per_group_mode(self):
        sim = Simulator()
        gpu = cluster_a(sim, n_nodes=1).gpu(0)
        wl = Workload.from_spec(get_network("lenet"))
        bufs = SolverBuffers(wl, gpu, per_group_params=True, per_group_grads=True, with_payload=False)
        assert len(bufs.param_bufs) == len(wl.groups)
        assert sum(b.nbytes for b in bufs.param_bufs) == wl.param_bytes
        bufs.free()

    def test_payload_roundtrip_per_group(self):
        sim = Simulator()
        gpu = cluster_a(sim, n_nodes=1).gpu(0)
        net = build_mlp([6, 5, 3])
        wl = Workload.from_net(net)
        bufs = SolverBuffers(wl, gpu, per_group_params=True, per_group_grads=True, with_payload=True)
        flat = np.arange(net.param_count, dtype=np.float32)
        bufs.write_params(flat)
        np.testing.assert_array_equal(bufs.read_params(), flat)
        bufs.write_grads(flat * 2)
        np.testing.assert_array_equal(bufs.read_grads(), flat * 2)
        bufs.free()

    def test_payload_roundtrip_packed(self):
        sim = Simulator()
        gpu = cluster_a(sim, n_nodes=1).gpu(0)
        net = build_mlp([6, 3])
        wl = Workload.from_net(net)
        bufs = SolverBuffers(wl, gpu, per_group_params=False, per_group_grads=False, with_payload=True)
        flat = np.arange(net.param_count, dtype=np.float32)
        bufs.write_grads(flat)
        np.testing.assert_array_equal(bufs.read_grads(), flat)
        bufs.free()


class TestRealCompute:
    def _adapter(self, n_ranks=2, global_batch=8):
        rng = np.random.default_rng(0)
        net = build_mlp([4, 3, 2], rng=np.random.default_rng(1))
        x = rng.standard_normal((32, 4))
        y = rng.integers(0, 2, 32)
        return RealCompute(net, x, y, global_batch=global_batch,
                           n_ranks=n_ranks)

    def test_shards_partition_the_batch(self):
        ad = self._adapter()
        x0, _ = ad.batch_rows(0, 0)
        x1, _ = ad.batch_rows(0, 1)
        np.testing.assert_array_equal(np.vstack([x0, x1]), ad.x[:8])

    def test_sharded_gradients_sum_to_reference(self):
        ad = self._adapter()
        ref = ad.master.clone()
        ref.zero_grads()
        ref.forward(ad.x[:8], ad.labels[:8])
        ref.backward()
        total = np.zeros(ad.master.param_count)
        for r in range(2):
            ad.compute_gradients(r, 0)
            total += ad.local_grads(r)
        np.testing.assert_allclose(total, ref.get_grads(), rtol=1e-10)

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            self._adapter(n_ranks=3, global_batch=8)

    def test_batch_wraps_around_dataset(self):
        ad = self._adapter()
        x, y = ad.batch_rows(100, 1)  # far past one epoch
        assert x.shape == (4, 4)
