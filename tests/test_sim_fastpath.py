"""Golden same-seed identity tests for the fast-path DES kernel.

The simulator has two scheduler implementations: the two-tier fast
path (calendar buckets + URGENT lane, pooled events) and the reference
flat-heapq slow path (``Simulator(slowpath=True)`` /
``REPRO_SIM_SLOWPATH=1``).  Both share the same semantic protocol
(inline completion, trampoline, eager process start, batched link
trains), so seeded runs must be *event-for-event identical*: same
dispatch order, same times, same event count.  These tests pin that
contract, plus the unit behavior of the structures the fast path
added (bucket queue, event pooling, tombstone cancel, batched
transfer trains, closed-form pipeline schedules).
"""

import math
import os

import numpy as np
import pytest

from repro.check.harness import Case, generate_matrix, run_case
from repro.sim import Channel, Simulator
from repro.sim.resources import (
    BandwidthLink, Resource, Store, pipeline_exit_times,
)


# -- workload used for per-event trace comparison ---------------------------

def _mixed_workload(sim):
    """Exercise every kernel feature: contended resources, links with
    per-message overhead, stores, condition events, zero-delay wakeups,
    chunk trains, and cancellation via interrupt."""
    res = Resource(sim, capacity=2, name="res")
    link = BandwidthLink(sim, bandwidth=1e9, latency=1e-6,
                         per_message_overhead=2e-7, name="lnk")
    store = Store(sim, capacity=3)
    ch = Channel(sim)
    done = []

    def worker(i):
        for k in range(6):
            yield from res.use(1e-6 * ((i + k) % 5 + 1))
            yield from link.transfer(1000 * (k + 1))
            yield sim.timeout(0.0)  # zero-delay: URGENT-lane adjacency
        yield store.put(i)
        done.append(i)

    def trainer():
        yield sim.timeout(5e-6)
        yield from link.transfer_train([4096] * 5)
        yield from link.transfer_train([100, 200])

    def taker():
        got = []
        for _ in range(4):
            ev = store.get()
            yield ev
            got.append(ev.value)
        yield ch.put(tuple(got))

    def waiter():
        a = sim.timeout(3e-6)
        b = sim.timeout(3e-6)  # same instant: bucket ordering matters
        yield sim.all_of([a, b])
        c = sim.timeout(8e-6)
        d = sim.timeout(9e-6)
        yield sim.any_of([c, d])
        yield ch.get()

    def victim():
        try:
            yield from res.use(1.0)
        except BaseException:
            return

    def killer(proc):
        yield sim.timeout(2e-6)
        proc.interrupt("cancelled")

    for i in range(4):
        sim.process(worker(i))
    sim.process(trainer())
    sim.process(taker())
    sim.process(waiter())
    v = sim.process(victim())
    sim.process(killer(v))
    return done


def _trace(slowpath):
    sim = Simulator(slowpath=slowpath)
    done = _mixed_workload(sim)
    trace = []
    while sim.peek() != math.inf:
        ev = sim.step()
        trace.append((sim.now, type(ev).__name__))
    return trace, sim.event_count, sorted(done)


class TestGoldenTraceIdentity:
    def test_mixed_workload_event_for_event(self):
        fast, n_fast, done_fast = _trace(slowpath=False)
        slow, n_slow, done_slow = _trace(slowpath=True)
        assert n_fast == n_slow
        assert done_fast == done_slow
        assert fast == slow  # same times, same dispatch order

    def test_conformance_cases_identical_across_modes(self):
        """A slice of the conformance matrix (every collective family,
        chunked and windowed variants) runs to the same clock and event
        count in both scheduler modes."""
        cases = [
            Case(collective="reduce_chain", P=8, nbytes=1 << 16, window=4,
                 chunk_bytes=1 << 13),
            Case(collective="hierarchical_reduce", P=8, nbytes=1 << 14,
                 hr_config="CB-4"),
            Case(collective="allreduce_ring", P=6, nbytes=3 << 12),
            Case(collective="bcast_scatter_allgather", P=8, nbytes=1 << 14),
            Case(collective="reduce_binomial", P=5, nbytes=1 << 12,
                 profile="openmpi"),
            Case(collective="allgather_ring", P=4, nbytes=1 << 12,
                 profile="mv2"),
        ]
        for case in cases:
            outcomes = {}
            for mode in ("0", "1"):
                os.environ["REPRO_SIM_SLOWPATH"] = mode
                try:
                    r = run_case(case)
                finally:
                    os.environ.pop("REPRO_SIM_SLOWPATH", None)
                assert r.ok, f"{case.spec()} mode={mode}: {r.failures}"
                outcomes[mode] = (r.sim_time, r.n_events)
            assert outcomes["0"] == outcomes["1"], case.spec()

    def test_generated_matrix_prefix_identical_across_modes(self):
        for case in generate_matrix(seed=3, quick=True)[:6]:
            results = {}
            for mode in ("0", "1"):
                os.environ["REPRO_SIM_SLOWPATH"] = mode
                try:
                    r = run_case(case)
                finally:
                    os.environ.pop("REPRO_SIM_SLOWPATH", None)
                results[mode] = (r.ok, r.sim_time, r.n_events)
            assert results["0"] == results["1"], case.spec()


class TestBucketQueue:
    def test_same_time_events_fifo(self):
        sim = Simulator()
        order = []
        for i in range(8):
            sim.timeout(1e-3).add_callback(lambda _e, i=i: order.append(i))
        sim.run()
        assert order == list(range(8))

    def test_interleaved_times_sorted(self):
        sim = Simulator()
        order = []
        for i, d in enumerate([5e-3, 1e-3, 3e-3, 1e-3, 4e-3, 2e-3]):
            sim.timeout(d).add_callback(
                lambda _e, i=i, d=d: order.append((d, i)))
        sim.run()
        assert order == sorted(order)

    def test_urgent_lane_runs_before_same_time_timeouts(self):
        sim = Simulator()
        order = []

        def proc():
            ev = sim.event()
            sim.timeout(1e-3).add_callback(lambda _t: order.append("t"))

            def trip(_t):
                ev.succeed()

            sim.timeout(1e-3).add_callback(trip)
            yield ev
            order.append("woken")

        sim.process(proc())
        sim.run()
        # URGENT orders ahead of *later-scheduled* work at the same
        # instant, never ahead of already-queued NORMAL events; the
        # pinned contract is that fast and slow modes agree on it.
        slow_order = []
        sim2 = Simulator(slowpath=True)

        def proc2():
            ev = sim2.event()
            sim2.timeout(1e-3).add_callback(lambda _t: slow_order.append("t"))

            def trip(_t):
                ev.succeed()

            sim2.timeout(1e-3).add_callback(trip)
            yield ev
            slow_order.append("woken")

        sim2.process(proc2())
        sim2.run()
        assert order == slow_order

    def test_timeout_at_fires_at_exact_instant(self):
        sim = Simulator()
        seen = []
        when = 0.1 + 0.2  # not exactly 0.3 in floats — that's the point
        sim.timeout_at(when).add_callback(lambda _t: seen.append(sim.now))
        sim.run()
        assert seen == [when]

    def test_timeout_at_past_rejected(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.timeout_at(0.5)

    def test_timeout_at_orders_with_equal_time_timeouts(self):
        for slowpath in (False, True):
            sim = Simulator(slowpath=slowpath)
            order = []

            def proc():
                yield sim.timeout(1e-3)
                sim.timeout(1e-3).add_callback(lambda _t: order.append("rel"))
                sim.timeout_at(sim.now + 1e-3).add_callback(
                    lambda _t: order.append("abs"))
                yield sim.timeout(2e-3)

            sim.process(proc())
            sim.run()
            assert order == ["rel", "abs"], f"slowpath={slowpath}"


class TestEventPooling:
    def test_pool_recycles_objects(self):
        sim = Simulator()
        seen_ids = set()

        def proc():
            for _ in range(100):
                yield sim.timeout(1e-6)
                seen_ids.add(id(sim.timeout(0.0)))

        sim.process(proc())
        sim.run()
        # With pooling, far fewer distinct objects than timeouts created.
        assert len(seen_ids) < 100

    def test_recycled_events_carry_no_stale_state(self):
        sim = Simulator()
        values = []

        def proc():
            for i in range(50):
                t = sim.timeout(1e-6, value=i)
                got = yield t
                values.append(got)

        sim.process(proc())
        sim.run()
        assert values == list(range(50))


class TestTombstoneCancel:
    def test_cancel_queued_request_is_skipped(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        granted = []

        def holder():
            yield from res.use(1e-3)

        def canceller():
            req = res.request()
            yield sim.timeout(1e-4)
            res.cancel(req)

        def third():
            yield sim.timeout(2e-4)  # queues behind the cancelled request
            grant = yield res.request()
            granted.append(sim.now)
            res.release(grant)

        sim.process(holder())
        sim.process(canceller())
        sim.process(third())
        sim.run()
        # third() gets the grant as soon as holder releases — the
        # tombstoned request in front of it is skipped, not granted.
        assert granted == [pytest.approx(1e-3)]
        assert res.idle

    def test_cancel_storm_no_capacity_leak(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def holder():
            yield from res.use(1e-3)

        reqs = []

        def spammer():
            for _ in range(200):
                reqs.append(res.request())
            yield sim.timeout(1e-5)
            for r in reqs:
                res.cancel(r)

        sim.process(holder())
        sim.process(holder())
        sim.process(spammer())
        sim.run()
        assert res.idle and res.queue_len == 0

    def test_cancel_after_grant_releases(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def proc():
            req = res.request()
            yield sim.timeout(0.0)
            res.cancel(req)  # grant already issued: handed straight back

        sim.process(proc())
        sim.run()
        assert res.idle


class TestTransferTrain:
    def _times(self, batched, sizes):
        sim = Simulator()
        link = BandwidthLink(sim, bandwidth=5e9, latency=2e-6,
                             per_message_overhead=1e-7, name="l")

        def proc():
            if batched:
                yield from link.transfer_train(sizes)
            else:
                for n in sizes:
                    yield from link.transfer(n)

        sim.process(proc())
        sim.run()
        return sim.now, link.messages, link.bytes_moved, link._res.busy_time

    def test_uncontended_train_matches_per_chunk_exactly(self):
        sizes = [4096] * 7 + [1234]
        t_b, m_b, by_b, busy_b = self._times(True, sizes)
        t_p, m_p, by_p, busy_p = self._times(False, sizes)
        assert t_b == t_p
        assert (m_b, by_b) == (m_p, by_p)
        assert busy_b == pytest.approx(busy_p, abs=1e-15)

    def test_train_falls_back_when_link_busy(self):
        sim = Simulator()
        link = BandwidthLink(sim, bandwidth=5e9, latency=2e-6, name="l")

        def background():
            yield from link.transfer(1 << 20)

        def train():
            yield sim.timeout(1e-9)  # link now held by background
            assert not link.train_eligible()
            yield from link.transfer_train([4096] * 4)

        sim.process(background())
        sim.process(train())
        sim.run()
        assert link.messages == 5


class TestPipelineExitTimes:
    def _brute(self, overheads, occ, start):
        s_n, k_n = occ.shape
        exits = np.empty_like(occ)
        prev = [start] * k_n
        for s in range(s_n):
            steps = overheads[s]
            if not isinstance(steps, (tuple, list)):
                steps = (steps,)
            tail = -math.inf
            for k in range(k_n):
                r = prev[k]
                for d in steps:
                    r = r + d
                e = max(r, tail) + occ[s, k]
                exits[s, k] = e
                tail = e
            prev = list(exits[s])
        return exits

    def test_matches_bruteforce_recurrence(self):
        rng = np.random.default_rng(42)
        for _ in range(20):
            s_n = int(rng.integers(1, 5))
            k_n = int(rng.integers(1, 30))
            occ = rng.random((s_n, k_n)) * 1e-3
            ovh = [tuple(rng.random(int(rng.integers(0, 3))) * 1e-5)
                   for _ in range(s_n)]
            start = float(rng.random())
            got = pipeline_exit_times(ovh, occ, start=start)
            want = self._brute(ovh, occ, start)
            assert np.array_equal(got, want)  # bit-exact, not approx

    def test_single_stage_is_fifo_serialization(self):
        occ = np.array([[1.0, 2.0, 3.0]])
        e = pipeline_exit_times([0.0], occ, start=10.0)
        assert e.tolist() == [[11.0, 13.0, 16.0]]

    def test_bottleneck_stage_dominates(self):
        # Stage 1 is the bottleneck: steady-state spacing equals its
        # occupancy, independent of the faster stages around it.
        occ = np.array([[0.1] * 10, [1.0] * 10, [0.1] * 10])
        e = pipeline_exit_times([0.0, 0.0, 0.0], occ)
        spacing = np.diff(e[2])
        assert np.allclose(spacing[2:], 1.0)


class TestStagedTrainTransport:
    """The transport-level batched staged pipeline must be bit-identical
    to the per-chunk event model whenever it engages."""

    def _run(self, profile, inter, batch, nbytes):
        import repro.mpi.transport as tp
        from repro.cuda import CudaRuntime, DeviceBuffer
        from repro.hardware import cluster_b

        sim = Simulator()
        cluster = cluster_b(sim, n_nodes=2)
        tr = tp.DeviceTransport(cluster, CudaRuntime(cluster), profile)
        src = cluster.gpu(0)
        dst = cluster.gpu(2) if inter else cluster.gpu(1)
        a, b = DeviceBuffer(src, nbytes), DeviceBuffer(dst, nbytes)
        if not batch:
            def nope(self, *args, **kwargs):
                return False
                yield  # pragma: no cover

            tr._staged_train = nope.__get__(tr)

        def proc():
            yield from tr.transfer(a, b, nbytes)

        sim.process(proc())
        sim.run()
        links = [src.pcie_up, dst.pcie_down]
        node_a = cluster.node_of(src)
        if inter:
            links += [node_a.nic_for(src).tx,
                      cluster.node_of(dst).nic_for(dst).rx]
        else:
            links += [node_a.host_memcpy]
        stats = [(l.name, l.messages, l.bytes_moved, l._res.idle)
                 for l in links]
        busy = [l._res.busy_time for l in links]
        return float(sim.now), stats, busy

    @pytest.mark.parametrize("inter", [False, True])
    @pytest.mark.parametrize("nbytes", [8 << 20, (8 << 20) + 12345])
    def test_bit_identical_to_per_chunk(self, inter, nbytes):
        from repro.mpi import MV2
        profile = MV2.derive(gdr=False)
        t_f, stats_f, busy_f = self._run(profile, inter, True, nbytes)
        t_p, stats_p, busy_p = self._run(profile, inter, False, nbytes)
        assert t_f == t_p
        assert stats_f == stats_p
        assert busy_f == pytest.approx(busy_p, abs=1e-12)

    def test_unpinned_staging_bit_identical(self):
        from repro.mpi import MV2
        profile = MV2.derive(gdr=False, pinned_staging=False)
        t_f, stats_f, _ = self._run(profile, True, True, 8 << 20)
        t_p, stats_p, _ = self._run(profile, True, False, 8 << 20)
        assert t_f == t_p and stats_f == stats_p

    def test_serial_profile_never_batches(self):
        """OpenMPI (no segment pipelining) must take the per-chunk path;
        the batched schedule models only the pipelined overlap."""
        from repro.mpi import OPENMPI
        t_f, stats_f, _ = self._run(OPENMPI, True, True, 8 << 20)
        t_p, stats_p, _ = self._run(OPENMPI, True, False, 8 << 20)
        assert t_f == t_p and stats_f == stats_p
