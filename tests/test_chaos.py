"""Chaos-conformance gate: the outcome trichotomy, its mutation
self-test, case-spec round-trips, and two interplay regressions —
faulty links vs the batched-train fast path, and fault-plan determinism
across scheduler modes."""

import os

import pytest

from repro.check.chaos import (
    ChaosCase, FAULT_KINDS, GOOD_OUTCOMES, chaos_outcome_tally,
    generate_chaos_matrix, parse_chaos_case, run_chaos, run_chaos_case,
    run_chaos_selftest,
)
from repro.core import TrainConfig, run_scaffe
from repro.faults import PLAN_NAMES, named_plan
from repro.hardware import make_cluster
from repro.hardware.faults import FaultyLink, MessageDropped
from repro.sim import BandwidthLink, Simulator


class TestChaosMatrix:
    def test_quick_matrix_trichotomy_holds(self):
        """Every quick-matrix cell must end exact / recovered / typed
        error — zero silent corruption, zero hangs."""
        results = run_chaos(generate_chaos_matrix(1, quick=True))
        assert len(results) >= 60
        tally = chaos_outcome_tally(results)
        assert tally["silent"] == 0
        assert tally["hang"] == 0
        bad = [r for r in results if not r.ok]
        assert not bad, [f"{r.case.spec()}: {r.failures}" for r in bad]
        # The matrix genuinely exercises all three contract outcomes.
        assert all(tally[k] > 0 for k in GOOD_OUTCOMES)

    def test_full_matrix_covers_every_kind(self):
        cases = generate_chaos_matrix(0, quick=False)
        assert len(cases) >= 200  # acceptance floor from the issue
        assert {c.kind for c in cases} == set(FAULT_KINDS)

    def test_victim_is_never_the_root(self):
        for c in generate_chaos_matrix(2, quick=True):
            assert 0 < c.victim < c.P


class TestChaosSelfTest:
    def test_sabotaged_protections_are_caught(self):
        """The gate must have teeth: a disabled checksum verify must
        read as silent corruption, a disabled watchdog as a hang —
        while the unmutated cases pass."""
        outcomes = run_chaos_selftest()
        assert len(outcomes) == 2
        for o in outcomes:
            assert o.detected, (o.name, o.failures)
            assert o.clean_ok, o.name


class TestCaseSpecs:
    def test_spec_round_trips(self):
        for case in generate_chaos_matrix(3, quick=True)[:12]:
            assert parse_chaos_case(case.spec()) == case

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_chaos_case("collective=allreduce_ring,P=four")
        with pytest.raises(ValueError):
            parse_chaos_case("kind=corrupt")  # no collective
        with pytest.raises(ValueError):
            parse_chaos_case(
                "collective=allreduce_ring,P=4,nbytes=64,kind=gremlins")


class TestFaultyLinkFastPath:
    """Regression: FaultyLink must never take the batched-train fast
    path — a train collapsed into one precomputed hold would skip the
    per-chunk fault checks, letting drops/corruption/stalls slip past."""

    def _link(self, sim):
        return FaultyLink(sim, bandwidth=1e9, latency=1e-6, name="l")

    def test_faulty_link_never_train_eligible(self):
        sim = Simulator()
        link = self._link(sim)
        # Healthy, idle, no recorder/jitter — a plain BandwidthLink
        # would be eligible; the fault hook alone must disqualify.
        assert BandwidthLink(sim, bandwidth=1e9, latency=1e-6,
                             name="b").train_eligible()
        assert not link.train_eligible()
        # ...and stays ineligible across every fault-state flip.
        link.set_stalled(True)
        assert not link.train_eligible()
        link.set_stalled(False)
        link.set_down(True)
        assert not link.train_eligible()
        link.set_down(False)
        assert not link.train_eligible()

    def test_pending_drop_fires_on_first_train_chunk(self):
        sim = Simulator()
        link = self._link(sim)
        link.drop_next(1)

        def prog():
            yield from link.transfer_train([1024] * 8)

        sim.process(prog())
        with pytest.raises(MessageDropped):
            sim.run()
        assert link.drops_served == 1

    def test_mid_train_fault_flip_hits_a_later_chunk(self):
        """A fault armed *while the train is already running* must hit
        one of the remaining chunks — the per-chunk fallback re-checks
        fault state at every chunk boundary."""
        sim = Simulator()
        link = self._link(sim)
        chunk_t = link.occupancy(1 << 20)

        def prog():
            yield from link.transfer_train([1 << 20] * 16)

        def mid_train():
            yield sim.timeout(5.5 * chunk_t)
            link.drop_next(1)

        sim.process(prog())
        sim.process(mid_train())
        with pytest.raises(MessageDropped):
            sim.run()
        assert link.drops_served == 1
        assert 0 < link.messages < 16

    def test_pristine_faulty_link_timing_matches_plain_link(self):
        """The per-chunk fallback costs events, not time: a pristine
        FaultyLink train lands on the same clock as a BandwidthLink."""
        def run(make):
            sim = Simulator()
            link = make(sim)

            def prog():
                yield from link.transfer_train([4096] * 10)

            sim.process(prog())
            sim.run()
            return sim.now

        t_plain = run(lambda s: BandwidthLink(s, bandwidth=1e9,
                                              latency=1e-6, name="b"))
        assert run(self._link) == t_plain


class TestPlanDeterminismAcrossSchedulers:
    """Regression: every named fault plan must produce an identical
    outcome under the slow-path scheduler and the calendar-queue fast
    path — fault delivery may not depend on scheduler internals."""

    @staticmethod
    def _run(name, slowpath):
        sim = Simulator(seed=7, slowpath=slowpath)
        cluster = make_cluster(sim, "A")
        plan = named_plan(name, seed=3, horizon=2.0, n_ranks=8,
                          n_nodes=len(cluster.nodes),
                          gpus_per_node=cluster.gpus_per_node,
                          nics_per_node=len(cluster.nodes[0].nics))
        cfg = TrainConfig(network="cifar10_quick", batch_size=256,
                          iterations=6, measure_iterations=2,
                          checkpoint_interval=2)
        r = run_scaffe(cluster, 8, cfg, fault_plan=plan)
        fr = r.faults
        fault_sig = None
        if fr is not None:
            fault_sig = (tuple(sorted(fr.injected.items())),
                         fr.detected_failures, fr.recoveries,
                         fr.corrupt_detected, fr.retransmits,
                         fr.silent_corruptions, fr.watchdog_timeouts,
                         fr.watchdog_escalations)
        return (r.ok, r.failure, r.total_time, r.simulated_time,
                sim.event_count, fault_sig)

    @pytest.mark.parametrize("name", PLAN_NAMES)
    def test_named_plan_identical_in_both_modes(self, name):
        slow = self._run(name, slowpath=True)
        fast = self._run(name, slowpath=False)
        assert slow == fast
        assert slow[5] is not None  # the fault report was produced
