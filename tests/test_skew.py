"""Tests for the skew/noise model (jitter + stragglers)."""

import pytest

from repro.cuda import DeviceBuffer
from repro.hardware import Calibration, cluster_a
from repro.mpi import MPIRuntime, MV2GDR
from repro.mpi.collectives import reduce_chain
from repro.sim import BandwidthLink, Simulator


def reduce_time(design_cal, seed, nbytes=8 << 20, P=16):
    sim = Simulator(seed=seed)
    cluster = cluster_a(sim, n_nodes=1, cal=design_cal)
    rt = MPIRuntime(cluster, MV2GDR)
    comm = rt.world(P)

    def program(ctx):
        s = DeviceBuffer(ctx.gpu, nbytes)
        r = DeviceBuffer(ctx.gpu, nbytes) if ctx.rank == 0 else None
        yield from reduce_chain(ctx, s, r, 0)
        return ctx.sim.now

    return max(rt.execute(comm, program))


class TestJitterFactor:
    def test_quiet_by_default(self):
        sim = Simulator()
        assert sim.jitter_factor(0.5) == 1.0
        assert sim.straggler_factor(0.5) == 1.0

    def test_armed_with_seed(self):
        sim = Simulator(seed=42)
        f = sim.jitter_factor(0.5)
        assert 1.0 <= f < 1.5

    def test_zero_amount_is_exact(self):
        sim = Simulator(seed=42)
        assert sim.jitter_factor(0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Simulator(seed=1).jitter_factor(-0.1)

    def test_deterministic_per_seed(self):
        a = [Simulator(seed=7).jitter_factor(0.3) for _ in range(3)]
        b = [Simulator(seed=7).jitter_factor(0.3) for _ in range(3)]
        assert a == b


class TestLinkJitter:
    def test_transfers_vary_under_noise(self):
        sim = Simulator(seed=1)
        link = BandwidthLink(sim, bandwidth=1e6, latency=0.0, jitter=0.5)
        times = []

        def xfers():
            for _ in range(4):
                t0 = sim.now
                yield from link.transfer(1_000_000)
                times.append(sim.now - t0)

        sim.process(xfers())
        sim.run()
        assert len(set(round(t, 9) for t in times)) > 1
        assert all(1.0 <= t < 1.5 for t in times)

    def test_no_seed_means_exact_times(self):
        sim = Simulator()
        link = BandwidthLink(sim, bandwidth=1e6, latency=0.0, jitter=0.5)

        def xfer():
            yield from link.transfer(1_000_000)

        sim.process(xfer())
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            BandwidthLink(Simulator(), bandwidth=1, latency=0, jitter=-1)


class TestSkewedReductions:
    def test_noise_slows_collectives_within_bounds(self):
        quiet = reduce_time(Calibration(), seed=None)
        noisy = reduce_time(
            Calibration(network_jitter=0.3, compute_jitter=0.3), seed=3)
        # Slower than quiet, but bounded by the worst-case factor.
        assert quiet < noisy < quiet * 1.4

    def test_stragglers_gate_chain_throughput(self):
        quiet = reduce_time(Calibration(), seed=None)
        strag = reduce_time(Calibration(straggler_spread=1.0), seed=5)
        # A chain is gated by its slowest member: the degradation
        # reflects the max (not the mean) of the drawn factors.
        assert strag > quiet * 1.2
        assert strag < quiet * 2.3

    def test_seeded_runs_reproducible_end_to_end(self):
        cal = Calibration(network_jitter=0.2, straggler_spread=0.5)
        assert reduce_time(cal, seed=9) == reduce_time(cal, seed=9)

    def test_different_seeds_differ(self):
        cal = Calibration(network_jitter=0.2, straggler_spread=0.5)
        assert reduce_time(cal, seed=1) != reduce_time(cal, seed=2)
