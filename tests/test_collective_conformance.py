"""Differential conformance: every collective, every profile, byte-exact
against plain NumPy — driven through the ``repro.check`` harness."""

import numpy as np
import pytest

from repro.check import (
    COLLECTIVES, Case, generate_matrix, run_case,
)
from repro.check.reference import rank_payload, reduce_reference

PROFILES = ("mv2gdr", "mv2", "openmpi")


class TestPayloadDesign:
    def test_payloads_are_integer_valued(self):
        """Byte-exactness across reduction orders relies on this."""
        p = rank_payload(3, 1, 4096)
        assert np.array_equal(p, np.round(p))
        assert p.dtype == np.float32

    def test_reference_sum_is_exactly_representable(self):
        payloads = [rank_payload(0, r, 256) for r in range(520)]
        ref = reduce_reference(payloads)
        exact = sum(p.astype(np.int64) for p in payloads)
        assert np.array_equal(ref.astype(np.int64), exact)


@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("collective", COLLECTIVES)
class TestEveryCollectiveEveryProfile:
    def test_byte_exact_and_invariant_clean(self, collective, profile):
        kw = {}
        if collective == "reduce_chain":
            kw = dict(chunk_bytes=64, window=2)
        if collective == "hierarchical_reduce":
            kw = dict(hr_config="CB-4")
        r = run_case(Case(collective, P=8, nbytes=512, root=0,
                          profile=profile, **kw))
        assert r.ok, r.describe()

    def test_nontrivial_root_or_single_element(self, collective, profile):
        kw = {"root": 3}
        if collective in ("allreduce_ring", "allgather_ring",
                          "reduce_scatter_ring"):
            kw = {}
        if collective == "reduce_chain":
            kw["chunk_bytes"] = 16
        if collective == "hierarchical_reduce":
            kw["hr_config"] = "CC-2"
        r = run_case(Case(collective, P=5, nbytes=40, profile=profile,
                          seed=11, **kw))
        assert r.ok, r.describe()


class TestEdgeConfigurations:
    @pytest.mark.parametrize("collective", COLLECTIVES)
    def test_single_rank(self, collective):
        kw = {}
        if collective == "hierarchical_reduce":
            kw = dict(hr_config="CB-4")
        r = run_case(Case(collective, P=1, nbytes=64, **kw))
        assert r.ok, r.describe()

    @pytest.mark.parametrize("window", [1, 2, 7, None])
    def test_chain_windows(self, window):
        r = run_case(Case("reduce_chain", P=4, nbytes=1024, chunk_bytes=64,
                          window=window))
        assert r.ok, r.describe()

    @pytest.mark.parametrize("hr", ["CB-2", "CB-8", "CC-4", "CCB-2",
                                    "CCB-4"])
    def test_hierarchical_configs(self, hr):
        r = run_case(Case("hierarchical_reduce", P=12, nbytes=192, root=5,
                          hr_config=hr))
        assert r.ok, r.describe()

    def test_buffer_smaller_than_ring(self):
        """More ranks than elements: most ring blocks are empty."""
        for coll in ("allreduce_ring", "allgather_ring",
                     "reduce_scatter_ring"):
            r = run_case(Case(coll, P=9, nbytes=8))
            assert r.ok, r.describe()

    def test_fault_injected_runs_stay_byte_exact(self):
        """Dropped messages are retried by the transport; results must
        not change."""
        for coll in ("reduce_binomial", "allreduce_ring", "bcast_binomial"):
            r = run_case(Case(coll, P=4, nbytes=256, fault="drops",
                              seed=5))
            assert r.ok, r.describe()


class TestGeneratedMatrix:
    def test_quick_matrix_small_cases_all_pass(self):
        """The CI quick matrix, minus the big-P boundary rings (covered
        individually in test_check.py regressions)."""
        cases = generate_matrix(seed=2, quick=True, max_p=16)
        assert len(cases) >= 20
        failures = [run_case(c) for c in cases]
        failures = [r for r in failures if not r.ok]
        assert not failures, "\n".join(r.describe() for r in failures)

    def test_matrix_generation_is_deterministic(self):
        a = generate_matrix(seed=7, quick=True)
        b = generate_matrix(seed=7, quick=True)
        assert a == b

    def test_matrix_covers_every_collective_and_profile(self):
        cases = generate_matrix(seed=0, quick=True)
        seen = {(c.collective, c.profile) for c in cases}
        for coll in COLLECTIVES:
            for profile in PROFILES:
                assert (coll, profile) in seen
