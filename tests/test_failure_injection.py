"""Failure injection: the stack must fail loudly and clean up fully."""

import pytest

from repro import TrainConfig, train
from repro.cuda import DeviceBuffer
from repro.hardware import Calibration, GPUSpec, NICSpec, NodeSpec, Cluster
from repro.hardware import cluster_a
from repro.hardware.gpu import OutOfMemoryError
from repro.mpi import MPIRuntime, MV2GDR
from repro.mpi.collectives import reduce_binomial
from repro.sim import Interrupt, Resource, Simulator


class TestOOMPaths:
    def _tiny_cluster(self, sim, mem_mib=64):
        cal = Calibration()
        spec = GPUSpec("K80", mem_mib << 20, cal.k80_flops,
                       cal.k80_membw, cal.gpu_reduce_bw)
        node = NodeSpec(gpus_per_node=4, gpu_spec=spec,
                        nics=(NICSpec("ib0", cal.ib_edr_bw,
                                      cal.ib_latency),))
        return Cluster(sim, node, 2, cal=cal, name="tiny")

    def test_scaffe_reports_oom_before_running(self):
        """Upfront memory check: the report carries the failure, the
        simulator never runs."""
        sim = Simulator()
        cluster = self._tiny_cluster(sim)
        from repro.core import run_scaffe
        cfg = TrainConfig(network="alexnet", batch_size=64, iterations=2,
                          measure_iterations=1)
        r = run_scaffe(cluster, 4, cfg)
        assert r.failure == "oom"
        assert "MiB" in r.notes
        assert sim.now == 0.0

    def test_collective_scratch_oom_surfaces(self):
        """A reduction whose scratch buffers exceed device memory raises
        OutOfMemoryError instead of silently shrinking."""
        sim = Simulator()
        cluster = self._tiny_cluster(sim, mem_mib=32)
        rt = MPIRuntime(cluster, MV2GDR)
        comm = rt.world(4)

        def program(ctx):
            # 16 MiB payload: interior ranks need 2 extra scratches on a
            # 32 MiB device -> the tree cannot allocate.
            sendbuf = DeviceBuffer(ctx.gpu, 16 << 20)
            recvbuf = (DeviceBuffer(ctx.gpu, 16 << 20)
                       if ctx.rank == 0 else None)
            yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)

        rt.spawn(comm, program)
        with pytest.raises(OutOfMemoryError):
            sim.run()


class TestInterruptCleanup:
    def test_resource_released_on_interrupt(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder():
            try:
                yield from res.use(100.0)
            except Interrupt:
                pass

        def waiter():
            yield from res.use(1.0)
            return sim.now

        p1 = sim.process(holder())

        def interrupter():
            yield sim.timeout(2.0)
            p1.interrupt("cancel")

        sim.process(interrupter())
        p2 = sim.process(waiter())
        sim.run()
        # The interrupted holder released the resource: waiter completed
        # right after the interrupt, not after 100 s.
        assert p2.value == pytest.approx(3.0)
        assert res.in_use == 0

    def test_reader_stop_mid_run_is_clean(self):
        from repro.hardware import DEFAULT_CALIBRATION
        from repro.io import CIFAR10, DataReader, SimLustre
        sim = Simulator()
        fs = SimLustre(sim, CIFAR10, DEFAULT_CALIBRATION)
        reader = DataReader(sim, fs, batch_samples=8,
                            decode_bw=DEFAULT_CALIBRATION.decode_bw)
        sim.run(until=0.5)
        reader.stop()
        sim.run()  # terminates without unhandled failures
        assert not reader._proc.is_alive


class TestProgramExceptions:
    def test_rank_exception_propagates_from_execute(self):
        sim = Simulator()
        cluster = cluster_a(sim, n_nodes=1)
        rt = MPIRuntime(cluster, MV2GDR)
        comm = rt.world(2)

        def program(ctx):
            yield ctx.sim.timeout(1.0)
            if ctx.rank == 1:
                raise RuntimeError("solver crashed")

        rt.spawn(comm, program)
        with pytest.raises(RuntimeError, match="solver crashed"):
            sim.run()

    def test_strong_scaling_batch_too_small_raises(self):
        cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                          batch_size=4, iterations=2,
                          measure_iterations=1)
        with pytest.raises(ValueError, match="strong scaling"):
            train("scaffe", n_gpus=8, cluster="A", config=cfg)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        """The whole stack is deterministic: two fresh runs of the same
        experiment produce bit-identical simulated times."""
        def run():
            cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                              batch_size=256, iterations=10,
                              measure_iterations=2)
            return train("scaffe", n_gpus=8, cluster="A",
                         config=cfg).total_time

        assert run() == run()

    def test_collective_times_deterministic(self):
        def run():
            sim = Simulator()
            cluster = cluster_a(sim, n_nodes=2)
            rt = MPIRuntime(cluster, MV2GDR)
            comm = rt.world(24)

            def program(ctx):
                sendbuf = DeviceBuffer(ctx.gpu, 4 << 20)
                recvbuf = (DeviceBuffer(ctx.gpu, 4 << 20)
                           if ctx.rank == 0 else None)
                yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
                return ctx.sim.now

            return rt.execute(comm, program)

        assert run() == run()
