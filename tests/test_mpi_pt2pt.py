"""Tests for MPI point-to-point semantics over the simulated transport."""

import numpy as np
import pytest

from repro.cuda import DeviceBuffer
from repro.hardware import cluster_a, cluster_b
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIRuntime, MV2GDR, OPENMPI
from repro.sim import Simulator


def make_runtime(n_gpus=4, kind="a", profile=MV2GDR):
    sim = Simulator()
    cluster = cluster_a(sim, n_nodes=2) if kind == "a" else \
        cluster_b(sim, n_nodes=max(2, (n_gpus + 1) // 2))
    rt = MPIRuntime(cluster, profile)
    comm = rt.world(n_gpus)
    return sim, cluster, rt, comm


class TestSendRecv:
    def test_payload_delivery(self):
        sim, cluster, rt, comm = make_runtime(2)
        payload = np.arange(1024, dtype=np.float32)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer.from_array(ctx.gpu, payload)
                yield from ctx.send(1, buf, tag=7)
            else:
                buf = DeviceBuffer.zeros(ctx.gpu, 1024)
                status = yield from ctx.recv(0, buf, tag=7)
                np.testing.assert_array_equal(buf.data, payload)
                return (status.source, status.tag, status.nbytes)

        results = rt.execute(comm, program)
        assert results[1] == (0, 7, 4096)

    def test_send_before_recv_posted(self):
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer.from_array(
                    ctx.gpu, np.full(64, 3.0, np.float32))
                yield from ctx.send(1, buf, tag=1)
            else:
                yield ctx.sim.timeout(1.0)  # recv posted late
                buf = DeviceBuffer.zeros(ctx.gpu, 64)
                yield from ctx.recv(0, buf, tag=1)
                return float(buf.data.sum())

        results = rt.execute(comm, program)
        assert results[1] == pytest.approx(192.0)

    def test_tag_matching_out_of_order(self):
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                a = DeviceBuffer.from_array(ctx.gpu,
                                            np.full(8, 1.0, np.float32))
                b = DeviceBuffer.from_array(ctx.gpu,
                                            np.full(8, 2.0, np.float32))
                r1 = ctx.isend(1, a, tag=10)
                r2 = ctx.isend(1, b, tag=20)
                yield r1.wait()
                yield r2.wait()
            else:
                # Receive tag 20 first, then tag 10.
                b = DeviceBuffer.zeros(ctx.gpu, 8)
                a = DeviceBuffer.zeros(ctx.gpu, 8)
                yield from ctx.recv(0, b, tag=20)
                yield from ctx.recv(0, a, tag=10)
                return (float(a.data[0]), float(b.data[0]))

        results = rt.execute(comm, program)
        assert results[1] == (1.0, 2.0)

    def test_any_source_any_tag(self):
        sim, cluster, rt, comm = make_runtime(3)

        def program(ctx):
            if ctx.rank in (0, 1):
                buf = DeviceBuffer.from_array(
                    ctx.gpu, np.full(4, float(ctx.rank + 1), np.float32))
                yield from ctx.send(2, buf, tag=ctx.rank + 5)
            else:
                total = 0.0
                for _ in range(2):
                    buf = DeviceBuffer.zeros(ctx.gpu, 4)
                    st = yield from ctx.recv(ANY_SOURCE, buf, tag=ANY_TAG)
                    assert st.tag == st.source + 5
                    total += float(buf.data[0])
                return total

        results = rt.execute(comm, program)
        assert results[2] == pytest.approx(3.0)

    def test_truncation_error(self):
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer(ctx.gpu, 1 << 20)
                try:
                    yield from ctx.send(1, buf, tag=0)
                except RuntimeError:
                    return True  # sender errors too (rendezvous size)
            else:
                small = DeviceBuffer(ctx.gpu, 16)
                try:
                    yield from ctx.recv(0, small, tag=0)
                except RuntimeError as exc:
                    return "truncation" in str(exc)
                return False

        results = rt.execute(comm, program)
        assert results[1] is True

    def test_bad_rank_rejected(self):
        sim, cluster, rt, comm = make_runtime(2)
        ctx = comm.context(0)
        buf = DeviceBuffer(ctx.gpu, 16)
        with pytest.raises(ValueError):
            ctx.isend(5, buf)
        with pytest.raises(ValueError):
            ctx.irecv(9, buf)
        with pytest.raises(ValueError):
            ctx.isend(1, buf, tag=-2)


class TestEagerRendezvous:
    def test_eager_send_completes_without_receiver(self):
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer(ctx.gpu, 128)  # below eager threshold
                req = ctx.isend(1, buf, tag=0)
                yield req.wait()
                return sim.now
            # Rank 1 never posts a recv.
            return None
            yield  # pragma: no cover

        procs = rt.spawn(comm, program)
        sim.run()
        assert procs[0].value < 0.001  # completed locally, fast

    def test_rendezvous_send_blocks_until_recv(self):
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer(ctx.gpu, 64 << 20)  # rendezvous-size
                yield from ctx.send(1, buf, tag=0)
                return sim.now
            else:
                yield ctx.sim.timeout(5.0)
                buf = DeviceBuffer(ctx.gpu, 64 << 20)
                yield from ctx.recv(0, buf, tag=0)
                return sim.now

        results = rt.execute(comm, program)
        assert results[0] >= 5.0  # sender waited for the late receiver

    def test_eager_payload_snapshot(self):
        """Modifying a send buffer after eager completion must not corrupt
        the message (capture-at-send semantics)."""
        sim, cluster, rt, comm = make_runtime(2)

        def program(ctx):
            if ctx.rank == 0:
                buf = DeviceBuffer.from_array(
                    ctx.gpu, np.full(16, 1.0, np.float32))
                req = ctx.isend(1, buf, tag=0)
                yield req.wait()
                buf.data[:] = 99.0  # legal after completion
            else:
                yield ctx.sim.timeout(1.0)
                rx = DeviceBuffer.zeros(ctx.gpu, 16)
                yield from ctx.recv(0, rx, tag=0)
                return float(rx.data[0])

        results = rt.execute(comm, program)
        assert results[1] == pytest.approx(1.0)


class TestTransportPaths:
    @pytest.mark.parametrize("profile", [MV2GDR, OPENMPI])
    def test_inter_node_payload_all_profiles(self, profile):
        sim, cluster, rt, comm = make_runtime(2, kind="b", profile=profile)
        assert not cluster.same_node(comm.gpu_of(0), comm.gpu_of(1)) or True

        def program(ctx):
            peer = 1 - ctx.rank
            data = np.arange(256, dtype=np.float32)
            if ctx.rank == 0:
                buf = DeviceBuffer.from_array(ctx.gpu, data)
                yield from ctx.send(peer, buf, tag=0)
            else:
                buf = DeviceBuffer.zeros(ctx.gpu, 256)
                yield from ctx.recv(peer, buf, tag=0)
                np.testing.assert_array_equal(buf.data, data)

        rt.execute(comm, program)

    def test_gdr_faster_than_staged(self):
        """MV2GDR inter-node large-message transfer beats OpenMPI staging."""
        times = {}
        for profile in (MV2GDR, OPENMPI):
            sim = Simulator()
            cluster = cluster_b(sim, n_nodes=2)
            rt = MPIRuntime(cluster, profile)
            comm = rt.world([cluster.gpu(0), cluster.gpu(2)])

            def program(ctx):
                buf = DeviceBuffer(ctx.gpu, 64 << 20)
                if ctx.rank == 0:
                    yield from ctx.send(1, buf, tag=0)
                else:
                    yield from ctx.recv(0, buf, tag=0)
                return ctx.sim.now

            results = rt.execute(comm, program)
            times[profile.name] = max(results)
        assert times["openmpi"] > times["mv2gdr"] * 1.5

    def test_intra_node_ipc_faster_than_staged(self):
        times = {}
        for profile in (MV2GDR, OPENMPI):
            sim = Simulator()
            cluster = cluster_a(sim, n_nodes=1)
            rt = MPIRuntime(cluster, profile)
            comm = rt.world(2)

            def program(ctx):
                buf = DeviceBuffer(ctx.gpu, 64 << 20)
                if ctx.rank == 0:
                    yield from ctx.send(1, buf, tag=0)
                else:
                    yield from ctx.recv(0, buf, tag=0)
                return ctx.sim.now

            results = rt.execute(comm, program)
            times[profile.name] = max(results)
        assert times["openmpi"] > times["mv2gdr"] * 1.5


class TestBarrier:
    def test_barrier_synchronizes(self):
        sim, cluster, rt, comm = make_runtime(4)

        def program(ctx):
            yield ctx.sim.timeout(float(ctx.rank))
            yield from ctx.barrier()
            return ctx.sim.now

        results = rt.execute(comm, program)
        assert all(r == pytest.approx(results[0]) for r in results)
        assert results[0] >= 3.0


class TestCommunicatorSplit:
    def test_split_renumbers_ranks(self):
        sim, cluster, rt, comm = make_runtime(4)
        sub = comm.split([2, 0])
        assert sub.size == 2
        assert sub.gpu_of(0) is comm.gpu_of(2)
        assert sub.gpu_of(1) is comm.gpu_of(0)

    def test_split_duplicate_rejected(self):
        sim, cluster, rt, comm = make_runtime(4)
        with pytest.raises(ValueError):
            comm.split([0, 0])

    def test_sub_context_membership(self):
        sim, cluster, rt, comm = make_runtime(4)
        sub = comm.split([1, 3])
        assert comm.context(1).sub_context(sub).rank == 0
        assert comm.context(3).sub_context(sub).rank == 1
        assert comm.context(0).sub_context(sub) is None

    def test_messaging_isolated_between_communicators(self):
        sim, cluster, rt, comm = make_runtime(2)
        sub = comm.split([0, 1])

        def program(ctx):
            sctx = ctx.sub_context(sub)
            if ctx.rank == 0:
                a = DeviceBuffer.from_array(ctx.gpu,
                                            np.full(8, 1.0, np.float32))
                b = DeviceBuffer.from_array(ctx.gpu,
                                            np.full(8, 2.0, np.float32))
                r1 = ctx.isend(1, a, tag=0)
                r2 = sctx.isend(1, b, tag=0)
                yield r1.wait()
                yield r2.wait()
            else:
                # Same (src, tag) on both communicators; matching must not
                # cross communicator boundaries.
                rb = DeviceBuffer.zeros(ctx.gpu, 8)
                ra = DeviceBuffer.zeros(ctx.gpu, 8)
                yield from sctx.recv(0, rb, tag=0)
                yield from ctx.recv(0, ra, tag=0)
                return (float(ra.data[0]), float(rb.data[0]))

        results = rt.execute(comm, program)
        assert results[1] == (1.0, 2.0)
