"""Tests for the Caffe prototxt parser and converters."""

import pytest

from repro.dnn import get_network
from repro.dnn.prototxt import (
    PrototxtError, network_from_prototxt, parse_prototxt,
    solver_from_prototxt,
)

SOLVER_TXT = """
# The CIFAR10 quick solver, reference hyper-parameters.
base_lr: 0.001
momentum: 0.9
weight_decay: 0.004
lr_policy: "fixed"
max_iter: 4000
snapshot_prefix: "cifar10_quick"
"""

MULTISTEP_SOLVER = """
base_lr: 0.1
lr_policy: "multistep"
gamma: 0.1
stepvalue: 100
stepvalue: 500
stepvalue: 1000
"""

LENET_TXT = """
name: "LeNet"
input_dim: 1
input_dim: 1
input_dim: 28
input_dim: 28
layer { name: "conv1" type: "Convolution"
  convolution_param { num_output: 20 kernel_size: 5 } }
layer { name: "pool1" type: "Pooling"
  pooling_param { kernel_size: 2 stride: 2 } }
layer { name: "conv2" type: "Convolution"
  convolution_param { num_output: 50 kernel_size: 5 } }
layer { name: "pool2" type: "Pooling"
  pooling_param { kernel_size: 2 stride: 2 } }
layer { name: "ip1" type: "InnerProduct"
  inner_product_param { num_output: 500 } }
layer { name: "relu1" type: "ReLU" }
layer { name: "ip2" type: "InnerProduct"
  inner_product_param { num_output: 10 } }
layer { name: "prob" type: "SoftmaxWithLoss" }
"""


class TestParser:
    def test_scalars_and_strings(self):
        d = parse_prototxt('a: 3 b: 2.5 c: "text" d: true')
        assert d == {"a": 3, "b": 2.5, "c": "text", "d": True}

    def test_nested_blocks(self):
        d = parse_prototxt("outer { inner { x: 1 } y: 2 }")
        assert d["outer"]["inner"]["x"] == 1
        assert d["outer"]["y"] == 2

    def test_repeated_keys_accumulate(self):
        d = parse_prototxt("v: 1 v: 2 v: 3")
        assert d["v"] == [1, 2, 3]

    def test_comments_ignored(self):
        d = parse_prototxt("# header\na: 1  # trailing\n")
        assert d == {"a": 1}

    def test_colon_before_block_allowed(self):
        d = parse_prototxt("block: { x: 1 }")
        assert d["block"]["x"] == 1

    def test_unbalanced_braces(self):
        with pytest.raises(PrototxtError):
            parse_prototxt("a { b: 1")
        with pytest.raises(PrototxtError):
            parse_prototxt("}")

    def test_bad_syntax(self):
        with pytest.raises(PrototxtError):
            parse_prototxt("key")
        with pytest.raises(PrototxtError):
            parse_prototxt("key ~ value")


class TestSolverFromPrototxt:
    def test_cifar_quick_solver(self):
        cfg = solver_from_prototxt(SOLVER_TXT)
        assert cfg.base_lr == 0.001
        assert cfg.momentum == 0.9
        assert cfg.weight_decay == 0.004
        assert cfg.lr_policy == "fixed"
        assert cfg.max_iter == 4000

    def test_multistep_values(self):
        cfg = solver_from_prototxt(MULTISTEP_SOLVER)
        assert cfg.stepvalues == (100, 500, 1000)
        assert cfg.lr_at(99) == pytest.approx(0.1)
        assert cfg.lr_at(100) == pytest.approx(0.01)

    def test_invalid_values_rejected(self):
        with pytest.raises(PrototxtError):
            solver_from_prototxt('base_lr: -1.0')


class TestNetworkFromPrototxt:
    def test_lenet_matches_programmatic_zoo(self):
        net = network_from_prototxt(LENET_TXT)
        zoo = get_network("lenet")
        assert net.name == "LeNet"
        assert net.param_count == zoo.param_count
        assert net.input_bytes_per_sample == zoo.input_bytes_per_sample
        assert len(net.parametrized_layers()) == 4

    def test_shape_propagation(self):
        txt = """
        input_dim: 1 input_dim: 3 input_dim: 32 input_dim: 32
        layer { name: "c" type: "Convolution"
          convolution_param { num_output: 8 kernel_size: 3 pad: 1
                              stride: 2 } }
        layer { name: "fc" type: "InnerProduct"
          inner_product_param { num_output: 10 } }
        """
        net = network_from_prototxt(txt)
        conv, fc = net.parametrized_layers()
        # 32x32, k=3, p=1, s=2 -> 16x16; fc input = 8*16*16.
        assert conv.param_count == 3 * 3 * 3 * 8 + 8
        assert fc.param_count == 8 * 16 * 16 * 10 + 10

    def test_input_layer_shape_source(self):
        txt = """
        layer { name: "data" type: "Input"
          input_param { shape { dim: 1 dim: 1 dim: 8 dim: 8 } } }
        layer { name: "fc" type: "InnerProduct"
          inner_product_param { num_output: 4 } }
        """
        net = network_from_prototxt(txt)
        assert net.parametrized_layers()[0].param_count == 64 * 4 + 4
        assert net.input_bytes_per_sample == 64 * 4

    def test_missing_shape_rejected(self):
        with pytest.raises(PrototxtError, match="input shape"):
            network_from_prototxt(
                'layer { name: "fc" type: "InnerProduct"'
                ' inner_product_param { num_output: 4 } }')

    def test_unsupported_layer_rejected(self):
        txt = """
        input_dim: 1 input_dim: 3 input_dim: 8 input_dim: 8
        layer { name: "x" type: "Deconvolution" }
        """
        with pytest.raises(PrototxtError, match="unsupported"):
            network_from_prototxt(txt)

    def test_kernel_too_large_rejected(self):
        txt = """
        input_dim: 1 input_dim: 1 input_dim: 4 input_dim: 4
        layer { name: "c" type: "Convolution"
          convolution_param { num_output: 2 kernel_size: 9 } }
        """
        with pytest.raises(PrototxtError, match="shrinks"):
            network_from_prototxt(txt)

    def test_prototxt_net_trains_through_scaffe(self):
        """End-to-end: a prototxt-defined network drives a simulated
        distributed training run."""
        from repro import TrainConfig
        from repro.core import SCaffeJob, Workload
        from repro.hardware import cluster_a
        from repro.sim import Simulator

        net = network_from_prototxt(LENET_TXT)
        wl = Workload.from_spec(net)
        sim = Simulator()
        cluster = cluster_a(sim, n_nodes=1)
        cfg = TrainConfig(network="LeNet", dataset="mnist",
                          batch_size=64, iterations=3,
                          measure_iterations=2)
        report = SCaffeJob(cluster, 4, wl, cfg).run()
        assert report.ok



class TestPrototxtFuzz:
    """Property-based: random linear conv/fc stacks rendered to prototxt
    parse back to the independently-computed parameter counts."""

    from hypothesis import given, settings, strategies as st

    convs = st.lists(
        st.tuples(st.integers(min_value=1, max_value=32),   # num_output
                  st.sampled_from([1, 3, 5]),               # kernel
                  st.sampled_from([0, 1, 2])),              # pad
        min_size=0, max_size=4)
    fcs = st.lists(st.integers(min_value=1, max_value=64),
                   min_size=1, max_size=3)

    @given(convs, fcs)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_param_counts(self, convs, fcs):
        from hypothesis import assume
        c, h, w = 3, 16, 16
        lines = ["input_dim: 1", f"input_dim: {c}", f"input_dim: {h}",
                 f"input_dim: {w}"]
        expected = 0
        ci, hi = c, h
        ok = True
        for i, (cout, k, pad) in enumerate(convs):
            out = hi + 2 * pad - k + 1
            if out < 1:
                ok = False
                break
            lines.append(
                f'layer {{ name: "c{i}" type: "Convolution" '
                f"convolution_param {{ num_output: {cout} "
                f"kernel_size: {k} pad: {pad} }} }}")
            expected += k * k * ci * cout + cout
            ci, hi = cout, out
        assume(ok)
        nin = ci * hi * hi
        for i, nout in enumerate(fcs):
            lines.append(
                f'layer {{ name: "f{i}" type: "InnerProduct" '
                f"inner_product_param {{ num_output: {nout} }} }}")
            expected += nin * nout + nout
            nin = nout
        net = network_from_prototxt("\n".join(lines))
        assert net.param_count == expected


class TestParserRobustness:
    """The parser must fail with PrototxtError (never an internal
    exception) on arbitrary garbage."""

    from hypothesis import given, settings, strategies as st

    @given(st.text(alphabet='abc{}:"# \n0123456789._', max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_never_raises_foreign_exceptions(self, text):
        try:
            parse_prototxt(text)
        except PrototxtError:
            pass

    @given(st.text(max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_unicode_is_handled(self, text):
        try:
            parse_prototxt(text)
        except PrototxtError:
            pass
