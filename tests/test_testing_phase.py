"""Tests for the Testing (accuracy) phase of distributed training."""

import numpy as np
import pytest

from repro import TrainConfig
from repro.core import SCaffeJob, Workload, run_scaffe
from repro.core.workload import RealCompute
from repro.dnn import SolverConfig, build_mlp
from repro.hardware import cluster_a
from repro.sim import Simulator


def test_config_validation():
    with pytest.raises(ValueError):
        TrainConfig(test_interval=-1)
    with pytest.raises(ValueError):
        TrainConfig(test_batch=0)


def test_timed_testing_phase_recorded():
    sim = Simulator()
    cluster = cluster_a(sim, n_nodes=1)
    cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                      batch_size=256, iterations=6, measure_iterations=5,
                      test_interval=2)
    report = run_scaffe(cluster, 4, cfg)
    assert report.ok
    # 6 iterations, testing every 2 -> three Testing passes recorded.
    assert [it for it, _ in report.test_results] == [2, 4, 6]
    assert report.phase("test") > 0
    # No adapter: timed-only testing, no accuracy value.
    assert report.final_test_accuracy is None


def test_no_testing_by_default():
    sim = Simulator()
    cluster = cluster_a(sim, n_nodes=1)
    cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                      batch_size=256, iterations=4, measure_iterations=3)
    report = run_scaffe(cluster, 4, cfg)
    assert report.test_results == []
    assert report.phase("test") == 0.0


def test_distributed_accuracy_improves():
    """The paper's §6.2 validation end-to-end: distributed S-Caffe
    training drives held-out accuracy up, measured through the real
    Testing phase on the root solver."""
    rng = np.random.default_rng(21)
    x = rng.standard_normal((256, 8))
    labels = (x[:, 0] + x[:, 1] > 0).astype(int)
    master = build_mlp([8, 16, 2], rng=np.random.default_rng(22))
    adapter = RealCompute(master, x[:192], labels[:192],
                          global_batch=32, n_ranks=4,
                          solver_config=SolverConfig(base_lr=0.3),
                          test_x=x[192:], test_labels=labels[192:])

    sim = Simulator()
    cluster = cluster_a(sim, n_nodes=1)
    iters = 24
    cfg = TrainConfig(network="mlp", dataset="mnist", batch_size=32,
                      iterations=iters, measure_iterations=iters - 1,
                      variant="SC-OBR", test_interval=6)
    job = SCaffeJob(cluster, 4, Workload.from_net(master), cfg,
                    adapter=adapter)
    report = job.run()
    assert report.ok

    accs = [r.accuracy for _, r in report.test_results if r is not None]
    assert len(accs) == 4
    assert accs[-1] > accs[0] or accs[0] > 0.9
    assert report.final_test_accuracy == accs[-1]
    assert report.final_test_accuracy > 0.8


def test_distributed_accuracy_matches_sequential():
    """Same accuracy as single-solver training on the same schedule —
    the literal "no difference in accuracy" claim."""
    rng = np.random.default_rng(31)
    x = rng.standard_normal((128, 6))
    labels = (x[:, 2] > 0).astype(int)
    master = build_mlp([6, 12, 2], rng=np.random.default_rng(32))
    solver_cfg = SolverConfig(base_lr=0.2)

    adapter = RealCompute(master, x, labels, global_batch=16, n_ranks=4,
                          solver_config=solver_cfg,
                          test_x=x, test_labels=labels)
    sim = Simulator()
    cluster = cluster_a(sim, n_nodes=1)
    iters = 10
    cfg = TrainConfig(network="mlp", dataset="mnist", batch_size=16,
                      iterations=iters, measure_iterations=iters - 1,
                      test_interval=iters)
    job = SCaffeJob(cluster, 4, Workload.from_net(master), cfg,
                    adapter=adapter)
    report = job.run()

    from repro.dnn import SGDSolver
    seq = SGDSolver(master.clone(), solver_cfg)
    n = x.shape[0]
    for it in range(iters):
        start = (it * 16) % n
        idx = [(start + i) % n for i in range(16)]
        seq.compute_gradients(x[idx], labels[idx])
        seq.apply_update()
    seq_acc = seq.test(x, labels).accuracy

    assert report.final_test_accuracy == pytest.approx(seq_acc, abs=1e-9)
