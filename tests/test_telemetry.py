"""Tests for the telemetry layer: metrics core, MPI_T introspection,
exporters, and the zero-overhead / determinism guarantees.

The load-bearing properties:

- an installed session is *passive* — a telemetry-on run is
  event-for-event identical to a telemetry-off run (mirrors the
  checker's neutrality test in ``test_check.py``);
- exports are deterministic — two same-seed ``repro metrics``
  invocations produce byte-identical Prometheus/JSON/CSV artifacts;
- the ``mpi.coll.bytes`` PVAR agrees with the conformance harness's
  independent per-collective byte tally;
- CVAR writes are validated and actually steer the runtime profile.
"""

import json
import re

import numpy as np
import pytest

from repro.check import Case, run_case
from repro.cli import main
from repro.core import TrainConfig, run_scaffe
from repro.cuda import DeviceBuffer
from repro.hardware import cluster_a, make_cluster
from repro.mpi import MPIRuntime
from repro.mpi.collectives import reduce_binomial
from repro.sim import Simulator
from repro.telemetry import (
    Counter, CvarBackendError, Gauge, Histogram, MetricsRegistry,
    TelemetrySession, bind_cluster, bind_runtime, timeseries_to_csv,
    to_json_snapshot, to_prometheus,
)


def make_runtime(P, profile="mv2gdr", seed=0):
    sim = Simulator(seed=seed)
    cluster = cluster_a(sim, n_nodes=max(1, (P + 15) // 16))
    rt = MPIRuntime(cluster, profile)
    return rt, rt.world(P)


def small_reduce_program(data):
    def program(ctx):
        sendbuf = DeviceBuffer.from_array(ctx.gpu, data[ctx.rank])
        recvbuf = (DeviceBuffer.zeros(ctx.gpu, data[0].shape)
                   if ctx.rank == 0 else None)
        yield from reduce_binomial(ctx, sendbuf, recvbuf, 0)
    return program


class TestMetricsCore:
    def test_counter_labels_and_total(self):
        c = Counter("bytes", labelnames=("path",))
        c.inc(10, path="ipc")
        c.inc(5, path="gdr")
        c.inc(1, path="ipc")
        assert c.value(path="ipc") == 11
        assert c.value(path="gdr") == 5
        assert c.total == 16

    def test_counter_rejects_negative_and_bad_labels(self):
        c = Counter("n")
        with pytest.raises(ValueError):
            c.inc(-1)
        with pytest.raises(ValueError):
            c.inc(1, path="ipc")
        lc = Counter("m", labelnames=("path",))
        with pytest.raises(ValueError):
            lc.inc(1)  # missing label
        with pytest.raises(ValueError):
            lc.inc(1, wrong="x")

    def test_gauge_set_max_is_a_high_watermark(self):
        g = Gauge("depth")
        g.set_max(3)
        g.set_max(1)
        assert g.value() == 3
        g.inc(5)
        g.dec(2)
        assert g.value() == 6

    def test_histogram_buckets_cumulative(self):
        h = Histogram("t", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        st = h.state()
        assert st.count == 4
        assert st.sum == pytest.approx(55.55)
        assert h.cumulative(st) == [1, 2, 3, 4]

    def test_registry_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", "desc")
        assert reg.counter("x") is c1
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.counter("x", labelnames=("a",))
        with pytest.raises(KeyError):
            reg.get("nope")
        assert "x" in reg and len(reg) == 1


class TestNeutrality:
    def test_telemetry_is_zero_cost_on_the_event_stream(self):
        """Instrumented and bare runs must be event-for-event identical
        (same contract as the invariant checker)."""
        def timing(instrumented):
            rt, comm = make_runtime(4)
            if instrumented:
                tel = TelemetrySession(scrape_interval=1e-4)
                tel.attach(rt.sim)
                tel.install()
            data = [np.arange(16, dtype=np.float32) for _ in range(4)]
            rt.execute(comm, small_reduce_program(data))
            return rt.sim.now, rt.sim.event_count

        assert timing(instrumented=False) == timing(instrumented=True)

    def test_training_run_unperturbed_by_telemetry(self):
        """A full seeded training run keeps its clock and event count
        when a scraping session is attached."""
        def run(with_tel):
            sim = Simulator(seed=7)
            cluster = make_cluster(sim, "A")
            cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                              batch_size=64, iterations=3,
                              measure_iterations=3)
            tel = (TelemetrySession(scrape_interval=0.01)
                   if with_tel else None)
            report = run_scaffe(cluster, 4, cfg, telemetry=tel)
            assert report.ok
            return sim.now, sim.event_count, report.total_time

        assert run(with_tel=False) == run(with_tel=True)


class TestScrape:
    def test_scrape_grid_and_final_row(self):
        rt, comm = make_runtime(4)
        tel = TelemetrySession(scrape_interval=1e-6)
        tel.attach(rt.sim)
        tel.install()
        data = [np.arange(4096, dtype=np.float32) for _ in range(4)]
        rt.execute(comm, small_reduce_program(data))
        tel.finalize(rt.sim.now)
        assert len(tel.samples) >= 2
        times = [row["time"] for row in tel.samples]
        assert times == sorted(times)
        # Each scrape fires at the first event instant at or past its
        # grid point: row k's timestamp reaches grid slot k.
        for k, t in enumerate(times[:-1]):
            assert t >= (k + 1) * 1e-6
        assert times[-1] == rt.sim.now
        # Monotone counters never decrease across rows.
        col = "mpi.coll.messages{reduce.binomial}"
        vals = [row[col] for row in tel.samples if col in row]
        assert vals and vals == sorted(vals)

    def test_session_lifecycle_errors(self):
        sim = Simulator()
        tel = TelemetrySession()
        with pytest.raises(RuntimeError):
            tel.install()  # not attached
        tel.attach(sim)
        tel.install()
        other = TelemetrySession()
        other.attach(sim)
        with pytest.raises(RuntimeError):
            other.install()  # one session at a time
        tel.uninstall()
        with pytest.raises(ValueError):
            TelemetrySession(scrape_interval=0.0)


class TestPvarCrossValidation:
    @pytest.mark.parametrize("coll,P", [
        ("reduce_chain", 6), ("allreduce_ring", 5),
        ("bcast_binomial", 7), ("hierarchical_reduce", 8),
    ])
    def test_coll_bytes_pvar_matches_checker_tally(self, coll, P):
        """run_case cross-validates the mpi.coll.bytes PVAR against the
        invariant checker's independent ledger; a telemetry attribution
        bug fails the case."""
        result = run_case(Case(coll, P=P, nbytes=4 * 1024))
        assert result.ok, result.describe()
        coll_bytes = result.pvars["mpi.coll.bytes"]
        assert coll_bytes and all(v > 0 for v in coll_bytes.values())
        assert result.pvars["transport.path.bytes"]

    def test_queue_and_tag_pvars_populated(self):
        result = run_case(Case("reduce_chain", P=4, nbytes=4 * 4160,
                               chunk_bytes=4))
        assert result.ok, result.describe()
        # A jumbo chain reserves >1 tag unit.
        assert result.pvars["mpi.tag_units.hwm"] >= 2
        hwm = (result.pvars["mpi.unexpected_queue.hwm"]
               + result.pvars["mpi.posted_queue.hwm"])
        assert hwm > 0


class TestCvars:
    def make_bound_session(self, profile="mv2gdr"):
        sim = Simulator(seed=0)
        cluster = cluster_a(sim, n_nodes=1)
        rt = MPIRuntime(cluster, profile)
        tel = TelemetrySession()
        tel.attach(sim)
        bind_cluster(tel, cluster)
        bind_runtime(tel, rt)
        return tel, rt

    def test_round_trip_and_profile_effect(self):
        tel, rt = self.make_bound_session()
        assert tel.cvar_get("coll.chain_size") == 8
        tel.cvar_set("coll.chain_size", 4)
        assert tel.cvar_get("coll.chain_size") == 4
        assert rt.profile.chain_size == 4
        tel.cvar_set("mpi.gdr_threshold", 1 << 20)
        assert rt.profile.gdr_threshold == 1 << 20
        assert rt.transport.profile is rt.profile
        tel.cvar_set("coll.flat_reduce_algorithm", "chain")
        assert rt.profile.flat_reduce_algorithm == "chain"
        # New rank contexts see the swapped profile (MPI_T contract).
        assert rt.world(2).context(0).profile.chain_size == 4

    def test_rejections(self):
        tel, _rt = self.make_bound_session()
        with pytest.raises(KeyError):
            tel.cvar_get("no.such.cvar")
        with pytest.raises(KeyError):
            tel.cvar_set("no.such.cvar", 1)
        with pytest.raises(TypeError):
            tel.cvar_set("coll.chain_size", "eight")
        with pytest.raises(TypeError):
            tel.cvar_set("coll.chain_size", True)  # bool is not an int knob
        with pytest.raises(ValueError):
            tel.cvar_set("coll.chain_size", 0)  # below minimum
        with pytest.raises(ValueError):
            tel.cvar_set("coll.flat_reduce_algorithm", "quantum")
        with pytest.raises(TypeError):
            tel.cvar_set_str("coll.chain_size", "not-a-number")

    def test_backend_cvar_on_wrong_backend_raises_typed_error(self):
        """Writing an nccl.* cvar on a runtime bound to mv2gdr must
        raise CvarBackendError, not silently no-op (ISSUE 9 satellite):
        the knob is catalogued, just not available on this backend."""
        tel, _rt = self.make_bound_session()  # mv2gdr
        for name in ("nccl.tree_threshold", "nccl.ring_chunk"):
            with pytest.raises(CvarBackendError) as exc:
                tel.cvar_set(name, 1 << 20)
            assert exc.value.cvar == name
            assert exc.value.wanted_backend == "nccl"
            assert "nccl" in str(exc.value)
            with pytest.raises(CvarBackendError):
                tel.cvar_get(name)
        # Still distinguishable from a plain typo.
        with pytest.raises(KeyError):
            tel.cvar_set("nccl.no_such_knob", 1)

    def test_backend_cvar_works_then_fails_after_hot_swap(self):
        """On an NCCL runtime the knobs round-trip; hot-swapping the
        profile to a different backend turns further writes into
        CvarBackendError instead of a cryptic replace() failure."""
        from repro.mpi import get_profile

        tel, rt = self.make_bound_session(profile="nccl")
        tel.cvar_set("nccl.ring_chunk", 128 << 10)
        assert tel.cvar_get("nccl.ring_chunk") == 128 << 10
        assert rt.profile.ring_chunk == 128 << 10
        rt.set_profile(get_profile("mv2gdr"))
        with pytest.raises(CvarBackendError) as exc:
            tel.cvar_set("nccl.ring_chunk", 64 << 10)
        assert exc.value.bound_backend == "mv2gdr"
        # CvarBackendError is a TypeError so existing broad handlers
        # (the metrics CLI) keep treating it as a cvar error.
        assert isinstance(exc.value, TypeError)

    def test_queued_cvars_apply_at_bind(self):
        sim = Simulator(seed=0)
        cluster = cluster_a(sim, n_nodes=1)
        rt = MPIRuntime(cluster, "mv2gdr")
        tel = TelemetrySession()
        tel.queue_cvar("coll.chain_size", "2")
        tel.attach(sim)
        bind_cluster(tel, cluster)
        bind_runtime(tel, rt)
        assert rt.profile.chain_size == 2
        assert not tel.pending_cvars


class TestExports:
    def run_session(self):
        rt, comm = make_runtime(4)
        tel = TelemetrySession(scrape_interval=1e-4)
        tel.attach(rt.sim)
        bind_cluster(tel, rt.cluster)
        bind_runtime(tel, rt)
        tel.install()
        data = [np.arange(256, dtype=np.float32) for _ in range(4)]
        rt.execute(comm, small_reduce_program(data))
        tel.uninstall()
        tel.finalize(rt.sim.now)
        return tel

    def test_prometheus_exposition_parses(self):
        tel = self.run_session()
        text = to_prometheus(tel.registry)
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? \S+$')
        names = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in ("counter", "gauge", "histogram"), line
                names.add(name)
                continue
            assert sample_re.match(line), f"unparseable sample: {line!r}"
        assert "repro_mpi_coll_bytes" in names
        assert "repro_train_iteration_time" in names
        assert 'repro_mpi_coll_bytes{coll="reduce.binomial"}' in text
        # Histogram exposition carries the +Inf bucket and sum/count.
        assert 'le="+Inf"' in text
        assert "repro_train_iteration_time_count" in text

    def test_json_snapshot_shape(self):
        tel = self.run_session()
        snap = to_json_snapshot(tel, config={"P": 4})
        blob = json.dumps(snap, sort_keys=True)
        assert json.loads(blob) == snap
        assert snap["config"] == {"P": 4}
        assert snap["pvars"]["mpi.coll.bytes"]["reduce.binomial"] > 0
        assert snap["cvars"]["coll.chain_size"] == 8
        assert snap["metrics"]["mpi.coll.messages"]["reduce.binomial"] > 0

    def test_csv_columns_sorted_and_cells_aligned(self):
        tel = self.run_session()
        csv = timeseries_to_csv(tel.samples)
        lines = csv.strip().split("\n")
        header = lines[0].split(",")
        assert header[0] == "time"
        assert header[1:] == sorted(header[1:])
        for line in lines[1:]:
            assert len(line.split(",")) == len(header)

    def test_pvar_count_floor(self):
        """The ISSUE's catalogue floor: >= 12 PVARs and >= 4 CVARs."""
        tel = self.run_session()
        assert len(tel.pvar_names()) >= 12
        assert len(tel.cvar_names()) >= 4


class TestCliMetrics:
    ARGS = ["metrics", "--gpus", "4", "--network", "cifar10_quick",
            "--dataset", "cifar10", "--batch-size", "64",
            "--iterations", "3", "--seed", "3",
            "--scrape-interval", "0.002"]

    def test_same_seed_runs_are_byte_identical(self, tmp_path, capsys):
        out1, out2 = tmp_path / "a", tmp_path / "b"
        assert main(self.ARGS + ["--out", str(out1)]) == 0
        assert main(self.ARGS + ["--out", str(out2)]) == 0
        capsys.readouterr()
        for fname in ("metrics.prom", "metrics.json", "timeseries.csv"):
            b1 = (out1 / fname).read_bytes()
            b2 = (out2 / fname).read_bytes()
            assert b1 == b2, f"{fname} differs between same-seed runs"
            assert b1  # non-empty

    def test_stdout_prometheus(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_mpi_coll_bytes counter" in out

    def test_list(self, capsys):
        assert main(["metrics", "--list"]) == 0
        out = capsys.readouterr().out
        assert "mpi.coll.bytes" in out
        assert "coll.chain_size" in out

    def test_cvar_passthrough_and_rejection(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--cvar", "coll.chain_size=4",
                               "--out", str(tmp_path / "c")])
        assert rc == 0
        snap = json.loads((tmp_path / "c" / "metrics.json").read_text())
        assert snap["cvars"]["coll.chain_size"] == 4
        capsys.readouterr()
        assert main(self.ARGS + ["--cvar", "bogus.name=1"]) == 2
        assert "cvar error" in capsys.readouterr().err

    def test_train_live_status_line(self, capsys):
        rc = main(["train", "--framework", "scaffe", "--gpus", "4",
                   "--network", "cifar10_quick", "--dataset", "cifar10",
                   "--batch-size", "64", "--iterations", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "iter    1" in out and "samples/s" in out
        assert "telemetry:" in out  # report footer


class TestReportFooter:
    def test_summary_carries_telemetry_footer(self):
        sim = Simulator(seed=5)
        cluster = make_cluster(sim, "A")
        cfg = TrainConfig(network="cifar10_quick", dataset="cifar10",
                          batch_size=64, iterations=3,
                          measure_iterations=3)
        report = run_scaffe(cluster, 4, cfg,
                            telemetry=TelemetrySession())
        assert report.ok
        tel = report.telemetry
        assert tel is not None
        assert tel.samples_per_second > 0
        assert tel.bytes_by_path and sum(tel.bytes_by_path.values()) > 0
        assert tel.peak_device_mem > 0
        assert "telemetry:" in report.summary()
        assert "peak dev mem" in tel.footer()
